/**
 * @file
 * SweepSpec tests: the committed configs/ specs parse and expand to
 * the grids the hand-coded bench binaries used to run, spec-driven
 * execution is bit-identical to direct ExperimentRunner calls, and
 * schema errors carry actionable messages.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sweep_spec.hh"

using namespace smt;

namespace
{

std::string
configPath(const std::string &name)
{
    return defaultConfigDir() + "/" + name + ".json";
}

/** EXPECT a SpecError whose message contains a fragment. */
template <typename Fn>
void
expectSpecError(Fn fn, const std::string &fragment)
{
    try {
        fn();
        FAIL() << "expected SpecError containing \"" << fragment
               << "\"";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find(fragment),
                  std::string::npos)
            << "message: " << e.what();
    }
}

} // namespace

TEST(SweepSpec, Fig4SpecMatchesHandCodedGrid)
{
    SweepSpec spec = SweepSpec::fromFile(
        configPath("fig4_two_threads"));
    EXPECT_EQ(spec.name, "fig4_two_threads");
    EXPECT_EQ(spec.type, SpecType::Grid);

    // The windows the bench harness has always used (makeRequest()).
    EXPECT_EQ(spec.warmupCycles, 40'000u);
    EXPECT_EQ(spec.measureCycles, 250'000u);
    EXPECT_EQ(spec.seed, 0u);

    // The exact grid bench_fig4_two_threads used to hard-code.
    auto points = spec.expand();
    std::vector<std::pair<unsigned, unsigned>> expected = {
        {1, 8}, {2, 8}, {1, 16}, {2, 16}};
    ASSERT_EQ(points.size(), expected.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].workload, "2_MIX");
        EXPECT_EQ(points[i].engine, EngineKind::GshareBtb);
        EXPECT_EQ(points[i].fetchThreads, expected[i].first);
        EXPECT_EQ(points[i].fetchWidth, expected[i].second);
        EXPECT_EQ(points[i].policy, PolicyKind::ICount);
        EXPECT_FALSE(points[i].overrides.any());
    }
}

TEST(SweepSpec, AllCommittedConfigsParseAndExpand)
{
    const char *names[] = {
        "fig2_single_thread", "fig4_two_threads", "fig5_ilp",
        "fig6_ilp_wide", "fig7_mem", "fig8_mem_wide",
        "sec33_superscalar", "table1_characteristics",
        "ablation_ftq", "ablation_policy",
        "ablation_predictor_size", "ablation_flush",
        "ablation_engines"};
    for (const char *name : names) {
        SweepSpec spec = SweepSpec::fromFile(configPath(name));
        EXPECT_EQ(spec.name, name);
        if (spec.type == SpecType::Grid)
            EXPECT_GT(spec.expand().size(), 0u) << name;
    }
}

TEST(SweepSpec, CommittedGridsMatchTheOldBenchBinaries)
{
    // Grid sizes of the pre-spec hand-coded bench main()s.
    struct Expected
    {
        const char *name;
        std::size_t points;
    };
    const Expected expected[] = {
        {"fig2_single_thread", 2},  // 1 wl x 1 engine x 2 policies
        {"fig4_two_threads", 4},    // 1 x 1 x 4
        {"fig5_ilp", 24},           // 4 x 3 x 2
        {"fig6_ilp_wide", 36},      // 4 x 3 x 3
        {"fig7_mem", 36},           // 6 x 3 x 2
        {"fig8_mem_wide", 54},      // 6 x 3 x 3
        {"sec33_superscalar", 36},  // 12 x 3 x 1
        {"ablation_ftq", 10},       // 2 x 1 x 1 x 5 depths
        {"ablation_policy", 24},    // 4 x 1 x 3 x 2 selections
        {"ablation_predictor_size", 12}, // 1 x 3 x 1 x 4 shifts
        {"ablation_flush", 18},     // 3 x 1 x 2 x 3 load policies
    };
    for (const auto &[name, points] : expected) {
        SweepSpec spec = SweepSpec::fromFile(configPath(name));
        EXPECT_EQ(spec.expand().size(), points) << name;
    }
}

TEST(SweepSpec, SpecRunIsBitIdenticalToDirectRunner)
{
    // The fig4 grid with short windows: spec-driven execution must
    // reproduce direct ExperimentRunner calls bit for bit.
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "fig4_short",
        "warmupCycles": 2000,
        "measureCycles": 8000,
        "seed": 0,
        "workloads": ["2_MIX"],
        "engines": ["gshare+BTB"],
        "policies": ["1.8", "2.8", "1.16", "2.16"]
    })");
    auto results = runSpec(spec).results;
    ASSERT_EQ(results.size(), 4u);

    std::vector<std::pair<unsigned, unsigned>> grid = {
        {1, 8}, {2, 8}, {1, 16}, {2, 16}};
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SweepRequest request;
        request.points = {GridPoint{"2_MIX", EngineKind::GshareBtb,
                                    grid[i].first, grid[i].second}};
        request.warmupCycles = 2000;
        request.measureCycles = 8000;
        request.seed = 0;
        auto direct = ExperimentRunner().run(request).results.at(0);
        EXPECT_EQ(results[i].ipfc, direct.ipfc);
        EXPECT_EQ(results[i].ipc, direct.ipc);
        EXPECT_EQ(results[i].statsJson, direct.statsJson);
    }
}

TEST(SweepSpec, OverridesExpandAsCrossProduct)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "combo",
        "workloads": ["2_MIX"],
        "engines": ["stream"],
        "policies": ["1.16"],
        "overrides": {
            "ftqEntries": [1, 2],
            "longLoadPolicy": ["stall", "flush"]
        }
    })");
    auto points = spec.expand();
    ASSERT_EQ(points.size(), 4u);

    // longLoadPolicy (parsed second) varies slower than ftqEntries.
    EXPECT_EQ(*points[0].overrides.ftqEntries, 1u);
    EXPECT_EQ(*points[0].overrides.longLoadPolicy,
              LongLoadPolicy::Stall);
    EXPECT_EQ(*points[1].overrides.ftqEntries, 2u);
    EXPECT_EQ(*points[1].overrides.longLoadPolicy,
              LongLoadPolicy::Stall);
    EXPECT_EQ(*points[2].overrides.ftqEntries, 1u);
    EXPECT_EQ(*points[2].overrides.longLoadPolicy,
              LongLoadPolicy::Flush);
    EXPECT_EQ(*points[3].overrides.ftqEntries, 2u);
    EXPECT_EQ(*points[3].overrides.longLoadPolicy,
              LongLoadPolicy::Flush);

    for (const auto &p : points) {
        EXPECT_TRUE(p.overrides.any());
        EXPECT_FALSE(p.overrides.describe().empty());
    }
}

TEST(SweepSpec, SelectionAndMultiSweepExpansion)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "multi",
        "sweeps": [
            {
                "workloads": ["2_MIX"],
                "engines": ["stream"],
                "policies": ["1.8"],
                "selection": ["round-robin", "icount"]
            },
            {
                "workloads": ["2_ILP", "2_MEM"],
                "policies": ["2.8"]
            }
        ]
    })");
    auto points = spec.expand();
    // 1x1x1x2 selections + 2 workloads x 3 default engines x 1.
    ASSERT_EQ(points.size(), 8u);
    EXPECT_EQ(points[0].policy, PolicyKind::RoundRobin);
    EXPECT_EQ(points[1].policy, PolicyKind::ICount);
    EXPECT_EQ(points[2].workload, "2_ILP");
    EXPECT_EQ(points[2].engine, EngineKind::GshareBtb);
}

TEST(SweepSpec, NameResolvers)
{
    EXPECT_EQ(engineKindFromString("gshare+BTB"),
              EngineKind::GshareBtb);
    EXPECT_EQ(engineKindFromString("GSHARE_BTB"),
              EngineKind::GshareBtb);
    EXPECT_EQ(engineKindFromString("gskew+ftb"),
              EngineKind::GskewFtb);
    EXPECT_EQ(engineKindFromString("Stream"), EngineKind::Stream);
    EXPECT_EQ(engineKindFromString("tage"), EngineKind::Tage);
    EXPECT_EQ(engineKindFromString("oracle-bp"), EngineKind::PerfectBp);
    EXPECT_EQ(engineKindFromString("perfect_icache"),
              EngineKind::PerfectL1i);
    EXPECT_EQ(engineKindFromString("adaptive"), EngineKind::Adaptive);
    // Unknown-engine errors enumerate the registry.
    expectSpecError([] { engineKindFromString("tage2"); },
                    "unknown fetch engine \"tage2\"");
    expectSpecError([] { engineKindFromString("tage2"); },
                    "gshare+BTB");
    expectSpecError([] { engineKindFromString("tage2"); }, "stream");
    expectSpecError([] { engineKindFromString("tage2"); }, "adaptive");

    EXPECT_EQ(policyKindFromString("icount"), PolicyKind::ICount);
    EXPECT_EQ(policyKindFromString("rr"), PolicyKind::RoundRobin);
    EXPECT_EQ(policyKindFromString("Round-Robin"),
              PolicyKind::RoundRobin);
    EXPECT_THROW(policyKindFromString("fifo"), SpecError);

    EXPECT_EQ(longLoadPolicyFromString("flush"),
              LongLoadPolicy::Flush);
    EXPECT_THROW(longLoadPolicyFromString("drain"), SpecError);

    EXPECT_NO_THROW(validateWorkloadName("4_MIX"));
    EXPECT_NO_THROW(validateWorkloadName("gzip"));
    EXPECT_THROW(validateWorkloadName("9_MIX"), SpecError);
}

TEST(SweepSpec, SchemaErrorsAreActionable)
{
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"workloads": ["2_MIX"],
                "policies": ["1.8"]})");
        },
        "non-empty \"name\"");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["nope"], "policies": ["1.8"]})");
        },
        "unknown workload \"nope\"");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "engines": ["tage2"],
                "policies": ["1.8"]})");
        },
        "unknown fetch engine \"tage2\"");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["eight"]})");
        },
        "bad policy \"eight\"");
    // Out-of-range policies and overrides fail at parse time, not
    // with a mid-run fatal().
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["2.32"]})");
        },
        "policy width 32 out of range");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["9.8"]})");
        },
        "policy threads 9 out of range");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "overrides": {"ftqEntries": 0}})");
        },
        "ftqEntries must be at least 1");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "overrides": {"robEntries": 4}})");
        },
        "robEntries must be at least 8");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.16"],
                "overrides": {"fetchBufferSize": 8}})");
        },
        "smaller than the widest fetch policy");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "overrides": {"ftqEntries": 4294967300}})");
        },
        "ftqEntries is out of range");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "overrides": {"predictorShift": 12}})");
        },
        "predictorShift must be at most 6");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "overrides": {"cacheWays": 4}})");
        },
        "unknown override \"cacheWays\"");
    // Empty arrays must error, not silently expand to zero points.
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "overrides": {"ftqEntries": []}})");
        },
        "must not be an empty array");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "policies": ["1.8"],
                "selection": []})");
        },
        "\"selection\" must not be an empty array");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": ["2_MIX"], "engines": [],
                "policies": ["1.8"]})");
        },
        "\"engines\" must not be an empty array");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x", "frobnicate": 1,
                "workloads": ["2_MIX"], "policies": ["1.8"]})");
        },
        "unknown spec key \"frobnicate\"");
    expectSpecError(
        [] { SweepSpec::fromString(R"({"name": "x"})"); },
        "grid spec needs");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "type": "characteristics",
                "workloads": ["2_MIX"], "policies": ["1.8"]})");
        },
        "takes no sweeps");
    // Malformed JSON surfaces as a SpecError with parse context.
    expectSpecError(
        [] { SweepSpec::fromString("{\"name\": \n oops}"); },
        "line 2");
    expectSpecError(
        [] { SweepSpec::fromFile("/nonexistent/spec.json"); },
        "cannot open");
}

TEST(SweepSpec, CycleSkipKeyParsesAndReachesTheRunner)
{
    // Default: skipping on (it is bit-identical, so there is no
    // reason to tick dead cycles).
    SweepSpec defaulted = SweepSpec::fromString(R"({"name": "x",
        "workloads": ["2_MIX"], "policies": ["1.8"]})");
    EXPECT_TRUE(defaulted.cycleSkip);
    EXPECT_TRUE(defaulted.makeRequest().cycleSkip);

    SweepSpec off = SweepSpec::fromString(R"({"name": "x",
        "cycleSkip": false,
        "workloads": ["2_MIX"], "policies": ["1.8"]})");
    EXPECT_FALSE(off.cycleSkip);
    EXPECT_FALSE(off.makeRequest().cycleSkip);

    SweepSpec on = SweepSpec::fromString(R"({"name": "x",
        "cycleSkip": true,
        "workloads": ["2_MIX"], "policies": ["1.8"]})");
    EXPECT_TRUE(on.cycleSkip);

    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "cycleSkip": "fast",
                "workloads": ["2_MIX"], "policies": ["1.8"]})");
        },
        "cycleSkip must be a boolean");
}

TEST(SweepSpec, TraceWorkloadsParseIntoTraceNames)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "replay",
        "workloads": [
            "2_MIX",
            {"trace": "fig2.t0.trc"},
            {"trace": ["a.trc", "b.strc"]}
        ],
        "engines": ["gshare+BTB"],
        "policies": ["1.8"]
    })");
    auto points = spec.expand();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].workload, "2_MIX");
    EXPECT_EQ(points[1].workload, "trace:fig2.t0.trc");
    EXPECT_EQ(points[2].workload, "trace:a.trc,b.strc");

    // The committed trace configs expand without the trace files
    // existing (they are recorded by the user before running).
    for (const char *name : {"trace_replay", "trace_mix"}) {
        SweepSpec committed =
            SweepSpec::fromFile(configPath(name));
        EXPECT_EQ(committed.name, name);
        EXPECT_GT(committed.expand().size(), 0u) << name;
    }

    EXPECT_NO_THROW(validateWorkloadName("trace:foo.trc"));
    EXPECT_NO_THROW(validateWorkloadName("trace:a.trc,b.trc"));
    EXPECT_THROW(validateWorkloadName("trace:"), SpecError);
    EXPECT_THROW(validateWorkloadName("trace:a,,b"), SpecError);

    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": [{"replay": "a.trc"}],
                "policies": ["1.8"]})");
        },
        "exactly the key \"trace\"");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": [{"trace": []}],
                "policies": ["1.8"]})");
        },
        "at least one path");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({"name": "x",
                "workloads": [{"trace": "a,b.trc"}],
                "policies": ["1.8"]})");
        },
        "bad trace path");
}

TEST(SweepSpec, UnwritableOutputDirFailsFastWithThePath)
{
    EXPECT_NO_THROW(ensureWritableDir(::testing::TempDir()));
    expectSpecError(
        [] { ensureWritableDir("/nonexistent/json-out"); },
        "\"/nonexistent/json-out\" is not writable");
    EXPECT_EQ(benchRecordDir("somewhere"), "somewhere");
}

TEST(SweepSpec, CharacteristicsSpecRuns)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "chars",
        "type": "characteristics",
        "instructions": 20000
    })");
    EXPECT_EQ(spec.type, SpecType::Characteristics);
    EXPECT_THROW(runSpec(spec), SpecError);

    auto rows = runCharacteristics(spec.instructions);
    ASSERT_EQ(rows.size(), 12u); // the twelve SPECint2000 profiles
    for (const auto &r : rows) {
        EXPECT_GT(r.blockSize, 0.0) << r.benchmark;
        EXPECT_GT(r.streamLength, 0.0) << r.benchmark;
        EXPECT_GE(r.loadFraction, 0.0) << r.benchmark;
    }
    EXPECT_EQ(characteristicsMetrics(rows).size(), rows.size() * 4);
}
