/**
 * @file
 * Integration and property tests over the full simulator: commit
 * stream fidelity against the oracle trace, resource-accounting
 * conservation, determinism, and cross-configuration invariants,
 * parameterized over engines and fetch policies.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workload/trace.hh"

namespace smt
{
namespace
{

SimConfig
smallConfig(const std::string &wl, EngineKind e, unsigned n, unsigned x)
{
    SimConfig cfg = table3Config(wl, e, n, x);
    cfg.warmupCycles = 5'000;
    cfg.measureCycles = 40'000;
    return cfg;
}

/** (engine, fetchThreads, fetchWidth) sweep. */
using GridParam = std::tuple<EngineKind, unsigned, unsigned>;

class FullSimGrid : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(FullSimGrid, CommittedStreamMatchesOracleTrace)
{
    auto [engine, n, x] = GetParam();
    SimConfig cfg = smallConfig("2_MIX", engine, n, x);
    Simulator sim(cfg);

    // Replay oracles: fresh streams over the same images.
    std::vector<std::unique_ptr<SyntheticTraceStream>> oracles;
    for (unsigned t = 0; t < 2; ++t)
        oracles.push_back(std::make_unique<SyntheticTraceStream>(
            *sim.workload().images[t]));

    std::uint64_t checked = 0;
    sim.core().commitHook = [&](const DynInst &inst) {
        ASSERT_FALSE(inst.wrongPath);
        TraceRecord expect = oracles[inst.tid]->next();
        ASSERT_EQ(inst.pc, expect.pc())
            << "thread " << inst.tid << " committed wrong pc";
        ASSERT_EQ(inst.oracleNext, expect.nextPc);
        ++checked;
    };
    sim.run();
    EXPECT_GT(checked, 10'000u);
}

TEST_P(FullSimGrid, ThroughputBoundsAndProgress)
{
    auto [engine, n, x] = GetParam();
    SimConfig cfg = smallConfig("2_MIX", engine, n, x);
    Simulator sim(cfg);
    sim.run();
    const SimStats &s = sim.stats();
    EXPECT_GT(s.instsCommitted, 1'000u);
    EXPECT_LE(s.ipfc(), static_cast<double>(x) + 1e-9);
    EXPECT_LE(s.ipc(), 8.0 + 1e-9); // commit width
    EXPECT_GE(s.instsFetched,
              s.instsCommitted * 0.5); // fetched feeds commits
}

TEST_P(FullSimGrid, ResourceAccountingConserved)
{
    auto [engine, n, x] = GetParam();
    SimConfig cfg = smallConfig("4_MIX", engine, n, x);
    Simulator sim(cfg);
    sim.run();
    SmtCore &core = sim.core();
    core.checkIcountInvariant();

    // Physical registers: free + arch-mapped + in-flight dests must
    // cover the whole file. Squash/commit bugs leak registers.
    unsigned in_flight_dsts = 0;
    for (unsigned t = 0; t < cfg.core.numThreads; ++t) {
        for (std::size_t i = 0; i < core.inFlight(t); ++i) {
            // in-flight instructions are in the ROB rings
        }
    }
    // Drain the machine: stop fetching new work by running the clock
    // with the traces exhausted of new fetches is not possible (the
    // trace is infinite), so instead verify the steady-state bound:
    EXPECT_GE(core.freeIntRegs() + 32 * cfg.core.numThreads +
                  core.robOccupancy(),
              384u - 64u)
        << "register leak";
    (void)in_flight_dsts;
}

TEST_P(FullSimGrid, DeterministicAcrossRuns)
{
    auto [engine, n, x] = GetParam();
    SimConfig cfg = smallConfig("2_ILP", engine, n, x);
    Simulator a(cfg), b(cfg);
    a.run();
    b.run();
    EXPECT_EQ(a.stats().instsCommitted, b.stats().instsCommitted);
    EXPECT_EQ(a.stats().instsFetched, b.stats().instsFetched);
    EXPECT_EQ(a.stats().mispredictsResolved,
              b.stats().mispredictsResolved);
}

INSTANTIATE_TEST_SUITE_P(
    EnginePolicyGrid, FullSimGrid,
    ::testing::Values(
        GridParam{EngineKind::GshareBtb, 1, 8},
        GridParam{EngineKind::GshareBtb, 2, 8},
        GridParam{EngineKind::GskewFtb, 1, 16},
        GridParam{EngineKind::GskewFtb, 2, 16},
        GridParam{EngineKind::Stream, 1, 8},
        GridParam{EngineKind::Stream, 1, 16},
        GridParam{EngineKind::Stream, 2, 8}));

TEST(IntegrationTest, SingleThreadSuperscalarMode)
{
    SimConfig cfg = smallConfig("gzip", EngineKind::Stream, 1, 16);
    Simulator sim(cfg);
    sim.run();
    EXPECT_GT(sim.stats().ipc(), 0.5);
    EXPECT_EQ(sim.stats().threadCommitted[1], 0u);
}

TEST(IntegrationTest, EightThreadWorkloadRuns)
{
    SimConfig cfg = smallConfig("8_MIX", EngineKind::Stream, 1, 16);
    Simulator sim(cfg);
    sim.run();
    // All eight threads make progress.
    for (unsigned t = 0; t < 8; ++t)
        EXPECT_GT(sim.stats().threadCommitted[t], 100u)
            << "thread " << t;
}

TEST(IntegrationTest, RoundRobinPolicyRuns)
{
    SimConfig cfg = smallConfig("2_MIX", EngineKind::GshareBtb, 1, 8);
    cfg.core.policy = PolicyKind::RoundRobin;
    Simulator sim(cfg);
    sim.run();
    EXPECT_GT(sim.stats().instsCommitted, 1'000u);
}

TEST(IntegrationTest, MispredictsOccurAndRecover)
{
    SimConfig cfg = smallConfig("2_MIX", EngineKind::GshareBtb, 1, 8);
    Simulator sim(cfg);
    sim.run();
    const SimStats &s = sim.stats();
    EXPECT_GT(s.mispredictsResolved, 50u);
    EXPECT_GT(s.instsSquashed, s.mispredictsResolved);
    EXPECT_GT(s.wrongPathFetched, 0u);
}

TEST(IntegrationTest, MemWorkloadClogInversion)
{
    // The paper's core result: for memory-bound workloads, fetching
    // from two threads lowers commit throughput.
    SimConfig one = smallConfig("2_MEM", EngineKind::GshareBtb, 1, 8);
    SimConfig two = smallConfig("2_MEM", EngineKind::GshareBtb, 2, 8);
    one.measureCycles = two.measureCycles = 120'000;
    Simulator a(one), b(two);
    a.run();
    b.run();
    EXPECT_GT(b.stats().ipfc(), a.stats().ipfc());
    EXPECT_LE(b.stats().ipc(), a.stats().ipc() * 1.10);
}

TEST(IntegrationTest, StreamDeliversLongerFetchBlocksThanBtb)
{
    SimConfig s_cfg = smallConfig("2_ILP", EngineKind::Stream, 1, 16);
    SimConfig g_cfg =
        smallConfig("2_ILP", EngineKind::GshareBtb, 1, 16);
    Simulator s(s_cfg), g(g_cfg);
    s.run();
    g.run();
    EXPECT_GT(s.stats().ipfc(), g.stats().ipfc());
}

TEST(IntegrationTest, StatsResetBetweenPhases)
{
    SimConfig cfg = smallConfig("2_ILP", EngineKind::Stream, 1, 8);
    Simulator sim(cfg);
    sim.run();
    std::uint64_t measured = sim.stats().instsCommitted;
    sim.core().resetStats();
    EXPECT_EQ(sim.stats().instsCommitted, 0u);
    sim.runExtra(10'000);
    EXPECT_GT(sim.stats().instsCommitted, 0u);
    EXPECT_LT(sim.stats().instsCommitted, measured);
}

TEST(IntegrationTest, ConfigMismatchIsFatalChecked)
{
    // numThreads must match the workload size.
    SimConfig cfg = table3Config("2_MIX", EngineKind::Stream, 1, 8);
    cfg.core.numThreads = 3;
    EXPECT_DEATH({ Simulator sim(cfg); }, "numThreads");
}

TEST(IntegrationTest, LongLoadStallPolicyRuns)
{
    SimConfig cfg = smallConfig("2_MEM", EngineKind::Stream, 2, 8);
    cfg.core.longLoadPolicy = LongLoadPolicy::Stall;
    Simulator sim(cfg);
    sim.run();
    EXPECT_GT(sim.stats().longLoadEvents, 10u);
    EXPECT_GT(sim.stats().instsCommitted, 1'000u);
}

TEST(IntegrationTest, LongLoadFlushPolicyKeepsOracleFidelity)
{
    SimConfig cfg = smallConfig("2_MEM", EngineKind::Stream, 2, 8);
    cfg.core.longLoadPolicy = LongLoadPolicy::Flush;
    Simulator sim(cfg);

    std::vector<std::unique_ptr<SyntheticTraceStream>> oracles;
    for (unsigned t = 0; t < 2; ++t)
        oracles.push_back(std::make_unique<SyntheticTraceStream>(
            *sim.workload().images[t]));
    sim.core().commitHook = [&](const DynInst &inst) {
        TraceRecord expect = oracles[inst.tid]->next();
        ASSERT_EQ(inst.pc, expect.pc());
    };
    sim.run();
    EXPECT_GT(sim.stats().longLoadEvents, 10u);
    EXPECT_GT(sim.stats().instsCommitted, 1'000u);
}

TEST(IntegrationTest, FlushPolicyHelpsCloggedDualFetch)
{
    // The extension's purpose: recover part of the 2.X clog loss.
    SimConfig base = smallConfig("2_MEM", EngineKind::Stream, 2, 8);
    SimConfig flush = base;
    flush.core.longLoadPolicy = LongLoadPolicy::Flush;
    base.measureCycles = flush.measureCycles = 120'000;
    Simulator a(base), b(flush);
    a.run();
    b.run();
    EXPECT_GT(b.stats().ipc(), a.stats().ipc() * 0.9);
}

TEST(IntegrationTest, FetchWidthHistogramConsistent)
{
    SimConfig cfg = smallConfig("2_ILP", EngineKind::Stream, 1, 16);
    Simulator sim(cfg);
    sim.run();
    const SimStats &s = sim.stats();
    EXPECT_EQ(s.fetchWidthHist.count(), s.fetchCycles);
    EXPECT_EQ(s.fetchWidthHist.sum(), s.instsFetched);
}

} // namespace
} // namespace smt
