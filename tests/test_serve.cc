/**
 * @file
 * End-to-end tests for the smtsim serve daemon: a SweepServer bound
 * to an ephemeral loopback port, exercised through a minimal HTTP/1.1
 * client. Covers the submit/poll/record/cancel lifecycle, concurrent
 * clients sharing one warmup-snapshot cache (a popular warmup config
 * is simulated exactly once across all requests), record results
 * bit-identical to the single-process runner, and spec errors
 * matching the CLI's messages byte for byte.
 */

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"

using namespace smt;

namespace
{

struct ClientResponse
{
    int status = 0;
    std::string body;
};

/** One HTTP/1.1 request over a fresh loopback connection. */
ClientResponse
request(std::uint16_t port, const std::string &method,
        const std::string &target, const std::string &body = "")
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    EXPECT_EQ(rc, 0) << std::strerror(errno);

    std::ostringstream os;
    os << method << " " << target << " HTTP/1.1\r\n"
       << "Host: 127.0.0.1\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    std::string wire = os.str();
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n =
            ::send(fd, wire.data() + sent, wire.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    ClientResponse resp;
    // "HTTP/1.1 NNN ..." — the status is the second token.
    if (raw.size() > 12)
        resp.status = std::atoi(raw.c_str() + 9);
    std::size_t blank = raw.find("\r\n\r\n");
    if (blank != std::string::npos)
        resp.body = raw.substr(blank + 4);
    return resp;
}

/** Parse a JSON body; ADD_FAILURE (not throw) on malformed output. */
JsonValue
parsed(const ClientResponse &resp)
{
    try {
        return jsonParse(resp.body);
    } catch (const JsonParseError &e) {
        ADD_FAILURE() << e.what() << " in: " << resp.body;
        return JsonValue();
    }
}

/** GET the sweep's status until it reaches a terminal state. */
std::string
pollUntilTerminal(std::uint16_t port, const std::string &id)
{
    for (int i = 0; i < 3000; ++i) {
        auto resp = request(port, "GET", "/v1/sweeps/" + id);
        EXPECT_EQ(resp.status, 200) << resp.body;
        const JsonValue *state = parsed(resp).find("state");
        if (state == nullptr)
            return "";
        const std::string &s = state->asString();
        if (s == "done" || s == "failed" || s == "cancelled")
            return s;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return "timeout";
}

/** The id a 201 submit response names, as decimal text. */
std::string
submittedId(const ClientResponse &resp)
{
    EXPECT_EQ(resp.status, 201) << resp.body;
    const JsonValue *id = parsed(resp).find("id");
    if (id == nullptr)
        return "";
    return std::to_string(id->asUInt64());
}

/**
 * The single-process expectation for a spec: run it through the
 * plain ExperimentRunner and render the same record the daemon
 * serves, then keep only the results array (timing is wall-clock).
 */
std::string
localResultsArray(const std::string &spec_text)
{
    SweepSpec spec = SweepSpec::fromString(spec_text);
    SweepReport report = ExperimentRunner().run(spec.makeRequest());
    std::ostringstream os;
    ExperimentRunner::writeJson(os, spec.benchName(), report.results,
                                {}, &report.timing);
    return jsonParse(os.str()).find("results")->dump();
}

/** The record's results array as rendered text. */
std::string
recordResultsArray(std::uint16_t port, const std::string &id)
{
    auto resp = request(port, "GET", "/v1/sweeps/" + id + "/record");
    EXPECT_EQ(resp.status, 200) << resp.body;
    JsonValue doc = parsed(resp);
    const JsonValue *results = doc.find("results");
    if (results == nullptr)
        return "";
    return results->dump();
}

/** A one-point spec every "popular" client submits verbatim. */
const char *popularSpec = R"({
    "name": "popular",
    "warmupCycles": 3000,
    "measureCycles": 8000,
    "workloads": ["gzip"],
    "engines": ["gshare+BTB"],
    "policies": ["1.8"]
})";

const char *distinctSpec = R"({
    "name": "distinct",
    "warmupCycles": 2000,
    "measureCycles": 6000,
    "workloads": ["2_MIX"],
    "engines": ["stream"],
    "policies": ["1.16"]
})";

} // namespace

// ---------------------------------------------------------------------
// Transport and plumbing
// ---------------------------------------------------------------------

TEST(Serve, HealthzStatusAndUnknownEndpoints)
{
    ServeOptions options;
    options.workers = 2;
    SweepServer server(options);
    ASSERT_GT(server.port(), 0);

    auto health = request(server.port(), "GET", "/v1/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_TRUE(parsed(health).find("ok")->asBool());

    auto status = request(server.port(), "GET", "/v1/status");
    EXPECT_EQ(status.status, 200);
    JsonValue doc = parsed(status);
    EXPECT_EQ(doc.find("workers")->asUInt64(), 2u);
    EXPECT_EQ(doc.find("sweeps")->asUInt64(), 0u);
    ASSERT_NE(doc.find("cache"), nullptr);
    EXPECT_EQ(doc.find("cache")->find("entries")->asUInt64(), 0u);

    EXPECT_EQ(request(server.port(), "GET", "/v1/nope").status, 404);
    EXPECT_EQ(request(server.port(), "POST", "/v1/healthz").status,
              405);
    EXPECT_EQ(request(server.port(), "GET", "/v1/sweeps/99").status,
              404);
    EXPECT_EQ(request(server.port(), "GET", "/v1/sweeps/xyz").status,
              404);
    server.stop();
}

TEST(Serve, ShutdownEndpointRaisesTheFlag)
{
    ServeOptions options;
    options.workers = 1;
    SweepServer server(options);
    EXPECT_FALSE(server.shutdownRequested());
    auto resp = request(server.port(), "POST", "/v1/shutdown");
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(server.shutdownRequested());
    server.stop();
}

// ---------------------------------------------------------------------
// Lifecycle: submit, poll, record
// ---------------------------------------------------------------------

TEST(Serve, SubmitPollAndFetchRecordMatchesSingleProcessRunner)
{
    ServeOptions options;
    options.workers = 2;
    SweepServer server(options);

    auto submit =
        request(server.port(), "POST", "/v1/sweeps", distinctSpec);
    std::string id = submittedId(submit);
    ASSERT_FALSE(id.empty());
    EXPECT_EQ(parsed(submit).find("bench")->asString(), "distinct");

    ASSERT_EQ(pollUntilTerminal(server.port(), id), "done");

    // The daemon's record carries the same schema/bench header and
    // byte-identical results (IPFC, IPC, full stats) as the
    // single-process runner writing the same sweep.
    auto record =
        request(server.port(), "GET", "/v1/sweeps/" + id + "/record");
    ASSERT_EQ(record.status, 200) << record.body;
    JsonValue doc = parsed(record);
    EXPECT_EQ(doc.find("schema")->asString(), "smtfetch-bench-v1");
    EXPECT_EQ(doc.find("bench")->asString(), "distinct");
    ASSERT_NE(doc.find("warmupReuse"), nullptr)
        << "daemon sweeps always account their cache use";
    EXPECT_EQ(doc.find("results")->dump(),
              localResultsArray(distinctSpec));

    // The terminal status reports every point completed.
    auto status =
        parsed(request(server.port(), "GET", "/v1/sweeps/" + id));
    EXPECT_EQ(status.find("completedPoints")->asUInt64(),
              status.find("totalPoints")->asUInt64());
    server.stop();
}

TEST(Serve, SpecErrorsMatchTheCliParserByteForByte)
{
    ServeOptions options;
    options.workers = 1;
    SweepServer server(options);

    // Both frontends run SweepSpec::fromString, so the daemon's 400
    // body carries the exact message the CLI prints.
    const char *bad_specs[] = {
        R"({"name": "x"})",                  // no sweep axes at all
        R"({"name": )",                      // malformed JSON
        R"({"name": "x", "workloads": ["2_MIX"],
            "policies": ["1.8"], "cycleSkip": "fast"})",
    };
    for (const char *text : bad_specs) {
        std::string expected;
        try {
            SweepSpec spec = SweepSpec::fromString(text);
            if (spec.type != SpecType::Grid)
                expected = "spec \"" + spec.name +
                           "\" is not a grid spec";
        } catch (const SpecError &e) {
            expected = e.what();
        }
        ASSERT_FALSE(expected.empty()) << text;

        auto resp =
            request(server.port(), "POST", "/v1/sweeps", text);
        EXPECT_EQ(resp.status, 400) << resp.body;
        EXPECT_EQ(parsed(resp).find("error")->asString(), expected);
    }
    server.stop();
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

TEST(Serve, CancelStopsASweepAndTheRecordStays409)
{
    ServeOptions options;
    options.workers = 2;
    SweepServer server(options);

    // A deliberately heavy sweep so the cancel lands mid-flight.
    const char *heavy = R"({
        "name": "heavy",
        "warmupCycles": 20000,
        "measureCycles": 300000,
        "workloads": ["2_MIX", "2_MEM", "4_MIX"],
        "engines": ["gshare+BTB", "gskew+FTB", "stream"],
        "policies": ["1.8", "2.8"]
    })";
    std::string id = submittedId(
        request(server.port(), "POST", "/v1/sweeps", heavy));
    ASSERT_FALSE(id.empty());

    auto cancel = request(server.port(), "POST",
                          "/v1/sweeps/" + id + "/cancel");
    EXPECT_EQ(cancel.status, 200);
    EXPECT_TRUE(parsed(cancel).find("cancelled")->asBool());

    ASSERT_EQ(pollUntilTerminal(server.port(), id), "cancelled");
    auto status =
        parsed(request(server.port(), "GET", "/v1/sweeps/" + id));
    EXPECT_GT(status.find("cancelledPoints")->asUInt64(), 0u);

    // No record for a cancelled sweep: 409 conflict, not 404/500.
    auto record =
        request(server.port(), "GET", "/v1/sweeps/" + id + "/record");
    EXPECT_EQ(record.status, 409);
    EXPECT_NE(parsed(record).find("error")->asString().find(
                  "cancelled"),
              std::string::npos);
    server.stop();
}

// ---------------------------------------------------------------------
// Concurrent clients sharing the warmup cache
// ---------------------------------------------------------------------

TEST(Serve, ConcurrentClientsWarmAPopularConfigExactlyOnce)
{
    ServeOptions options;
    options.workers = 4;
    SweepServer server(options);

    // Five concurrent clients: four submit the same popular spec,
    // one a distinct spec. Each submits over its own connection and
    // polls its own sweep to completion.
    constexpr int clients = 5;
    std::vector<std::string> ids(clients);
    std::vector<std::string> states(clients);
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            const char *spec =
                c < 4 ? popularSpec : distinctSpec;
            ids[c] = submittedId(
                request(server.port(), "POST", "/v1/sweeps", spec));
            if (!ids[c].empty())
                states[c] = pollUntilTerminal(server.port(), ids[c]);
        });
    }
    for (auto &t : pool)
        t.join();

    std::string popular_expected = localResultsArray(popularSpec);
    std::string distinct_expected = localResultsArray(distinctSpec);

    std::uint64_t warmup_runs = 0;
    std::uint64_t restored_runs = 0;
    for (int c = 0; c < clients; ++c) {
        SCOPED_TRACE("client " + std::to_string(c));
        ASSERT_FALSE(ids[c].empty());
        EXPECT_EQ(states[c], "done");

        // Every client's record is bit-identical to the
        // single-process runner for its spec.
        EXPECT_EQ(recordResultsArray(server.port(), ids[c]),
                  c < 4 ? popular_expected : distinct_expected);

        auto status = parsed(
            request(server.port(), "GET", "/v1/sweeps/" + ids[c]));
        if (c < 4) {
            warmup_runs += status.find("warmupRuns")->asUInt64();
            restored_runs += status.find("restoredRuns")->asUInt64();
        }
    }

    // The popular warmup ran once, ever; the other three clients
    // restored the shared snapshot.
    EXPECT_EQ(warmup_runs, 1u);
    EXPECT_EQ(restored_runs, 3u);

    // The daemon-wide cache statistics agree: two distinct warmup
    // keys were led, three acquisitions hit.
    auto cache =
        *parsed(request(server.port(), "GET", "/v1/status"))
             .find("cache");
    EXPECT_EQ(cache.find("misses")->asUInt64(), 2u);
    EXPECT_EQ(cache.find("insertions")->asUInt64(), 2u);
    EXPECT_EQ(cache.find("hits")->asUInt64(), 3u);
    EXPECT_EQ(cache.find("entries")->asUInt64(), 2u);
    server.stop();
}
