/**
 * @file
 * Tests for the SMT core components: FTQ, fetch policies, rename unit,
 * issue queues and core parameters.
 */

#include <gtest/gtest.h>

#include "core/fetch_policy.hh"
#include "core/ftq.hh"
#include "core/iq.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"

namespace smt
{
namespace
{

BlockPrediction
makeBlock(Addr start, unsigned len)
{
    BlockPrediction b;
    b.start = start;
    b.lengthInsts = len;
    b.nextFetchPc = start + len * instBytes;
    return b;
}

TEST(FtqTest, PushConsumePop)
{
    FetchTargetQueue ftq(2);
    EXPECT_TRUE(ftq.empty());
    ftq.push(makeBlock(0x1000, 6));
    ftq.push(makeBlock(0x2000, 4));
    EXPECT_TRUE(ftq.full());
    EXPECT_EQ(ftq.headFetchPc(), 0x1000u);
    EXPECT_EQ(ftq.headRemaining(), 6u);
    ftq.consume(4); // partial
    EXPECT_EQ(ftq.headFetchPc(), 0x1010u);
    EXPECT_EQ(ftq.headRemaining(), 2u);
    ftq.consume(2); // pops
    EXPECT_EQ(ftq.headFetchPc(), 0x2000u);
    EXPECT_FALSE(ftq.full());
}

TEST(FtqTest, ClearEmpties)
{
    FetchTargetQueue ftq(4);
    ftq.push(makeBlock(0x1000, 8));
    ftq.consume(3);
    ftq.clear();
    EXPECT_TRUE(ftq.empty());
    ftq.push(makeBlock(0x3000, 2));
    EXPECT_EQ(ftq.headFetchPc(), 0x3000u); // offset reset
}

TEST(PolicyTest, IcountOrdersAscending)
{
    IcountPolicy policy;
    std::uint32_t icounts[4] = {30, 5, 17, 5};
    std::vector<ThreadID> order;
    policy.order(0, icounts, 4, order);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.back(), 0); // most loaded last
    EXPECT_EQ(icounts[order[0]], 5u);
    EXPECT_EQ(icounts[order[1]], 5u);
}

TEST(PolicyTest, IcountTieBreakRotates)
{
    IcountPolicy policy;
    std::uint32_t icounts[2] = {7, 7};
    std::vector<ThreadID> o0, o1;
    policy.order(0, icounts, 2, o0);
    policy.order(1, icounts, 2, o1);
    EXPECT_NE(o0[0], o1[0]); // fair under ties
}

TEST(PolicyTest, RoundRobinRotates)
{
    RoundRobinPolicy policy;
    std::uint32_t icounts[3] = {100, 0, 50}; // ignored
    std::vector<ThreadID> order;
    policy.order(7, icounts, 3, order);
    EXPECT_EQ(order[0], 7 % 3);
    EXPECT_EQ(order[1], (7 + 1) % 3);
}

TEST(PolicyTest, Factory)
{
    EXPECT_EQ(makePolicy(PolicyKind::ICount)->kind(),
              PolicyKind::ICount);
    EXPECT_EQ(makePolicy(PolicyKind::RoundRobin)->kind(),
              PolicyKind::RoundRobin);
}

TEST(ParamsTest, PolicyString)
{
    CoreParams p;
    p.policy = PolicyKind::ICount;
    p.fetchThreads = 2;
    p.fetchWidth = 16;
    EXPECT_EQ(p.policyString(), "ICOUNT.2.16");
}

TEST(ParamsTest, ValidateAcceptsTable3)
{
    CoreParams p;
    p.numThreads = 8;
    p.validate(); // must not fatal
    SUCCEED();
}

// --- Rename unit -----------------------------------------------------

StaticInst aluInst;

DynInst
makeAlu(ThreadID tid, RegIndex src, RegIndex dst)
{
    aluInst.src1 = src;
    aluInst.src2 = invalidReg;
    aluInst.dst = dst;
    aluInst.op = OpClass::IntAlu;
    DynInst d;
    d.tid = tid;
    d.si = &aluInst;
    d.op = OpClass::IntAlu;
    return d;
}

TEST(RenameTest, InitialStateAccounting)
{
    RenameUnit ru(384, 384, 2);
    // 2 threads x 32 arch regs mapped and ready.
    EXPECT_EQ(ru.freeIntRegs(), 384u - 64u);
    EXPECT_EQ(ru.freeFpRegs(), 384u - 64u);
}

TEST(RenameTest, RenameAllocatesAndTracksReadiness)
{
    RenameUnit ru(96, 96, 1);
    DynInst d = makeAlu(0, 3, 5);
    ru.rename(d);
    EXPECT_NE(d.physDst, invalidReg);
    EXPECT_NE(d.prevPhysDst, invalidReg);
    EXPECT_TRUE(ru.isReady(d.physSrc1, false)); // arch value ready
    EXPECT_FALSE(ru.isReady(d.physDst, false)); // not produced yet
    ru.markReady(d.physDst, false);
    EXPECT_TRUE(ru.isReady(d.physDst, false));
}

TEST(RenameTest, DependencyThroughRenamedReg)
{
    RenameUnit ru(96, 96, 1);
    DynInst producer = makeAlu(0, 1, 7);
    ru.rename(producer);
    DynInst consumer = makeAlu(0, 7, 8);
    ru.rename(consumer);
    EXPECT_EQ(consumer.physSrc1, producer.physDst);
    EXPECT_FALSE(ru.sourcesReady(consumer));
    ru.markReady(producer.physDst, false);
    EXPECT_TRUE(ru.sourcesReady(consumer));
}

TEST(RenameTest, CommitFreesPreviousMapping)
{
    RenameUnit ru(96, 96, 1);
    unsigned before = ru.freeIntRegs();
    DynInst d = makeAlu(0, 1, 7);
    ru.rename(d);
    EXPECT_EQ(ru.freeIntRegs(), before - 1);
    ru.commit(d);
    EXPECT_EQ(ru.freeIntRegs(), before); // prev phys returned
}

TEST(RenameTest, RollbackRestoresMapAndFreeList)
{
    RenameUnit ru(96, 96, 1);
    unsigned before = ru.freeIntRegs();
    DynInst a = makeAlu(0, 1, 7);
    ru.rename(a);
    DynInst b = makeAlu(0, 1, 7); // same arch dest
    ru.rename(b);
    // Roll back youngest first.
    ru.rollback(b);
    ru.rollback(a);
    EXPECT_EQ(ru.freeIntRegs(), before);
    // The arch mapping is back to the original: a new consumer reads
    // a ready (architectural) register.
    DynInst c = makeAlu(0, 7, 8);
    ru.rename(c);
    EXPECT_TRUE(ru.isReady(c.physSrc1, false));
}

TEST(RenameTest, ExhaustionReported)
{
    RenameUnit ru(34, 34, 1); // 32 arch + 2 spare
    EXPECT_TRUE(ru.canAllocate(false));
    DynInst a = makeAlu(0, 1, 2);
    ru.rename(a);
    DynInst b = makeAlu(0, 1, 3);
    ru.rename(b);
    EXPECT_FALSE(ru.canAllocate(false));
}

// --- Reorder buffer ---------------------------------------------------

TEST(RobTest, SquashLeavesSequenceHoles)
{
    // Regression for the Rob::find invariant: a squash pops the back
    // WITHOUT rewinding the per-thread sequence counter (squashed
    // numbers may still be referenced from the completion wheel, so
    // reuse would alias old events onto new instructions). The next
    // fetched instruction therefore continues past a gap and the live
    // window is NOT contiguous — find() must still resolve live
    // sequence numbers and reject squashed ones.
    Rob rob(1, 16);
    for (int i = 0; i < 3; ++i)
        rob.create(0); // seqs 1..3
    rob.popYoungest(0); // squash seq 3
    rob.popYoungest(0); // squash seq 2
    DynInst &refetched = rob.create(0);
    EXPECT_EQ(refetched.seq, 4u); // continues past the gap
    EXPECT_EQ(rob.size(0), 2u);   // window [1, 4] has a hole
    ASSERT_NE(rob.find(0, 1), nullptr);
    EXPECT_EQ(rob.find(0, 1)->seq, 1u);
    EXPECT_EQ(rob.find(0, 2), nullptr); // squashed
    EXPECT_EQ(rob.find(0, 3), nullptr); // squashed
    EXPECT_EQ(rob.find(0, 4), &refetched);
    EXPECT_EQ(rob.find(0, 5), nullptr); // never created
}

TEST(RobTest, DenseWindowLookupSurvivesRingWraparound)
{
    // Commit+create far past the ring capacity: slots are reused but
    // the dense-window O(1) lookup stays exact at every step.
    Rob rob(1, 8);
    for (unsigned i = 0; i < 100; ++i) {
        rob.create(0);
        if (rob.size(0) == 8)
            rob.popHead(0); // commit the oldest
    }
    InstSeqNum oldest = rob.head(0).seq;
    InstSeqNum youngest = rob.youngest(0).seq;
    EXPECT_EQ(youngest, 100u);
    for (InstSeqNum s = oldest; s <= youngest; ++s) {
        DynInst *inst = rob.find(0, s);
        ASSERT_NE(inst, nullptr) << "seq " << s;
        EXPECT_EQ(inst->seq, s);
    }
    EXPECT_EQ(rob.find(0, oldest - 1), nullptr);
    EXPECT_EQ(rob.find(0, youngest + 1), nullptr);
}

TEST(RobTest, ReusedSlotsComeBackDefaultInitialized)
{
    Rob rob(1, 4);
    DynInst &a = rob.create(0);
    a.pc = 0x1234;
    a.mispredicted = true;
    a.stage = InstStage::Done;
    rob.popHead(0);
    // Four more creates wrap the ring onto a's old slot.
    DynInst *last = nullptr;
    for (int i = 0; i < 4; ++i)
        last = &rob.create(0);
    EXPECT_EQ(last->seq, 5u);
    EXPECT_EQ(last->pc, invalidAddr);
    EXPECT_FALSE(last->mispredicted);
    EXPECT_EQ(last->stage, InstStage::Fetched);
}

TEST(RobTest, PerThreadListsAreIndependent)
{
    Rob rob(2, 8);
    rob.create(0);
    rob.create(1);
    rob.create(1);
    EXPECT_EQ(rob.size(0), 1u);
    EXPECT_EQ(rob.size(1), 2u);
    EXPECT_EQ(rob.youngest(1).seq, 2u); // own sequence space
    EXPECT_EQ(rob.find(1, 2)->tid, 1);
    rob.reset();
    EXPECT_TRUE(rob.empty(0));
    EXPECT_TRUE(rob.empty(1));
    EXPECT_EQ(rob.create(0).seq, 1u); // counters rewound
}

// --- Issue queues -----------------------------------------------------

TEST(IqTest, ClassMapping)
{
    EXPECT_EQ(iqClassFor(OpClass::Load), IqClass::LdSt);
    EXPECT_EQ(iqClassFor(OpClass::Store), IqClass::LdSt);
    EXPECT_EQ(iqClassFor(OpClass::FpAlu), IqClass::Fp);
    EXPECT_EQ(iqClassFor(OpClass::CondBranch), IqClass::Int);
    EXPECT_EQ(iqClassFor(OpClass::IntAlu), IqClass::Int);
}

TEST(IqTest, CapacityPerClass)
{
    IssueQueues iqs(2, 2, 2);
    RenameUnit ru(96, 96, 1);
    std::vector<DynInst> insts(3, makeAlu(0, invalidReg, invalidReg));
    for (auto &d : insts)
        d.si = nullptr; // no operands: always ready
    iqs.insert(&insts[0]);
    iqs.insert(&insts[1]);
    EXPECT_FALSE(iqs.hasSpace(IqClass::Int));
    EXPECT_TRUE(iqs.hasSpace(IqClass::LdSt));
}

TEST(IqTest, PickReadyRespectsFuLimits)
{
    IssueQueues iqs(8, 8, 8);
    RenameUnit ru(96, 96, 1);
    std::vector<DynInst> insts(5);
    for (auto &d : insts) {
        d.tid = 0;
        d.op = OpClass::IntAlu; // no si: sources trivially ready
        iqs.insert(&d);
    }
    std::vector<DynInst *> picked;
    iqs.pickReady(ru, /*int_fus=*/3, 4, 3, picked);
    EXPECT_EQ(picked.size(), 3u);
    EXPECT_EQ(iqs.occupancy(IqClass::Int), 2u);
}

TEST(IqTest, SquashRemovesYounger)
{
    IssueQueues iqs(8, 8, 8);
    std::vector<DynInst> insts(4);
    for (unsigned i = 0; i < 4; ++i) {
        insts[i].tid = i < 2 ? 0 : 1;
        insts[i].seq = 10 + i;
        insts[i].op = OpClass::IntAlu;
        iqs.insert(&insts[i]);
    }
    iqs.squash(0, 10); // removes thread 0 seq 11 only
    EXPECT_EQ(iqs.occupancy(IqClass::Int), 3u);
    EXPECT_EQ(iqs.threadOccupancy(0), 1u);
    EXPECT_EQ(iqs.threadOccupancy(1), 2u);
}

TEST(IqTest, IncrementalOccupancyCountersTrackEveryOperation)
{
    // threadOccupancy/totalOccupancy are incremental counters, not
    // scans; they must agree with the queue contents after every
    // kind of mutation (insert, pick, squash, clear).
    IssueQueues iqs(8, 8, 8);
    RenameUnit ru(96, 96, 2);
    std::vector<DynInst> insts(6);
    for (unsigned i = 0; i < 6; ++i) {
        insts[i].tid = i % 2;
        insts[i].seq = i + 1;
        insts[i].op = i < 4 ? OpClass::IntAlu : OpClass::Load;
        iqs.insert(&insts[i]);
    }
    EXPECT_EQ(iqs.totalOccupancy(), 6u);
    EXPECT_EQ(iqs.threadOccupancy(0), 3u);
    EXPECT_EQ(iqs.threadOccupancy(1), 3u);

    // Pick drains ready instructions from both classes.
    std::vector<DynInst *> picked;
    iqs.pickReady(ru, /*int_fus=*/2, /*ldst_fus=*/1, /*fp_fus=*/1,
                  picked);
    ASSERT_EQ(picked.size(), 3u);
    unsigned t0 = 0;
    for (const DynInst *inst : picked)
        t0 += inst->tid == 0 ? 1 : 0;
    EXPECT_EQ(iqs.totalOccupancy(), 3u);
    EXPECT_EQ(iqs.threadOccupancy(0), 3u - t0);
    EXPECT_EQ(iqs.threadOccupancy(1), t0); // 3 - (3 - t0)

    // Squash everything of thread 1 younger than seq 1.
    iqs.squash(1, 1);
    EXPECT_EQ(iqs.threadOccupancy(1),
              iqs.totalOccupancy() - iqs.threadOccupancy(0));

    iqs.clear();
    EXPECT_EQ(iqs.totalOccupancy(), 0u);
    EXPECT_EQ(iqs.threadOccupancy(0), 0u);
    EXPECT_EQ(iqs.threadOccupancy(1), 0u);
}

TEST(IqTest, AgeOrderPreserved)
{
    IssueQueues iqs(8, 8, 8);
    RenameUnit ru(96, 96, 1);
    std::vector<DynInst> insts(3);
    for (unsigned i = 0; i < 3; ++i) {
        insts[i].tid = 0;
        insts[i].seq = i;
        insts[i].dispatchStamp = i;
        insts[i].op = OpClass::IntAlu;
        iqs.insert(&insts[i]);
    }
    std::vector<DynInst *> picked;
    iqs.pickReady(ru, 2, 4, 3, picked);
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_EQ(picked[0]->seq, 0u);
    EXPECT_EQ(picked[1]->seq, 1u);
}

} // namespace
} // namespace smt
