/**
 * @file
 * Trace-file backend tests: binary and text encode/decode round
 * trips, FileTraceStream replay fidelity against the synthetic
 * source it was captured from (including the end-to-end
 * record→replay determinism oracle), and malformed-input handling —
 * every corrupt file must raise an actionable TraceFileError, never
 * UB.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "workload/profiles.hh"
#include "workload/program_builder.hh"
#include "workload/trace.hh"
#include "workload/trace_file.hh"
#include "workload/workloads.hh"

using namespace smt;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

BenchmarkImage
gzipImage()
{
    return buildImage(profileFor("gzip"), 0x400000, 0x40000000, 0);
}

TraceFileHeader
headerFor(const BenchmarkImage &img, std::uint64_t seed = 0)
{
    TraceFileHeader hdr;
    hdr.benchmark = img.profile.name;
    hdr.seed = seed;
    hdr.codeBase = img.program.base();
    hdr.dataBase = img.dataBase;
    return hdr;
}

/** Record `n` synthetic records of `img` to `path`. */
std::vector<TraceRecord>
recordSynthetic(const BenchmarkImage &img, const std::string &path,
                std::size_t n,
                const TraceWriteOptions &options = TraceWriteOptions{})
{
    SyntheticTraceStream stream(img);
    TraceWriter writer(path, headerFor(img), options);
    stream.setRecorder(&writer);
    std::vector<TraceRecord> consumed;
    for (std::size_t i = 0; i < n; ++i)
        consumed.push_back(stream.next());
    writer.close();
    return consumed;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** EXPECT a TraceFileError whose message contains a fragment. */
template <typename Fn>
void
expectTraceError(Fn fn, const std::string &fragment)
{
    try {
        fn();
        FAIL() << "expected TraceFileError containing \"" << fragment
               << "\"";
    } catch (const TraceFileError &e) {
        EXPECT_NE(std::string(e.what()).find(fragment),
                  std::string::npos)
            << "message: " << e.what();
    }
}

/** A tiny valid binary trace plus its header geometry, for
 *  byte-surgery in the malformed-input tests. */
struct SmallTrace
{
    std::string path;
    std::string bytes;
    std::size_t nameLen = 0;

    /** Offset of the u64 recordCount field. */
    std::size_t countOffset() const { return 10 + nameLen + 24; }

    /** v2 only: offset of the extension header (codec byte). */
    std::size_t extOffset() const { return countOffset() + 8; }

    /** v2 only: offset of the first block frame. */
    std::size_t firstFrameOffset() const { return extOffset() + 22; }
};

SmallTrace
makeSmallTrace(const BenchmarkImage &img, std::size_t records = 4,
               const TraceWriteOptions &options =
                   TraceWriteOptions{.version = traceFormatV1})
{
    SmallTrace t;
    t.path = tempPath("small.trc");
    recordSynthetic(img, t.path, records, options);
    t.bytes = readFile(t.path);
    t.nameLen = img.profile.name.size();
    return t;
}

/** Run one grid point through the request API. */
ExperimentResult
runPoint(Cycle warmup, Cycle measure, std::uint64_t seed,
         GridPoint point)
{
    SweepRequest request;
    request.points = {std::move(point)};
    request.warmupCycles = warmup;
    request.measureCycles = measure;
    request.seed = seed;
    return ExperimentRunner().run(request).results.at(0);
}

} // namespace

TEST(TraceFile, BinaryRoundTripPreservesRecords)
{
    BenchmarkImage img = gzipImage();
    std::string path = tempPath("roundtrip.trc");
    auto originals = recordSynthetic(img, path, 3000);

    TraceReader reader(path);
    EXPECT_EQ(reader.header().benchmark, "gzip");
    EXPECT_EQ(reader.header().version, traceFormatVersion);
    EXPECT_EQ(reader.header().codeBase, img.program.base());
    EXPECT_EQ(reader.header().dataBase, img.dataBase);
    ASSERT_EQ(reader.header().recordCount, originals.size());

    PackedTraceRecord rec;
    for (const TraceRecord &orig : originals) {
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec.pc, orig.si->pc);
        EXPECT_EQ(rec.nextPc, orig.nextPc);
        EXPECT_EQ(rec.kind, orig.si->op);
        EXPECT_EQ(rec.taken, orig.taken);
        EXPECT_EQ(rec.memAddr, orig.memAddr);
        unsigned deps = (orig.si->src1 != invalidReg ? 1 : 0) +
                        (orig.si->src2 != invalidReg ? 1 : 0);
        EXPECT_EQ(rec.depDepth, deps);
    }
    EXPECT_FALSE(reader.next(rec));
}

TEST(TraceFile, RecorderSkipsReplayedRecords)
{
    // Rewound-and-redelivered records must not be captured twice:
    // the file is the generated sequence, not the consumption log.
    BenchmarkImage img = gzipImage();
    std::string path = tempPath("rewind.trc");

    SyntheticTraceStream stream(img);
    TraceWriter writer(path, headerFor(img));
    stream.setRecorder(&writer);
    for (int i = 0; i < 100; ++i)
        stream.next();
    stream.rewindTo(40);
    for (int i = 0; i < 80; ++i)
        stream.next();
    writer.close();

    EXPECT_EQ(writer.recordsWritten(), 120u);
    EXPECT_EQ(readTraceHeader(path).recordCount, 120u);
}

TEST(TraceFile, FileStreamReplaysSyntheticExactly)
{
    BenchmarkImage img = gzipImage();
    std::string path = tempPath("replay.trc");
    auto originals = recordSynthetic(img, path, 2000);

    FileTraceStream replay(img, path);
    for (const TraceRecord &orig : originals) {
        EXPECT_EQ(replay.peekPc(), orig.si->pc);
        TraceRecord rec = replay.next();
        EXPECT_EQ(rec.si, orig.si);
        EXPECT_EQ(rec.taken, orig.taken);
        EXPECT_EQ(rec.nextPc, orig.nextPc);
        EXPECT_EQ(rec.memAddr, orig.memAddr);
    }
    EXPECT_EQ(replay.stats().insts, 2000u);

    // The replay ring works on file streams too.
    replay.rewindTo(1500);
    EXPECT_EQ(replay.next().si, originals[1500].si);
}

TEST(TraceFile, ExhaustedTraceIsActionable)
{
    BenchmarkImage img = gzipImage();
    std::string path = tempPath("short.trc");
    recordSynthetic(img, path, 50);

    FileTraceStream replay(img, path);
    for (int i = 0; i < 50; ++i)
        replay.next();
    expectTraceError([&] { replay.next(); }, "exhausted after 50");
}

TEST(TraceFile, ImageMismatchIsDetected)
{
    BenchmarkImage gzip = gzipImage();
    std::string path = tempPath("mismatch.trc");
    recordSynthetic(gzip, path, 10);

    BenchmarkImage mcf =
        buildImage(profileFor("mcf"), 0x400000, 0x40000000, 0);
    expectTraceError([&] { FileTraceStream s(mcf, path); },
                     "recorded for benchmark \"gzip\"");

    BenchmarkImage shifted =
        buildImage(profileFor("gzip"), 0x500000, 0x40000000, 0);
    expectTraceError([&] { FileTraceStream s(shifted, path); },
                     "address bases");
}

TEST(TraceFile, TextRoundTripPreservesRecords)
{
    BenchmarkImage img = gzipImage();
    std::string path = tempPath("roundtrip.strc");
    auto originals = recordSynthetic(img, path, 200);

    TraceReader reader(path);
    EXPECT_TRUE(reader.header().text);
    ASSERT_EQ(reader.header().recordCount, originals.size());
    PackedTraceRecord rec;
    for (const TraceRecord &orig : originals) {
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec.pc, orig.si->pc);
        EXPECT_EQ(rec.nextPc, orig.nextPc);
        EXPECT_EQ(rec.kind, orig.si->op);
        EXPECT_EQ(rec.taken, orig.taken);
        EXPECT_EQ(rec.memAddr, orig.memAddr);
    }

    // And the text replay drives a FileTraceStream like the binary.
    FileTraceStream replay(img, path);
    for (const TraceRecord &orig : originals)
        EXPECT_EQ(replay.next().si, orig.si);
}

TEST(TraceFile, HandWrittenTextFixtureParses)
{
    std::string path = tempPath("fixture.strc");
    writeFile(path, "strc v1\n"
                    "# hand-written fixture\n"
                    "benchmark gzip\n"
                    "seed 7\n"
                    "codeBase 0x400000\n"
                    "dataBase 0x40000000\n"
                    "r 0x400000 0x400004 alu - 2\n"
                    "r 0x400004 0x400100 br T 1\n"
                    "r 0x400100 0x400104 ld - 1 0x40000040\n");
    TraceReader reader(path);
    EXPECT_EQ(reader.header().benchmark, "gzip");
    EXPECT_EQ(reader.header().seed, 7u);
    EXPECT_EQ(reader.header().recordCount, 3u);

    PackedTraceRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.kind, OpClass::IntAlu);
    EXPECT_EQ(rec.depDepth, 2u);
    EXPECT_EQ(rec.memAddr, invalidAddr);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.kind, OpClass::CondBranch);
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(rec.nextPc, 0x400100u);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.kind, OpClass::Load);
    EXPECT_EQ(rec.memAddr, 0x40000040u);
    EXPECT_FALSE(reader.next(rec));
}

TEST(TraceFile, MalformedBinaryInputsAreActionable)
{
    BenchmarkImage img = gzipImage();
    SmallTrace t = makeSmallTrace(img);

    // Bad magic.
    {
        std::string bad = t.bytes;
        bad[0] = 'X';
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); }, "bad magic");
    }
    // Version skew (v1 and v2 are both readable; v9 is not).
    {
        std::string bad = t.bytes;
        bad[6] = 9;
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); },
                         "format version 9");
    }
    // Truncated fixed prelude.
    {
        writeFile(t.path, t.bytes.substr(0, 7));
        expectTraceError([&] { TraceReader r(t.path); },
                         "truncated header");
    }
    // Truncated inside the name/tail region.
    {
        writeFile(t.path, t.bytes.substr(0, 12));
        expectTraceError([&] { TraceReader r(t.path); },
                         "truncated header");
    }
    // Name length overflowing the header.
    {
        std::string bad = t.bytes;
        bad[8] = static_cast<char>(0xff);
        bad[9] = static_cast<char>(0xff);
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); },
                         "overflows the header");
    }
    // Record count promising more than the file holds.
    {
        std::string bad = t.bytes;
        bad[t.countOffset()] = 99;
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); },
                         "header promises 99 records");
    }
    // Trailing garbage after the last record.
    {
        writeFile(t.path, t.bytes + "xyz");
        expectTraceError([&] { TraceReader r(t.path); },
                         "trailing bytes");
    }
    // Truncated mid-record (count stays, payload shrinks).
    {
        writeFile(t.path, t.bytes.substr(0, t.bytes.size() - 3));
        expectTraceError([&] { TraceReader r(t.path); },
                         "truncated or overflowing count");
    }
    // Invalid op kind nibble in a record's info byte.
    {
        std::string bad = t.bytes;
        bad[t.countOffset() + 8 + 8] = 0x0f;
        writeFile(t.path, bad);
        expectTraceError(
            [&] {
                TraceReader r(t.path);
                PackedTraceRecord rec;
                while (r.next(rec)) {
                }
            },
            "invalid op kind 15");
    }
    // Unknown flag bits (forward-format records).
    {
        std::string bad = t.bytes;
        bad[t.countOffset() + 8 + 8] |= 0x40;
        writeFile(t.path, bad);
        expectTraceError(
            [&] {
                TraceReader r(t.path);
                PackedTraceRecord rec;
                while (r.next(rec)) {
                }
            },
            "unknown flag bits");
    }
    // Nonexistent file.
    expectTraceError([&] { TraceReader r(tempPath("nope.trc")); },
                     "cannot open");
}

TEST(TraceFile, MalformedV2InputsAreActionable)
{
    BenchmarkImage img = gzipImage();
    // Tiny blocks (2 records) with the raw codec keep the byte
    // surgery below position-independent.
    TraceWriteOptions v2raw{.version = traceFormatV2,
                            .codec = traceCodecRaw,
                            .blockRecords = 2};
    SmallTrace t = makeSmallTrace(img, 5, v2raw);

    // Unknown codec byte.
    {
        std::string bad = t.bytes;
        bad[t.extOffset()] = 7;
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); },
                         "unknown record-block codec 7");
    }
    // Zero block size.
    {
        std::string bad = t.bytes;
        for (int i = 0; i < 4; ++i)
            bad[t.extOffset() + 2 + i] = 0;
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); },
                         "out of range");
    }
    // Truncated seek index.
    {
        writeFile(t.path, t.bytes.substr(0, t.bytes.size() - 3));
        expectTraceError([&] { TraceReader r(t.path); },
                         "truncated or corrupt index");
    }
    // Corrupt index magic.
    {
        std::string bad = t.bytes;
        // 3 blocks of 2/2/1 records: the index trails the file.
        const std::size_t idx_magic = bad.size() - (6 + 3 * 16);
        bad[idx_magic] = 'X';
        writeFile(t.path, bad);
        expectTraceError([&] { TraceReader r(t.path); },
                         "bad seek-index magic");
    }
    // Corrupt frame: rawBytes disagreeing with the block's records.
    {
        std::string bad = t.bytes;
        bad[t.firstFrameOffset()] = 1;
        writeFile(t.path, bad);
        expectTraceError(
            [&] {
                TraceReader r(t.path);
                PackedTraceRecord rec;
                while (r.next(rec)) {
                }
            },
            "frame declares");
    }
    // Corrupt deflate payload (when this build has zlib).
    if (traceCodecAvailable(traceCodecDeflate)) {
        TraceWriteOptions v2z{.version = traceFormatV2,
                              .codec = traceCodecDeflate,
                              .blockRecords = 2};
        SmallTrace z = makeSmallTrace(img, 5, v2z);
        std::string bad = z.bytes;
        bad[z.firstFrameOffset() + 8 + 4] ^= 0x5a;
        writeFile(z.path, bad);
        expectTraceError(
            [&] {
                TraceReader r(z.path);
                PackedTraceRecord rec;
                while (r.next(rec)) {
                }
            },
            "does not inflate");
    }
}

TEST(TraceFile, TraceErrorsNameFileAndByteOffset)
{
    // Every malformed-input error must name the file and the byte
    // offset of the offending structure.
    BenchmarkImage img = gzipImage();
    SmallTrace t = makeSmallTrace(img);

    std::string bad = t.bytes;
    bad[t.countOffset()] = 99;
    writeFile(t.path, bad);
    try {
        TraceReader r(t.path);
        FAIL() << "corrupt record count went undetected";
    } catch (const TraceFileError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(t.path), std::string::npos) << msg;
        EXPECT_NE(msg.find("(byte "), std::string::npos) << msg;
    }

    // A mid-payload record error reports the record's own offset.
    bad = t.bytes;
    bad[t.countOffset() + 8 + 2 * 20 + 8] |= 0x40;
    writeFile(t.path, bad);
    try {
        TraceReader r(t.path);
        PackedTraceRecord rec;
        while (r.next(rec)) {
        }
        FAIL() << "corrupt record went undetected";
    } catch (const TraceFileError &e) {
        const std::string msg = e.what();
        const std::size_t rec_off = t.countOffset() + 8 + 2 * 20;
        EXPECT_NE(msg.find(t.path), std::string::npos) << msg;
        EXPECT_NE(msg.find(csprintf("(byte %zu)", rec_off)),
                  std::string::npos)
            << msg;
    }
}

TEST(TraceFile, SkipToEdges)
{
    BenchmarkImage img = gzipImage();

    // 10 records in 2-record blocks (v2) and flat (v1).
    for (int version = 1; version <= 2; ++version) {
        TraceWriteOptions opt;
        opt.version = static_cast<std::uint16_t>(version);
        opt.blockRecords = 2;
        std::string path =
            tempPath(csprintf("skip_v%d.trc", version));
        auto originals = recordSynthetic(img, path, 10, opt);

        TraceReader seq(path);
        std::vector<PackedTraceRecord> expected(10);
        for (auto &r : expected)
            ASSERT_TRUE(seq.next(r));

        TraceReader reader(path);
        PackedTraceRecord rec;

        // Forward into the middle of a block...
        reader.skipTo(5);
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec.pc, expected[5].pc);
        EXPECT_EQ(reader.recordsRead(), 6u);

        // ...backwards to the start...
        reader.skipTo(0);
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec.pc, expected[0].pc);

        // ...landing exactly on a block boundary...
        reader.skipTo(4);
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec.pc, expected[4].pc);

        // ...to the exact end of the trace (clean EOT, no error)...
        reader.skipTo(10);
        EXPECT_FALSE(reader.next(rec));

        // ...and past the end, which is an error naming both counts.
        expectTraceError([&] { reader.skipTo(11); },
                         "cannot skip to record 11");
    }
}

TEST(TraceFile, V1AndV2ReplaysAreBitIdentical)
{
    // The same logical trace stored in either revision (and either
    // codec) must replay to identical simulation results.
    std::string base = tempPath("ident.trc");

    GridPoint record_point{"gzip", EngineKind::GshareBtb, 1, 8};
    record_point.recordPath = base; // written as v2
    runPoint(1000, 4000, 0, record_point);

    // Transcode the v2 capture to v1 (and to v2/raw).
    auto transcode = [&](const std::string &dst,
                         const TraceWriteOptions &opt) {
        TraceReader src(base);
        TraceWriter dst_w(dst, src.header(), opt);
        PackedTraceRecord rec;
        while (src.next(rec))
            dst_w.append(rec);
        dst_w.close();
    };
    std::string v1 = tempPath("ident_v1.trc");
    std::string v2raw = tempPath("ident_v2raw.trc");
    transcode(v1, TraceWriteOptions{.version = traceFormatV1});
    transcode(v2raw, TraceWriteOptions{.version = traceFormatV2,
                                       .codec = traceCodecRaw,
                                       .blockRecords = 7});

    auto replay = [&](const std::string &path) {
        GridPoint p{"trace:" + path, EngineKind::GshareBtb, 1, 8};
        return runPoint(1000, 4000, 0, p);
    };
    ExperimentResult from_v2 = replay(base);
    ExperimentResult from_v1 = replay(v1);
    ExperimentResult from_raw = replay(v2raw);

    EXPECT_GT(from_v2.ipc, 0.0);
    EXPECT_EQ(from_v2.statsJson, from_v1.statsJson);
    EXPECT_EQ(from_v2.statsJson, from_raw.statsJson);
}

TEST(TraceFile, CheckpointRestoreMidBlockInV2Stream)
{
    // Saving a streamed v2 replay mid-block and restoring must
    // reposition via the seek index and continue identically.
    BenchmarkImage img = gzipImage();
    TraceWriteOptions opt;
    opt.blockRecords = 8;
    std::string path = tempPath("midblock.trc");
    recordSynthetic(img, path, 100, opt);

    FileTraceStream reference(img, path);
    FileTraceStream live(img, path);
    for (int i = 0; i < 21; ++i) { // mid way into block 2
        reference.next();
        live.next();
    }

    std::ostringstream os(std::ios::binary);
    {
        CheckpointWriter w(os, "<trace-test>", "k");
        w.begin("stream");
        live.save(w);
        w.end();
        w.finish();
    }

    FileTraceStream restored(img, path);
    std::istringstream is(std::move(os).str(), std::ios::binary);
    CheckpointReader r(is, "<trace-test>");
    r.begin("stream");
    restored.restore(r);
    r.end();
    r.finish();

    for (int i = 21; i < 100; ++i) {
        TraceRecord want = reference.next();
        TraceRecord got = restored.next();
        EXPECT_EQ(got.si, want.si);
        EXPECT_EQ(got.nextPc, want.nextPc);
        EXPECT_EQ(got.memAddr, want.memAddr);
    }
}

TEST(TraceFile, MalformedTextInputsAreActionable)
{
    std::string path = tempPath("bad.strc");
    auto parse = [&](const std::string &text) {
        writeFile(path, text);
        TraceReader r(path);
    };

    expectTraceError([&] { parse(""); }, "empty trace");
    expectTraceError([&] { parse("bogus v1\n"); },
                     "must start with \"strc v1\"");
    expectTraceError([&] { parse("strc v9\nbenchmark gzip\n"); },
                     "unsupported text-trace version");
    expectTraceError([&] { parse("strc v1\n"); },
                     "missing \"benchmark");
    expectTraceError(
        [&] { parse("strc v1\nbenchmark gzip\nfrobnicate 3\n"); },
        "unknown directive \"frobnicate\"");
    expectTraceError(
        [&] { parse("strc v1\nbenchmark gzip\nseed banana\n"); },
        "bad value \"banana\"");
    expectTraceError(
        [&] { parse("strc v1\nbenchmark gzip\nr 0x0 0x4 alu\n"); },
        "a record line is");
    expectTraceError(
        [&] {
            parse("strc v1\nbenchmark gzip\n"
                  "r 0x0 0x4 teleport - 0\n");
        },
        "unknown op kind \"teleport\"");
    expectTraceError(
        [&] {
            parse("strc v1\nbenchmark gzip\nr 0x0 0x4 alu X 0\n");
        },
        "bad taken flag");
    expectTraceError(
        [&] {
            parse("strc v1\nbenchmark gzip\nrecords 5\n"
                  "r 0x0 0x4 alu - 0\n");
        },
        "declares 5 records");
}

TEST(TraceFile, RecordReplayRoundTripIsBitIdentical)
{
    // The permanent determinism oracle: a synthetic fig2-style run
    // captured with the record hook and replayed through
    // FileTraceStream must reproduce IPFC, IPC and the full stats
    // registry bit for bit.
    std::string base = tempPath("oracle.trc");

    GridPoint record_point{"2_MIX", EngineKind::GshareBtb, 1, 8};
    record_point.recordPath = base;
    ExperimentResult recorded = runPoint(2000, 8000, 0, record_point);

    std::string t0 = Simulator::recordPathFor(base, 0, 2);
    std::string t1 = Simulator::recordPathFor(base, 1, 2);
    EXPECT_NE(t0, base);

    GridPoint replay_point{"trace:" + t0 + "," + t1,
                           EngineKind::GshareBtb, 1, 8};
    ExperimentResult replayed = runPoint(2000, 8000, 0, replay_point);

    EXPECT_EQ(recorded.ipfc, replayed.ipfc);
    EXPECT_EQ(recorded.ipc, replayed.ipc);
    EXPECT_EQ(recorded.statsJson, replayed.statsJson);
    EXPECT_GT(recorded.ipc, 0.0);
}

TEST(TraceFile, RecordPadExtendsTraceWithoutChangingStats)
{
    std::string plain = tempPath("pad0.trc");
    std::string padded = tempPath("pad1.trc");

    GridPoint p{"gzip", EngineKind::GshareBtb, 1, 8};
    p.recordPath = plain;
    ExperimentResult a = runPoint(1000, 4000, 0, p);

    p.recordPath = padded;
    p.recordPadCycles = 2000;
    ExperimentResult b = runPoint(1000, 4000, 0, p);

    // Padding adds records for replay headroom...
    EXPECT_GT(readTraceHeader(padded).recordCount,
              readTraceHeader(plain).recordCount);
    // ...but the recorded run reports the unpadded measurement,
    // including the full registry dump (engine.*/mem.* counters must
    // not leak pad-window activity).
    EXPECT_EQ(a.ipfc, b.ipfc);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

TEST(TraceFile, ReRecordingAReplayKeepsTheImageSeed)
{
    // A replayed thread's image is built from its trace header's
    // seed; re-recording that run must stamp the same seed, or the
    // second-generation file names an image it was not captured
    // against.
    std::string first = tempPath("gen1.trc");
    std::string second = tempPath("gen2.trc");

    GridPoint p{"gzip", EngineKind::GshareBtb, 1, 8};
    p.recordPath = first;
    ExperimentResult gen1 = runPoint(500, 2000, 7, p);
    EXPECT_EQ(readTraceHeader(first).seed, 7u);

    GridPoint q{"trace:" + first, EngineKind::GshareBtb, 1, 8};
    q.recordPath = second;
    ExperimentResult gen2 = runPoint(500, 2000, 0, q);
    EXPECT_EQ(readTraceHeader(second).seed, 7u);

    // The second-generation trace replays cleanly and reproduces the
    // original run.
    GridPoint q2{"trace:" + second, EngineKind::GshareBtb, 1, 8};
    ExperimentResult gen3 = runPoint(500, 2000, 0, q2);
    EXPECT_EQ(gen1.ipc, gen2.ipc);
    EXPECT_EQ(gen1.statsJson, gen3.statsJson);
    EXPECT_GT(gen3.ipc, 0.0);
}

TEST(TraceFile, TraceWorkloadSpecHelpers)
{
    BenchmarkImage img = gzipImage();
    std::string path = tempPath("wl.trc");
    recordSynthetic(img, path, 20);

    EXPECT_TRUE(isTraceWorkloadName("trace:" + path));
    EXPECT_FALSE(isTraceWorkloadName("2_MIX"));

    WorkloadSpec spec = traceWorkload("trace:" + path);
    ASSERT_EQ(spec.benchmarks.size(), 1u);
    EXPECT_EQ(spec.benchmarks[0], "gzip");
    ASSERT_EQ(spec.traces.size(), 1u);
    EXPECT_EQ(spec.traces[0], path);

    expectTraceError([] { traceWorkload("trace:"); },
                     "empty trace path");
    expectTraceError([] { traceWorkload("2_MIX"); },
                     "not a trace workload");
}
