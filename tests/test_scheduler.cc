/**
 * @file
 * SweepScheduler tests: fair round-robin interleaving of concurrent
 * sweeps (observed through the global completion sequence numbers),
 * clean mid-sweep cancellation, failure propagation, warmup sharing
 * across jobs through one snapshot cache, and bit-identical results
 * regardless of worker count.
 */

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/scheduler.hh"
#include "sim/snapshot_cache.hh"

using namespace smt;

namespace
{

/** A short n-point request over distinct fetch widths. */
SweepRequest
shortRequest(const std::string &workload, std::size_t n_points,
             Cycle warmup = 1'000, Cycle measure = 3'000)
{
    SweepRequest request;
    request.warmupCycles = warmup;
    request.measureCycles = measure;
    for (std::size_t i = 0; i < n_points; ++i)
        request.points.push_back(GridPoint{
            workload, EngineKind::GshareBtb, 1,
            unsigned(4 + 4 * i)});
    return request;
}

/**
 * A single expensive point that keeps the (sole) worker busy long
 * enough for the test body to stage the run queue behind it.
 */
SweepRequest
plugRequest()
{
    SweepRequest request;
    request.warmupCycles = 2'000;
    request.measureCycles = 150'000;
    request.points = {GridPoint{"2_MEM", EngineKind::GshareBtb, 1, 8}};
    return request;
}

} // namespace

// ---------------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------------

TEST(Scheduler, RoundRobinInterleavesConcurrentSweeps)
{
    // One worker makes the schedule deterministic. While the plug
    // point runs, a 4-point job A and a 2-point job B queue up; the
    // single-token round-robin then strictly alternates their points
    // (A1 B1 A2 B2 A3 A4), so the short job submitted SECOND still
    // finishes first — the fairness property the serve daemon needs
    // so a quick sweep is never stuck behind a long one.
    SweepScheduler scheduler(1);
    auto plug = scheduler.submit(plugRequest(), "plug");
    auto a = scheduler.submit(shortRequest("2_MIX", 4), "long");
    auto b = scheduler.submit(shortRequest("gzip", 2), "short");

    scheduler.wait(plug);
    scheduler.wait(a);
    scheduler.wait(b);

    auto sa = scheduler.status(a);
    auto sb = scheduler.status(b);
    ASSERT_TRUE(sa && sb);
    EXPECT_EQ(sa->state, SweepScheduler::JobState::Done);
    EXPECT_EQ(sb->state, SweepScheduler::JobState::Done);
    EXPECT_EQ(sa->completedPoints, 4u);
    EXPECT_EQ(sb->completedPoints, 2u);

    // Plug = seq 1, then A:2,4,6,7 and B:3,5 by strict alternation.
    EXPECT_EQ(sa->firstDoneSeq, 2u);
    EXPECT_EQ(sb->firstDoneSeq, 3u);
    EXPECT_EQ(sb->lastDoneSeq, 5u);
    EXPECT_EQ(sa->lastDoneSeq, 7u);
    EXPECT_LT(sb->lastDoneSeq, sa->lastDoneSeq);
}

// ---------------------------------------------------------------------
// Lifecycle: empty, cancelled, failed
// ---------------------------------------------------------------------

TEST(Scheduler, EmptyRequestCompletesImmediately)
{
    SweepScheduler scheduler(1);
    SweepRequest request;
    auto id = scheduler.submit(request, "empty");
    SweepReport report = scheduler.wait(id);
    EXPECT_TRUE(report.results.empty());
    EXPECT_EQ(report.timing.gridPoints, 0u);
    auto s = scheduler.status(id);
    ASSERT_TRUE(s);
    EXPECT_EQ(s->state, SweepScheduler::JobState::Done);
}

TEST(Scheduler, CancelSkipsRemainingPointsAndWaitThrows)
{
    // The plug occupies the only worker, so the cancel lands before
    // any of the job's points start: all of them are skipped.
    SweepScheduler scheduler(1);
    auto plug = scheduler.submit(plugRequest(), "plug");
    auto id = scheduler.submit(shortRequest("2_MIX", 3), "doomed");

    EXPECT_TRUE(scheduler.cancel(id));
    EXPECT_FALSE(scheduler.cancel(id)) << "already terminal";
    EXPECT_FALSE(scheduler.cancel(9999)) << "unknown id";

    try {
        scheduler.wait(id);
        FAIL() << "wait() on a cancelled sweep did not throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("cancelled"),
                  std::string::npos)
            << e.what();
    }
    auto s = scheduler.status(id);
    ASSERT_TRUE(s);
    EXPECT_EQ(s->state, SweepScheduler::JobState::Cancelled);
    EXPECT_EQ(s->completedPoints, 0u);
    EXPECT_EQ(s->cancelledPoints, 3u);
    EXPECT_EQ(scheduler.report(id), nullptr);
    scheduler.wait(plug);
}

TEST(Scheduler, FailingPointFailsTheJobAndWaitRethrows)
{
    SweepScheduler scheduler(2);
    SweepRequest request;
    request.warmupCycles = 1'000;
    request.measureCycles = 2'000;
    request.points = {GridPoint{"trace:/nonexistent/missing.trc",
                                EngineKind::GshareBtb, 1, 8}};
    auto id = scheduler.submit(request, "broken");
    try {
        scheduler.wait(id);
        FAIL() << "wait() on a failed sweep did not throw";
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos)
            << e.what();
    }
    auto s = scheduler.status(id);
    ASSERT_TRUE(s);
    EXPECT_EQ(s->state, SweepScheduler::JobState::Failed);
    EXPECT_FALSE(s->error.empty());
    EXPECT_EQ(scheduler.report(id), nullptr);
}

TEST(Scheduler, DuplicateRecordPathsRejectedAtSubmit)
{
    SweepScheduler scheduler(1);
    SweepRequest request = shortRequest("gzip", 2);
    request.points[0].recordPath = ::testing::TempDir() + "sched_dup.trc";
    request.points[1].recordPath = request.points[0].recordPath;
    EXPECT_THROW(scheduler.submit(request), std::invalid_argument);
}

TEST(Scheduler, DerivedRecordPathCollisionsRejectedAtSubmit)
{
    // A multithreaded point records one file per thread ("X.t0.trc",
    // "X.t1.trc", ...). Collisions with those derived names must be
    // caught up front, before any worker opens a file.
    SweepScheduler scheduler(1);
    SweepRequest request = shortRequest("gzip", 2);
    request.points[0].workload = "2_MIX";
    request.points[0].recordPath =
        ::testing::TempDir() + "sched_mix.trc";
    request.points[1].recordPath =
        ::testing::TempDir() + "sched_mix.t1.trc";
    try {
        scheduler.submit(request);
        FAIL() << "derived record-path collision was not rejected";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("sched_mix.t1.trc"),
                  std::string::npos)
            << e.what();
    }

    // Distinct bases derive distinct per-thread files and are fine.
    SweepRequest ok = shortRequest("gzip", 2);
    ok.points[0].workload = "2_MIX";
    ok.points[0].recordPath = ::testing::TempDir() + "sched_ok_a.trc";
    ok.points[1].workload = "4_MIX";
    ok.points[1].recordPath = ::testing::TempDir() + "sched_ok_b.trc";
    auto id = scheduler.submit(ok, "distinct");
    scheduler.wait(id);
    EXPECT_EQ(scheduler.status(id)->state,
              SweepScheduler::JobState::Done);
}

// ---------------------------------------------------------------------
// Cross-job warmup sharing
// ---------------------------------------------------------------------

TEST(Scheduler, SharedCacheWarmsAPopularConfigExactlyOnce)
{
    // Two jobs over the same single configuration share one cache:
    // whichever leads runs the warmup; the other restores. Across
    // both jobs the warmup simulation happens exactly once.
    WarmupSnapshotCache cache;
    SweepScheduler scheduler(2, &cache);

    SweepRequest request = shortRequest("gzip", 1, 2'000, 6'000);
    request.reuseWarmup = true;
    auto first = scheduler.submit(request, "first");
    auto second = scheduler.submit(request, "second");
    SweepReport r1 = scheduler.wait(first);
    SweepReport r2 = scheduler.wait(second);

    EXPECT_EQ(r1.timing.warmupRuns + r2.timing.warmupRuns, 1u);
    EXPECT_EQ(r1.timing.restoredRuns + r2.timing.restoredRuns, 1u);
    EXPECT_EQ(r1.timing.cacheHits + r2.timing.cacheHits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);

    // And sharing is invisible in the results.
    EXPECT_EQ(r1.results[0].ipfc, r2.results[0].ipfc);
    EXPECT_EQ(r1.results[0].ipc, r2.results[0].ipc);
    EXPECT_EQ(r1.results[0].statsJson, r2.results[0].statsJson);
}

// ---------------------------------------------------------------------
// Determinism across pool sizes
// ---------------------------------------------------------------------

TEST(Scheduler, ResultsAreBitIdenticalAcrossWorkerCounts)
{
    SweepRequest request = shortRequest("2_MIX", 4, 2'000, 6'000);

    SweepScheduler serial(1);
    SweepReport one = serial.wait(serial.submit(request));

    SweepScheduler parallel(4);
    SweepReport four = parallel.wait(parallel.submit(request));

    ASSERT_EQ(one.results.size(), four.results.size());
    for (std::size_t i = 0; i < one.results.size(); ++i) {
        EXPECT_EQ(one.results[i].ipfc, four.results[i].ipfc);
        EXPECT_EQ(one.results[i].ipc, four.results[i].ipc);
        EXPECT_EQ(one.results[i].statsJson, four.results[i].statsJson);
    }
}
