/**
 * @file
 * Determinism regression tests for the stage-graph refactor: two
 * simulations with the same seed and configuration must produce
 * bit-identical StatsRegistry dumps (text and JSON), and the stage
 * graph itself must be wired in the documented reverse-pipeline
 * order.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bpred/engine_registry.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"

namespace smt
{
namespace
{

SimConfig
smallConfig(const std::string &wl, EngineKind e, unsigned n, unsigned x,
            std::uint64_t seed)
{
    SimConfig cfg = table3Config(wl, e, n, x);
    cfg.warmupCycles = 5'000;
    cfg.measureCycles = 30'000;
    cfg.seed = seed;
    return cfg;
}

TEST(Determinism, IdenticalSeedsBitIdenticalRegistryDumps)
{
    // Every registered engine, zoo included — a new registration is
    // covered with no test edit.
    for (EngineKind e : allEngines()) {
        SimConfig cfg = smallConfig("2_MIX", e, 2, 8, 42);

        Simulator a(cfg);
        a.run();
        Simulator b(cfg);
        b.run();

        EXPECT_EQ(a.registry().textString(), b.registry().textString())
            << "engine " << engineName(e);
        EXPECT_EQ(a.registry().jsonString(), b.registry().jsonString())
            << "engine " << engineName(e);

        // Sanity: the run did real work.
        EXPECT_GT(a.registry().value("commit.insts"), 1'000.0);
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    Simulator a(smallConfig("2_MIX", EngineKind::Stream, 1, 16, 1));
    a.run();
    Simulator b(smallConfig("2_MIX", EngineKind::Stream, 1, 16, 2));
    b.run();
    EXPECT_NE(a.registry().jsonString(), b.registry().jsonString());
}

TEST(Determinism, RegistryAgreesWithSimStatsView)
{
    Simulator sim(smallConfig("4_MIX", EngineKind::Stream, 2, 8, 7));
    sim.run();
    const SimStats &s = sim.stats();
    const StatsRegistry &reg = sim.registry();

    EXPECT_EQ(reg.value("sim.cycles"),
              static_cast<double>(s.cycles));
    EXPECT_EQ(reg.value("commit.insts"),
              static_cast<double>(s.instsCommitted));
    EXPECT_EQ(reg.value("fetch.insts"),
              static_cast<double>(s.instsFetched));
    EXPECT_DOUBLE_EQ(reg.value("sim.ipc"), s.ipc());
    EXPECT_DOUBLE_EQ(reg.value("sim.ipfc"), s.ipfc());
    for (unsigned t = 0; t < 4; ++t) {
        EXPECT_EQ(reg.value(csprintf("commit.thread%u.insts", t)),
                  static_cast<double>(s.threadCommitted[t]));
    }
}

TEST(StageGraphWiring, NineStagesInReversePipelineOrder)
{
    Simulator sim(smallConfig("2_MIX", EngineKind::GshareBtb, 1, 8, 0));
    const StageGraph &graph = sim.core().stages();
    std::vector<std::string> expect = {
        "execute", "writeback", "commit",  "issue",  "dispatch",
        "rename",  "decode",    "fetch",   "predict"};
    EXPECT_EQ(graph.names(), expect);
    ASSERT_EQ(graph.size(), 9u);
    EXPECT_EQ(graph.at(0).name(), "execute");
    EXPECT_EQ(graph.at(8).name(), "predict");
}

TEST(StageGraphWiring, ResetStatsClearsMeasuredWindow)
{
    Simulator sim(smallConfig("2_MIX", EngineKind::Stream, 1, 8, 3));
    sim.run();
    double committed = sim.registry().value("commit.insts");
    EXPECT_GT(committed, 0.0);
    sim.core().resetStats();
    EXPECT_EQ(sim.registry().value("commit.insts"), 0.0);
    EXPECT_EQ(sim.registry().value("sim.cycles"), 0.0);
    sim.runExtra(5'000);
    EXPECT_GT(sim.registry().value("commit.insts"), 0.0);
    EXPECT_LT(sim.registry().value("commit.insts"), committed);
}

} // namespace
} // namespace smt
