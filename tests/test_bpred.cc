/**
 * @file
 * Tests for the branch-prediction substrate: histories, RAS, direction
 * predictors, BTB/FTB/stream tables and the three fetch engines.
 */

#include <gtest/gtest.h>

#include "bpred/assoc_table.hh"
#include "bpred/engine_registry.hh"
#include "bpred/fetch_engine.hh"
#include "bpred/tage.hh"
#include "workload/program_builder.hh"
#include "workload/trace.hh"

namespace smt
{
namespace
{

TEST(GlobalHistoryTest, ShiftAndRestore)
{
    GlobalHistory h;
    h.shift(true);
    h.shift(false);
    h.shift(true);
    EXPECT_EQ(h.value() & 0x7, 0b101u);
    auto snap = h.snapshot();
    h.shift(true);
    h.restore(snap);
    EXPECT_EQ(h.value() & 0x7, 0b101u);
}

TEST(PathHistoryTest, IndexDependsOnPath)
{
    PathHistory p(16, 2, 4, 10);
    std::uint64_t base = p.index(0x4000, 10);
    p.push(0x1234);
    std::uint64_t after = p.index(0x4000, 10);
    EXPECT_NE(base, after);
}

TEST(PathHistoryTest, SnapshotRestoreExact)
{
    PathHistory p(8, 2, 4, 10);
    for (Addr a = 0; a < 20; ++a)
        p.push(0x1000 + a * 64);
    auto snap = p.snapshot();
    std::uint64_t idx = p.index(0x8888, 12);
    p.push(0xdead);
    EXPECT_NE(p.index(0x8888, 12), idx);
    p.restore(snap);
    EXPECT_EQ(p.index(0x8888, 12), idx);
}

TEST(RasTest, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, SnapshotRepairsSingleDivergence)
{
    ReturnAddressStack ras(16);
    ras.push(0x100);
    ras.push(0x200);
    auto snap = ras.snapshot();
    // Wrong path: pops then pushes garbage.
    ras.pop();
    ras.push(0xbad);
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, DeepRestoreRepairsEntriesBelowTopOfStack)
{
    // Regression: wrong-path pops below the snapshot's TOS followed
    // by a push overwrite entries *deeper* than the snapshot
    // position. A (tos, top-value) checkpoint cannot repair them;
    // the full-stack snapshot must.
    ReturnAddressStack ras(16);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    auto snap = ras.snapshot();

    // Wrong path: three pops walk below the checkpointed TOS, then a
    // push clobbers the slot that held 0x200.
    ras.pop();
    ras.pop();
    ras.pop();
    ras.push(0xbad);

    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, DeepRestoreAcrossWrapAround)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10); // wraps; stack holds 0x30..0x60
    auto snap = ras.snapshot();

    ras.pop();
    ras.pop();
    ras.push(0xdead);
    ras.push(0xbeef);

    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
}

TEST(RasTest, WrapsAtCapacity)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Oldest entries overwritten; newest still correct.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
}

TEST(AssocTableTest, LruEviction)
{
    AssocTable<int> table(8, 2); // 4 sets x 2 ways
    table.insert(0, 1, 11);
    table.insert(0, 2, 22);
    EXPECT_NE(table.lookup(0, 1), nullptr); // touch 1 -> 2 becomes LRU
    table.insert(0, 3, 33);                 // evicts 2
    EXPECT_EQ(table.lookup(0, 2), nullptr);
    EXPECT_NE(table.lookup(0, 1), nullptr);
    EXPECT_EQ(*table.lookup(0, 3), 33);
}

TEST(AssocTableTest, InsertOverwritesSameTag)
{
    AssocTable<int> table(8, 2);
    table.insert(1, 7, 70);
    table.insert(1, 7, 71);
    EXPECT_EQ(*table.lookup(1, 7), 71);
}

TEST(GshareTest, LearnsBiasedBranch)
{
    GsharePredictor pred(1024, 8);
    for (int i = 0; i < 20; ++i)
        pred.update(0x4000, 0xab, true);
    EXPECT_TRUE(pred.predict(0x4000, 0xab));
    for (int i = 0; i < 20; ++i)
        pred.update(0x4000, 0xab, false);
    EXPECT_FALSE(pred.predict(0x4000, 0xab));
}

TEST(GshareTest, LearnsHistoryPattern)
{
    GsharePredictor pred(4096, 8);
    // Branch taken iff history bit 0 set.
    for (int i = 0; i < 200; ++i) {
        std::uint64_t h = i & 0xff;
        pred.update(0x5000, h, h & 1);
    }
    EXPECT_TRUE(pred.predict(0x5000, 0x11));
    EXPECT_FALSE(pred.predict(0x5000, 0x10));
}

TEST(GskewTest, MajorityVoteLearns)
{
    GskewPredictor pred(1024, 8);
    for (int i = 0; i < 30; ++i)
        pred.update(0x4000, 0x3c, true);
    EXPECT_TRUE(pred.predict(0x4000, 0x3c));
}

TEST(GskewTest, ResistsAliasingBetterThanSingleTable)
{
    // Two branches with identical gshare index collide; gskew's
    // skewed banks keep them apart.
    GsharePredictor gshare(256, 8);
    GskewPredictor gskew(256, 8);
    Addr pc_a = 0x1000, pc_b = 0x1000 + 256 * 4; // same gshare index
    std::uint64_t h = 0;
    int gshare_wrong = 0, gskew_wrong = 0;
    for (int i = 0; i < 400; ++i) {
        gshare_wrong += gshare.predict(pc_a, h) != true;
        gskew_wrong += gskew.predict(pc_a, h) != true;
        gshare.update(pc_a, h, true);
        gskew.update(pc_a, h, true);
        gshare_wrong += gshare.predict(pc_b, h) != false;
        gskew_wrong += gskew.predict(pc_b, h) != false;
        gshare.update(pc_b, h, false);
        gskew.update(pc_b, h, false);
    }
    EXPECT_LT(gskew_wrong, gshare_wrong);
}

TEST(BtbTest, StoresTargetsAndTypes)
{
    Btb btb(64, 4);
    EXPECT_EQ(btb.lookup(0x4000), nullptr);
    btb.update(0x4000, 0x5000, OpClass::CallDirect);
    const BtbEntry *e = btb.lookup(0x4000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 0x5000u);
    EXPECT_EQ(e->ctiType, OpClass::CallDirect);
}

TEST(FtbTest, BlockGeometry)
{
    Ftb ftb(64, 4, 32);
    EXPECT_TRUE(ftb.update(0x4000, 10, 0x8000, OpClass::CondBranch));
    const FtbEntry *e = ftb.lookup(0x4000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->endPc(0x4000), 0x4000u + 9 * 4);
    EXPECT_EQ(e->fallThrough(0x4000), 0x4000u + 10 * 4);
    EXPECT_EQ(e->target, 0x8000u);
}

TEST(FtbTest, RejectsOversizeBlocks)
{
    Ftb ftb(64, 4, 16);
    EXPECT_FALSE(ftb.update(0x4000, 17, 0x8000, OpClass::CondBranch));
    EXPECT_FALSE(ftb.update(0x4000, 0, 0x8000, OpClass::CondBranch));
    EXPECT_EQ(ftb.lookup(0x4000), nullptr);
}

TEST(StreamPredTest, LearnsStream)
{
    StreamPredictor sp(64, 4, 256, 4, 64);
    PathHistory path;
    sp.update(0x4000, 12, 0x9000, OpClass::CondBranch, path);
    StreamPrediction p = sp.predict(0x4000, path);
    ASSERT_TRUE(p.hit);
    EXPECT_EQ(p.entry.lengthInsts, 12u);
    EXPECT_EQ(p.entry.target, 0x9000u);
}

TEST(StreamPredTest, HysteresisResistsOneOffChange)
{
    StreamPredictor sp(64, 4, 256, 4, 64);
    PathHistory path;
    for (int i = 0; i < 4; ++i)
        sp.update(0x4000, 12, 0x9000, OpClass::CondBranch, path);
    // One conflicting observation followed by re-confirmation must
    // not displace the established stream.
    sp.update(0x4000, 20, 0xa000, OpClass::CondBranch, path);
    sp.update(0x4000, 12, 0x9000, OpClass::CondBranch, path);
    sp.update(0x4000, 12, 0x9000, OpClass::CondBranch, path);
    StreamPrediction p = sp.predict(0x4000, path);
    ASSERT_TRUE(p.hit);
    EXPECT_EQ(p.entry.target, 0x9000u);
}

TEST(StreamPredTest, PathDisambiguatesInSecondLevel)
{
    StreamPredictor sp(64, 4, 256, 4, 64);
    PathHistory path_a, path_b;
    path_a.push(0x111004);
    path_b.push(0x222028);
    // Same start, two different shapes under two paths; the L1 entry
    // flip-flops but the L2 keeps both.
    for (int i = 0; i < 6; ++i) {
        sp.update(0x4000, 8, 0x9000, OpClass::CondBranch, path_a);
        sp.update(0x4000, 24, 0xb000, OpClass::CondBranch, path_b);
    }
    StreamPrediction pa = sp.predict(0x4000, path_a);
    StreamPrediction pb = sp.predict(0x4000, path_b);
    ASSERT_TRUE(pa.hit);
    ASSERT_TRUE(pb.hit);
    EXPECT_TRUE(pa.fromSecondLevel || pb.fromSecondLevel);
    EXPECT_NE(pa.entry.target, pb.entry.target);
}

TEST(StreamPredTest, RejectsOverlongStreams)
{
    StreamPredictor sp(64, 4, 256, 4, 32);
    PathHistory path;
    EXPECT_FALSE(
        sp.update(0x4000, 33, 0x9000, OpClass::CondBranch, path));
}

// ---------------------------------------------------------------
// Fetch engines against a real synthetic program.
// ---------------------------------------------------------------

class EngineTest : public ::testing::TestWithParam<EngineKind>
{
  protected:
    void
    SetUp() override
    {
        image = std::make_unique<BenchmarkImage>(
            buildImage(profileFor("gzip"), 0x400000, 0x40000000));
        engine = makeEngine(GetParam(), EngineParams{});
        engine->setThreadProgram(0, &image->program);
    }

    std::unique_ptr<BenchmarkImage> image;
    std::unique_ptr<FetchEngine> engine;
};

TEST_P(EngineTest, BlocksChainContiguously)
{
    Addr pc = image->program.entry();
    for (int i = 0; i < 200; ++i) {
        BlockPrediction b = engine->predictBlock(0, pc);
        ASSERT_GT(b.lengthInsts, 0u);
        ASSERT_EQ(b.start, pc);
        ASSERT_NE(b.nextFetchPc, invalidAddr);
        // Not-taken predictions continue sequentially.
        if (!b.predTaken)
            ASSERT_EQ(b.nextFetchPc, b.fallThrough());
        pc = b.nextFetchPc;
    }
}

TEST_P(EngineTest, CheckpointCarriesBlockStart)
{
    Addr pc = image->program.entry();
    BlockPrediction b = engine->predictBlock(0, pc);
    EXPECT_EQ(b.ckpt.blockStart, pc);
}

TEST_P(EngineTest, RecoveryIsIdempotentOnState)
{
    Addr pc = image->program.entry();
    BlockPrediction b = engine->predictBlock(0, pc);
    // Pretend the block end was a mispredicted conditional.
    const StaticInst *si = image->program.lookup(b.endPc());
    engine->recover(0, b.ckpt, si, /*taken=*/true, b.start + 400);
    // The engine must keep producing sane blocks after recovery.
    BlockPrediction after = engine->predictBlock(0, b.start + 400);
    EXPECT_GT(after.lengthInsts, 0u);
}

TEST_P(EngineTest, CommitTrainingImprovesAccuracy)
{
    // Drive the engine along the correct path; count how often the
    // predicted next-fetch address matches the oracle, early vs late.
    SyntheticTraceStream trace(*image);
    auto run_window = [&](int blocks) {
        int correct = 0;
        for (int i = 0; i < blocks; ++i) {
            Addr start = trace.peekPc();
            BlockPrediction b = engine->predictBlock(0, start);
            // Consume the trace to the end of the block, comparing.
            Addr actual_next = invalidAddr;
            unsigned consumed = 0;
            while (consumed < b.lengthInsts) {
                TraceRecord r = trace.next();
                ++consumed;
                actual_next = r.nextPc;
                if (r.si->isControl()) {
                    bool was_end =
                        r.pc() == b.endPc() && b.endsWithCti;
                    engine->commitCti(0, *r.si, r.taken, r.nextPc,
                                      was_end,
                                      /*mispredicted=*/false,
                                      b.ckpt.ghist);
                    if (r.taken)
                        break; // stream ends here architecturally
                }
            }
            if (b.nextFetchPc == actual_next)
                ++correct;
            // Re-sync like a squash would.
            engine->recover(0, b.ckpt, nullptr, false, invalidAddr);
        }
        return correct;
    };
    int early = run_window(300);
    (void)early;
    int late = run_window(300);
    // After training, the engine should predict block exits with
    // reasonable accuracy.
    EXPECT_GT(late, 120) << engine->name();
}

// Every engine the registry knows, including the zoo — a new
// registration is covered here with no test edit. (Default index
// naming: engine names contain '+', which gtest rejects in test
// names.)
INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::ValuesIn(allEngines()));

TEST(EngineFactoryTest, NamesAndKinds)
{
    for (auto kind : allEngines()) {
        auto e = makeEngine(kind, EngineParams{});
        EXPECT_EQ(e->kind(), kind);
        EXPECT_NE(e->name(), nullptr);
    }
}

TEST(EngineFactoryTest, RegistryRoundTripsEveryEngine)
{
    // resolve(name(e)) == e for every registered engine, plus every
    // alias resolves to the same descriptor.
    const EngineRegistry &reg = EngineRegistry::instance();
    for (auto kind : allEngines()) {
        const EngineDescriptor &d = reg.descriptor(kind);
        const EngineDescriptor *found = reg.find(d.name);
        ASSERT_NE(found, nullptr) << d.name;
        EXPECT_EQ(found->kind, kind) << d.name;
        for (const std::string &alias : d.aliases) {
            const EngineDescriptor *via = reg.find(alias);
            ASSERT_NE(via, nullptr) << alias;
            EXPECT_EQ(via->kind, kind) << alias;
        }
    }
    EXPECT_EQ(reg.find("no-such-engine"), nullptr);
}

EngineParams
smallTageParams()
{
    EngineParams p;
    p.tageBimodalEntries = 1024;
    p.tageTables = 4;
    p.tageEntriesPerTable = 512;
    p.tageTagBits = 8;
    p.tageCounterBits = 3;
    p.tageMinHistory = 4;
    p.tageMaxHistory = 32;
    return p;
}

TEST(TagePredictorTest, LearnsBiasedBranch)
{
    TagePredictor tage(smallTageParams());
    for (int i = 0; i < 20; ++i)
        tage.update(0x4000, 0xab, true);
    EXPECT_TRUE(tage.predict(0x4000, 0xab));
    for (int i = 0; i < 40; ++i)
        tage.update(0x4000, 0xab, false);
    EXPECT_FALSE(tage.predict(0x4000, 0xab));
}

TEST(TagePredictorTest, LearnsLongPeriodicPattern)
{
    // Outcome pattern with period 15: a history window of >= 15
    // outcomes uniquely identifies the phase, so TAGE's longer
    // tables (histories up to 32) learn the pattern near-perfectly
    // while a bimodal counter alone cannot (the pattern is mixed
    // taken/not-taken). The history register is maintained the way
    // the fetch engines do: shift in each outcome.
    EngineParams p = smallTageParams();
    p.tageEntriesPerTable = 1024;
    p.tageTagBits = 10;
    TagePredictor tage(p);
    auto outcome = [](int i) { return i % 3 == 0 || i % 5 == 0; };
    std::uint64_t h = 0;
    for (int i = 0; i < 3000; ++i) {
        tage.update(0x5000, h, outcome(i));
        h = (h << 1) | (outcome(i) ? 1 : 0);
    }
    int correct = 0;
    for (int i = 3000; i < 3400; ++i) {
        if (tage.predict(0x5000, h) == outcome(i))
            ++correct;
        tage.update(0x5000, h, outcome(i));
        h = (h << 1) | (outcome(i) ? 1 : 0);
    }
    EXPECT_GT(correct, 350);
}

TEST(TagePredictorTest, GeometricHistoriesAreStrictlyIncreasing)
{
    EngineParams p = smallTageParams();
    p.tageTables = 6;
    p.tageMaxHistory = 64;
    TagePredictor tage(p);
    EXPECT_EQ(tage.numTables(), 6u);
    unsigned prev = 0;
    for (unsigned t = 0; t < tage.numTables(); ++t) {
        unsigned len = tage.historyLength(t);
        EXPECT_GT(len, prev) << "table " << t;
        EXPECT_LE(len, 64u) << "table " << t;
        prev = len;
    }
    EXPECT_EQ(tage.historyLength(0), 4u);
    EXPECT_EQ(tage.historyLength(tage.numTables() - 1), 64u);
}

} // namespace
} // namespace smt
