/**
 * @file
 * JSON parser tests: scalar and nested parsing, writer/parser round
 * trips, unicode escapes, and malformed-input errors with line/column
 * context.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "util/json.hh"

using namespace smt;

TEST(JsonParser, ParsesScalars)
{
    EXPECT_TRUE(jsonParse("null").isNull());
    EXPECT_EQ(jsonParse("true").asBool(), true);
    EXPECT_EQ(jsonParse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(jsonParse("0").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(jsonParse("-17").asNumber(), -17.0);
    EXPECT_DOUBLE_EQ(jsonParse("3.5").asNumber(), 3.5);
    EXPECT_DOUBLE_EQ(jsonParse("1e3").asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(jsonParse("-2.5e-2").asNumber(), -0.025);
    EXPECT_EQ(jsonParse("\"hi\"").asString(), "hi");
    EXPECT_EQ(jsonParse("  \"pad\"  ").asString(), "pad");
}

TEST(JsonParser, ParsesEscapes)
{
    EXPECT_EQ(jsonParse("\"a\\n\\t\\\"b\\\\c\\/\"").asString(),
              "a\n\t\"b\\c/");
    EXPECT_EQ(jsonParse("\"\\u0041\"").asString(), "A");
    // é as a two-byte sequence, and a surrogate pair (U+1F600).
    EXPECT_EQ(jsonParse("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(jsonParse("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParser, ParsesNestedStructures)
{
    JsonValue doc = jsonParse(
        R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.size(), 3u);

    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->size(), 3u);
    EXPECT_DOUBLE_EQ(a->asArray()[0].asNumber(), 1.0);
    EXPECT_EQ(a->asArray()[2].find("b")->asBool(), true);

    EXPECT_TRUE(doc.find("c")->find("d")->isNull());
    EXPECT_EQ(doc.find("e")->asString(), "x");
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, PreservesObjectOrder)
{
    JsonValue doc = jsonParse(R"({"z": 1, "a": 2, "m": 3})");
    const auto &obj = doc.asObject();
    ASSERT_EQ(obj.size(), 3u);
    EXPECT_EQ(obj[0].first, "z");
    EXPECT_EQ(obj[1].first, "a");
    EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonParser, RoundTripsWriterOutput)
{
    std::ostringstream os;
    JsonWriter jw(os, /*indent_step=*/2);
    jw.beginObject();
    jw.field("name", "fig4");
    jw.field("seed", std::uint64_t{42});
    jw.field("ipc", 3.1415926535897931);
    jw.field("ok", true);
    jw.key("grid");
    jw.beginArray();
    jw.value("2_MIX");
    jw.value(std::int64_t{-1});
    jw.endArray();
    jw.endObject();

    JsonValue doc = jsonParse(os.str());
    EXPECT_EQ(doc.find("name")->asString(), "fig4");
    EXPECT_EQ(doc.find("seed")->asUInt64(), 42u);
    EXPECT_DOUBLE_EQ(doc.find("ipc")->asNumber(),
                     3.1415926535897931);
    EXPECT_EQ(doc.find("ok")->asBool(), true);
    EXPECT_EQ(doc.find("grid")->asArray()[0].asString(), "2_MIX");

    // dump() -> parse -> dump() is a fixed point.
    std::string once = doc.dump();
    EXPECT_EQ(jsonParse(once).dump(), once);
    std::string pretty = doc.dump(2);
    EXPECT_EQ(jsonParse(pretty).dump(2), pretty);
}

TEST(JsonParser, NonFiniteDoublesEmitNullAndRoundTrip)
{
    // JSON has no NaN/Infinity literals; a literal "nan"/"inf" token
    // would be rejected by jsonParse itself. The writer must emit
    // null instead so every document it produces stays parseable.
    std::ostringstream os;
    JsonWriter jw(os, /*indent_step=*/0);
    jw.beginObject();
    jw.field("nan", std::nan(""));
    jw.field("posInf", std::numeric_limits<double>::infinity());
    jw.field("negInf", -std::numeric_limits<double>::infinity());
    jw.field("finite", 2.5);
    jw.endObject();

    JsonValue doc = jsonParse(os.str());
    EXPECT_TRUE(doc.find("nan")->isNull());
    EXPECT_TRUE(doc.find("posInf")->isNull());
    EXPECT_TRUE(doc.find("negInf")->isNull());
    EXPECT_DOUBLE_EQ(doc.find("finite")->asNumber(), 2.5);

    std::string once = doc.dump();
    EXPECT_EQ(jsonParse(once).dump(), once);
}

TEST(JsonParser, NonFiniteDoublesInArraysEmitNull)
{
    std::ostringstream os;
    JsonWriter jw(os, /*indent_step=*/0);
    jw.beginArray();
    jw.value(std::numeric_limits<double>::quiet_NaN());
    jw.value(1.0);
    jw.endArray();
    JsonValue doc = jsonParse(os.str());
    EXPECT_TRUE(doc.asArray()[0].isNull());
    EXPECT_DOUBLE_EQ(doc.asArray()[1].asNumber(), 1.0);
}

TEST(JsonParser, RoundTripsEscapedStrings)
{
    JsonValue doc =
        jsonParse(R"(["tab\there", "quote\"", "back\\slash"])");
    std::string once = doc.dump();
    EXPECT_EQ(jsonParse(once).dump(), once);
}

TEST(JsonParser, UInt64Conversions)
{
    EXPECT_EQ(jsonParse("12345").asUInt64(), 12345u);
    EXPECT_EQ(jsonParse("18446744073709549568").asUInt64(),
              18446744073709549568u); // largest double below 2^64
    EXPECT_THROW(jsonParse("3.5").asUInt64(), JsonTypeError);
    EXPECT_THROW(jsonParse("-1").asUInt64(), JsonTypeError);
    // 2^64 itself is out of range, not silently wrapped.
    EXPECT_THROW(jsonParse("18446744073709551616").asUInt64(),
                 JsonTypeError);
}

TEST(JsonParser, TypeMismatchesThrow)
{
    EXPECT_THROW(jsonParse("42").asString(), JsonTypeError);
    EXPECT_THROW(jsonParse("\"x\"").asNumber(), JsonTypeError);
    EXPECT_THROW(jsonParse("[]").asObject(), JsonTypeError);
    EXPECT_THROW(jsonParse("{}").asArray(), JsonTypeError);
}

TEST(JsonParser, RejectsMalformedInput)
{
    const char *bad[] = {
        "",                 // empty input
        "{",                // unterminated object
        "[1, 2",            // unterminated array
        "[1,]",             // trailing comma
        "{\"a\":}",         // missing value
        "{\"a\" 1}",        // missing colon
        "{a: 1}",           // unquoted key
        "tru",              // bad literal
        "truefalse",        // trailing garbage in literal
        "01",               // leading zero
        "1.",               // missing fraction digits
        "1e",               // missing exponent digits
        "\"abc",            // unterminated string
        "\"bad\\q\"",       // bad escape
        "\"\\u12g4\"",      // bad hex digit
        "\"\\ud800\"",      // lone high surrogate
        "\"\\udc00\"",      // lone low surrogate
        "[1] 2",            // trailing characters
        "{\"a\":1} {}",     // two top-level values
        "1e999",            // overflows to infinity
        "-1e999",           // overflows to -infinity
    };
    for (const char *text : bad) {
        EXPECT_THROW(jsonParse(text), JsonParseError)
            << "input: " << text;
    }
}

TEST(JsonParser, ReportsLineAndColumn)
{
    try {
        jsonParse("{\n  \"a\": bogus\n}");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }

    try {
        jsonParse("[1, 2, ]");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_GT(e.column(), 1u);
    }
}

TEST(JsonParser, RejectsExcessiveNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_THROW(jsonParse(deep), JsonParseError);
}
