/**
 * @file
 * Engine-zoo tests: the registry round-trips every registered engine,
 * spec-driven execution covers the whole zoo (TAGE, the oracle modes
 * and the adaptive fetch-rate policy, not just the paper trio), the
 * oracle modes dominate their base engine, and engine-parameter
 * overrides flow from spec JSON through the registry schemas into
 * EngineParams.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bpred/engine_registry.hh"
#include "sim/sweep_spec.hh"

using namespace smt;

namespace
{

/** EXPECT a SpecError whose message contains a fragment. */
template <typename Fn>
void
expectSpecError(Fn fn, const std::string &fragment)
{
    try {
        fn();
        FAIL() << "expected SpecError containing \"" << fragment
               << "\"";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find(fragment),
                  std::string::npos)
            << "message: " << e.what();
    }
}

double
ipcOf(const std::vector<ExperimentResult> &results, EngineKind e)
{
    for (const auto &r : results)
        if (r.engine == e)
            return r.ipc;
    ADD_FAILURE() << "no result for engine " << engineName(e);
    return 0.0;
}

} // namespace

TEST(EngineZoo, RegistryRoundTripsEveryName)
{
    // resolve(name(e)) == e for every registered engine — the
    // registry's canonical names, the spec resolver and the enum all
    // agree, zoo included.
    for (EngineKind e : allEngines())
        EXPECT_EQ(engineKindFromString(engineName(e)), e)
            << engineName(e);
    EXPECT_EQ(allEngines().size(),
              EngineRegistry::instance().all().size());
    // The paper trio is a strict prefix of the zoo.
    ASSERT_EQ(paperEngines().size(), 3u);
    for (std::size_t i = 0; i < paperEngines().size(); ++i)
        EXPECT_EQ(paperEngines()[i], allEngines()[i]);
}

TEST(EngineZoo, UnknownEngineErrorEnumeratesRegistry)
{
    try {
        engineKindFromString("definitely-not-an-engine");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        std::string msg = e.what();
        for (EngineKind k : allEngines())
            EXPECT_NE(msg.find(engineName(k)), std::string::npos)
                << "error does not list " << engineName(k) << ": "
                << msg;
        EXPECT_NE(msg.find("paper"), std::string::npos) << msg;
        EXPECT_NE(msg.find("all"), std::string::npos) << msg;
    }
}

TEST(EngineZoo, SpecRunsEveryRegisteredEngine)
{
    // "engines": "all" expands to the whole registry; every engine
    // must run from a JSON spec and commit real work.
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "zoo_all",
        "warmupCycles": 3000,
        "measureCycles": 12000,
        "seed": 0,
        "workloads": ["2_MIX"],
        "engines": "all",
        "policies": ["2.8"]
    })");
    auto points = spec.expand();
    ASSERT_EQ(points.size(), allEngines().size());
    auto results = runSpec(spec).results;
    ASSERT_EQ(results.size(), allEngines().size());
    for (const auto &r : results) {
        EXPECT_GT(r.ipc, 0.0) << engineName(r.engine);
        EXPECT_GT(r.ipfc, 0.0) << engineName(r.engine);
    }
}

TEST(EngineZoo, OracleModesDominateBaseEngine)
{
    // Both oracle presets idealize one bottleneck of the gshare+BTB
    // base engine, so each must commit at least as many instructions
    // per cycle as the base on the fig2 workload/policy.
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "zoo_oracle",
        "warmupCycles": 5000,
        "measureCycles": 30000,
        "seed": 0,
        "workloads": ["2_MIX"],
        "engines": ["gshare+BTB", "perfect-bp", "perfect-l1i"],
        "policies": ["1.8"]
    })");
    auto results = runSpec(spec).results;
    ASSERT_EQ(results.size(), 3u);
    double base = ipcOf(results, EngineKind::GshareBtb);
    EXPECT_GE(ipcOf(results, EngineKind::PerfectBp), base);
    EXPECT_GE(ipcOf(results, EngineKind::PerfectL1i), base);
}

TEST(EngineZoo, OracleDominatesWithManagedLongLoads)
{
    // At N=2 both threads fetch every cycle, so under the baseline
    // long-load policy (None) a memory-stalled thread clogs the
    // shared IQ/rename pool and only the base engine's misprediction
    // squashes release it — wrong-path execution acts as an
    // accidental throttle and perfect-BP can land BELOW the base
    // engine. That is the very phenomenon the paper's long-load
    // flush policy manages; with it active the oracle dominates
    // again. (Also exercises structural + engine-level overrides in
    // one spec.)
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "zoo_oracle_flush",
        "warmupCycles": 5000,
        "measureCycles": 30000,
        "seed": 0,
        "workloads": ["2_MIX"],
        "engines": ["gshare+BTB", "perfect-bp"],
        "policies": ["2.8"],
        "overrides": {
            "longLoadPolicy": ["flush"],
            "longLoadThreshold": [30]
        }
    })");
    auto results = runSpec(spec).results;
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GE(ipcOf(results, EngineKind::PerfectBp),
              ipcOf(results, EngineKind::GshareBtb));
}

TEST(EngineZoo, EngineParamOverridesFlowThroughSpec)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "zoo_params",
        "workloads": ["2_MIX"],
        "engines": ["tage"],
        "policies": ["1.8"],
        "overrides": { "tageTables": [2, 8] }
    })");
    auto points = spec.expand();
    ASSERT_EQ(points.size(), 2u);
    ASSERT_EQ(points[0].overrides.engineParams.size(), 1u);
    EXPECT_EQ(points[0].overrides.engineParams[0].first,
              "tageTables");
    EXPECT_EQ(points[0].overrides.engineParams[0].second, 2u);
    EXPECT_EQ(points[1].overrides.engineParams[0].second, 8u);
    EXPECT_NE(points[0].overrides.describe().find("tageTables=2"),
              std::string::npos);

    // The override lands in the constructed core's EngineParams.
    CoreParams core;
    points[1].overrides.apply(core);
    EXPECT_EQ(core.engineParams.tageTables, 8u);
}

TEST(EngineZoo, EngineParamOverridesAreValidated)
{
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({
                "name": "x", "workloads": ["2_MIX"],
                "engines": ["tage"], "policies": ["1.8"],
                "overrides": { "tageWombats": [3] }
            })");
        },
        "smtsim --list-engines");
    expectSpecError(
        [] {
            SweepSpec::fromString(R"({
                "name": "x", "workloads": ["2_MIX"],
                "engines": ["tage"], "policies": ["1.8"],
                "overrides": { "tageTagBits": [99] }
            })");
        },
        "out of range");
}

TEST(EngineZoo, AdaptiveAndOracleParamsAreBoolPresets)
{
    // The preset engines flip EngineParams flags the registry
    // declares as bool specs; applying the preset is visible through
    // the schema's get().
    const EngineRegistry &reg = EngineRegistry::instance();
    struct Expect
    {
        EngineKind kind;
        const char *flag;
    };
    for (const auto &[kind, flag] :
         {Expect{EngineKind::PerfectBp, "perfectBp"},
          Expect{EngineKind::PerfectL1i, "perfectIcache"},
          Expect{EngineKind::Adaptive, "adaptiveFetch"}}) {
        const EngineParamSpec *spec = reg.findParam(flag);
        ASSERT_NE(spec, nullptr) << flag;
        EngineParams p;
        EXPECT_EQ(spec->get(p), 0u) << flag;
        applyEnginePreset(kind, p);
        EXPECT_EQ(spec->get(p), 1u) << flag;
    }
}
