/**
 * @file
 * Event-driven cycle-skipping tests: fast-forwarding quiescent spans
 * must be an invisible speed optimization. Skip-on and skip-off runs
 * are bit-identical (IPFC, IPC, and the full stats dump minus the
 * sim.cycleSkip.* bookkeeping) across every committed grid spec; a
 * checkpoint taken inside a skipped span round-trips exactly; split
 * runs land on the same state as one long run; and the wheel scan
 * itself reports the right wake-up cycles.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exec.hh"
#include "mem/hierarchy.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"

using namespace smt;

namespace
{

constexpr const char *skipPrefix = "sim.cycleSkip.";

/**
 * Canonical stats dump with the cycle-skip bookkeeping removed: the
 * sim.cycleSkip.* counters are the only stats allowed to differ
 * between a skipping and a ticking run, so equivalence is asserted on
 * everything else. Verifies the input is an object so a parse drift
 * fails loudly instead of comparing empty strings.
 */
std::string
strippedStats(const std::string &stats_json)
{
    JsonValue doc = jsonParse(stats_json);
    EXPECT_TRUE(doc.isObject()) << stats_json;
    JsonValue::Object kept;
    for (const auto &[key, value] : doc.asObject())
        if (key.rfind(skipPrefix, 0) != 0)
            kept.emplace_back(key, value);
    return JsonValue(std::move(kept)).dump();
}

std::string
configPath(const std::string &name)
{
    return defaultConfigDir() + "/" + name + ".json";
}

/** Spec's grid points minus trace-replay ones (the .trc files the
 *  trace specs reference are produced by smtsim --record, not
 *  committed). */
std::vector<GridPoint>
replayablePoints(const SweepSpec &spec)
{
    std::vector<GridPoint> points;
    for (const auto &p : spec.expand())
        if (p.workload.rfind("trace:", 0) != 0)
            points.push_back(p);
    return points;
}

/**
 * A configuration with long quiescent spans: a memory-bound workload
 * whose long loads stall the thread until the miss returns, leaving
 * nothing for the core to do for tens of cycles at a time.
 */
SimConfig
stallHeavyConfig(Cycle warmup, Cycle measure)
{
    SimConfig cfg =
        table3Config("2_MEM", EngineKind::GshareBtb, 2, 8);
    cfg.core.longLoadPolicy = LongLoadPolicy::Stall;
    cfg.warmupCycles = warmup;
    cfg.measureCycles = measure;
    cfg.seed = 0;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Wheel scan
// ---------------------------------------------------------------------

TEST(CycleSkipWheel, NextEventCycleFindsScheduledCompletions)
{
    CoreParams params;
    params.fpLatency = 100;
    params.intMultLatency = 7;
    MemoryHierarchy memory(params.memory);
    ExecUnit exec(params, memory);

    const Cycle now = 5'000;
    EXPECT_EQ(exec.nextEventCycle(now), now); // empty wheel
    EXPECT_FALSE(exec.pendingAt(now));

    DynInst fp;
    fp.tid = 0;
    fp.seq = 1;
    fp.op = OpClass::FpAlu;
    EXPECT_EQ(exec.issue(fp, now), 100u);

    DynInst mul;
    mul.tid = 1;
    mul.seq = 2;
    mul.op = OpClass::IntMult;
    EXPECT_EQ(exec.issue(mul, now), 7u);

    // Earliest event wins; the scan sees past slots as future ones
    // (modular wheel), so the answer is exact, not wrapped.
    EXPECT_EQ(exec.nextEventCycle(now), now + 7);
    EXPECT_FALSE(exec.pendingAt(now));
    EXPECT_TRUE(exec.pendingAt(now + 7));

    // Drain the multiply; the fp completion becomes the next event.
    std::vector<std::pair<ThreadID, InstSeqNum>> done;
    exec.completionsAt(now + 7, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(exec.nextEventCycle(now + 7), now + 100);

    exec.completionsAt(now + 100, done);
    EXPECT_EQ(exec.nextEventCycle(now + 100), now + 100);
}

// ---------------------------------------------------------------------
// Equivalence across every committed spec
// ---------------------------------------------------------------------

TEST(CycleSkipEquivalence, SkipOnMatchesSkipOffAcrossAllConfigs)
{
    // Shortened windows keep the full cross product affordable; the
    // committed windows are covered by the golden-stats suite, which
    // runs with skipping on.
    const Cycle warmup = 2'000;
    const Cycle measure = 6'000;

    std::uint64_t total_skipped = 0;
    std::size_t specs_checked = 0;

    for (const std::string &name :
         {"ablation_engines", "ablation_flush", "ablation_ftq",
          "ablation_policy", "ablation_predictor_size",
          "fig2_single_thread", "fig4_two_threads", "fig5_ilp",
          "fig6_ilp_wide", "fig7_mem", "fig8_mem_wide",
          "sec33_superscalar", "trace_mix"}) {
        SweepSpec spec = SweepSpec::fromFile(configPath(name));
        ASSERT_EQ(spec.type, SpecType::Grid) << name;

        auto points = replayablePoints(spec);
        ASSERT_FALSE(points.empty()) << name;

        SweepRequest request;
        request.points = points;
        request.warmupCycles = warmup;
        request.measureCycles = measure;
        request.seed = spec.seed;
        request.cycleSkip = true;
        auto on = ExperimentRunner().run(request).results;
        request.cycleSkip = false;
        auto off = ExperimentRunner().run(request).results;
        ASSERT_EQ(on.size(), off.size()) << name;

        for (std::size_t i = 0; i < on.size(); ++i) {
            SCOPED_TRACE(name + " point " + std::to_string(i) + " " +
                         on[i].workload);
            EXPECT_EQ(on[i].ipfc, off[i].ipfc);
            EXPECT_EQ(on[i].ipc, off[i].ipc);
            EXPECT_EQ(strippedStats(on[i].statsJson),
                      strippedStats(off[i].statsJson));
            // A ticking run must never report skip activity.
            EXPECT_EQ(off[i].stats.cyclesSkipped, 0u);
            EXPECT_EQ(off[i].stats.sleepEvents, 0u);
            total_skipped += on[i].stats.cyclesSkipped;
        }
        ++specs_checked;
    }

    EXPECT_EQ(specs_checked, 13u);
    // The optimization must actually fire somewhere in the corpus,
    // or this whole suite is vacuously comparing identical paths.
    EXPECT_GT(total_skipped, 0u);
}

// ---------------------------------------------------------------------
// Checkpoints taken inside a skipped span
// ---------------------------------------------------------------------

TEST(CycleSkipCheckpoint, RoundTripInsideSkippedSpan)
{
    // Find a warmup boundary that lands strictly inside a quiescent
    // span, so the checkpoint captures the core mid-skip. The scan
    // itself runs with skipping enabled; determinism makes the found
    // boundary reproducible for the fresh simulators below.
    const Cycle scan_base = 4'000;
    Cycle boundary = 0;
    {
        Simulator probe(stallHeavyConfig(scan_base, 8'000));
        probe.core().run(scan_base);
        for (Cycle at = scan_base; at < scan_base + 2'000; ++at) {
            if (probe.core().quiescent()) {
                boundary = at;
                break;
            }
            probe.core().run(1);
        }
    }
    ASSERT_GT(boundary, 0u)
        << "no quiescent cycle found; stall-heavy config no longer "
           "stalls?";

    SimConfig cfg = stallHeavyConfig(boundary, 8'000);

    Simulator uninterrupted(cfg);
    uninterrupted.runWarmup();
    EXPECT_TRUE(uninterrupted.core().quiescent());
    std::string snapshot = uninterrupted.saveCheckpointToString();
    uninterrupted.runMeasure();
    EXPECT_GT(uninterrupted.stats().sleepEvents, 0u);
    EXPECT_GT(uninterrupted.stats().cyclesSkipped, 0u);

    // Restore mid-span and measure: bit-identical to never pausing,
    // including the skip counters themselves.
    Simulator restored(cfg);
    restored.restoreCheckpointFromString(snapshot);
    EXPECT_TRUE(restored.core().quiescent());
    restored.runMeasure();
    EXPECT_EQ(restored.measuredStatsJson(),
              uninterrupted.measuredStatsJson());

    // And the whole exercise matches a run that ticks every cycle.
    SimConfig ticking_cfg = cfg;
    ticking_cfg.core.cycleSkip = false;
    Simulator ticking(ticking_cfg);
    ticking.run();
    EXPECT_EQ(ticking.stats().cyclesSkipped, 0u);
    EXPECT_EQ(strippedStats(uninterrupted.measuredStatsJson()),
              strippedStats(ticking.measuredStatsJson()));
}

// ---------------------------------------------------------------------
// Split runs
// ---------------------------------------------------------------------

TEST(CycleSkipSplitRun, SplitRunMatchesSingleRun)
{
    // run(a); run(b) must land on the same state as run(a + b): the
    // window boundary truncates any in-flight skip, so a span cut in
    // two may book extra sleepEvents, but everything architectural —
    // and the skipped-cycle total — is unchanged.
    const Cycle a = 4'321;
    const Cycle b = 8'024;

    SimConfig cfg = stallHeavyConfig(a, b);
    Simulator whole(cfg);
    Simulator split(cfg);

    whole.core().run(a + b);
    split.core().run(a);
    split.core().run(b);

    EXPECT_GT(whole.stats().sleepEvents, 0u);
    EXPECT_EQ(whole.stats().cyclesSkipped,
              split.stats().cyclesSkipped);
    EXPECT_EQ(strippedStats(whole.registry().jsonString()),
              strippedStats(split.registry().jsonString()));
}
