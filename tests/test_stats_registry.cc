/**
 * @file
 * Unit tests for the unified StatsRegistry: counter/scalar/formula/
 * histogram registration, stable text dumps, and JSON emission whose
 * values round-trip back to the registered storage.
 */

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/histogram.hh"
#include "util/json.hh"
#include "util/stats_registry.hh"

namespace smt
{
namespace
{

/**
 * Minimal flat extractor for the registry's compact JSON: returns a
 * map from top-level key to its raw value text. Nested objects/arrays
 * are captured verbatim (brace/bracket matched). Quotes inside string
 * values are handled by jsonEscape's guarantees (no raw quotes).
 */
std::map<std::string, std::string>
flatParse(const std::string &json)
{
    std::map<std::string, std::string> out;
    EXPECT_GE(json.size(), 2u);
    EXPECT_EQ(json.front(), '{');
    std::size_t i = 1;
    while (i < json.size() && json[i] != '}') {
        EXPECT_EQ(json[i], '"') << "at offset " << i;
        std::size_t kend = json.find('"', i + 1);
        EXPECT_NE(kend, std::string::npos);
        if (kend == std::string::npos)
            break;
        std::string key = json.substr(i + 1, kend - i - 1);
        EXPECT_EQ(json[kend + 1], ':');
        if (json[kend + 1] != ':')
            break;
        std::size_t vstart = kend + 2;
        std::size_t j = vstart;
        int depth = 0;
        bool in_str = false;
        for (; j < json.size(); ++j) {
            char c = json[j];
            if (in_str) {
                if (c == '\\')
                    ++j;
                else if (c == '"')
                    in_str = false;
                continue;
            }
            if (c == '"')
                in_str = true;
            else if (c == '{' || c == '[')
                ++depth;
            else if (c == '}' || c == ']') {
                if (depth == 0)
                    break;
                --depth;
            } else if (c == ',' && depth == 0)
                break;
        }
        out[key] = json.substr(vstart, j - vstart);
        i = j;
        if (i < json.size() && json[i] == ',')
            ++i;
    }
    return out;
}

TEST(StatsRegistry, CounterRegistrationAndDump)
{
    StatsRegistry reg;
    std::uint64_t fetched = 0;
    reg.addCounter("fetch.insts", "instructions fetched", &fetched);
    std::uint64_t &owned = reg.addOwnedCounter("core.events", "events");

    fetched = 41;
    owned = 7;

    EXPECT_TRUE(reg.has("fetch.insts"));
    EXPECT_FALSE(reg.has("fetch.nonsense"));
    EXPECT_DOUBLE_EQ(reg.value("fetch.insts"), 41.0);
    EXPECT_DOUBLE_EQ(reg.value("core.events"), 7.0);
    EXPECT_EQ(reg.size(), 2u);

    std::ostringstream oss;
    reg.dump(oss);
    EXPECT_NE(oss.str().find("fetch.insts 41  # instructions fetched"),
              std::string::npos);

    reg.resetOwned();
    EXPECT_DOUBLE_EQ(reg.value("core.events"), 0.0);
    // External storage is untouched by resetOwned.
    EXPECT_DOUBLE_EQ(reg.value("fetch.insts"), 41.0);
}

TEST(StatsRegistry, FormulaEvaluatesAtReadTime)
{
    StatsRegistry reg;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    reg.addCounter("insts", "instructions", &insts);
    reg.addCounter("cycles", "cycles", &cycles);
    reg.addFormula("ipc", "insts per cycle", [&]() {
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) /
                                 static_cast<double>(cycles);
    });

    EXPECT_DOUBLE_EQ(reg.value("ipc"), 0.0);
    insts = 30;
    cycles = 10;
    EXPECT_DOUBLE_EQ(reg.value("ipc"), 3.0);
}

TEST(StatsRegistry, DuplicateNameIsFatal)
{
    StatsRegistry reg;
    std::uint64_t a = 0, b = 0;
    reg.addCounter("x", "first", &a);
    EXPECT_DEATH(reg.addCounter("x", "second", &b), "duplicate");
}

TEST(StatsRegistry, JsonRoundTrip)
{
    StatsRegistry reg;
    std::uint64_t fetched = 123456789;
    double rate = 0.8125;
    Histogram hist(4);
    hist.sample(1);
    hist.sample(3);
    hist.sample(3);

    reg.addCounter("fetch.insts", "instructions fetched", &fetched);
    reg.addScalar("fetch.rate", "delivery rate", &rate);
    reg.addHistogram("fetch.width", "insts per cycle", &hist);
    reg.addFormula("fetch.half", "half the insts",
                   [&]() { return fetched / 2.0; });

    auto flat = flatParse(reg.jsonString());
    ASSERT_EQ(flat.size(), 4u);
    EXPECT_EQ(std::stoull(flat["fetch.insts"]), fetched);
    EXPECT_DOUBLE_EQ(std::stod(flat["fetch.rate"]), rate);
    EXPECT_DOUBLE_EQ(std::stod(flat["fetch.half"]), fetched / 2.0);

    // The histogram sub-object round-trips count/sum/bins.
    auto histFlat = flatParse(flat["fetch.width"]);
    EXPECT_EQ(std::stoull(histFlat["count"]), hist.count());
    EXPECT_EQ(std::stoull(histFlat["sum"]), hist.sum());
    EXPECT_EQ(histFlat["bins"], "[0,1,0,2,0]");
}

TEST(StatsRegistry, JsonIsStableAcrossDumps)
{
    StatsRegistry reg;
    std::uint64_t n = 99;
    reg.addCounter("n", "a counter", &n);
    reg.addFormula("nsq", "n squared",
                   [&]() { return static_cast<double>(n) * n; });
    EXPECT_EQ(reg.jsonString(), reg.jsonString());
    EXPECT_EQ(reg.textString(), reg.textString());
}

TEST(JsonWriter, EscapesAndNests)
{
    std::ostringstream oss;
    JsonWriter jw(oss, 0);
    jw.beginObject();
    jw.field("s", std::string("a\"b\\c\nd"));
    jw.key("arr");
    jw.beginArray();
    jw.value(std::uint64_t{1});
    jw.value(true);
    jw.value("two");
    jw.endArray();
    jw.endObject();
    EXPECT_EQ(oss.str(),
              "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,true,\"two\"]}");
}

} // namespace
} // namespace smt
