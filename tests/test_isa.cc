/**
 * @file
 * Unit tests for the synthetic ISA: op classes, static instructions,
 * basic blocks and the program dictionary.
 */

#include <gtest/gtest.h>

#include "isa/opcode.hh"
#include "isa/program.hh"

namespace smt
{
namespace
{

TEST(OpClassTest, ControlClassification)
{
    EXPECT_TRUE(isControl(OpClass::CondBranch));
    EXPECT_TRUE(isControl(OpClass::Jump));
    EXPECT_TRUE(isControl(OpClass::CallDirect));
    EXPECT_TRUE(isControl(OpClass::Return));
    EXPECT_TRUE(isControl(OpClass::JumpIndirect));
    EXPECT_FALSE(isControl(OpClass::IntAlu));
    EXPECT_FALSE(isControl(OpClass::Load));
}

TEST(OpClassTest, ConditionalOnlyCondBranch)
{
    EXPECT_TRUE(isConditional(OpClass::CondBranch));
    EXPECT_FALSE(isConditional(OpClass::Jump));
    EXPECT_FALSE(isConditional(OpClass::Return));
}

TEST(OpClassTest, UnconditionalControl)
{
    EXPECT_TRUE(isUnconditionalControl(OpClass::Jump));
    EXPECT_TRUE(isUnconditionalControl(OpClass::Return));
    EXPECT_FALSE(isUnconditionalControl(OpClass::CondBranch));
    EXPECT_FALSE(isUnconditionalControl(OpClass::IntAlu));
}

TEST(OpClassTest, MemoryClassification)
{
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::Store));
    EXPECT_FALSE(isMemory(OpClass::IntAlu));
}

TEST(StaticInstTest, PredicatesAndNextPc)
{
    StaticInst si;
    si.pc = 0x1000;
    si.op = OpClass::CallDirect;
    si.target = 0x2000;
    EXPECT_TRUE(si.isControl());
    EXPECT_TRUE(si.isCall());
    EXPECT_FALSE(si.isReturn());
    EXPECT_EQ(si.nextPc(), 0x1004u);
    EXPECT_NE(si.toString().find("call"), std::string::npos);
}

TEST(BasicBlockTest, Geometry)
{
    BasicBlock bb;
    bb.startPC = 0x1000;
    bb.numInsts = 5;
    EXPECT_EQ(bb.endPC(), 0x1014u);
    EXPECT_EQ(bb.lastPC(), 0x1010u);
    EXPECT_TRUE(bb.contains(0x1000));
    EXPECT_TRUE(bb.contains(0x1010));
    EXPECT_FALSE(bb.contains(0x1014));
    EXPECT_FALSE(bb.contains(0xfff));
}

StaticProgram
makeProgram()
{
    StaticProgram prog("test", 0x1000);
    std::vector<StaticInst> b1(3);
    b1[2].op = OpClass::CondBranch;
    prog.appendBlock(b1, 0);
    std::vector<StaticInst> b2(2);
    b2[1].op = OpClass::Return;
    prog.appendBlock(b2, 0);
    prog.finalize(0x1000);
    return prog;
}

TEST(StaticProgramTest, LayoutIsContiguous)
{
    StaticProgram prog = makeProgram();
    EXPECT_EQ(prog.numInsts(), 5u);
    EXPECT_EQ(prog.numBlocks(), 2u);
    EXPECT_EQ(prog.base(), 0x1000u);
    EXPECT_EQ(prog.limit(), 0x1000u + 5 * 4);
    EXPECT_EQ(prog.block(1).startPC, 0x100cu);
}

TEST(StaticProgramTest, DictionaryLookup)
{
    StaticProgram prog = makeProgram();
    const StaticInst *si = prog.lookup(0x1008);
    ASSERT_NE(si, nullptr);
    EXPECT_EQ(si->op, OpClass::CondBranch);
    EXPECT_EQ(si->pc, 0x1008u);
    EXPECT_EQ(prog.lookup(0x0ffc), nullptr);
    EXPECT_EQ(prog.lookup(prog.limit()), nullptr);
    EXPECT_EQ(prog.lookup(0x1002), nullptr); // misaligned
}

TEST(StaticProgramTest, AvgBlockSize)
{
    StaticProgram prog = makeProgram();
    EXPECT_DOUBLE_EQ(prog.avgBlockSize(), 2.5);
}

TEST(StaticProgramTest, FunctionMetadata)
{
    StaticProgram prog = makeProgram();
    EXPECT_EQ(prog.numFunctions(), 1u);
    EXPECT_EQ(prog.function(0).entryPC, 0x1000u);
    EXPECT_EQ(prog.function(0).numBlocks, 2u);
}

} // namespace
} // namespace smt
