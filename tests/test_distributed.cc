/**
 * @file
 * Distributed-sweep tests: the wire codec round trips losslessly, an
 * attach-mode WorkerPool driving in-process WorkerService endpoints
 * produces results bit-identical to the local PointExecutor and
 * ExperimentRunner, the resume journal lets a re-run skip every
 * completed point with zero re-simulated warmups (missing points
 * restore their warmups from the disk snapshot tier), journal/request
 * mismatches fail fast with the --fresh escape hatch spelled out, and
 * spawn-mode worker processes are respawned transparently after a
 * mid-run SIGKILL.
 */

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/types.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/distributed.hh"
#include "serve/http.hh"
#include "serve/worker.hh"
#include "serve/worker_pool.hh"
#include "sim/executor.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/result_codec.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"

using namespace smt;

namespace
{

/** A fresh, empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** An in-process worker endpoint: one attach-mode fleet member. */
struct AttachWorker
{
    WorkerService service;
    HttpServer http;

    explicit AttachWorker(std::size_t cache_bytes = 64u << 20)
        : service(cache_bytes),
          http("127.0.0.1", 0,
               [this](const HttpRequest &req) {
                   auto r = service.handle(req.method, req.target,
                                           req.body);
                   HttpResponse resp;
                   resp.status = r.status;
                   resp.body = std::move(r.body);
                   return resp;
               })
    {
    }

    std::uint16_t port() const { return http.port(); }
};

GridPoint
point(const std::string &workload, unsigned width = 8)
{
    GridPoint p;
    p.workload = workload;
    p.engine = EngineKind::GshareBtb;
    p.fetchThreads = 1;
    p.fetchWidth = width;
    p.policy = PolicyKind::ICount;
    return p;
}

ExecutorParams
smallParams()
{
    return {/*warmupCycles=*/1500, /*measureCycles=*/4000,
            /*seed=*/0, /*cycleSkip=*/true};
}

/** A 4-point request; every point is its own warmup group. */
SweepRequest
smallRequest()
{
    SweepRequest req;
    req.warmupCycles = 1500;
    req.measureCycles = 4000;
    for (const char *wl : {"gzip", "mcf"}) {
        req.points.push_back(point(wl, 8));
        req.points.push_back(point(wl, 16));
    }
    return req;
}

/** The BENCH-record results array, rendered (the bit-identity lens:
 *  timing blocks are wall-clock and legitimately differ). */
std::string
resultsArray(const std::vector<ExperimentResult> &results)
{
    std::ostringstream os;
    ExperimentRunner::writeJson(os, "t", results);
    return jsonParse(os.str()).find("results")->dump();
}

} // namespace

// ---------------------------------------------------------------------
// Wire codec round trips
// ---------------------------------------------------------------------

TEST(ResultCodec, ExecutedResultRoundTripsLosslessly)
{
    ExperimentResult r =
        PointExecutor(smallParams()).execute(point("gzip")).result;
    ASSERT_FALSE(r.statsJson.empty());

    std::string wire = resultToWireJson(r);
    ExperimentResult back = resultFromWireJson(jsonParse(wire));
    EXPECT_EQ(resultToWireJson(back), wire);

    // The BENCH-record rendering must survive the codec byte for
    // byte — this is what keeps merged records diffable against
    // single-process ones.
    std::ostringstream a, b;
    {
        JsonWriter jw(a, 2);
        writeResultJson(jw, r);
    }
    {
        JsonWriter jw(b, 2);
        writeResultJson(jw, back);
    }
    EXPECT_EQ(a.str(), b.str());
}

TEST(ResultCodec, PointRoundTripKeepsOverrides)
{
    GridPoint p = point("2_MIX", 16);
    p.fetchThreads = 2;
    p.policy = PolicyKind::RoundRobin;
    p.engine = EngineKind::Stream;
    p.overrides.ftqEntries = 4;
    p.overrides.longLoadPolicy = LongLoadPolicy::Flush;
    p.overrides.longLoadThreshold = 32;
    p.overrides.predictorShift = 1;

    std::string wire = pointToWireJson(p);
    GridPoint back = pointFromWireJson(jsonParse(wire));
    EXPECT_EQ(back.workload, p.workload);
    EXPECT_EQ(back.engine, p.engine);
    EXPECT_EQ(back.policy, p.policy);
    EXPECT_EQ(back.fetchThreads, p.fetchThreads);
    EXPECT_EQ(back.fetchWidth, p.fetchWidth);
    EXPECT_TRUE(back.overrides == p.overrides);
    EXPECT_EQ(pointToWireJson(back), wire);
}

TEST(ResultCodec, OutcomeRoundTripKeepsTheSideband)
{
    PointOutcome o = PointExecutor(smallParams()).execute(point("mcf"));
    o.warmupSeconds = 0.25;
    o.measureSeconds = 1.5;
    o.ranWarmup = false;
    o.restored = true;
    o.diskHit = true;

    PointOutcome back =
        outcomeFromWireJson(jsonParse(outcomeToWireJson(o)));
    EXPECT_EQ(back.warmupSeconds, o.warmupSeconds);
    EXPECT_EQ(back.measureSeconds, o.measureSeconds);
    EXPECT_FALSE(back.ranWarmup);
    EXPECT_TRUE(back.restored);
    EXPECT_TRUE(back.diskHit);
    EXPECT_EQ(outcomeToWireJson(back), outcomeToWireJson(o));
}

TEST(ResultCodec, ExecutorParamsRoundTrip)
{
    ExecutorParams p{12345, 67890, 42, false};
    std::ostringstream os;
    JsonWriter jw(os, 0);
    writeExecutorParamsJson(jw, p);
    ExecutorParams back = executorParamsFromWireJson(jsonParse(os.str()));
    EXPECT_EQ(back.warmupCycles, p.warmupCycles);
    EXPECT_EQ(back.measureCycles, p.measureCycles);
    EXPECT_EQ(back.seed, p.seed);
    EXPECT_EQ(back.cycleSkip, p.cycleSkip);
}

TEST(ResultCodec, SweepRequestKeyTracksRequestIdentity)
{
    SweepRequest req = smallRequest();
    std::string key = sweepRequestKey(req);
    EXPECT_EQ(key.size(), 16u); // %016llx
    EXPECT_EQ(sweepRequestKey(req), key);

    SweepRequest other = req;
    other.seed = 7;
    EXPECT_NE(sweepRequestKey(other), key);

    other = req;
    other.points[2].fetchWidth = 4;
    EXPECT_NE(sweepRequestKey(other), key);
}

// ---------------------------------------------------------------------
// Spec plumbing
// ---------------------------------------------------------------------

TEST(SweepSpecDistributed, WorkersKeyParses)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "dist",
        "warmupCycles": 1500,
        "measureCycles": 4000,
        "workloads": ["gzip"],
        "engines": ["gshare+BTB"],
        "policies": ["1.8"],
        "distributed": {"workers": 3}
    })");
    EXPECT_EQ(spec.distributedWorkers, 3u);
    // The plain runner path is unaffected by the annotation.
    EXPECT_EQ(spec.makeRequest().points.size(), 1u);
}

TEST(SweepSpecDistributed, BadWorkerCountsAreRejected)
{
    const char *tmpl = R"({
        "name": "dist",
        "warmupCycles": 1500,
        "measureCycles": 4000,
        "workloads": ["gzip"],
        "engines": ["gshare+BTB"],
        "policies": ["1.8"],
        "distributed": {"workers": %s}
    })";
    for (const char *count : {"0", "257"}) {
        char text[512];
        std::snprintf(text, sizeof(text), tmpl, count);
        EXPECT_THROW(SweepSpec::fromString(text), SpecError) << count;
    }
}

// ---------------------------------------------------------------------
// WorkerService and attach-mode WorkerPool
// ---------------------------------------------------------------------

TEST(WorkerService, MalformedPointPayloadIsA400)
{
    WorkerService service;
    auto r = service.handle("POST", "/v1/point", "{\"params\": 3");
    EXPECT_EQ(r.status, 400);
    r = service.handle("POST", "/v1/point", "{\"params\": {}}");
    EXPECT_EQ(r.status, 400) << r.body; // no "point"
    r = service.handle("GET", "/v1/nothing", "");
    EXPECT_EQ(r.status, 404);
    r = service.handle("GET", "/v1/healthz", "");
    EXPECT_EQ(r.status, 200);
}

TEST(WorkerPool, AttachPointMatchesTheLocalExecutor)
{
    AttachWorker worker;
    WorkerPool pool(std::vector<std::uint16_t>{worker.port()});

    GridPoint p = point("gzip");
    PointOutcome remote =
        pool.runPoint(smallParams(), p, "", false);
    PointOutcome local = PointExecutor(smallParams()).execute(p);

    EXPECT_EQ(resultToWireJson(remote.result),
              resultToWireJson(local.result));
    EXPECT_TRUE(remote.direct);
    EXPECT_EQ(pool.respawns(), 0u);
}

TEST(WorkerPool, SimulationErrorIsAnAnswerNotARetry)
{
    // A worker that deterministically rejects every point: the pool
    // must propagate the answer instead of respawning its way
    // through maxAttempts identical failures.
    HttpServer reject("127.0.0.1", 0, [](const HttpRequest &) {
        HttpResponse resp;
        resp.status = 500;
        resp.body = "{\"error\": \"no such trace: zork\"}";
        return resp;
    });
    WorkerPool pool(std::vector<std::uint16_t>{reject.port()});

    try {
        pool.runPoint(smallParams(), point("gzip"), "", false);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("HTTP 500"), std::string::npos) << what;
        EXPECT_NE(what.find("no such trace: zork"),
                  std::string::npos)
            << what;
    }
    EXPECT_EQ(pool.respawns(), 0u);
}

TEST(WorkerPool, DeadAttachEndpointPropagatesTransportError)
{
    // A port with nothing behind it; attach mode never respawns, so
    // the transport failure must surface.
    std::uint16_t port;
    {
        AttachWorker ephemeral;
        port = ephemeral.port();
    } // server gone, port released
    WorkerPool pool(std::vector<std::uint16_t>{port});
    EXPECT_THROW(pool.runPoint(smallParams(), point("gzip"), "",
                               false),
                 ServeError);
    EXPECT_EQ(pool.respawns(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end distributed runs (attach mode)
// ---------------------------------------------------------------------

TEST(Distributed, AttachRunIsBitIdenticalToSingleProcess)
{
    SweepRequest req = smallRequest();
    AttachWorker w1, w2;
    DistributedOptions dopts;
    dopts.attachPorts = {w1.port(), w2.port()};

    DistributedRun run = runDistributed(req, "attach_bit", dopts);
    ASSERT_EQ(run.report.results.size(), req.points.size());
    EXPECT_EQ(run.report.timing.directRuns, req.points.size());
    EXPECT_EQ(run.journaledPoints, 0u);

    SweepReport local = ExperimentRunner().run(req);
    EXPECT_EQ(resultsArray(run.report.results),
              resultsArray(local.results));
}

TEST(Distributed, JournalResumeSkipsEveryCompletedPoint)
{
    std::string ckpt = freshDir("dist_resume");
    SweepRequest req = smallRequest();
    req.checkpointDir = ckpt;

    std::string firstResults;
    {
        AttachWorker w1, w2;
        DistributedOptions dopts;
        dopts.attachPorts = {w1.port(), w2.port()};
        DistributedRun run = runDistributed(req, "resume", dopts);
        EXPECT_EQ(run.journaledPoints, 0u);
        EXPECT_EQ(run.report.timing.warmupRuns, req.points.size());
        EXPECT_EQ(run.report.timing.restoredRuns, 0u);
        firstResults = resultsArray(run.report.results);
    }

    // The journal header describes this sweep.
    std::ifstream in(SweepJournal::pathFor(ckpt, "resume"));
    ASSERT_TRUE(in.good());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    JsonValue doc = jsonParse(header);
    EXPECT_EQ(doc.find("schema")->asString(), "smtfetch-journal-v1");
    EXPECT_EQ(doc.find("bench")->asString(), "resume");
    EXPECT_EQ(doc.find("requestKey")->asString(),
              sweepRequestKey(req));
    EXPECT_EQ(doc.find("points")->asUInt64(), req.points.size());
    EXPECT_EQ(doc.find("warmupGroups")->asUInt64(),
              req.points.size());
    in.close();

    // A full re-run simulates nothing at all: every point is served
    // from the journal, with no fleet behind it.
    AttachWorker w3;
    DistributedOptions dopts;
    dopts.attachPorts = {w3.port()};
    DistributedRun rerun = runDistributed(req, "resume", dopts);
    EXPECT_EQ(rerun.journaledPoints, req.points.size());
    EXPECT_EQ(rerun.report.timing.journaledPoints,
              req.points.size());
    EXPECT_EQ(rerun.report.timing.warmupRuns, 0u);
    EXPECT_EQ(rerun.report.timing.restoredRuns, 0u);
    EXPECT_EQ(resultsArray(rerun.report.results), firstResults);
}

TEST(Distributed, TruncatedJournalRerunsOnlyTheMissingPoint)
{
    std::string ckpt = freshDir("dist_truncate");
    SweepRequest req = smallRequest();
    req.checkpointDir = ckpt;

    std::string firstResults;
    {
        AttachWorker w1, w2;
        DistributedOptions dopts;
        dopts.attachPorts = {w1.port(), w2.port()};
        firstResults = resultsArray(
            runDistributed(req, "truncate", dopts).report.results);
    }

    // Drop the last completed entry — the coordinator was killed
    // after 3 of 4 points.
    std::string path = SweepJournal::pathFor(ckpt, "truncate");
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 1 + req.points.size());
    lines.pop_back();
    {
        std::ofstream out(path, std::ios::trunc);
        for (const std::string &line : lines)
            out << line << '\n';
    }

    // Fresh workers (empty in-memory caches): the one missing point
    // must restore its warmup from the disk snapshot tier, so the
    // resumed run re-simulates zero warmups.
    AttachWorker w1, w2;
    DistributedOptions dopts;
    dopts.attachPorts = {w1.port(), w2.port()};
    DistributedRun rerun = runDistributed(req, "truncate", dopts);
    EXPECT_EQ(rerun.journaledPoints, req.points.size() - 1);
    EXPECT_EQ(rerun.report.timing.journaledPoints,
              req.points.size() - 1);
    EXPECT_EQ(rerun.report.timing.warmupRuns, 0u);
    EXPECT_EQ(rerun.report.timing.restoredRuns, 1u);
    EXPECT_EQ(rerun.report.timing.cacheDiskHits, 1u);
    EXPECT_EQ(resultsArray(rerun.report.results), firstResults);
}

TEST(Distributed, TornFinalJournalLineIsTolerated)
{
    std::string ckpt = freshDir("dist_torn");
    SweepRequest req = smallRequest();
    req.checkpointDir = ckpt;
    {
        AttachWorker w1, w2;
        DistributedOptions dopts;
        dopts.attachPorts = {w1.port(), w2.port()};
        runDistributed(req, "torn", dopts);
    }

    // SIGKILL mid-append: the final line stops mid-document.
    std::string path = SweepJournal::pathFor(ckpt, "torn");
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"point\": 1, \"outc";
    }

    AttachWorker w;
    DistributedOptions dopts;
    dopts.attachPorts = {w.port()};
    DistributedRun rerun = runDistributed(req, "torn", dopts);
    EXPECT_EQ(rerun.journaledPoints, req.points.size());
    EXPECT_EQ(rerun.report.timing.warmupRuns, 0u);
}

TEST(Distributed, RequestKeyMismatchNamesTheFreshEscapeHatch)
{
    std::string ckpt = freshDir("dist_mismatch");
    SweepRequest req = smallRequest();
    req.checkpointDir = ckpt;
    {
        AttachWorker w1, w2;
        DistributedOptions dopts;
        dopts.attachPorts = {w1.port(), w2.port()};
        runDistributed(req, "mismatch", dopts);
    }

    // Same bench + checkpoint dir, different sweep identity.
    SweepRequest other = req;
    other.seed = 99;
    AttachWorker w;
    DistributedOptions dopts;
    dopts.attachPorts = {w.port()};
    try {
        runDistributed(other, "mismatch", dopts);
        FAIL() << "expected JournalError";
    } catch (const JournalError &e) {
        EXPECT_NE(std::string(e.what()).find("--fresh"),
                  std::string::npos)
            << e.what();
    }

    // --fresh discards the stale journal and runs the new sweep.
    dopts.fresh = true;
    AttachWorker w1, w2;
    dopts.attachPorts = {w1.port(), w2.port()};
    DistributedRun run = runDistributed(other, "mismatch", dopts);
    EXPECT_EQ(run.journaledPoints, 0u);
    EXPECT_EQ(run.report.results.size(), other.points.size());
}

TEST(Distributed, WorkerRejectionFailsTheJob)
{
    HttpServer reject("127.0.0.1", 0, [](const HttpRequest &) {
        HttpResponse resp;
        resp.status = 500;
        resp.body = "{\"error\": \"config rejected\"}";
        return resp;
    });
    SweepRequest req = smallRequest();
    DistributedOptions dopts;
    dopts.attachPorts = {reject.port()};
    try {
        runDistributed(req, "broken", dopts);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("config rejected"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Spawn mode (real worker processes)
// ---------------------------------------------------------------------

TEST(WorkerPoolSpawn, MissingExecutableFailsFast)
{
    WorkerPool::Options po;
    po.workers = 1;
    po.exePath = "/no/such/smtsim_binary";
    EXPECT_THROW(WorkerPool pool(po), ServeError);
}

#ifdef SMTSIM_BIN

namespace
{

/** Direct children of this process whose command line says
 *  "worker" — the spawned `smtsim worker` fleet. */
std::vector<pid_t>
childWorkerPids()
{
    std::vector<pid_t> pids;
    DIR *proc = ::opendir("/proc");
    if (proc == nullptr)
        return pids;
    while (dirent *entry = ::readdir(proc)) {
        char *end = nullptr;
        long pid = std::strtol(entry->d_name, &end, 10);
        if (end == entry->d_name || *end != '\0' || pid <= 0)
            continue;

        // /proc/N/stat: "pid (comm) state ppid ..." — the ppid is
        // the second field after the LAST ')' (comm may contain
        // anything).
        std::ifstream stat("/proc/" + std::string(entry->d_name) +
                           "/stat");
        std::string text((std::istreambuf_iterator<char>(stat)),
                         std::istreambuf_iterator<char>());
        std::size_t paren = text.rfind(')');
        if (paren == std::string::npos)
            continue;
        std::istringstream rest(text.substr(paren + 1));
        char state = 0;
        long ppid = 0;
        if (!(rest >> state >> ppid) || ppid != ::getpid())
            continue;

        std::ifstream cmd("/proc/" + std::string(entry->d_name) +
                          "/cmdline");
        std::string cmdline((std::istreambuf_iterator<char>(cmd)),
                            std::istreambuf_iterator<char>());
        if (cmdline.find("worker") != std::string::npos)
            pids.push_back(static_cast<pid_t>(pid));
    }
    ::closedir(proc);
    return pids;
}

} // namespace

TEST(WorkerPoolSpawn, KilledWorkerIsRespawnedTransparently)
{
    WorkerPool::Options po;
    po.workers = 1;
    po.exePath = SMTSIM_BIN;
    po.cacheMaxBytes = 32u << 20;
    WorkerPool pool(po);

    GridPoint p = point("gzip");
    PointOutcome first = pool.runPoint(smallParams(), p, "", false);
    EXPECT_EQ(pool.respawns(), 0u);

    // Cross-process determinism: the spawned worker's answer is
    // bit-identical to the local executor's.
    PointOutcome local = PointExecutor(smallParams()).execute(p);
    EXPECT_EQ(resultToWireJson(first.result),
              resultToWireJson(local.result));

    // SIGKILL the worker between points; the next point must be
    // served by a respawned replacement, not fail.
    std::vector<pid_t> pids = childWorkerPids();
    ASSERT_EQ(pids.size(), 1u);
    ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    PointOutcome second =
        pool.runPoint(smallParams(), point("mcf"), "", false);
    EXPECT_GT(second.result.measureCycles, 0u);
    EXPECT_EQ(pool.respawns(), 1u);
}

#endif // SMTSIM_BIN
