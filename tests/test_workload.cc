/**
 * @file
 * Tests for the synthetic workload substrate: branch/memory behaviour
 * models, benchmark profiles, program builder and trace streams.
 * Includes the Table 1 calibration property (dynamic basic-block size
 * within tolerance for all 12 SPECint2000 models).
 */

#include <set>

#include <gtest/gtest.h>

#include "workload/branch_model.hh"
#include "workload/memory_model.hh"
#include "workload/profiles.hh"
#include "workload/program_builder.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

namespace smt
{
namespace
{

TEST(BranchModelTest, BiasedRateMatches)
{
    BranchModel m = BranchModel::makeBiased(0.9, 123);
    int taken = 0;
    for (int i = 0; i < 20000; ++i)
        taken += m.next(0, 0);
    EXPECT_NEAR(taken / 20000.0, 0.9, 0.02);
    EXPECT_NEAR(m.expectedTakenRate(), 0.9, 1e-6);
}

TEST(BranchModelTest, LoopPattern)
{
    BranchModel m = BranchModel::makeLoop(4);
    // taken, taken, taken, not-taken, repeating
    for (int rep = 0; rep < 5; ++rep) {
        EXPECT_TRUE(m.next(0, 0));
        EXPECT_TRUE(m.next(0, 0));
        EXPECT_TRUE(m.next(0, 0));
        EXPECT_FALSE(m.next(0, 0));
    }
    EXPECT_DOUBLE_EQ(m.expectedTakenRate(), 0.75);
}

TEST(BranchModelTest, CorrelatedIsDeterministicInHistory)
{
    BranchModel a = BranchModel::makeCorrelated(4, 99);
    BranchModel b = BranchModel::makeCorrelated(4, 99);
    for (std::uint64_t h = 0; h < 64; ++h)
        EXPECT_EQ(a.next(h, 0), b.next(h, 0));
}

TEST(BranchModelTest, CorrelatedIgnoresBitsBeyondWindow)
{
    BranchModel a = BranchModel::makeCorrelated(3, 7);
    BranchModel b = BranchModel::makeCorrelated(3, 7);
    // Same low 3 bits, different high bits: same outcome.
    EXPECT_EQ(a.next(0b101, 0), b.next(0b11111101, 0));
}

TEST(BranchModelTest, PathCorrelatedDeterministic)
{
    BranchModel a = BranchModel::makeCorrelatedPath(1, 5);
    BranchModel b = BranchModel::makeCorrelatedPath(1, 5);
    for (std::uint64_t sig = 0; sig < 32; ++sig)
        EXPECT_EQ(a.next(0, sig), b.next(0, sig));
}

TEST(BranchModelTest, RandomIsFair)
{
    BranchModel m = BranchModel::makeRandom(42);
    int taken = 0;
    for (int i = 0; i < 20000; ++i)
        taken += m.next(0, 0);
    EXPECT_NEAR(taken / 20000.0, 0.5, 0.02);
}

TEST(IndirectModelTest, DominantTarget)
{
    IndirectModel m({0x100, 0x200, 0x300}, 0.8, 7);
    int dominant = 0;
    std::set<Addr> seen;
    for (int i = 0; i < 10000; ++i) {
        Addr t = m.next();
        seen.insert(t);
        dominant += t == 0x100;
    }
    EXPECT_NEAR(dominant / 10000.0, 0.8, 0.03);
    EXPECT_GE(seen.size(), 2u);
}

TEST(MemoryModelTest, StrideWalksRegion)
{
    MemoryModel m = MemoryModel::makeStride(0x1000, 256, 8);
    Addr first = m.next();
    EXPECT_EQ(first, 0x1000u);
    EXPECT_EQ(m.next(), 0x1008u);
    // Wraps within the region.
    for (int i = 0; i < 100; ++i) {
        Addr a = m.next();
        EXPECT_GE(a, 0x1000u);
        EXPECT_LT(a, 0x1100u);
    }
}

TEST(MemoryModelTest, RandomStaysInRegionAndFavorsHot)
{
    MemoryModel m =
        MemoryModel::makeRandom(0x10000, 1 << 20, 16 * 1024, 0.8, 3);
    int hot = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr a = m.next();
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x10000u + (1u << 20));
        hot += a < 0x10000u + 16 * 1024;
    }
    // At least hotProb of accesses in the hot subset (plus cold ones
    // that land there by chance).
    EXPECT_GT(hot / 20000.0, 0.75);
}

TEST(MemoryModelTest, AddressesAligned)
{
    MemoryModel m =
        MemoryModel::makeChase(0x10000, 1 << 20, 8192, 0.5, 11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(m.next() % 8, 0u);
}

TEST(ProfilesTest, AllTwelveBenchmarks)
{
    EXPECT_EQ(allProfiles().size(), 12u);
    std::set<std::string> names;
    for (const auto &p : allProfiles())
        names.insert(p.name);
    EXPECT_EQ(names.size(), 12u);
    EXPECT_TRUE(names.count("gzip"));
    EXPECT_TRUE(names.count("twolf"));
}

TEST(ProfilesTest, ClassesMatchPaper)
{
    EXPECT_EQ(profileFor("mcf").benchClass, BenchClass::MEM);
    EXPECT_EQ(profileFor("twolf").benchClass, BenchClass::MEM);
    EXPECT_EQ(profileFor("vpr").benchClass, BenchClass::MEM);
    EXPECT_EQ(profileFor("gzip").benchClass, BenchClass::ILP);
    EXPECT_EQ(profileFor("eon").benchClass, BenchClass::ILP);
}

TEST(ProfilesTest, Table1BlockSizes)
{
    EXPECT_NEAR(profileFor("gzip").avgBlockSize, 11.02, 1e-9);
    EXPECT_NEAR(profileFor("mcf").avgBlockSize, 3.92, 1e-9);
    EXPECT_NEAR(profileFor("gcc").avgBlockSize, 5.76, 1e-9);
    EXPECT_NEAR(profileFor("twolf").avgBlockSize, 8.00, 1e-9);
}

TEST(BuilderTest, DeterministicForSameSeed)
{
    auto a = buildImage(profileFor("gzip"), 0x400000, 0x40000000, 1);
    auto b = buildImage(profileFor("gzip"), 0x400000, 0x40000000, 1);
    ASSERT_EQ(a.program.numInsts(), b.program.numInsts());
    for (std::size_t i = 0; i < a.program.numInsts(); i += 97) {
        Addr pc = a.program.base() + i * instBytes;
        EXPECT_EQ(a.program.lookup(pc)->op, b.program.lookup(pc)->op);
    }
}

TEST(BuilderTest, ProgramsAreSubstantial)
{
    auto img = buildImage(profileFor("gcc"), 0x400000, 0x40000000);
    // ~160KB of code.
    EXPECT_GT(img.program.numInsts(), 20'000u);
    EXPECT_GT(img.program.numBlocks(), 2'000u);
    EXPECT_GT(img.program.numFunctions(), 50u);
    EXPECT_FALSE(img.branchModels.empty());
    EXPECT_FALSE(img.memModels.empty());
}

TEST(BuilderTest, EveryCtiHasValidTarget)
{
    auto img = buildImage(profileFor("vortex"), 0x400000, 0x40000000);
    const auto &prog = img.program;
    for (std::size_t i = 0; i < prog.numInsts(); ++i) {
        Addr pc = prog.base() + i * instBytes;
        const StaticInst *si = prog.lookup(pc);
        ASSERT_NE(si, nullptr);
        if (si->op == OpClass::CondBranch ||
            si->op == OpClass::Jump ||
            si->op == OpClass::CallDirect) {
            EXPECT_TRUE(prog.contains(si->target))
                << "CTI at " << std::hex << pc;
        }
    }
}

/** Table 1 calibration: the property the substitution relies on. */
class Table1Calibration
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Table1Calibration, DynamicBlockSizeNearPaperValue)
{
    const auto &prof = profileFor(GetParam());
    auto img = buildImage(prof, 0x400000, 0x40000000);
    SyntheticTraceStream trace(img);
    for (int i = 0; i < 300'000; ++i)
        trace.next();
    double measured = trace.stats().avgBlockSize();
    EXPECT_NEAR(measured, prof.avgBlockSize,
                prof.avgBlockSize * 0.25)
        << prof.name << ": measured " << measured << " vs Table 1 "
        << prof.avgBlockSize;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, Table1Calibration,
                         ::testing::Values("gzip", "vpr", "gcc", "mcf",
                                           "crafty", "parser", "eon",
                                           "perlbmk", "gap", "vortex",
                                           "bzip2", "twolf"));

TEST(TraceTest, InfiniteAndDeterministic)
{
    auto img = buildImage(profileFor("gzip"), 0x400000, 0x40000000);
    SyntheticTraceStream a(img), b(img);
    for (int i = 0; i < 50'000; ++i) {
        TraceRecord ra = a.next();
        TraceRecord rb = b.next();
        ASSERT_EQ(ra.pc(), rb.pc());
        ASSERT_EQ(ra.taken, rb.taken);
        ASSERT_EQ(ra.nextPc, rb.nextPc);
        ASSERT_EQ(ra.memAddr, rb.memAddr);
    }
}

TEST(TraceTest, NextPcChainsConsistently)
{
    auto img = buildImage(profileFor("parser"), 0x400000, 0x40000000);
    SyntheticTraceStream trace(img);
    TraceRecord prev = trace.next();
    for (int i = 0; i < 20'000; ++i) {
        TraceRecord cur = trace.next();
        ASSERT_EQ(cur.pc(), prev.nextPc);
        prev = cur;
    }
}

TEST(TraceTest, MemoryAddressesOnlyOnMemoryOps)
{
    auto img = buildImage(profileFor("mcf"), 0x400000, 0x40000000);
    SyntheticTraceStream trace(img);
    for (int i = 0; i < 20'000; ++i) {
        TraceRecord r = trace.next();
        if (r.si->isMemory()) {
            EXPECT_NE(r.memAddr, invalidAddr);
            EXPECT_GE(r.memAddr, img.dataBase);
        } else {
            EXPECT_EQ(r.memAddr, invalidAddr);
        }
    }
}

TEST(TraceTest, TakenCtisMatchControlFlow)
{
    auto img = buildImage(profileFor("eon"), 0x400000, 0x40000000);
    SyntheticTraceStream trace(img);
    for (int i = 0; i < 20'000; ++i) {
        TraceRecord r = trace.next();
        if (!r.si->isControl()) {
            EXPECT_FALSE(r.taken);
            EXPECT_EQ(r.nextPc, r.pc() + instBytes);
        } else if (r.taken && r.si->isConditional()) {
            // Taken conditionals go to their static target (which may
            // legitimately equal the fall-through for a branch to the
            // next block).
            EXPECT_EQ(r.nextPc, r.si->target);
        }
    }
}

TEST(WorkloadsTest, Table2Definitions)
{
    EXPECT_EQ(table2Workloads().size(), 10u);
    EXPECT_EQ(workloadFor("2_MIX").benchmarks,
              (std::vector<std::string>{"gzip", "twolf"}));
    EXPECT_EQ(workloadFor("8_ILP").benchmarks.size(), 8u);
    EXPECT_EQ(workloadFor("4_MEM").benchmarks,
              (std::vector<std::string>{"mcf", "twolf", "vpr",
                                        "perlbmk"}));
}

TEST(WorkloadsTest, BuildWorkloadDisjointAddressSpaces)
{
    WorkloadImages w = buildWorkload(workloadFor("4_MIX"));
    ASSERT_EQ(w.numThreads(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = i + 1; j < 4; ++j) {
            const auto &a = *w.images[i];
            const auto &b = *w.images[j];
            bool code_disjoint = a.program.limit() <= b.program.base() ||
                                 b.program.limit() <= a.program.base();
            bool data_disjoint =
                a.dataBase + a.dataBytes <= b.dataBase ||
                b.dataBase + b.dataBytes <= a.dataBase;
            EXPECT_TRUE(code_disjoint);
            EXPECT_TRUE(data_disjoint);
        }
    }
}

TEST(WorkloadsTest, SingleWorkloadHelper)
{
    WorkloadImages w = buildSingle("gzip");
    EXPECT_EQ(w.numThreads(), 1u);
    EXPECT_EQ(w.images[0]->profile.name, "gzip");
}

} // namespace
} // namespace smt
