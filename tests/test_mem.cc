/**
 * @file
 * Tests for the memory hierarchy: cache geometry, LRU, banking, MSHR
 * merging, multi-level latencies and TLBs.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"

namespace smt
{
namespace
{

CacheParams
smallCache(const char *name, unsigned size, unsigned ways,
           Cycle hit_lat)
{
    CacheParams p;
    p.name = name;
    p.sizeBytes = size;
    p.ways = ways;
    p.lineBytes = 64;
    p.banks = 8;
    p.hitLatency = hit_lat;
    p.mshrs = 8;
    return p;
}

TEST(CacheTest, HitAfterMissSettles)
{
    Cache c(smallCache("L", 4096, 2, 1), nullptr, 100);
    Cycle lat = c.access(0x1000, false, 0);
    EXPECT_EQ(lat, 101u); // 1 (hit path) + 100 memory
    // After the fill completes, it hits.
    EXPECT_EQ(c.access(0x1000, false, 200), 1u);
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, MshrMergeWhileInFlight)
{
    Cache c(smallCache("L", 4096, 2, 1), nullptr, 100);
    c.access(0x1000, false, 0); // ready at 101
    Cycle lat = c.access(0x1008, false, 50); // same line, in flight
    EXPECT_EQ(lat, 51u + 1u); // remaining 51 + hit latency
    EXPECT_EQ(c.stats().mshrMerges, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, LruWithinSet)
{
    // 2 ways, 32 sets: addresses 32 lines apart share a set.
    Cache c(smallCache("L", 4096, 2, 1), nullptr, 100);
    Addr set_stride = 32 * 64;
    c.access(0x0000, false, 0);
    c.access(set_stride, false, 200);
    c.access(0x0000, false, 400);          // touch: set_stride is LRU
    c.access(2 * set_stride, false, 600);  // evicts set_stride
    EXPECT_EQ(c.access(0x0000, false, 800), 1u);
    EXPECT_GT(c.access(set_stride, false, 1000), 1u); // miss again
}

TEST(CacheTest, BankMapping)
{
    Cache c(smallCache("L", 32 * 1024, 2, 1), nullptr, 100);
    EXPECT_EQ(c.bankOf(0x0000), 0u);
    EXPECT_EQ(c.bankOf(0x0040), 1u);
    EXPECT_EQ(c.bankOf(0x01c0), 7u);
    EXPECT_EQ(c.bankOf(0x0200), 0u); // wraps at 8 banks
}

TEST(CacheTest, WritesCountedAndAllocate)
{
    Cache c(smallCache("L", 4096, 2, 1), nullptr, 100);
    c.access(0x2000, true, 0);
    EXPECT_EQ(c.stats().writeAccesses, 1u);
    EXPECT_EQ(c.access(0x2000, false, 200), 1u); // write-allocated
}

TEST(CacheTest, ResetClearsState)
{
    Cache c(smallCache("L", 4096, 2, 1), nullptr, 100);
    c.access(0x1000, false, 0);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_GT(c.access(0x1000, false, 0), 1u); // cold again
}

TEST(HierarchyTest, LatenciesCompose)
{
    MemoryHierarchy mem{MemoryParams{}};
    // Cold data access: DTLB walk + L1 miss + L2 miss + memory.
    Cycle first = mem.dcacheAccess(0, 0x40000000, false, 0);
    EXPECT_GT(first, 100u);
    // Warm hit: L1 latency + load-to-use.
    Cycle warm = mem.dcacheAccess(0, 0x40000000, false, 10'000);
    EXPECT_LE(warm, 4u);
}

TEST(HierarchyTest, L2SharedBetweenIAndD)
{
    MemoryHierarchy mem{MemoryParams{}};
    mem.icacheAccess(0, 0x40000000, 0); // fills L2 line
    std::uint64_t l2_misses = mem.l2().stats().misses;
    // Same line via the D side after L1I warmed L2: L2 should hit.
    mem.dcacheAccess(0, 0x40000000, false, 10'000);
    EXPECT_EQ(mem.l2().stats().misses, l2_misses);
}

TEST(HierarchyTest, IcacheReadyProbe)
{
    MemoryHierarchy mem{MemoryParams{}};
    EXPECT_FALSE(mem.icacheReady(0x400000));
    mem.icacheAccess(0, 0x400000, 0);
    EXPECT_TRUE(mem.icacheReady(0x400000));
}

TEST(TlbTest, HitAfterWalk)
{
    Tlb tlb("T", 4, 8192, 30);
    EXPECT_EQ(tlb.access(0, 0x10000), 30u);
    EXPECT_EQ(tlb.access(0, 0x10100), 0u); // same page
    EXPECT_EQ(tlb.access(0, 0x12000), 30u); // next page
}

TEST(TlbTest, PerThreadTagging)
{
    Tlb tlb("T", 8, 8192, 30);
    tlb.access(0, 0x10000);
    EXPECT_FALSE(tlb.wouldHit(1, 0x10000));
    EXPECT_TRUE(tlb.wouldHit(0, 0x10000));
    EXPECT_EQ(tlb.access(1, 0x10000), 30u);
}

TEST(TlbTest, LruReplacement)
{
    Tlb tlb("T", 2, 8192, 30);
    tlb.access(0, 0x00000);
    tlb.access(0, 0x02000);
    tlb.access(0, 0x00000); // touch; page 0x02000 is LRU
    tlb.access(0, 0x04000); // evicts 0x02000
    EXPECT_TRUE(tlb.wouldHit(0, 0x00000));
    EXPECT_FALSE(tlb.wouldHit(0, 0x02000));
}

TEST(CacheTest, PerThreadAttributionSumsToTotals)
{
    // Shared-cache interference accounting: every access and miss is
    // attributed to exactly one thread, at every level it reaches.
    MemoryHierarchy mem{MemoryParams{}};
    for (int i = 0; i < 32; ++i) {
        ThreadID tid = static_cast<ThreadID>(i % 4);
        mem.dcacheAccess(tid, 0x1000 + 0x40 * i, (i % 5) == 0,
                         static_cast<Cycle>(i) * 200);
    }
    for (const Cache *c : {&mem.l1d(), &mem.l2()}) {
        const CacheStats &s = c->stats();
        std::uint64_t acc = 0, miss = 0;
        for (unsigned t = 0; t < maxThreads; ++t) {
            acc += s.threadAccesses[t];
            miss += s.threadMisses[t];
        }
        EXPECT_EQ(acc, s.accesses) << c->params().name;
        EXPECT_EQ(miss, s.misses) << c->params().name;
    }
    // Four threads issued accesses; the rest attributed nothing.
    for (unsigned t = 4; t < maxThreads; ++t)
        EXPECT_EQ(mem.l1d().stats().threadAccesses[t], 0u);
    EXPECT_GT(mem.l1d().stats().threadAccesses[0], 0u);
    EXPECT_GT(mem.l2().stats().threadMisses[1], 0u);
}

TEST(TlbTest, StatsTrackMissRate)
{
    Tlb tlb("T", 16, 8192, 30);
    for (int i = 0; i < 8; ++i)
        tlb.access(0, static_cast<Addr>(i) * 8192);
    for (int i = 0; i < 8; ++i)
        tlb.access(0, static_cast<Addr>(i) * 8192);
    EXPECT_EQ(tlb.stats().accesses, 16u);
    EXPECT_EQ(tlb.stats().misses, 8u);
    EXPECT_DOUBLE_EQ(tlb.stats().missRate(), 0.5);
}

} // namespace
} // namespace smt
