/**
 * @file
 * FetchPolicy unit tests (ICOUNT ranking, tie-break rotation,
 * round-robin) and coverage for the front end's long-latency-load
 * stall/flush paths: each LongLoadPolicy value is driven through the
 * MEM-heavy 2_MEM workload and must leave its signature in the
 * stall/flush counters.
 */

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/fetch_policy.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

using namespace smt;

namespace
{

std::vector<ThreadID>
rank(FetchPolicy &policy, Cycle now,
     std::initializer_list<std::uint32_t> icounts)
{
    std::vector<std::uint32_t> counts(icounts);
    std::vector<ThreadID> out;
    policy.order(now, counts.data(),
                 static_cast<unsigned>(counts.size()), out);
    return out;
}

SimStats
runWithLongLoadPolicy(LongLoadPolicy policy, Simulator **sim_out,
                      std::vector<std::unique_ptr<Simulator>> &keep)
{
    SimConfig cfg = table3Config("2_MEM", EngineKind::GshareBtb, 2, 8);
    cfg.core.longLoadPolicy = policy;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 20000;
    keep.push_back(std::make_unique<Simulator>(cfg));
    Simulator &sim = *keep.back();
    if (sim_out != nullptr)
        *sim_out = &sim;
    sim.run();
    return sim.stats();
}

} // namespace

TEST(FetchPolicy, IcountRanksLowestOccupancyFirst)
{
    IcountPolicy icount;
    EXPECT_EQ(rank(icount, 0, {5, 1, 3}),
              (std::vector<ThreadID>{1, 2, 0}));
    EXPECT_EQ(rank(icount, 0, {0, 0, 9, 4}),
              (std::vector<ThreadID>{0, 1, 3, 2}));
    EXPECT_EQ(icount.kind(), PolicyKind::ICount);
}

TEST(FetchPolicy, IcountTieBreakRotatesAcrossCycles)
{
    // Equally-empty threads must share the fetch unit fairly: the
    // tie-break pointer advances with the cycle count.
    IcountPolicy icount;
    EXPECT_EQ(rank(icount, 0, {2, 2, 2}),
              (std::vector<ThreadID>{0, 1, 2}));
    EXPECT_EQ(rank(icount, 1, {2, 2, 2}),
              (std::vector<ThreadID>{1, 2, 0}));
    EXPECT_EQ(rank(icount, 2, {2, 2, 2}),
              (std::vector<ThreadID>{2, 0, 1}));
    // Occupancy still dominates the rotation.
    EXPECT_EQ(rank(icount, 1, {2, 2, 0}),
              (std::vector<ThreadID>{2, 1, 0}));
}

TEST(FetchPolicy, IcountTieBreakProperty)
{
    // Property check over thread counts and random occupancies:
    //  (a) with all threads tied, every thread gets top priority
    //      exactly once across num_threads consecutive cycles;
    //  (b) any ordering is exactly the stable sort by icount with the
    //      documented rotating tie-break (the reference comparator
    //      below) — ties never reorder unequal counts, and the
    //      allocation-free insertion sort must match std::stable_sort
    //      bit for bit.
    IcountPolicy icount;
    std::vector<ThreadID> out;
    for (unsigned n : {2u, 3u, 5u, 8u}) {
        std::vector<std::uint32_t> tied(n, 7);
        std::vector<unsigned> tops(n, 0);
        for (Cycle now = 0; now < n; ++now) {
            icount.order(now, tied.data(), n, out);
            ASSERT_EQ(out.size(), n);
            ++tops[out.front()];
        }
        for (unsigned t = 0; t < n; ++t)
            EXPECT_EQ(tops[t], 1u)
                << "thread " << t << " of " << n
                << " was not top priority exactly once";

        std::uint64_t rng = 0x9e3779b97f4a7c15ULL + n;
        for (Cycle now = 0; now < 4 * n; ++now) {
            std::vector<std::uint32_t> counts(n);
            for (auto &c : counts) {
                rng = rng * 6364136223846793005ULL +
                      1442695040888963407ULL;
                c = static_cast<std::uint32_t>((rng >> 33) % 4);
            }
            icount.order(now, counts.data(), n, out);
            ASSERT_EQ(out.size(), n);

            std::vector<ThreadID> ref(n);
            std::iota(ref.begin(), ref.end(), ThreadID{0});
            unsigned rotate = static_cast<unsigned>(now % n);
            std::stable_sort(
                ref.begin(), ref.end(),
                [&](ThreadID a, ThreadID b) {
                    if (counts[a] != counts[b])
                        return counts[a] < counts[b];
                    return (a + n - rotate) % n < (b + n - rotate) % n;
                });
            EXPECT_EQ(out, ref)
                << "cycle " << now << ", " << n << " threads";
            for (unsigned i = 1; i < n; ++i)
                EXPECT_LE(counts[out[i - 1]], counts[out[i]]);
        }
    }
}

TEST(FetchPolicy, RoundRobinIgnoresOccupancy)
{
    RoundRobinPolicy rr;
    EXPECT_EQ(rank(rr, 0, {9, 0, 5}),
              (std::vector<ThreadID>{0, 1, 2}));
    EXPECT_EQ(rank(rr, 1, {9, 0, 5}),
              (std::vector<ThreadID>{1, 2, 0}));
    EXPECT_EQ(rank(rr, 5, {9, 0, 5}),
              (std::vector<ThreadID>{2, 0, 1}));
    EXPECT_EQ(rr.kind(), PolicyKind::RoundRobin);
}

TEST(FetchPolicy, FactoryBuildsTheRequestedPolicy)
{
    EXPECT_EQ(makePolicy(PolicyKind::ICount)->kind(),
              PolicyKind::ICount);
    EXPECT_EQ(makePolicy(PolicyKind::RoundRobin)->kind(),
              PolicyKind::RoundRobin);
}

TEST(FrontEndLongLoad, StallAndUnstallBookkeeping)
{
    SimConfig cfg = table3Config("2_MIX", EngineKind::GshareBtb, 1, 8);
    Simulator sim(cfg);
    FrontEnd &fe = sim.core().frontEnd();

    EXPECT_FALSE(fe.memStalled(0, 10));
    fe.stallThread(0, 100);
    EXPECT_TRUE(fe.memStalled(0, 50));
    EXPECT_TRUE(fe.memStalled(0, 99));
    EXPECT_FALSE(fe.memStalled(0, 100));
    EXPECT_FALSE(fe.memStalled(1, 50));

    // Any redirect clears the stall (the thread restarts fetching).
    fe.redirect(0, sim.workload().images[0]->program.entry(), 60);
    EXPECT_FALSE(fe.memStalled(0, 70));
}

TEST(FrontEndLongLoad, PoliciesLeaveTheirCounterSignature)
{
    std::vector<std::unique_ptr<Simulator>> keep;
    SimStats none =
        runWithLongLoadPolicy(LongLoadPolicy::None, nullptr, keep);
    SimStats stall =
        runWithLongLoadPolicy(LongLoadPolicy::Stall, nullptr, keep);
    Simulator *flush_sim = nullptr;
    SimStats flush = runWithLongLoadPolicy(LongLoadPolicy::Flush,
                                           &flush_sim, keep);

    // The baseline never activates the mechanism; the MEM-heavy
    // workload must trigger it under STALL and FLUSH.
    EXPECT_EQ(none.longLoadEvents, 0u);
    EXPECT_GT(stall.longLoadEvents, 0u);
    EXPECT_GT(flush.longLoadEvents, 0u);

    // FLUSH additionally squashes the stalled thread's younger
    // instructions, so it must discard strictly more than STALL.
    EXPECT_GT(flush.instsSquashed, stall.instsSquashed);

    // All three still commit work.
    EXPECT_GT(none.instsCommitted, 0u);
    EXPECT_GT(stall.instsCommitted, 0u);
    EXPECT_GT(flush.instsCommitted, 0u);

    // The unified registry mirrors the long-load counter.
    const StatsRegistry &reg = flush_sim->registry();
    EXPECT_NE(reg.jsonString().find("longLoadEvents"),
              std::string::npos);
}
