/**
 * @file
 * WarmupSnapshotCache unit tests: LRU eviction under a byte budget
 * (with the eviction counter the sweep timing surfaces), the
 * persistent disk tier (write-through on fulfil, promotion on a
 * memory miss), and the single-flight warmup leases that make a
 * popular key's warmup run exactly once across concurrent callers.
 */

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/snapshot_cache.hh"

using namespace smt;

namespace
{

/** A fresh, empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Lead the key and publish `bytes` as its snapshot. */
void
insert(WarmupSnapshotCache &cache, const std::string &key,
       std::string bytes, const std::string &disk_dir = "")
{
    auto got = cache.acquire(key, disk_dir);
    ASSERT_TRUE(got.leader) << key;
    cache.fulfil(key, std::move(bytes), disk_dir);
}

} // namespace

// ---------------------------------------------------------------------
// Memory tier: LRU order and the byte budget
// ---------------------------------------------------------------------

TEST(SnapshotCache, HitsMissesAndByteAccounting)
{
    WarmupSnapshotCache cache(1 << 20);
    insert(cache, "a", std::string(100, 'a'));
    insert(cache, "b", std::string(200, 'b'));

    auto hit = cache.acquire("a");
    ASSERT_TRUE(hit.snapshot);
    EXPECT_FALSE(hit.leader);
    EXPECT_FALSE(hit.diskHit);
    EXPECT_EQ(*hit.snapshot, std::string(100, 'a'));

    auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.insertions, 2u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.bytes, 300u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.maxBytes, std::size_t(1) << 20);
}

TEST(SnapshotCache, LruEvictionPrefersTheColdestKey)
{
    // Budget fits three 100-byte snapshots. Touch "a" so "b" is the
    // LRU victim when "d" arrives.
    WarmupSnapshotCache cache(300);
    insert(cache, "a", std::string(100, 'a'));
    insert(cache, "b", std::string(100, 'b'));
    insert(cache, "c", std::string(100, 'c'));
    ASSERT_TRUE(cache.acquire("a").snapshot);

    insert(cache, "d", std::string(100, 'd'));
    auto s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 3u);
    EXPECT_EQ(s.bytes, 300u);

    // "b" was evicted; everything else is still resident.
    EXPECT_TRUE(cache.acquire("a").snapshot);
    EXPECT_TRUE(cache.acquire("c").snapshot);
    EXPECT_TRUE(cache.acquire("d").snapshot);
    auto evicted = cache.acquire("b");
    EXPECT_FALSE(evicted.snapshot);
    EXPECT_TRUE(evicted.leader);
    cache.abandon("b");
}

TEST(SnapshotCache, EvictionNeverInvalidatesAHandedOutSnapshot)
{
    WarmupSnapshotCache cache(100);
    insert(cache, "a", std::string(100, 'a'));
    auto held = cache.acquire("a");
    ASSERT_TRUE(held.snapshot);

    // Inserting "b" evicts "a", but the shared_ptr keeps the bytes.
    insert(cache, "b", std::string(100, 'b'));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(*held.snapshot, std::string(100, 'a'));
}

TEST(SnapshotCache, OversizeSnapshotIsServedButNotRetained)
{
    WarmupSnapshotCache cache(50);
    insert(cache, "big", std::string(1000, 'x'));
    auto s = cache.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
    // Next acquire leads again rather than hitting.
    auto again = cache.acquire("big");
    EXPECT_TRUE(again.leader);
    cache.abandon("big");
}

TEST(SnapshotCache, ShrinkingTheBudgetEvictsImmediately)
{
    WarmupSnapshotCache cache(400);
    insert(cache, "a", std::string(100, 'a'));
    insert(cache, "b", std::string(100, 'b'));
    insert(cache, "c", std::string(100, 'c'));
    EXPECT_EQ(cache.stats().entries, 3u);

    cache.setMaxBytes(150);
    auto s = cache.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, 100u);
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.maxBytes, 150u);
    // The survivor is the most recently inserted key.
    EXPECT_TRUE(cache.acquire("c").snapshot);
}

// ---------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------

TEST(SnapshotCache, FulfilWritesThroughToTheDiskTier)
{
    std::string dir = freshDir("snap_wt");
    WarmupSnapshotCache cache;
    insert(cache, "key1", "snapshot-bytes", dir);

    std::string path = WarmupSnapshotCache::diskPathFor(dir, "key1");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_EQ(std::filesystem::file_size(path), 14u);
    // No temporary files left behind by write-then-rename.
    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(SnapshotCache, DiskMissPromotesIntoMemory)
{
    std::string dir = freshDir("snap_promote");
    {
        WarmupSnapshotCache writer;
        insert(writer, "key1", "persisted", dir);
    }

    // A fresh cache (new process, conceptually) finds the file.
    WarmupSnapshotCache cache;
    auto got = cache.acquire("key1", dir);
    ASSERT_TRUE(got.snapshot);
    EXPECT_TRUE(got.diskHit);
    EXPECT_FALSE(got.leader);
    EXPECT_EQ(*got.snapshot, "persisted");

    // The load was promoted: the next acquire is a memory hit.
    auto again = cache.acquire("key1", dir);
    ASSERT_TRUE(again.snapshot);
    EXPECT_FALSE(again.diskHit);

    auto s = cache.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 0u);
}

// ---------------------------------------------------------------------
// Single-flight leases
// ---------------------------------------------------------------------

TEST(SnapshotCache, ConcurrentAcquiresElectExactlyOneLeader)
{
    WarmupSnapshotCache cache;
    constexpr int threads = 8;
    std::atomic<int> leaders{0};
    std::atomic<int> sharers{0};

    std::vector<std::thread> pool;
    for (int i = 0; i < threads; ++i) {
        pool.emplace_back([&] {
            auto got = cache.acquire("hot");
            if (got.leader) {
                ++leaders;
                // Linger so the other threads pile onto the lease.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                cache.fulfil("hot", "warm-state");
            } else {
                ASSERT_TRUE(got.snapshot);
                EXPECT_EQ(*got.snapshot, "warm-state");
                ++sharers;
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(leaders.load(), 1);
    EXPECT_EQ(sharers.load(), threads - 1);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, std::uint64_t(threads - 1));
    EXPECT_EQ(s.insertions, 1u);
}

TEST(SnapshotCache, AbandonedLeaseElectsANewLeader)
{
    WarmupSnapshotCache cache;
    auto first = cache.acquire("flaky");
    ASSERT_TRUE(first.leader);

    std::thread waiter([&] {
        // Blocks on the first lease, then inherits it.
        auto got = cache.acquire("flaky");
        EXPECT_TRUE(got.leader);
        cache.fulfil("flaky", "second-try");
    });

    // Give the waiter time to block, then fail the first warmup.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.abandon("flaky");
    waiter.join();

    auto got = cache.acquire("flaky");
    ASSERT_TRUE(got.snapshot);
    EXPECT_EQ(*got.snapshot, "second-try");
    EXPECT_EQ(cache.stats().misses, 2u);
}
