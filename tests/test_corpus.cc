/**
 * @file
 * Trace-corpus manifest tests: sha256 correctness, manifest
 * generation and loading, per-entry validation (missing file,
 * checksum mismatch, version/benchmark/count skew), and resolution
 * of {"corpus", "mix"} workload entries through SweepSpec.
 */

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/sweep_spec.hh"
#include "util/sha256.hh"
#include "workload/corpus.hh"
#include "workload/profiles.hh"
#include "workload/program_builder.hh"
#include "workload/trace.hh"
#include "workload/trace_file.hh"

using namespace smt;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** Record `n` synthetic records of `profile` at thread slot 0. */
void
recordTrace(const std::string &profile, const std::string &path,
            std::size_t n)
{
    BenchmarkImage img =
        buildImage(profileFor(profile), 0x400000, 0x40000000, 0);
    SyntheticTraceStream stream(img);
    TraceFileHeader hdr;
    hdr.benchmark = profile;
    hdr.codeBase = img.program.base();
    hdr.dataBase = img.dataBase;
    TraceWriter writer(path, hdr);
    stream.setRecorder(&writer);
    for (std::size_t i = 0; i < n; ++i)
        stream.next();
    writer.close();
}

/** Build a two-trace corpus under TempDir; returns manifest path. */
std::string
makeCorpus()
{
    const std::string dir = ::testing::TempDir();
    recordTrace("gzip", dir + "corpus_gzip.trc", 50);
    recordTrace("mcf", dir + "corpus_mcf.trc", 60);

    CorpusManifest m;
    m.path = dir + "corpus_manifest.json";
    m.entries.push_back(describeTrace(dir + "corpus_gzip.trc",
                                      "corpus_gzip.trc"));
    m.entries.push_back(describeTrace(dir + "corpus_mcf.trc",
                                      "corpus_mcf.trc"));
    writeCorpusManifest(m);
    return m.path;
}

/** EXPECT a CorpusError whose message contains a fragment. */
template <typename Fn>
void
expectCorpusError(Fn fn, const std::string &fragment)
{
    try {
        fn();
        FAIL() << "expected CorpusError containing \"" << fragment
               << "\"";
    } catch (const CorpusError &e) {
        EXPECT_NE(std::string(e.what()).find(fragment),
                  std::string::npos)
            << "message: " << e.what();
    }
}

} // namespace

TEST(Sha256, MatchesKnownVectors)
{
    // FIPS 180-4 test vectors.
    EXPECT_EQ(sha256Hex("", 0),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc", 3),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    const std::string two_blocks =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(sha256Hex(two_blocks.data(), two_blocks.size()),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");

    // Streaming across block boundaries agrees with one-shot.
    Sha256 ctx;
    for (char c : two_blocks)
        ctx.update(&c, 1);
    EXPECT_EQ(ctx.hexDigest(),
              sha256Hex(two_blocks.data(), two_blocks.size()));

    // File digest agrees with the in-memory digest.
    const std::string path = tempPath("digest.bin");
    writeFile(path, two_blocks);
    EXPECT_EQ(sha256File(path),
              sha256Hex(two_blocks.data(), two_blocks.size()));
}

TEST(Corpus, ManifestRoundTripAndLookup)
{
    const std::string manifest_path = makeCorpus();
    CorpusManifest m = loadCorpusManifest(manifest_path);
    ASSERT_EQ(m.entries.size(), 2u);
    EXPECT_EQ(m.entries[0].benchmark, "gzip");
    EXPECT_EQ(m.entries[0].records, 50u);
    EXPECT_EQ(m.entries[0].traceVersion, traceFormatVersion);
    EXPECT_EQ(m.entries[0].path, "corpus_gzip.trc");
    // Listed paths resolve relative to the manifest's directory.
    EXPECT_EQ(m.entries[0].resolvedPath,
              ::testing::TempDir() + "corpus_gzip.trc");

    const CorpusEntry &mcf = m.find("mcf");
    EXPECT_EQ(mcf.records, 60u);
    validateCorpusEntry(m, m.entries[0]);
    validateCorpusEntry(m, mcf);

    expectCorpusError([&] { m.find("vortex"); },
                      "available: gzip, mcf");
}

TEST(Corpus, MalformedManifestsAreActionable)
{
    const std::string path = tempPath("bad_manifest.json");
    auto load = [&](const std::string &text) {
        writeFile(path, text);
        loadCorpusManifest(path);
    };

    expectCorpusError(
        [&] { loadCorpusManifest(tempPath("absent.json")); },
        "cannot open");
    expectCorpusError([&] { load("{nope"); }, "not valid JSON");
    expectCorpusError([&] { load("[]"); }, "must be a JSON object");
    expectCorpusError([&] { load("{\"traces\": []}"); },
                      "\"formatVersion\"");
    expectCorpusError(
        [&] { load("{\"formatVersion\": 99, \"traces\": []}"); },
        "formatVersion 99");
    expectCorpusError([&] { load("{\"formatVersion\": 1}"); },
                      "\"traces\"");
    expectCorpusError(
        [&] {
            load("{\"formatVersion\": 1, \"traces\": [{}]}");
        },
        "missing the required \"path\"");
    expectCorpusError(
        [&] {
            load("{\"formatVersion\": 1, \"traces\": [{\"path\": "
                 "\"a.trc\", \"sha256\": \"zz\", \"benchmark\": "
                 "\"gzip\", \"records\": 1, \"traceVersion\": 2}]}");
        },
        "64 lowercase hex");

    const std::string digest(64, 'a');
    const std::string entry =
        "{\"path\": \"a.trc\", \"sha256\": \"" + digest +
        "\", \"benchmark\": \"gzip\", \"records\": 1, "
        "\"traceVersion\": 2}";
    expectCorpusError(
        [&] {
            load("{\"formatVersion\": 1, \"traces\": [" + entry +
                 ", " + entry + "]}");
        },
        "more than once");
}

TEST(Corpus, EntryValidationCatchesSkew)
{
    const std::string manifest_path = makeCorpus();
    CorpusManifest m = loadCorpusManifest(manifest_path);

    // Missing file.
    {
        CorpusEntry gone = m.entries[0];
        gone.resolvedPath = tempPath("vanished.trc");
        expectCorpusError([&] { validateCorpusEntry(m, gone); },
                          "missing file");
    }
    // Checksum mismatch after the trace is modified.
    {
        const std::string copy = tempPath("tampered.trc");
        std::ifstream src(m.entries[0].resolvedPath,
                          std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(src)),
                          std::istreambuf_iterator<char>());
        bytes.back() = static_cast<char>(bytes.back() ^ 1);
        writeFile(copy, bytes);
        CorpusEntry tampered = m.entries[0];
        tampered.resolvedPath = copy;
        expectCorpusError([&] { validateCorpusEntry(m, tampered); },
                          "checksum mismatch");
    }
    // Version skew: the manifest pins a revision the file is not.
    {
        CorpusEntry skewed = m.entries[0];
        skewed.traceVersion = traceFormatV1;
        expectCorpusError([&] { validateCorpusEntry(m, skewed); },
                          "format version skew");
    }
    // Benchmark label / header disagreement.
    {
        CorpusEntry mislabeled = m.entries[0];
        mislabeled.benchmark = "mcf";
        mislabeled.resolvedPath = m.entries[0].resolvedPath;
        expectCorpusError(
            [&] { validateCorpusEntry(m, mislabeled); },
            "benchmark skew");
    }
    // Record-count disagreement.
    {
        CorpusEntry wrong = m.entries[0];
        wrong.records += 5;
        expectCorpusError([&] { validateCorpusEntry(m, wrong); },
                          "record-count skew");
    }
}

TEST(Corpus, SweepSpecResolvesCorpusMixes)
{
    const std::string manifest_path = makeCorpus();
    const std::string spec_text =
        "{\"name\": \"corpus-test\", \"warmupCycles\": 100, "
        "\"measureCycles\": 100, \"engines\": [\"gshare+BTB\"], "
        "\"policies\": [\"2.8\"], \"workloads\": [{\"corpus\": \"" +
        manifest_path + "\", \"mix\": [\"mcf\", \"gzip\"]}]}";

    SweepSpec spec = SweepSpec::fromString(spec_text, "<test>");
    ASSERT_EQ(spec.sweeps.size(), 1u);
    ASSERT_EQ(spec.sweeps[0].workloads.size(), 1u);
    const std::string &name = spec.sweeps[0].workloads[0];
    EXPECT_EQ(name, "trace:" + ::testing::TempDir() +
                        "corpus_mcf.trc," + ::testing::TempDir() +
                        "corpus_gzip.trc");

    // Unknown mix labels and missing manifests surface as spec
    // errors carrying the corpus diagnostic.
    auto parse = [&](const std::string &text) {
        SweepSpec::fromString(text, "<test>");
    };
    try {
        parse("{\"name\": \"x\", \"warmupCycles\": 1, "
              "\"measureCycles\": 1, \"engines\": [\"gshare+BTB\"], "
              "\"policies\": [\"1.8\"], \"workloads\": [{\"corpus\": "
              "\"" +
              manifest_path + "\", \"mix\": [\"vortex\"]}]}");
        FAIL() << "unknown mix label accepted";
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("vortex"),
                  std::string::npos)
            << e.what();
    }
    try {
        parse("{\"name\": \"x\", \"warmupCycles\": 1, "
              "\"measureCycles\": 1, \"engines\": [\"gshare+BTB\"], "
              "\"policies\": [\"1.8\"], \"workloads\": [{\"corpus\": "
              "\"" +
              tempPath("no_manifest.json") +
              "\", \"mix\": [\"gzip\"]}]}");
        FAIL() << "missing manifest accepted";
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos)
            << e.what();
    }
}
