/**
 * @file
 * Unit tests for the utility substrate: RNG determinism, saturating
 * counters, histograms, stat groups, bit helpers and the table
 * printer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/bitfield.hh"
#include "util/histogram.hh"
#include "util/random.hh"
#include "util/ring_buffer.hh"
#include "util/sat_counter.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace smt
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, StringSeedDeterministic)
{
    Rng a("gzip", 7), b("gzip", 7), c("twolf", 7);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(6);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, PositiveGeometricMeanRoughlyMatches)
{
    Rng r(7);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.positiveGeometric(8.0, 1000);
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, PositiveGeometricRespectsCap)
{
    Rng r(8);
    for (int i = 0; i < 10000; ++i) {
        unsigned v = r.positiveGeometric(20.0, 32);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 32u);
    }
}

TEST(SatCounter, SaturatesAtBounds)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predictTaken());
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 3);
    EXPECT_TRUE(c.predictTaken());
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 0);
}

TEST(SatCounter, MidpointPredictsNotTaken)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.predictTaken()); // 1 of 3: weakly not-taken
    c.increment();
    EXPECT_TRUE(c.predictTaken()); // 2 of 3: weakly taken
}

TEST(SatCounter, UpdateDirection)
{
    SatCounter c(3, 3);
    c.update(true);
    EXPECT_EQ(c.raw(), 4);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.raw(), 2);
}

TEST(SatCounter, IsSaturated)
{
    SatCounter c(1, 0);
    EXPECT_TRUE(c.isSaturated());
    c.increment();
    EXPECT_TRUE(c.isSaturated());
    SatCounter d(2, 1);
    EXPECT_FALSE(d.isSaturated());
}

TEST(RingBuffer, FifoOrderAcrossWraparound)
{
    RingBuffer<int> rb(3); // slot array rounds up to 4
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 3u);
    int next = 0, expect = 0;
    for (int round = 0; round < 10; ++round) {
        while (!rb.full())
            rb.push_back(next++);
        EXPECT_EQ(rb.size(), 3u);
        EXPECT_EQ(rb.front(), expect);
        EXPECT_EQ(rb.back(), next - 1);
        rb.pop_front();
        ++expect;
    }
    EXPECT_EQ(rb[0], expect);
    EXPECT_EQ(rb[1], expect + 1);
}

TEST(RingBuffer, PopBackAndClear)
{
    RingBuffer<int> rb(4);
    for (int i = 0; i < 4; ++i)
        rb.push_back(i);
    rb.pop_back();
    EXPECT_EQ(rb.back(), 2);
    EXPECT_EQ(rb.size(), 3u);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push_back(7); // usable after clear
    EXPECT_EQ(rb.front(), 7);
}

TEST(RingBuffer, EmplaceBackResetsReusedSlots)
{
    struct Payload
    {
        int v = -1;
    };
    RingBuffer<Payload> rb(2);
    rb.emplace_back().v = 42;
    rb.pop_front();
    rb.emplace_back();
    rb.emplace_back(); // wraps onto the old slot
    EXPECT_EQ(rb[0].v, -1);
    EXPECT_EQ(rb[1].v, -1);
}

TEST(Histogram, MeanAndFractions)
{
    Histogram h(16);
    h.sample(4);
    h.sample(8);
    h.sample(8);
    h.sample(0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(8), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(4), 0.75);
    EXPECT_DOUBLE_EQ(h.fractionAbove(4), 0.5);
}

TEST(Histogram, ClampsOverflowToTopBucket)
{
    Histogram h(8);
    h.sample(100);
    EXPECT_EQ(h.at(8), 1u);
    EXPECT_EQ(h.sum(), 100u); // mean uses true values
    EXPECT_EQ(h.overflows(), 1u);
}

TEST(Histogram, OverflowCountSeparatesClampedFromTrueMax)
{
    Histogram h(8);
    h.sample(8);  // true top-bucket sample
    h.sample(9);  // clamped
    h.sample(20); // clamped
    EXPECT_EQ(h.at(8), 3u); // bins alone cannot tell them apart...
    EXPECT_EQ(h.overflows(), 2u); // ...the overflow count can
    EXPECT_EQ(h.count(), 3u);
    // The mean stays exact (raw values, not the clamped bins), so it
    // may exceed the top bucket when overflows are present.
    EXPECT_DOUBLE_EQ(h.mean(), (8.0 + 9.0 + 20.0) / 3.0);
    EXPECT_GT(h.mean(), 8.0);
}

TEST(Histogram, InRangeSamplesDoNotCountAsOverflow)
{
    Histogram h(4);
    for (unsigned v = 0; v <= 4; ++v)
        h.sample(v);
    EXPECT_EQ(h.overflows(), 0u);
    EXPECT_EQ(h.at(4), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(4);
    h.sample(2);
    h.sample(99);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflows(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, CountersAndFormulasDump)
{
    StatGroup g("fetch");
    Counter &c = g.addCounter("insts", "fetched instructions");
    c += 10;
    ++c;
    g.addFormula("double", "twice the insts",
                 [&c]() { return 2.0 * c.value(); });
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("fetch.insts 11"), std::string::npos);
    EXPECT_NE(out.find("fetch.double 22"), std::string::npos);
}

TEST(StatGroup, ResetAllZeroesCounters)
{
    StatGroup g("x");
    Counter &c = g.addCounter("a", "d");
    c += 5;
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Bitfield, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
}

TEST(Bitfield, FoldXor)
{
    EXPECT_EQ(foldXor(0xff00ff, 8), 0xffu ^ 0x00u ^ 0xffu);
    EXPECT_EQ(foldXor(0x12345678, 16), (0x1234u ^ 0x5678u));
    EXPECT_EQ(foldXor(12345, 0), 0u);
}

TEST(Bitfield, Mix64Distinct)
{
    EXPECT_NE(mix64(1), mix64(2));
    EXPECT_EQ(mix64(77), mix64(77));
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os, "title");
    std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(TextTable, NumAndPctFormat)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.123, 1), "+12.3%");
    EXPECT_EQ(TextTable::pct(-0.05, 1), "-5.0%");
}

} // namespace
} // namespace smt
