/**
 * @file
 * Transport-level tests for the serve HTTP stack: strict
 * Content-Length parsing (digits only, overflow-checked), oversized
 * and malformed request heads, truncated bodies, clients vanishing
 * mid-response (no SIGPIPE, server keeps serving), EINTR resilience
 * under a signal storm, and the httpFetch client's handling of
 * truncated or garbage responses. These drive HttpServer through raw
 * sockets, below the JSON service layer.
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/http.hh"
#include "util/json.hh"

using namespace smt;

namespace
{

/** A server that echoes the request shape back as JSON. */
struct EchoServer
{
    HttpServer http;

    EchoServer()
        : http("127.0.0.1", 0,
               [](const HttpRequest &req) {
                   std::ostringstream os;
                   JsonWriter jw(os, 0);
                   jw.beginObject();
                   jw.field("method", req.method);
                   jw.field("target", req.target);
                   jw.field("bodyBytes", static_cast<std::uint64_t>(
                                             req.body.size()));
                   jw.endObject();
                   HttpResponse resp;
                   resp.body = os.str();
                   return resp;
               })
    {
    }

    std::uint16_t port() const { return http.port(); }
};

int
connectTo(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    EXPECT_EQ(rc, 0) << std::strerror(errno);
    return fd;
}

/** Send as much as the peer accepts; MSG_NOSIGNAL so a server that
 *  answered early and closed cannot SIGPIPE the test process. */
void
sendBytes(int fd, const std::string &wire)
{
    std::size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

struct RawResponse
{
    int status = 0;
    std::string body;
    std::string raw;
};

RawResponse
readResponse(int fd)
{
    RawResponse resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.raw.append(buf, static_cast<std::size_t>(n));
    }
    if (resp.raw.size() > 12)
        resp.status = std::atoi(resp.raw.c_str() + 9);
    std::size_t blank = resp.raw.find("\r\n\r\n");
    if (blank != std::string::npos)
        resp.body = resp.raw.substr(blank + 4);
    return resp;
}

/** One raw request/response round trip over a fresh connection. */
RawResponse
roundTrip(std::uint16_t port, const std::string &wire)
{
    int fd = connectTo(port);
    sendBytes(fd, wire);
    RawResponse resp = readResponse(fd);
    ::close(fd);
    return resp;
}

std::string
postWithContentLength(const std::string &length_text,
                      const std::string &body = "")
{
    return "POST /v1/echo HTTP/1.1\r\n"
           "Host: 127.0.0.1\r\n"
           "Content-Length: " +
           length_text +
           "\r\n"
           "Connection: close\r\n\r\n" +
           body;
}

void
ignoreSignal(int)
{
}

} // namespace

// ---------------------------------------------------------------------
// Strict Content-Length parsing
// ---------------------------------------------------------------------

TEST(HttpContentLength, NonNumericValuesAreRejected)
{
    EchoServer server;
    // strtoull would have accepted every one of these: "12abc" as
    // 12 (truncated body), "-1" as 2^64-1, "junk" as 0.
    const char *bad[] = {"12abc",  "+5",   "-1",  "0x10", "junk",
                         "1 2",    "",     "  ",  "1.5"};
    for (const char *value : bad) {
        RawResponse resp =
            roundTrip(server.port(), postWithContentLength(value));
        EXPECT_EQ(resp.status, 400) << "Content-Length: " << value;
        EXPECT_NE(resp.body.find("malformed Content-Length header"),
                  std::string::npos)
            << resp.body;
    }
}

TEST(HttpContentLength, OverflowingValueIsRejected)
{
    EchoServer server;
    // > 2^64: the digit loop must detect overflow, not wrap.
    RawResponse resp = roundTrip(
        server.port(),
        postWithContentLength("99999999999999999999999999"));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("malformed Content-Length header"),
              std::string::npos)
        << resp.body;
}

TEST(HttpContentLength, SurroundingBlanksAreAccepted)
{
    EchoServer server;
    RawResponse resp = roundTrip(
        server.port(), postWithContentLength("  5 \t", "hello"));
    EXPECT_EQ(resp.status, 200) << resp.body;
    JsonValue doc = jsonParse(resp.body);
    EXPECT_EQ(doc.find("bodyBytes")->asUInt64(), 5u);
}

TEST(HttpContentLength, ExtraBytesBeyondTheLengthAreIgnored)
{
    EchoServer server;
    RawResponse resp = roundTrip(server.port(),
                                 postWithContentLength("3", "abcdefgh"));
    EXPECT_EQ(resp.status, 200) << resp.body;
    JsonValue doc = jsonParse(resp.body);
    EXPECT_EQ(doc.find("bodyBytes")->asUInt64(), 3u);
}

TEST(HttpContentLength, HugeAdvertisedBodyIsRejectedUpFront)
{
    EchoServer server;
    // Over the 16 MiB cap: answered before any body is read.
    RawResponse resp =
        roundTrip(server.port(), postWithContentLength("17000000"));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("request body too large"),
              std::string::npos)
        << resp.body;
}

// ---------------------------------------------------------------------
// Malformed request heads
// ---------------------------------------------------------------------

TEST(HttpMalformed, GarbageRequestLineIsRejected)
{
    EchoServer server;
    RawResponse resp = roundTrip(server.port(), "NONSENSE\r\n\r\n");
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("malformed request line"),
              std::string::npos)
        << resp.body;
}

TEST(HttpMalformed, OversizedHeaderBlockIsRejected)
{
    EchoServer server;
    // ~72 KB of headers with no terminator: past the 64 KB head cap
    // the server must answer 400 instead of buffering forever.
    std::string wire = "POST /v1/echo HTTP/1.1\r\n";
    std::string filler(1000, 'a');
    while (wire.size() < 72 * 1024)
        wire += "X-Pad: " + filler + "\r\n";
    RawResponse resp = roundTrip(server.port(), wire);
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("request header too large"),
              std::string::npos)
        << resp.body;
}

TEST(HttpMalformed, TruncatedBodyGetsNoResponse)
{
    EchoServer server;
    int fd = connectTo(server.port());
    sendBytes(fd, postWithContentLength("64", "short"));
    ::shutdown(fd, SHUT_WR); // give up mid-body
    RawResponse resp = readResponse(fd);
    ::close(fd);
    // The client vanished before delivering the promised body; the
    // server has nothing useful to say and must just hang up.
    EXPECT_TRUE(resp.raw.empty()) << resp.raw;
}

TEST(HttpMalformed, ServerSurvivesClientVanishingMidResponse)
{
    // A handler with a response big enough that the client can close
    // while the server is still writing: the failed send must not
    // raise SIGPIPE (which would kill this whole process) and must
    // not wedge the server.
    HttpServer big("127.0.0.1", 0, [](const HttpRequest &) {
        HttpResponse resp;
        resp.body.assign(2u << 20, 'x');
        return resp;
    });

    for (int i = 0; i < 3; ++i) {
        int fd = connectTo(big.port());
        sendBytes(fd, "GET /big HTTP/1.1\r\nHost: t\r\n"
                      "Content-Length: 0\r\nConnection: close\r\n\r\n");
        ::close(fd); // don't read the 2 MB answer
    }

    // Still serving.
    int fd = connectTo(big.port());
    sendBytes(fd, "GET /big HTTP/1.1\r\nHost: t\r\n"
                  "Content-Length: 0\r\nConnection: close\r\n\r\n");
    RawResponse resp = readResponse(fd);
    ::close(fd);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body.size(), 2u << 20);
}

// ---------------------------------------------------------------------
// EINTR resilience
// ---------------------------------------------------------------------

TEST(HttpSignals, RequestSurvivesSignalStorm)
{
    // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART, so every
    // delivery interrupts a blocking syscall with EINTR. Then block
    // the signal in this thread and the ticker, leaving the server's
    // accept/connection threads as the only delivery targets.
    struct sigaction sa{};
    sa.sa_handler = ignoreSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    struct sigaction old{};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    EchoServer server; // threads inherit an unblocked SIGUSR1 mask

    sigset_t usr1, prev;
    sigemptyset(&usr1);
    sigaddset(&usr1, SIGUSR1);
    ASSERT_EQ(::pthread_sigmask(SIG_BLOCK, &usr1, &prev), 0);

    std::atomic<bool> done{false};
    std::thread ticker([&] {
        while (!done.load()) {
            ::kill(::getpid(), SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
        }
    });

    // Slow-drip an 8 KB POST so the connection thread is parked in
    // recv() when the signals land (the pre-fix server treated the
    // resulting EINTR as a dead connection and dropped the request).
    std::string body(8192, 'b');
    std::string wire = postWithContentLength("8192", body);
    int fd = connectTo(server.port());
    for (std::size_t off = 0; off < wire.size(); off += 64) {
        sendBytes(fd, wire.substr(off, 64));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    RawResponse resp = readResponse(fd);
    ::close(fd);

    done.store(true);
    ticker.join();
    ASSERT_EQ(::pthread_sigmask(SIG_SETMASK, &prev, nullptr), 0);
    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

    EXPECT_EQ(resp.status, 200) << resp.raw;
    JsonValue doc = jsonParse(resp.body);
    EXPECT_EQ(doc.find("bodyBytes")->asUInt64(), 8192u);
}

// ---------------------------------------------------------------------
// httpFetch (the coordinator-side client)
// ---------------------------------------------------------------------

namespace
{

/** Accepts one connection, sends a canned byte string, hangs up. */
struct OneShotServer
{
    int listenFd = -1;
    std::uint16_t port = 0;
    std::thread thread;

    explicit OneShotServer(std::string response)
    {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(listenFd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = 0;
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::bind(listenFd,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd, 1), 0);
        socklen_t len = sizeof(addr);
        ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        port = ntohs(addr.sin_port);

        thread = std::thread([this, response = std::move(response)] {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0)
                return;
            char buf[4096];
            ::recv(fd, buf, sizeof(buf), 0); // drain the request
            ::send(fd, response.data(), response.size(),
                   MSG_NOSIGNAL);
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        });
    }

    ~OneShotServer()
    {
        ::close(listenFd);
        thread.join();
    }
};

} // namespace

TEST(HttpFetch, RoundTripAgainstRealServer)
{
    EchoServer server;
    HttpResponse resp = httpFetch("127.0.0.1", server.port(), "POST",
                                  "/v1/echo", "abc");
    EXPECT_EQ(resp.status, 200);
    JsonValue doc = jsonParse(resp.body);
    EXPECT_EQ(doc.find("method")->asString(), "POST");
    EXPECT_EQ(doc.find("bodyBytes")->asUInt64(), 3u);
}

TEST(HttpFetch, TruncatedResponseIsATransportError)
{
    // A worker killed mid-response: the advertised length never
    // arrives. That must surface as ServeError (retry/respawn), not
    // as a silently short body handed to the result codec.
    OneShotServer oneshot(
        "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
    try {
        httpFetch("127.0.0.1", oneshot.port, "POST", "/v1/point",
                  "{}");
        FAIL() << "expected ServeError";
    } catch (const ServeError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated response"),
                  std::string::npos)
            << e.what();
    }
}

TEST(HttpFetch, GarbageResponseIsATransportError)
{
    OneShotServer oneshot("complete nonsense, not HTTP at all");
    EXPECT_THROW(httpFetch("127.0.0.1", oneshot.port, "GET",
                           "/v1/healthz", ""),
                 ServeError);
}

TEST(HttpFetch, ConnectionRefusedIsATransportError)
{
    // Grab a port that is certainly closed: bind, look, release.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    std::uint16_t port = ntohs(addr.sin_port);
    ::close(fd);

    EXPECT_THROW(httpFetch("127.0.0.1", port, "GET", "/v1/healthz",
                           ""),
                 ServeError);
}
