/**
 * @file
 * Checkpoint subsystem tests: full-state save→restore→run must be
 * bit-identical to an uninterrupted run (unit level, file level, and
 * through the ExperimentRunner warmup-reuse fast path on the fig2 and
 * fig4 specs); warmup runs exactly once per unique configuration
 * group and disk caches serve later sweeps without any warmup; every
 * malformed checkpoint input raises an actionable CheckpointError,
 * never UB; restored caches replay identical hit/miss sequences.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bpred/fetch_engine.hh"
#include "mem/cache.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "sim/sweep_spec.hh"
#include "util/random.hh"

using namespace smt;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

SimConfig
smallConfig(const std::string &wl, EngineKind e, unsigned n, unsigned x,
            std::uint64_t seed = 0, Cycle warmup = 3'000,
            Cycle measure = 8'000)
{
    SimConfig cfg = table3Config(wl, e, n, x);
    cfg.warmupCycles = warmup;
    cfg.measureCycles = measure;
    cfg.seed = seed;
    return cfg;
}

std::vector<char>
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<char>(std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

/** Restore `path` into a fresh simulator of `cfg`; must throw a
 *  CheckpointError whose message names the problem actionably. */
void
expectRestoreFails(const SimConfig &cfg, const std::string &path,
                   const std::string &expect_substring = "checkpoint")
{
    Simulator sim(cfg);
    try {
        sim.restoreCheckpoint(path);
        FAIL() << "restore of " << path << " did not throw";
    } catch (const CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find(expect_substring),
                  std::string::npos)
            << "message was: " << e.what();
    }
}

/** One corrupted-byte variant of a valid checkpoint file. */
std::string
corruptedCopy(const std::vector<char> &valid, const std::string &name,
              std::size_t offset, char value)
{
    std::vector<char> bytes = valid;
    EXPECT_LT(offset, bytes.size());
    bytes[offset] = value;
    std::string path = tempPath(name);
    writeFileBytes(path, bytes);
    return path;
}

} // namespace

// ---------------------------------------------------------------------
// Round-trip fidelity
// ---------------------------------------------------------------------

TEST(CheckpointRoundTrip, FileSaveRestoreBitIdenticalAllEngines)
{
    // Every registered engine, zoo included: each engine's checkpoint
    // section (tag + payload) must round-trip bit-identically.
    for (EngineKind e : allEngines()) {
        SimConfig cfg = smallConfig("2_MIX", e, 2, 8, 42);
        std::string path = tempPath("roundtrip.ckpt");

        Simulator uninterrupted(cfg);
        uninterrupted.runWarmup();
        uninterrupted.saveCheckpoint(path);
        uninterrupted.runMeasure();

        Simulator restored(cfg);
        restored.restoreCheckpoint(path);
        restored.runMeasure();

        EXPECT_EQ(uninterrupted.registry().jsonString(),
                  restored.registry().jsonString())
            << "engine " << engineName(e);
        EXPECT_EQ(uninterrupted.registry().textString(),
                  restored.registry().textString())
            << "engine " << engineName(e);
        // The run did real work on both sides.
        EXPECT_GT(restored.registry().value("commit.insts"), 500.0);
        std::remove(path.c_str());
    }
}

TEST(CheckpointRoundTrip, InMemoryStringRoundTrip)
{
    SimConfig cfg = smallConfig("2_ILP", EngineKind::Stream, 1, 16, 7);

    Simulator a(cfg);
    a.runWarmup();
    std::string snapshot = a.saveCheckpointToString();
    a.runMeasure();

    Simulator b(cfg);
    b.restoreCheckpointFromString(snapshot);
    b.runMeasure();

    EXPECT_EQ(a.registry().jsonString(), b.registry().jsonString());
}

TEST(CheckpointRoundTrip, TraceReplayWorkloadRoundTrip)
{
    // Record a replayable trace, then checkpoint a replaying run:
    // the file position must be part of the restored state.
    std::string trace_path = tempPath("ckpt_replay.trc");
    SimConfig rec = smallConfig("gzip", EngineKind::GshareBtb, 1, 8);
    rec.recordPath = trace_path;
    rec.recordPadCycles = 2'000;
    {
        // Scoped: destruction closes the trace file for replay.
        Simulator recorder(rec);
        recorder.run();
    }

    SimConfig replay = rec;
    replay.recordPath.clear();
    replay.recordPadCycles = 0;
    replay.workload.traces = {trace_path};

    Simulator uninterrupted(replay);
    uninterrupted.runWarmup();
    std::string path = tempPath("replay_roundtrip.ckpt");
    uninterrupted.saveCheckpoint(path);
    uninterrupted.runMeasure();

    Simulator restored(replay);
    restored.restoreCheckpoint(path);
    restored.runMeasure();

    EXPECT_EQ(uninterrupted.registry().jsonString(),
              restored.registry().jsonString());
    std::remove(path.c_str());
    std::remove(trace_path.c_str());
}

TEST(CheckpointRoundTrip, RestoreRefusesRecordingRuns)
{
    SimConfig cfg = smallConfig("gzip", EngineKind::GshareBtb, 1, 8);
    std::string path = tempPath("refuse_record.ckpt");
    {
        Simulator sim(cfg);
        sim.runWarmup();
        sim.saveCheckpoint(path);
    }
    SimConfig recording = cfg;
    recording.recordPath = tempPath("refuse_record.trc");
    Simulator sim(recording);
    EXPECT_THROW(sim.restoreCheckpoint(path), CheckpointError);
    std::remove(path.c_str());
    std::remove(recording.recordPath.c_str());
}

// ---------------------------------------------------------------------
// Warmup-reuse fast path (the fig2/fig4 acceptance properties)
// ---------------------------------------------------------------------

namespace
{

/** Run a spec plain and with warmup reuse; both must match exactly. */
void
expectReuseBitIdentical(SweepSpec spec,
                        const std::string &checkpoint_dir,
                        SweepTiming &timing)
{
    SweepRequest plain_request = spec.makeRequest();
    plain_request.reuseWarmup = false;
    plain_request.checkpointDir.clear();
    auto plain = ExperimentRunner().run(plain_request).results;

    SweepRequest reuse_request = spec.makeRequest();
    reuse_request.reuseWarmup = true;
    reuse_request.checkpointDir = checkpoint_dir;
    SweepReport report = ExperimentRunner().run(reuse_request);
    const auto &reused = report.results;
    timing = report.timing;

    ASSERT_EQ(plain.size(), reused.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].ipfc, reused[i].ipfc) << "point " << i;
        EXPECT_EQ(plain[i].ipc, reused[i].ipc) << "point " << i;
        EXPECT_EQ(plain[i].statsJson, reused[i].statsJson)
            << "point " << i;
    }
    EXPECT_EQ(timing.gridPoints, reuse_request.points.size());
}

} // namespace

TEST(WarmupReuse, Fig2SpecBitIdenticalAndOneWarmupPerGroup)
{
    SweepSpec spec = SweepSpec::fromFile(defaultConfigDir() +
                                         "/fig2_single_thread.json");
    SweepTiming timing;
    expectReuseBitIdentical(spec, "", timing);
    // fig2's grid points all differ in core configuration, so every
    // group is its own warmup — exactly one warmup per unique
    // (workload, core-config) group, none reused, none direct.
    EXPECT_EQ(timing.warmupGroups, timing.gridPoints);
    EXPECT_EQ(timing.warmupRuns, timing.warmupGroups);
    EXPECT_EQ(timing.restoredRuns, 0u);
    EXPECT_EQ(timing.directRuns, 0u);
}

TEST(WarmupReuse, Fig4SpecBitIdenticalAndOneWarmupPerGroup)
{
    SweepSpec spec = SweepSpec::fromFile(defaultConfigDir() +
                                         "/fig4_two_threads.json");
    SweepTiming timing;
    expectReuseBitIdentical(spec, "", timing);
    EXPECT_EQ(timing.warmupGroups, timing.gridPoints);
    EXPECT_EQ(timing.warmupRuns, timing.warmupGroups);
    EXPECT_EQ(timing.restoredRuns, 0u);
}

TEST(WarmupReuse, DuplicateConfigPointsShareOneWarmup)
{
    // Two sweep blocks expanding to the identical configuration: the
    // group machinery must run the warmup once and restore it for
    // the duplicate, with bit-identical results.
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "dup",
        "warmupCycles": 3000,
        "measureCycles": 8000,
        "sweeps": [
            {"workloads": ["2_MIX"], "engines": ["stream"],
             "policies": ["1.8"]},
            {"workloads": ["2_MIX"], "engines": ["stream"],
             "policies": ["1.8"]}
        ]
    })");
    SweepTiming timing;
    expectReuseBitIdentical(spec, "", timing);
    EXPECT_EQ(timing.gridPoints, 2u);
    EXPECT_EQ(timing.warmupGroups, 1u);
    EXPECT_EQ(timing.warmupRuns, 1u);
    EXPECT_EQ(timing.restoredRuns, 1u);
}

TEST(WarmupReuse, DiskCacheServesLaterSweepsWithoutWarmup)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "cache",
        "warmupCycles": 3000,
        "measureCycles": 8000,
        "workloads": ["2_MIX"],
        "engines": ["gshare+BTB", "stream"],
        "policies": ["1.8"]
    })");
    std::string dir = ::testing::TempDir() + "ckpt_cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    SweepRequest request = spec.makeRequest();
    request.reuseWarmup = true;
    request.checkpointDir = dir;

    // Each run() call gets a fresh in-memory cache, so the second
    // sweep can only be served by the persisted disk tier.
    SweepReport first = ExperimentRunner().run(request);
    const auto &cold = first.results;
    EXPECT_EQ(first.timing.warmupRuns, 2u);
    EXPECT_EQ(first.timing.restoredRuns, 0u);

    // A second sweep over the same configurations restores every
    // point from the persisted snapshots: zero warmups, identical
    // results.
    SweepReport second = ExperimentRunner().run(request);
    const auto &warm = second.results;
    EXPECT_EQ(second.timing.warmupRuns, 0u);
    EXPECT_EQ(second.timing.restoredRuns, request.points.size());
    EXPECT_EQ(second.timing.cacheDiskHits + second.timing.cacheHits,
              second.timing.restoredRuns);
    EXPECT_GE(second.timing.cacheDiskHits, 1u);
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].ipfc, warm[i].ipfc);
        EXPECT_EQ(cold[i].ipc, warm[i].ipc);
        EXPECT_EQ(cold[i].statsJson, warm[i].statsJson);
    }
}

TEST(WarmupReuse, RecordingPointsBypassTheReusePath)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "rec",
        "warmupCycles": 2000,
        "measureCycles": 5000,
        "workloads": ["gzip"],
        "engines": ["gshare+BTB"],
        "policies": ["1.8"]
    })");
    SweepRequest request = spec.makeRequest();
    ASSERT_EQ(request.points.size(), 1u);
    request.points[0].recordPath = tempPath("reuse_bypass.trc");
    request.reuseWarmup = true;

    SweepReport report = ExperimentRunner().run(request);
    EXPECT_EQ(report.timing.directRuns, 1u);
    EXPECT_EQ(report.timing.warmupRuns, 0u);
    EXPECT_GT(report.results[0].ipc, 0.0);
    std::remove(request.points[0].recordPath.c_str());
}

TEST(RunnerGuards, DuplicateRecordPathsFailFast)
{
    SweepRequest request;
    request.warmupCycles = 1'000;
    request.measureCycles = 2'000;
    request.points = {
        {"gzip", EngineKind::GshareBtb, 1, 8},
        {"gzip", EngineKind::GskewFtb, 1, 8},
    };
    request.points[0].recordPath = tempPath("dup.trc");
    request.points[1].recordPath = request.points[0].recordPath;
    try {
        ExperimentRunner().run(request);
        FAIL() << "duplicate record paths did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("overwrite"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Malformed checkpoint inputs: actionable CheckpointErrors, never UB
// ---------------------------------------------------------------------

namespace
{

/** Shared valid checkpoint + config for the corruption tests. */
class MalformedCheckpoint : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg = new SimConfig(smallConfig("gzip", EngineKind::Stream, 1,
                                        8, 0, 500, 1'000));
        validPath = new std::string(tempPath("valid.ckpt"));
        Simulator sim(*cfg);
        sim.runWarmup();
        sim.saveCheckpoint(*validPath);
        valid = new std::vector<char>(readFileBytes(*validPath));
    }

    static void
    TearDownTestSuite()
    {
        std::remove(validPath->c_str());
        delete valid;
        delete validPath;
        delete cfg;
    }

    static SimConfig *cfg;
    static std::string *validPath;
    static std::vector<char> *valid;
};

SimConfig *MalformedCheckpoint::cfg = nullptr;
std::string *MalformedCheckpoint::validPath = nullptr;
std::vector<char> *MalformedCheckpoint::valid = nullptr;

/** Offset of the component-count field in the header. */
constexpr std::size_t countOffset = 8 + 2 + 2;

/** Offset of the config-key length field. */
constexpr std::size_t keyLenOffset = countOffset + 4;

} // namespace

TEST_F(MalformedCheckpoint, ValidFileRestores)
{
    Simulator sim(*cfg);
    sim.restoreCheckpoint(*validPath); // must not throw
    sim.runMeasure();
    EXPECT_GT(sim.registry().value("commit.insts"), 0.0);
}

TEST_F(MalformedCheckpoint, NonexistentFile)
{
    expectRestoreFails(*cfg, tempPath("does_not_exist.ckpt"),
                       "cannot open");
}

TEST_F(MalformedCheckpoint, EmptyFile)
{
    std::string path = tempPath("empty.ckpt");
    writeFileBytes(path, {});
    expectRestoreFails(*cfg, path, "too short");
}

TEST_F(MalformedCheckpoint, BadMagic)
{
    expectRestoreFails(
        *cfg, corruptedCopy(*valid, "badmagic.ckpt", 0, 'X'),
        "not a checkpoint file");
}

TEST_F(MalformedCheckpoint, VersionSkew)
{
    expectRestoreFails(*cfg,
                       corruptedCopy(*valid, "badver.ckpt", 8, 99),
                       "version");
}

TEST_F(MalformedCheckpoint, ReservedFieldNonzero)
{
    expectRestoreFails(*cfg,
                       corruptedCopy(*valid, "badres.ckpt", 10, 1),
                       "reserved");
}

TEST_F(MalformedCheckpoint, ZeroComponentCount)
{
    std::vector<char> bytes = *valid;
    for (int i = 0; i < 4; ++i)
        bytes[countOffset + i] = 0;
    std::string path = tempPath("zerocount.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path, "zero components");
}

TEST_F(MalformedCheckpoint, ComponentCountTooLow)
{
    std::vector<char> bytes = *valid;
    bytes[countOffset] = 1;
    for (int i = 1; i < 4; ++i)
        bytes[countOffset + i] = 0;
    std::string path = tempPath("lowcount.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path, "component-count mismatch");
}

TEST_F(MalformedCheckpoint, ComponentCountTooHigh)
{
    std::vector<char> bytes = *valid;
    bytes[countOffset] = static_cast<char>(
        static_cast<unsigned char>(bytes[countOffset]) + 5);
    std::string path = tempPath("highcount.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path, "component-count mismatch");
}

TEST_F(MalformedCheckpoint, HugeStringLength)
{
    std::vector<char> bytes = *valid;
    for (int i = 0; i < 4; ++i)
        bytes[keyLenOffset + i] = static_cast<char>(0xff);
    std::string path = tempPath("hugestr.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path, "format limit");
}

TEST_F(MalformedCheckpoint, TruncatedHeader)
{
    std::vector<char> bytes(valid->begin(), valid->begin() + 10);
    std::string path = tempPath("trunchdr.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path);
}

TEST_F(MalformedCheckpoint, TruncatedMidPayload)
{
    std::vector<char> bytes(valid->begin(),
                            valid->begin() + valid->size() / 2);
    std::string path = tempPath("truncmid.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path);
}

TEST_F(MalformedCheckpoint, MissingTrailer)
{
    std::vector<char> bytes(valid->begin(), valid->end() - 8);
    std::string path = tempPath("notrailer.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path, "trailer");
}

TEST_F(MalformedCheckpoint, CorruptTrailer)
{
    expectRestoreFails(
        *cfg,
        corruptedCopy(*valid, "badtrailer.ckpt", valid->size() - 4,
                      '?'),
        "trailer");
}

TEST_F(MalformedCheckpoint, TrailingGarbage)
{
    std::vector<char> bytes = *valid;
    bytes.push_back('!');
    std::string path = tempPath("garbage.ckpt");
    writeFileBytes(path, bytes);
    expectRestoreFails(*cfg, path, "trailing bytes");
}

TEST_F(MalformedCheckpoint, WrongComponentName)
{
    // The first section name ("core.rob") sits right after the
    // config key; corrupt its first character.
    std::uint32_t key_len =
        static_cast<unsigned char>((*valid)[keyLenOffset]) |
              (static_cast<unsigned char>((*valid)[keyLenOffset + 1])
               << 8) |
              (static_cast<unsigned char>((*valid)[keyLenOffset + 2])
               << 16) |
              (static_cast<unsigned char>((*valid)[keyLenOffset + 3])
               << 24);
    std::size_t name_offset = keyLenOffset + 4 + key_len + 4;
    expectRestoreFails(
        *cfg,
        corruptedCopy(*valid, "badname.ckpt", name_offset, 'X'),
        "order mismatch");
}

TEST_F(MalformedCheckpoint, ConfigKeyMismatchDifferentSeed)
{
    SimConfig other = *cfg;
    other.seed = 12345;
    expectRestoreFails(other, *validPath,
                       "different configuration");
}

TEST_F(MalformedCheckpoint, ConfigKeyMismatchDifferentEngine)
{
    SimConfig other =
        smallConfig("gzip", EngineKind::GshareBtb, 1, 8, 0, 500,
                    1'000);
    expectRestoreFails(other, *validPath,
                       "different configuration");
}

TEST_F(MalformedCheckpoint, ConfigKeyMismatchDifferentWarmup)
{
    SimConfig other = *cfg;
    other.warmupCycles += 1;
    expectRestoreFails(other, *validPath,
                       "different configuration");
}

TEST_F(MalformedCheckpoint, RestoreIntoUsedSimulatorRefused)
{
    Simulator sim(*cfg);
    sim.run();
    EXPECT_THROW(sim.restoreCheckpoint(*validPath), CheckpointError);
}

// ---------------------------------------------------------------------
// Codec-level range checks: corrupt index fields must error, not UB
// ---------------------------------------------------------------------

namespace
{

/** Round-trip one EngineCheckpoint through the codec; the restore of
 *  a tampered snapshot must throw, never index out of bounds. */
void
expectEngineCheckpointRejected(const EngineCheckpoint &c,
                               const std::string &expect_substring)
{
    std::ostringstream os(std::ios::binary);
    {
        CheckpointWriter w(os, "<codec-test>", "k");
        w.begin("x");
        c.save(w);
        w.end();
        w.finish();
    }
    std::istringstream is(std::move(os).str(), std::ios::binary);
    CheckpointReader r(is, "<codec-test>");
    r.begin("x");
    EngineCheckpoint d;
    try {
        d.restore(r);
        FAIL() << "tampered EngineCheckpoint restored";
    } catch (const CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find(expect_substring),
                  std::string::npos)
            << e.what();
    }
}

} // namespace

TEST(MalformedCodec, RasTosBeyondSnapshotEntriesRejected)
{
    ReturnAddressStack ras(16);
    ras.push(0x100);
    EngineCheckpoint c;
    c.ras = ras.snapshot();
    c.ras.tos = 99; // beyond the 16 serialized entries
    expectEngineCheckpointRejected(c, "top-of-stack");
}

TEST(MalformedCodec, RasTosWithoutEntriesRejected)
{
    EngineCheckpoint c;
    c.ras.tos = 7; // no stack copy at all
    expectEngineCheckpointRejected(c, "top-of-stack");
}

TEST(MalformedCodec, PathHistoryPositionOutOfRangeRejected)
{
    EngineCheckpoint c;
    c.path.pos = 200; // ring has PathHistory::maxDepth slots
    expectEngineCheckpointRejected(c, "out of range");
}

// ---------------------------------------------------------------------
// Cache restore regression: identical hit/miss sequences
// ---------------------------------------------------------------------

TEST(CacheRestore, RestoredCacheReplaysIdenticalHitMissSequence)
{
    CacheParams params{"L1T", 8 * 1024, 2, 64, 4, 1, 4};
    Cache warm(params, nullptr, 50);
    Cache restored(params, nullptr, 50);

    // Warm with a deterministic pseudo-random access pattern that
    // exercises fills, evictions and LRU reordering.
    Rng rng(0xc0ffee);
    Cycle now = 0;
    for (int i = 0; i < 4'000; ++i) {
        Addr addr = rng.below(64 * 1024) & ~Addr(7);
        warm.access(addr, (i % 7) == 0, now);
        now += 1 + (i % 3);
    }

    // Round-trip the warm cache state through the checkpoint codec.
    std::ostringstream os(std::ios::binary);
    {
        CheckpointWriter w(os, "<cache-test>", "cache-key");
        w.begin("cache");
        warm.save(w);
        w.end();
        w.finish();
    }
    std::istringstream is(std::move(os).str(), std::ios::binary);
    CheckpointReader r(is, "<cache-test>");
    EXPECT_EQ(r.configKey(), "cache-key");
    r.begin("cache");
    restored.restore(r);
    r.end();
    r.finish();

    EXPECT_EQ(warm.stats().accesses, restored.stats().accesses);
    EXPECT_EQ(warm.stats().misses, restored.stats().misses);
    EXPECT_EQ(warm.stats().evictions, restored.stats().evictions);

    // Both caches must now agree access-for-access: same latencies
    // (hits and misses in the same places) and the same LRU
    // victimization decisions throughout.
    Rng probe(0xfeedface);
    for (int i = 0; i < 4'000; ++i) {
        Addr addr = probe.below(64 * 1024) & ~Addr(7);
        bool write = (i % 5) == 0;
        Cycle lat_warm = warm.access(addr, write, now);
        Cycle lat_restored = restored.access(addr, write, now);
        ASSERT_EQ(lat_warm, lat_restored) << "access " << i;
        now += 1 + (i % 4);
    }
    EXPECT_EQ(warm.stats().misses, restored.stats().misses);
    EXPECT_EQ(warm.stats().evictions, restored.stats().evictions);
    EXPECT_EQ(warm.stats().mshrMerges, restored.stats().mshrMerges);
}

// ---------------------------------------------------------------------
// Spec-level wiring
// ---------------------------------------------------------------------

TEST(CheckpointSpec, CheckpointAfterWarmupSpecKeyParsesAndRuns)
{
    SweepSpec spec = SweepSpec::fromString(R"({
        "name": "speckey",
        "warmupCycles": 2000,
        "measureCycles": 5000,
        "checkpointAfterWarmup": true,
        "workloads": ["2_MIX"],
        "engines": ["stream"],
        "policies": ["1.8"]
    })");
    EXPECT_TRUE(spec.checkpointAfterWarmup);

    SweepReport report = runSpec(spec);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_GT(report.results[0].ipc, 0.0);
    EXPECT_EQ(report.timing.warmupRuns, 1u);
}

TEST(CheckpointSpec, BadCheckpointKeysRejected)
{
    EXPECT_THROW(SweepSpec::fromString(R"({
        "name": "bad", "measureCycles": 1000,
        "checkpointAfterWarmup": "yes",
        "workloads": ["gzip"], "policies": ["1.8"]
    })"),
                 SpecError);
    EXPECT_THROW(SweepSpec::fromString(R"({
        "name": "bad", "measureCycles": 1000,
        "checkpointDir": "",
        "workloads": ["gzip"], "policies": ["1.8"]
    })"),
                 SpecError);
}
