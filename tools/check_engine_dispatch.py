#!/usr/bin/env python3
"""Engine-dispatch lint: no EngineKind switchyards outside src/bpred.

The fetch-engine registry (src/bpred/engine_registry.hh) owns all
per-engine dispatch: names, parameter schemas, factories, presets and
checkpoint tags. Code outside src/bpred must resolve engines through
the registry, never by switching or comparing on EngineKind — so
adding an engine means adding one registration function, not touching
N call sites.

This lint greps src/ (excluding src/bpred/) and cli/ for dispatch
patterns:

    case EngineKind::
    == EngineKind::
    != EngineKind::

Plain uses of the enum (declarations, defaults like
`EngineKind engine = EngineKind::GshareBtb;`, passing kinds around)
stay legal; only branching on a specific kind is flagged.

Usage:  check_engine_dispatch.py [repo-root]
"""

import os
import re
import sys

DISPATCH = re.compile(
    r"(case\s+EngineKind::|[=!]=\s*EngineKind::|EngineKind::\w+\s*[=!]=)"
)

SCAN_DIRS = ("src", "cli")
EXCLUDE_PREFIX = os.path.join("src", "bpred") + os.sep
EXTENSIONS = (".cc", ".hh")


def scan(root):
    violations = []
    for scan_dir in SCAN_DIRS:
        for dirpath, _, filenames in os.walk(os.path.join(root, scan_dir)):
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if rel.startswith(EXCLUDE_PREFIX):
                    continue
                with open(path, encoding="utf-8") as f:
                    for lineno, line in enumerate(f, 1):
                        if DISPATCH.search(line):
                            violations.append(
                                f"{rel}:{lineno}: {line.strip()}"
                            )
    return violations


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    violations = scan(root)
    if violations:
        for v in violations:
            print(f"ENGINE DISPATCH: {v}")
        print(
            f"\n{len(violations)} EngineKind dispatch site(s) outside "
            "src/bpred. Route the decision through the engine "
            "registry (EngineRegistry / EngineDescriptor) instead."
        )
        return 1
    print("engine-dispatch lint OK: no EngineKind branches outside src/bpred")
    return 0


if __name__ == "__main__":
    sys.exit(main())
