#!/usr/bin/env python3
"""Merge a distributed-sweep journal into a BENCH_*.json record.

A distributed sweep (`smtsim sweep --checkpoint-dir DIR ...`, or the
serve daemon with {"distributed": {...}}) journals every completed
grid point to DIR/journal_<bench>.jsonl. Normally the coordinator
itself writes the final BENCH record when the sweep finishes; this
tool builds the same record offline from the journal alone — e.g. to
inspect a partially completed run, or to recover the record of a run
whose coordinator was killed after the last point but before the
write.

The per-point `results` array is rendered byte-identically to
smtsim's own writer (same key order, same 2-space indentation, same
%.17g float rendering, stats embedded verbatim), so diffing a merged
record against a single-process `smtsim <spec>` record compares equal
on every results[] byte. The timing blocks are derived from journaled
per-point seconds: the original coordinator wall clock is gone, so
`wallSeconds`/`sweepSeconds` are the journal's summed simulation time
(still shaped to pass tools/check_bench.py).

Usage:
  merge_bench.py ckpt/journal_fig2_single_thread.jsonl
  merge_bench.py --out BENCH_x.json --expect-complete ckpt/journal_x.jsonl
"""

import argparse
import json
import sys

SCHEMA = "smtfetch-journal-v1"

# (wire key, describe() renderer) in RunOverrides::writeJson order.
OVERRIDE_FIELDS = (
    ("ftqEntries", lambda v: f"ftq={v}"),
    ("fetchBufferSize", lambda v: f"fbuf={v}"),
    ("robEntries", lambda v: f"rob={v}"),
    ("longLoadPolicy", lambda v: f"llp={v}"),
    ("longLoadThreshold", lambda v: f"llthresh={v}"),
    ("predictorShift", lambda v: f"predshift={v}"),
)


class MergeFailure(Exception):
    pass


def jesc(s):
    """smt::jsonEscape, byte for byte."""
    out = []
    for ch in s:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\t":
            out.append("\\t")
        elif ord(ch) < 0x20:
            out.append("\\u%04x" % ord(ch))
        else:
            out.append(ch)
    return "".join(out)


def jnum(v):
    """JsonWriter::value(double): %.17g, non-finite becomes null."""
    if isinstance(v, bool):
        raise MergeFailure(f"expected a number, got {v!r}")
    if isinstance(v, int):
        return str(v)
    if v != v or v in (float("inf"), float("-inf")):
        return "null"
    return "%.17g" % v


class Writer:
    """smt::JsonWriter with indent_step=2, byte for byte."""

    def __init__(self):
        self.parts = []
        self.stack = []  # (is_array, items)
        self.pending_key = False

    def _newline(self):
        self.parts.append("\n" + "  " * len(self.stack))

    def _pre_value(self):
        if self.pending_key:
            self.pending_key = False
            return
        if self.stack:
            if self.stack[-1][1] > 0:
                self.parts.append(",")
            self._newline()
            self.stack[-1][1] += 1

    def begin_object(self):
        self._pre_value()
        self.parts.append("{")
        self.stack.append([False, 0])

    def end_object(self):
        had = self.stack[-1][1] > 0
        self.stack.pop()
        if had:
            self._newline()
        self.parts.append("}")

    def begin_array(self):
        self._pre_value()
        self.parts.append("[")
        self.stack.append([True, 0])

    def end_array(self):
        had = self.stack[-1][1] > 0
        self.stack.pop()
        if had:
            self._newline()
        self.parts.append("]")

    def key(self, k):
        if self.stack[-1][1] > 0:
            self.parts.append(",")
        self._newline()
        self.stack[-1][1] += 1
        self.parts.append(f'"{jesc(k)}": ')
        self.pending_key = True

    def raw(self, text):
        self._pre_value()
        self.parts.append(text)

    def string(self, v):
        self.raw(f'"{jesc(v)}"')

    def number(self, v):
        self.raw(jnum(v))

    def field(self, k, v):
        self.key(k)
        if isinstance(v, str):
            self.string(v)
        else:
            self.number(v)

    def text(self):
        return "".join(self.parts)


def describe_overrides(ov):
    return " ".join(fmt(ov[key]) for key, fmt in OVERRIDE_FIELDS if key in ov)


def write_result(jw, r):
    """sim/result_codec.cc writeResultJson from a wire-format result."""
    jw.begin_object()
    jw.field("workload", r["workload"])
    jw.field("engine", r["engine"])
    jw.field("policy", r["policy"])
    jw.field("fetchThreads", r["fetchThreads"])
    jw.field("fetchWidth", r["fetchWidth"])
    jw.field(
        "policyString",
        f'{r["policy"]}.{r["fetchThreads"]}.{r["fetchWidth"]}',
    )
    overrides = r.get("overrides")
    if overrides:
        jw.field("variant", describe_overrides(overrides))
        jw.key("overrides")
        jw.begin_object()
        for key, _ in OVERRIDE_FIELDS:
            if key in overrides:
                jw.field(key, overrides[key])
        jw.end_object()
    jw.field("warmupCycles", r["warmupCycles"])
    jw.field("measureCycles", r["measureCycles"])
    jw.field("ipfc", r["ipfc"])
    jw.field("ipc", r["ipc"])
    jw.key("stats")
    jw.raw(r["statsJson"] if r["statsJson"] else "{}")
    jw.end_object()


def load_journal(path):
    with open(path) as f:
        lines = f.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise MergeFailure("journal is empty")
    header = json.loads(lines[0])
    if header.get("schema") != SCHEMA:
        raise MergeFailure(
            f"journal schema is {header.get('schema')!r}, expected {SCHEMA!r}"
        )
    entries = {}
    for n, line in enumerate(lines[1:], start=2):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if n == len(lines):
                print(
                    f"note: dropping torn final journal line {n}",
                    file=sys.stderr,
                )
                continue
            raise MergeFailure(f"journal line {n} is not valid JSON")
        idx = entry["point"]
        if not isinstance(idx, int) or idx < 0 or idx >= header["points"]:
            raise MergeFailure(
                f"journal line {n}: point index {idx!r} outside the "
                f"{header['points']}-point grid"
            )
        entries.setdefault(idx, entry["outcome"])  # first write wins
    return header, entries


def merge(header, entries):
    jw = Writer()
    jw.begin_object()
    jw.field("schema", "smtfetch-bench-v1")
    jw.field("bench", header["bench"])

    outcomes = [entries[i] for i in sorted(entries)]
    results = [o["result"] for o in outcomes]
    warmup_s = sum(o["warmupSeconds"] for o in outcomes)
    measure_s = sum(o["measureSeconds"] for o in outcomes)
    # The coordinator's wall clock did not survive the kill; the
    # journal's summed simulation time is the best available stand-in.
    wall_s = warmup_s + measure_s

    sim_cycles = sum(r["measureCycles"] for r in results)
    insts = sum(r["instsCommitted"] for r in results)
    skipped = sum(r["cyclesSkipped"] for r in results)
    sleeps = sum(r["sleepEvents"] for r in results)
    max_span = max((r["maxSkipSpan"] for r in results), default=0)

    jw.key("throughput")
    jw.begin_object()
    jw.field("wallSeconds", float(wall_s))
    jw.field("measureSeconds", float(measure_s))
    jw.field("simulatedCycles", sim_cycles)
    jw.field("committedInsts", insts)
    jw.field("mcyclesPerSecond", sim_cycles / 1e6 / measure_s if measure_s > 0 else 0.0)
    jw.field("mips", insts / 1e6 / measure_s if measure_s > 0 else 0.0)
    jw.field("cyclesSkipped", skipped)
    jw.field("sleepEvents", sleeps)
    jw.field("maxSkipSpan", max_span)
    jw.end_object()

    served = [o["served"] for o in outcomes]
    warmups = served.count("warmup")
    restored = served.count("restored")
    direct = served.count("direct")
    disk_hits = sum(1 for o in outcomes if o.get("diskHit"))
    avg_warmup = warmup_s / warmups if warmups > 0 else 0.0
    baseline = wall_s + avg_warmup * restored

    jw.key("warmupReuse")
    jw.begin_object()
    jw.field("gridPoints", len(results))
    jw.field("warmupGroups", header["warmupGroups"])
    jw.field("warmupRuns", warmups)
    jw.field("restoredRuns", restored)
    jw.field("directRuns", direct)
    jw.field("cacheHits", restored - disk_hits)
    jw.field("cacheDiskHits", disk_hits)
    jw.field("cacheEvictions", 0)
    jw.field("warmupSeconds", float(warmup_s))
    jw.field("sweepSeconds", float(wall_s))
    jw.field("estimatedBaselineSeconds", float(baseline))
    jw.field("estimatedSpeedup", baseline / wall_s if wall_s > 0 else 1.0)
    jw.end_object()

    jw.key("results")
    jw.begin_array()
    for r in results:
        write_result(jw, r)
    jw.end_array()
    jw.end_object()
    return jw.text() + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("journal", help="journal_<bench>.jsonl to merge")
    parser.add_argument(
        "--out",
        help="output record path (default: BENCH_<bench>.json in the "
        "working directory)",
    )
    parser.add_argument(
        "--expect-complete",
        action="store_true",
        help="fail unless every grid point of the journaled request "
        "is present (a finished sweep)",
    )
    args = parser.parse_args()

    try:
        header, entries = load_journal(args.journal)
        missing = header["points"] - len(entries)
        if missing and args.expect_complete:
            raise MergeFailure(
                f"journal covers {len(entries)} of {header['points']} "
                f"points ({missing} missing) — resume the sweep first"
            )
        if missing:
            print(
                f"note: partial journal, merging {len(entries)} of "
                f"{header['points']} points",
                file=sys.stderr,
            )
        text = merge(header, entries)
    except (MergeFailure, OSError, KeyError, TypeError, ValueError) as e:
        print(f"FAIL {args.journal}: {e}", file=sys.stderr)
        return 1

    out = args.out or f"BENCH_{header['bench']}.json"
    with open(out, "w") as f:
        f.write(text)
    print(f"wrote {out}: {len(entries)} results from {args.journal}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
