#!/usr/bin/env python3
"""Simulation-throughput delta report / gate between bench records.

Compares the `throughput` block (Mcycles/s, MIPS, wall seconds) of a
current BENCH_*.json record against the same-named record from a
previous run (the perf-smoke CI job feeds it the prior run's artifact
via the actions cache). By default every outcome exits 0 and big
regressions only print a loud warning. Two gating modes:

  --max-regress-pct PCT   exit nonzero when Mcycles/s drops more than
                          PCT percent below the previous record (the
                          perf-smoke CI gate; pick PCT generously —
                          CI wall clocks are noisy)
  --fail-below RATIO      exit nonzero when current/previous Mcycles/s
                          drops below RATIO (local A/B runs on a
                          quiet host)

Usage:
  compare_throughput.py --previous prev/BENCH_fig2.json \\
      --max-regress-pct 50 current/BENCH_fig2.json
"""

import argparse
import json
import os
import sys

METRICS = ("mcyclesPerSecond", "mips")


def load_throughput(path):
    """The record's throughput block, or None if it has none (e.g. a
    record produced before the block existed — skippable, not fatal:
    check_bench --require-throughput is the schema gate)."""
    with open(path) as f:
        doc = json.load(f)
    block = doc.get("throughput")
    return block if isinstance(block, dict) else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_*.json from this run")
    parser.add_argument(
        "--previous",
        required=True,
        help="same bench's record from the previous run; a missing "
        "file is reported and skipped (first run, cache miss)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=0.0,
        metavar="RATIO",
        help="exit nonzero when current/previous Mcycles/s drops "
        "below RATIO (default 0: warn only)",
    )
    parser.add_argument(
        "--max-regress-pct",
        type=float,
        default=0.0,
        metavar="PCT",
        help="exit nonzero when Mcycles/s regresses by more than PCT "
        "percent against the previous record (default 0: warn only)",
    )
    args = parser.parse_args()

    fail_ratio = args.fail_below
    if args.max_regress_pct > 0.0:
        fail_ratio = max(fail_ratio, 1.0 - args.max_regress_pct / 100.0)

    if not os.path.exists(args.previous):
        print(
            f"NOTE {args.current}: no previous record at "
            f"{args.previous} — nothing to compare (first run?)"
        )
        return 0

    cur = load_throughput(args.current)
    prev = load_throughput(args.previous)
    if cur is None or prev is None:
        which = args.current if cur is None else args.previous
        print(f"NOTE {which}: record has no 'throughput' block — "
              "nothing to compare")
        return 0

    status = 0
    for metric in METRICS:
        c, p = cur.get(metric), prev.get(metric)
        if not c or not p:
            which = "current" if not c else "previous"
            print(f"NOTE {metric}: {which} record lacks it, skipping")
            continue
        ratio = c / p
        line = (
            f"{metric}: {p:.3f} -> {c:.3f} "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
        if metric == "mcyclesPerSecond" and fail_ratio > 0.0 and (
            ratio < fail_ratio
        ):
            print(f"FAIL {line} — below the gating ratio "
                  f"{fail_ratio:.2f} (--max-regress-pct "
                  f"{args.max_regress_pct}, --fail-below "
                  f"{args.fail_below})")
            status = 1
        elif ratio < 0.8:
            print(f"WARN {line} — large slowdown (noisy host, or a "
                  f"real hot-loop regression?)")
        else:
            print(f"OK   {line}")
    print(
        f"wall {prev.get('wallSeconds', 0):.2f}s -> "
        f"{cur.get('wallSeconds', 0):.2f}s, measure "
        f"{prev.get('measureSeconds', 0):.2f}s -> "
        f"{cur.get('measureSeconds', 0):.2f}s"
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
