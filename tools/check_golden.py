#!/usr/bin/env python3
"""Golden-stats regression check.

Re-runs an experiment spec through smtsim and diffs the produced
BENCH record's IPFC/IPC against a committed golden record bit-exactly
(the simulator is deterministic; any drift is a behaviour change that
must be explicit). Run with --update to regenerate the golden file
after an intentional change:

    python3 tools/check_golden.py --smtsim build/smtsim \\
        --spec configs/fig2_single_thread.json \\
        --golden tests/golden/BENCH_fig2_single_thread.json --update
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile


def result_key(r):
    return (
        r["workload"],
        r["engine"],
        r.get("policyString", ""),
        r.get("variant", ""),
    )


def load_results(path, engines=None):
    with open(path) as f:
        doc = json.load(f)
    results = {}
    for r in doc.get("results", []):
        if engines is not None and r["engine"] not in engines:
            continue
        key = result_key(r)
        if key in results:
            raise SystemExit(f"{path}: duplicate result key {key}")
        results[key] = r
    return doc, results


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smtsim", required=True)
    ap.add_argument("--spec", required=True)
    ap.add_argument("--golden", required=True)
    ap.add_argument(
        "--update",
        action="store_true",
        help="regenerate the golden file instead of diffing",
    )
    ap.add_argument(
        "--engines",
        help="comma-separated engine names: only these engines' "
        "results are diffed (and, with --update, committed), so a "
        "spec sweeping the full zoo can pin just the paper trio",
    )
    args = ap.parse_args()
    engines = args.engines.split(",") if args.engines else None

    with tempfile.TemporaryDirectory(prefix="golden.") as tmp:
        proc = subprocess.run(
            [args.smtsim, "--quiet", "--out-dir", tmp, args.spec],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(
                f"smtsim failed with exit code {proc.returncode}"
            )

        produced = [
            f for f in os.listdir(tmp) if f.startswith("BENCH_")
        ]
        if len(produced) != 1:
            raise SystemExit(
                f"expected exactly one BENCH record, got {produced}"
            )
        produced_path = os.path.join(tmp, produced[0])

        if args.update:
            os.makedirs(os.path.dirname(args.golden), exist_ok=True)
            if engines is None:
                shutil.copy(produced_path, args.golden)
            else:
                with open(produced_path) as f:
                    doc = json.load(f)
                doc["results"] = [
                    r
                    for r in doc.get("results", [])
                    if r["engine"] in engines
                ]
                # The sweep-wide accounting blocks describe the full
                # grid, not the committed subset.
                doc.pop("throughput", None)
                doc.pop("warmupReuse", None)
                with open(args.golden, "w") as f:
                    json.dump(doc, f, indent=2)
                    f.write("\n")
            print(f"updated {args.golden}")
            return

        _, got = load_results(produced_path, engines)
        _, want = load_results(args.golden, engines)

        failures = []
        for key in want:
            if key not in got:
                failures.append(f"missing result {key}")
        for key in got:
            if key not in want:
                failures.append(f"unexpected result {key}")
        for key in sorted(set(got) & set(want)):
            for metric in ("ipfc", "ipc"):
                g, w = got[key][metric], want[key][metric]
                if g != w:
                    failures.append(
                        f"{key} {metric}: got {g!r}, golden {w!r}"
                    )

        if failures:
            for f in failures:
                print(f"GOLDEN MISMATCH: {f}")
            print(
                f"\n{len(failures)} mismatch(es) against "
                f"{args.golden}.\nIf the change is intentional, "
                f"regenerate with:\n  python3 tools/check_golden.py "
                f"--smtsim {args.smtsim} --spec {args.spec} "
                f"--golden {args.golden}"
                + (f" --engines {args.engines}" if args.engines else "")
                + " --update"
            )
            raise SystemExit(1)

        print(
            f"golden OK: {len(want)} results bit-identical to "
            f"{args.golden}"
        )


if __name__ == "__main__":
    main()
