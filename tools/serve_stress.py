#!/usr/bin/env python3
"""Exercise a running `smtsim serve` daemon from concurrent clients.

Modes:
  submit   submit one spec, poll to completion, print (or save) the
           BENCH record
  cancel   submit one spec, cancel it mid-flight, verify the daemon
           reports a clean `cancelled` terminal state
  stress   N concurrent clients submit a mix of specs and poll their
           own sweeps; verifies every client finishes, clients that
           submitted the same spec got byte-identical results, and
           reports the daemon's snapshot-cache counters (a popular
           warmup config should have been simulated once, ever)

Examples:
  serve_stress.py --port 8040 submit configs/fig2_single_thread.json
  serve_stress.py --port 8040 stress --clients 8 \\
      configs/fig2_single_thread.json configs/fig4_two_threads.json
  serve_stress.py --port 8040 cancel configs/fig8_mem_wide.json

Only the Python standard library is used, so the script runs anywhere
the daemon does.
"""

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request


class ServeError(Exception):
    pass


class Client:
    """A thin JSON-over-HTTP client for one serve daemon."""

    def __init__(self, host, port, timeout=30.0):
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    def request(self, method, path, body=None):
        data = body.encode() if isinstance(body, str) else body
        req = urllib.request.Request(
            self.base + path, data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as e:
            payload = e.read()
            try:
                return e.code, json.loads(payload)
            except json.JSONDecodeError:
                return e.code, {"error": payload.decode(errors="replace")}
        except OSError as e:
            raise ServeError(f"cannot reach {self.base}: {e}") from e

    def submit(self, spec_text):
        status, doc = self.request("POST", "/v1/sweeps", spec_text)
        if status != 201:
            raise ServeError(f"submit failed ({status}): {doc.get('error')}")
        return doc["id"]

    def status(self, sweep_id):
        status, doc = self.request("GET", f"/v1/sweeps/{sweep_id}")
        if status != 200:
            raise ServeError(f"status failed ({status}): {doc.get('error')}")
        return doc

    def record(self, sweep_id):
        status, doc = self.request("GET", f"/v1/sweeps/{sweep_id}/record")
        if status != 200:
            raise ServeError(f"record failed ({status}): {doc.get('error')}")
        return doc

    def cancel(self, sweep_id):
        status, doc = self.request("POST", f"/v1/sweeps/{sweep_id}/cancel")
        if status != 200:
            raise ServeError(f"cancel failed ({status}): {doc.get('error')}")
        return doc

    def daemon_status(self):
        status, doc = self.request("GET", "/v1/status")
        if status != 200:
            raise ServeError(f"/v1/status failed ({status})")
        return doc

    def poll(self, sweep_id, timeout=600.0, interval=0.1):
        """Poll until the sweep is terminal; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(sweep_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() > deadline:
                raise ServeError(
                    f"sweep {sweep_id} still {doc['state']} after "
                    f"{timeout:.0f}s ({doc['completedPoints']}/"
                    f"{doc['totalPoints']} points)"
                )
            time.sleep(interval)


def load_specs(paths):
    specs = []
    for path in paths:
        with open(path) as f:
            text = f.read()
        json.loads(text)  # fail fast on malformed spec files
        specs.append((path, text))
    return specs


def run_submit(client, args):
    [(path, text)] = load_specs(args.specs[:1])
    sweep_id = client.submit(text)
    print(f"submitted {path} as sweep {sweep_id}")
    final = client.poll(sweep_id, timeout=args.timeout)
    if final["state"] != "done":
        raise ServeError(
            f"sweep {sweep_id} ended {final['state']}: "
            f"{final.get('error', '')}"
        )
    record = client.record(sweep_id)
    print(
        f"done: {len(record['results'])} results, "
        f"warmupRuns={final['warmupRuns']} "
        f"restoredRuns={final['restoredRuns']}"
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(record, f, indent=2)
        print(f"record written to {args.out}")


def run_cancel(client, args):
    [(path, text)] = load_specs(args.specs[:1])
    sweep_id = client.submit(text)
    print(f"submitted {path} as sweep {sweep_id}; cancelling")
    client.cancel(sweep_id)
    final = client.poll(sweep_id, timeout=args.timeout)
    if final["state"] != "cancelled":
        raise ServeError(
            f"expected a cancelled sweep, daemon reports {final['state']}"
        )
    print(
        f"cancelled cleanly: {final['completedPoints']} points finished, "
        f"{final['cancelledPoints']} skipped"
    )


def run_stress(client, args):
    specs = load_specs(args.specs)
    before = client.daemon_status()["cache"]

    results = [None] * args.clients
    errors = [None] * args.clients

    def one_client(i):
        path, text = specs[i % len(specs)]
        try:
            sweep_id = client.submit(text)
            final = client.poll(sweep_id, timeout=args.timeout)
            if final["state"] != "done":
                raise ServeError(
                    f"sweep {sweep_id} ({path}) ended {final['state']}: "
                    f"{final.get('error', '')}"
                )
            record = client.record(sweep_id)
            results[i] = (path, final, record)
        except ServeError as e:
            errors[i] = e

    threads = [
        threading.Thread(target=one_client, args=(i,))
        for i in range(args.clients)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start

    failed = [e for e in errors if e is not None]
    for e in failed:
        print(f"FAIL: {e}")
    if failed:
        raise ServeError(f"{len(failed)}/{args.clients} clients failed")

    # Clients that submitted the same spec must have byte-identical
    # result sets: scheduling order and cache hits are invisible.
    by_spec = {}
    for path, final, record in results:
        by_spec.setdefault(path, []).append(
            (final, json.dumps(record["results"], sort_keys=True))
        )
    for path, runs in by_spec.items():
        baseline = runs[0][1]
        for final, dumped in runs[1:]:
            if dumped != baseline:
                raise ServeError(
                    f"clients running {path} disagree on results"
                )
        warmups = sum(final["warmupRuns"] for final, _ in runs)
        restored = sum(final["restoredRuns"] for final, _ in runs)
        print(
            f"{path}: {len(runs)} client(s), identical results, "
            f"warmupRuns={warmups} restoredRuns={restored}"
        )

    after = client.daemon_status()["cache"]
    delta = {
        k: after[k] - before[k]
        for k in ("hits", "diskHits", "misses", "insertions", "evictions")
    }
    print(
        f"{args.clients} clients finished in {elapsed:.1f}s; "
        f"cache delta: {delta}"
    )
    if args.expect_warmups is not None:
        total_warmups = sum(
            final["warmupRuns"] for _, final, _ in results
        )
        if total_warmups != args.expect_warmups:
            raise ServeError(
                f"expected exactly {args.expect_warmups} warmup runs "
                f"across all clients, measured {total_warmups}"
            )
        print(f"warmup-once check passed ({total_warmups} warmup runs)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-sweep completion timeout in seconds",
    )
    sub = parser.add_subparsers(dest="mode", required=True)

    p_submit = sub.add_parser("submit", help="submit one spec and wait")
    p_submit.add_argument("specs", nargs=1, help="spec file")
    p_submit.add_argument("--out", help="write the BENCH record here")

    p_cancel = sub.add_parser("cancel", help="submit then cancel a spec")
    p_cancel.add_argument("specs", nargs=1, help="spec file")

    p_stress = sub.add_parser(
        "stress", help="N concurrent clients over a spec mix"
    )
    p_stress.add_argument("specs", nargs="+", help="spec files to mix")
    p_stress.add_argument("--clients", type=int, default=8)
    p_stress.add_argument(
        "--expect-warmups",
        type=int,
        default=None,
        help="fail unless exactly this many warmups ran across all "
        "clients (asserts cross-client snapshot sharing)",
    )

    args = parser.parse_args()
    client = Client(args.host, args.port, timeout=min(args.timeout, 60.0))
    try:
        {"submit": run_submit, "cancel": run_cancel, "stress": run_stress}[
            args.mode
        ](client, args)
    except ServeError as e:
        print(f"FAIL: {e}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
