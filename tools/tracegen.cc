/**
 * @file
 * tracegen: generate a trace file straight from a synthetic
 * benchmark profile, without running the cycle-level pipeline.
 *
 * Useful for producing replay inputs (and text fixtures) much faster
 * than `smtsim --record`, since only the correct-path generator runs.
 * The output's extension picks the encoding: `.strc` is the text
 * format, anything else the packed binary format.
 *
 * Usage: tracegen [options] <benchmark> <out.trc|out.strc>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/profiles.hh"
#include "workload/program_builder.hh"
#include "workload/trace.hh"
#include "workload/trace_file.hh"

using namespace smt;

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tracegen [options] <benchmark> <out.trc|out.strc>\n"
        "\n"
        "Generates a correct-path trace file from a synthetic\n"
        "benchmark profile. Replay it with a {\"trace\": PATH}\n"
        "workload in an smtsim spec.\n"
        "\n"
        "options:\n"
        "  --insts N      records to generate (default 1000000)\n"
        "  --seed N       image-construction seed (default 0)\n"
        "  --code-base A  code base address (default 0x400000)\n"
        "  --data-base A  data base address (default 0x40000000)\n"
        "  --list         list the benchmark profiles and exit\n"
        "  -h, --help     show this help\n");
}

std::uint64_t
parseNum(const char *flag, const char *text)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "tracegen: %s expects a number, got \"%s\"\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t insts = 1'000'000;
    std::uint64_t seed = 0;
    Addr code_base = 0x400000;
    Addr data_base = 0x40000000;
    std::string benchmark, out_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "tracegen: %s expects an argument\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            for (const auto &p : allProfiles())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else if (arg == "--insts") {
            insts = parseNum("--insts", next());
        } else if (arg == "--seed") {
            seed = parseNum("--seed", next());
        } else if (arg == "--code-base") {
            code_base = parseNum("--code-base", next());
        } else if (arg == "--data-base") {
            data_base = parseNum("--data-base", next());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "tracegen: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 1;
        } else if (benchmark.empty()) {
            benchmark = arg;
        } else if (out_path.empty()) {
            out_path = arg;
        } else {
            usage(stderr);
            return 1;
        }
    }

    if (benchmark.empty() || out_path.empty() || insts == 0) {
        usage(stderr);
        return 1;
    }

    bool known = false;
    for (const auto &p : allProfiles())
        known = known || p.name == benchmark;
    if (!known) {
        std::fprintf(stderr,
                     "tracegen: unknown benchmark \"%s\" (see "
                     "--list)\n",
                     benchmark.c_str());
        return 1;
    }

    try {
        BenchmarkImage img = buildImage(profileFor(benchmark),
                                        code_base, data_base, seed);
        TraceFileHeader hdr;
        hdr.benchmark = img.profile.name;
        hdr.seed = seed;
        hdr.codeBase = img.program.base();
        hdr.dataBase = img.dataBase;

        SyntheticTraceStream stream(img);
        TraceWriter writer(out_path, hdr);
        stream.setRecorder(&writer);
        for (std::uint64_t i = 0; i < insts; ++i)
            stream.next();
        writer.close();

        const TraceStats &s = stream.stats();
        std::printf("wrote %s: %llu records (%s), avg block %.2f, "
                    "avg stream %.2f\n",
                    out_path.c_str(),
                    (unsigned long long)writer.recordsWritten(),
                    traceFileIsText(out_path) ? "text" : "binary",
                    s.avgBlockSize(), s.avgStreamLength());
    } catch (const TraceFileError &e) {
        std::fprintf(stderr, "tracegen: %s\n", e.what());
        return 2;
    }
    return 0;
}
