/**
 * @file
 * tracegen: generate a trace file straight from a synthetic
 * benchmark profile, without running the cycle-level pipeline.
 *
 * Useful for producing replay inputs (and text fixtures) much faster
 * than `smtsim --record`, since only the correct-path generator runs.
 * The output's extension picks the encoding: `.strc` is the text
 * format, anything else the packed binary format.
 *
 * Usage: tracegen [options] <benchmark> <out.trc|out.strc>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/corpus.hh"
#include "workload/profiles.hh"
#include "workload/program_builder.hh"
#include "workload/trace.hh"
#include "workload/trace_file.hh"

using namespace smt;

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tracegen [options] <benchmark> <out.trc|out.strc>\n"
        "\n"
        "Generates a correct-path trace file from a synthetic\n"
        "benchmark profile. Replay it with a {\"trace\": PATH}\n"
        "workload in an smtsim spec.\n"
        "\n"
        "options:\n"
        "  --insts N      records to generate (default 1000000)\n"
        "  --seed N       image-construction seed (default 0)\n"
        "  --code-base A  code base address (default 0x400000)\n"
        "  --data-base A  data base address (default 0x40000000)\n"
        "  --format V     binary format: 1 or 2 (default 2)\n"
        "  --codec C      v2 block codec: raw, deflate or auto\n"
        "                 (default auto: deflate when built with\n"
        "                 zlib, raw otherwise)\n"
        "  --block-records N\n"
        "                 v2 records per block (default %u)\n"
        "  --manifest P   append the trace to corpus manifest P,\n"
        "                 creating it if needed\n"
        "  --list         list the benchmark profiles and exit\n"
        "  -h, --help     show this help\n",
        traceBlockRecordsDefault);
}

std::uint64_t
parseNum(const char *flag, const char *text)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "tracegen: %s expects a number, got \"%s\"\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

/**
 * Add (or refresh) the freshly-written trace in a corpus manifest,
 * creating the manifest when it does not exist yet. The listed path
 * is manifest-relative when the trace sits under the manifest's
 * directory, so the corpus stays relocatable.
 */
void
appendToManifest(const std::string &manifest_path,
                 const std::string &trace_path)
{
    CorpusManifest manifest;
    manifest.path = manifest_path;
    if (std::FILE *f = std::fopen(manifest_path.c_str(), "rb")) {
        std::fclose(f);
        manifest = loadCorpusManifest(manifest_path);
    }

    std::string listed = trace_path;
    std::size_t slash = manifest_path.find_last_of('/');
    if (slash != std::string::npos) {
        std::string dir = manifest_path.substr(0, slash + 1);
        if (listed.rfind(dir, 0) == 0)
            listed = listed.substr(dir.size());
    }

    CorpusEntry entry = describeTrace(trace_path, listed);
    bool replaced = false;
    for (auto &e : manifest.entries) {
        if (e.path == entry.path ||
            e.benchmark == entry.benchmark) {
            e = entry;
            replaced = true;
            break;
        }
    }
    if (!replaced)
        manifest.entries.push_back(entry);
    writeCorpusManifest(manifest);
    std::printf("%s %s in %s (%s)\n",
                replaced ? "updated" : "added", listed.c_str(),
                manifest_path.c_str(), entry.sha256.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t insts = 1'000'000;
    std::uint64_t seed = 0;
    Addr code_base = 0x400000;
    Addr data_base = 0x40000000;
    TraceWriteOptions options;
    std::string benchmark, out_path, manifest_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "tracegen: %s expects an argument\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            for (const auto &p : allProfiles())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else if (arg == "--insts") {
            insts = parseNum("--insts", next());
        } else if (arg == "--seed") {
            seed = parseNum("--seed", next());
        } else if (arg == "--code-base") {
            code_base = parseNum("--code-base", next());
        } else if (arg == "--data-base") {
            data_base = parseNum("--data-base", next());
        } else if (arg == "--format") {
            std::uint64_t v = parseNum("--format", next());
            if (v != traceFormatV1 && v != traceFormatV2) {
                std::fprintf(stderr,
                             "tracegen: --format expects 1 or 2, "
                             "got %llu\n",
                             (unsigned long long)v);
                return 1;
            }
            options.version = static_cast<std::uint16_t>(v);
        } else if (arg == "--codec") {
            std::string c = next();
            if (c == "raw") {
                options.codec = traceCodecRaw;
            } else if (c == "deflate") {
                options.codec = traceCodecDeflate;
            } else if (c == "auto") {
                options.codec = traceCodecAuto;
            } else {
                std::fprintf(stderr,
                             "tracegen: --codec expects raw, "
                             "deflate or auto, got \"%s\"\n",
                             c.c_str());
                return 1;
            }
        } else if (arg == "--block-records") {
            std::uint64_t n = parseNum("--block-records", next());
            if (n == 0 || n > (1u << 22)) {
                std::fprintf(stderr,
                             "tracegen: --block-records must be in "
                             "[1, %u], got %llu\n",
                             1u << 22, (unsigned long long)n);
                return 1;
            }
            options.blockRecords = static_cast<std::uint32_t>(n);
        } else if (arg == "--manifest") {
            manifest_path = next();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "tracegen: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 1;
        } else if (benchmark.empty()) {
            benchmark = arg;
        } else if (out_path.empty()) {
            out_path = arg;
        } else {
            usage(stderr);
            return 1;
        }
    }

    if (benchmark.empty() || out_path.empty() || insts == 0) {
        usage(stderr);
        return 1;
    }

    bool known = false;
    for (const auto &p : allProfiles())
        known = known || p.name == benchmark;
    if (!known) {
        std::fprintf(stderr,
                     "tracegen: unknown benchmark \"%s\" (see "
                     "--list)\n",
                     benchmark.c_str());
        return 1;
    }

    try {
        BenchmarkImage img = buildImage(profileFor(benchmark),
                                        code_base, data_base, seed);
        TraceFileHeader hdr;
        hdr.benchmark = img.profile.name;
        hdr.seed = seed;
        hdr.codeBase = img.program.base();
        hdr.dataBase = img.dataBase;

        SyntheticTraceStream stream(img);
        TraceWriter writer(out_path, hdr, options);
        stream.setRecorder(&writer);
        for (std::uint64_t i = 0; i < insts; ++i)
            stream.next();
        writer.close();

        const TraceStats &s = stream.stats();
        std::printf("wrote %s: %llu records (%s), avg block %.2f, "
                    "avg stream %.2f\n",
                    out_path.c_str(),
                    (unsigned long long)writer.recordsWritten(),
                    traceFileIsText(out_path) ? "text" : "binary",
                    s.avgBlockSize(), s.avgStreamLength());

        if (!manifest_path.empty())
            appendToManifest(manifest_path, out_path);
    } catch (const TraceFileError &e) {
        std::fprintf(stderr, "tracegen: %s\n", e.what());
        return 2;
    } catch (const CorpusError &e) {
        std::fprintf(stderr, "tracegen: %s\n", e.what());
        return 2;
    }
    return 0;
}
