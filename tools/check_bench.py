#!/usr/bin/env python3
"""Validate BENCH_*.json records emitted by smtsim / the bench binaries.

Checks the smtfetch-bench-v1 schema, rejects NaN/zero metrics and
empty stats, validates the optional `warmupReuse` and `throughput`
blocks (require them with --require-warmup-reuse /
--require-throughput), checks each result's per-thread IPC and
shared-cache interference counters against its totals (every access
and miss must be attributed to exactly one thread), and (with
--spec) cross-checks that every grid point the experiment spec
expands to is present in the record, so a silently dropped series
fails CI.

Usage:
  check_bench.py BENCH_fig4_two_threads.json
  check_bench.py --spec configs/fig4_two_threads.json BENCH_fig4_two_threads.json
  check_bench.py --min-results 4 BENCH_*.json
"""

import argparse
import itertools
import json
import math
import sys

SCHEMA = "smtfetch-bench-v1"

RESULT_REQUIRED_KEYS = (
    "workload",
    "engine",
    "policy",
    "fetchThreads",
    "fetchWidth",
    "policyString",
    "warmupCycles",
    "measureCycles",
    "ipfc",
    "ipc",
    "stats",
)

# Keyed by the normalized spelling engineKindFromString accepts
# (lowercased, '+', '_', '-' and spaces stripped). Mirrors the C++
# EngineRegistry (src/bpred/engine_registry.cc); `smtsim
# --list-engines --quiet` prints the authoritative canonical list.
ENGINE_NAMES = {
    "gshare": "gshare+BTB",
    "gsharebtb": "gshare+BTB",
    "gskew": "gskew+FTB",
    "gskewftb": "gskew+FTB",
    "stream": "stream",
    "tage": "tage",
    "perfectbp": "perfect-bp",
    "oraclebp": "perfect-bp",
    "perfectl1i": "perfect-l1i",
    "perfecticache": "perfect-l1i",
    "oraclel1i": "perfect-l1i",
    "adaptive": "adaptive",
    "adaptiverate": "adaptive",
    "adaptivefetch": "adaptive",
}

# The paper's engine trio ("paper") and the full zoo ("all"), in
# registry order.
PAPER_ENGINES = ["gshare+BTB", "gskew+FTB", "stream"]
ALL_ENGINES = PAPER_ENGINES + ["tage", "perfect-bp", "perfect-l1i", "adaptive"]


def normalize_engine(name):
    key = name.lower().translate(str.maketrans("", "", "+_- "))
    if key not in ENGINE_NAMES:
        raise CheckFailure(f"unknown engine {name!r} in spec")
    return ENGINE_NAMES[key]


class CheckFailure(Exception):
    pass


def bad_number(value):
    return (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or math.isnan(value)
        or math.isinf(value)
    )


def check_result(i, result):
    for key in RESULT_REQUIRED_KEYS:
        if key not in result:
            raise CheckFailure(f"results[{i}] is missing '{key}'")
    for key in ("ipfc", "ipc"):
        value = result[key]
        if bad_number(value):
            raise CheckFailure(f"results[{i}].{key} is not a finite number: {value!r}")
        if value <= 0:
            raise CheckFailure(
                f"results[{i}].{key} must be positive, got {value!r} "
                f"({result['workload']}/{result['engine']}/{result['policyString']})"
            )
    if not isinstance(result["stats"], dict) or not result["stats"]:
        raise CheckFailure(f"results[{i}].stats must be a non-empty object")
    if result["measureCycles"] <= 0:
        raise CheckFailure(f"results[{i}].measureCycles must be positive")
    if result["engine"] not in ALL_ENGINES:
        raise CheckFailure(
            f"results[{i}].engine {result['engine']!r} is not a "
            f"registered engine (known: {', '.join(ALL_ENGINES)})"
        )


MAX_THREADS = 8

# Shared caches whose per-thread attribution counters the stats dump
# carries (mirrors MemoryHierarchy::registerStats).
CACHE_PREFIXES = ("mem.l1i", "mem.l1d", "mem.l2")


def workload_thread_count(workload):
    """Thread count a workload name runs with.

    Mirrors workloadThreadCount in src/workload/workloads.cc:
    "trace:a,b,c" runs one thread per comma-separated path, Table 2
    mixes ("4_MIX") encode their roster size in the numeric prefix,
    and bare benchmark names are single-threaded.
    """
    if workload.startswith("trace:"):
        return workload.count(",") + 1
    head = workload.split("_", 1)[0]
    if head != workload and head.isdigit():
        return int(head)
    return 1


def check_per_thread(i, result):
    """Check per-thread IPC and cache-interference attribution.

    The per-thread keys are registered per configured thread, so a
    record is also rejected when a result carries counters for
    threads beyond its workload's roster.
    """
    stats = result["stats"]
    threads = workload_thread_count(result["workload"])

    ipc_keys = [f"sim.thread{t}.ipc" for t in range(threads)]
    if any(k in stats for k in ipc_keys):
        missing = [k for k in ipc_keys if k not in stats]
        if missing:
            raise CheckFailure(
                f"results[{i}] ({result['workload']}) has only some "
                f"per-thread IPC stats (missing {missing})"
            )
        for t in range(threads, MAX_THREADS):
            if f"sim.thread{t}.ipc" in stats:
                raise CheckFailure(
                    f"results[{i}] ({result['workload']}) runs "
                    f"{threads} thread(s) but reports "
                    f"sim.thread{t}.ipc"
                )
        parts = [stats[k] for k in ipc_keys]
        if any(bad_number(v) or v < 0 for v in parts):
            raise CheckFailure(
                f"results[{i}] has a non-finite or negative "
                "per-thread IPC"
            )
        total = stats.get("sim.ipc", result["ipc"])
        if abs(sum(parts) - total) > 1e-6 * max(1.0, abs(total)):
            raise CheckFailure(
                f"results[{i}] ({result['workload']}): per-thread "
                f"IPCs sum to {sum(parts)!r} but sim.ipc is "
                f"{total!r}"
            )

    for prefix in CACHE_PREFIXES:
        if f"{prefix}.thread0.accesses" not in stats:
            continue
        for kind in ("accesses", "misses"):
            total_key = f"{prefix}.{kind}"
            if total_key not in stats:
                raise CheckFailure(
                    f"results[{i}] has {prefix}.thread0.{kind} but "
                    f"no {total_key}"
                )
            parts = []
            for t in range(MAX_THREADS):
                key = f"{prefix}.thread{t}.{kind}"
                if t < threads and key not in stats:
                    raise CheckFailure(
                        f"results[{i}] ({result['workload']}) runs "
                        f"{threads} thread(s) but lacks {key}"
                    )
                if t >= threads and key in stats:
                    raise CheckFailure(
                        f"results[{i}] ({result['workload']}) runs "
                        f"{threads} thread(s) but reports {key}"
                    )
                parts.append(stats.get(key, 0))
            if sum(parts) != stats[total_key]:
                raise CheckFailure(
                    f"results[{i}] ({result['workload']}): "
                    f"{prefix}.thread*.{kind} sum to {sum(parts)} "
                    f"but {total_key} is {stats[total_key]} (every "
                    f"{kind[:-2]} must be attributed to exactly one "
                    "thread)"
                )


def check_metrics(metrics):
    if not isinstance(metrics, dict):
        raise CheckFailure("'metrics' must be an object")
    for name, value in metrics.items():
        if bad_number(value):
            raise CheckFailure(f"metric '{name}' is not a finite number: {value!r}")


THROUGHPUT_SECONDS = ("wallSeconds", "measureSeconds")
THROUGHPUT_COUNTS = ("simulatedCycles", "committedInsts")
THROUGHPUT_RATES = ("mcyclesPerSecond", "mips")

# Cycle-skip telemetry: legitimately zero when skipping is off
# (--no-cycle-skip / "cycleSkip": false), so unlike the fields above
# these are validated as non-negative, plus mutual consistency.
THROUGHPUT_SKIP_COUNTS = ("cyclesSkipped", "sleepEvents", "maxSkipSpan")


def check_throughput_skip(tp, require):
    """Validate the cycle-skip counters of a throughput block."""
    missing = [k for k in THROUGHPUT_SKIP_COUNTS if k not in tp]
    if missing:
        if require:
            raise CheckFailure(
                f"throughput block lacks cycle-skip counters "
                f"{missing} (was it produced by an smtsim new enough "
                "to fast-forward quiescent cycles?)"
            )
        if len(missing) != len(THROUGHPUT_SKIP_COUNTS):
            raise CheckFailure(
                f"throughput block has only some cycle-skip counters "
                f"(missing {missing})"
            )
        return
    for key in THROUGHPUT_SKIP_COUNTS:
        value = tp[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise CheckFailure(
                f"throughput.{key} must be a non-negative integer, "
                f"got {value!r}"
            )
    skipped, events, span = (tp[k] for k in THROUGHPUT_SKIP_COUNTS)
    if (skipped == 0) != (events == 0) or (skipped == 0) != (span == 0):
        raise CheckFailure(
            f"inconsistent cycle-skip counters: cyclesSkipped={skipped}, "
            f"sleepEvents={events}, maxSkipSpan={span} (all three must "
            "be zero or all nonzero)"
        )
    if events > skipped:
        raise CheckFailure(
            f"throughput.sleepEvents ({events}) exceeds cyclesSkipped "
            f"({skipped}): every fast-forward jumps at least one cycle"
        )
    if span > skipped:
        raise CheckFailure(
            f"throughput.maxSkipSpan ({span}) exceeds cyclesSkipped "
            f"({skipped})"
        )
    if skipped > tp.get("simulatedCycles", 0):
        raise CheckFailure(
            f"throughput.cyclesSkipped ({skipped}) exceeds "
            f"simulatedCycles ({tp.get('simulatedCycles')})"
        )


def check_throughput(tp, results, require_skip=False):
    """Validate the simulation-throughput block a timed sweep emits."""
    if not isinstance(tp, dict):
        raise CheckFailure("'throughput' must be an object")
    for key in THROUGHPUT_SECONDS + THROUGHPUT_COUNTS + THROUGHPUT_RATES:
        value = tp.get(key)
        if bad_number(value):
            raise CheckFailure(
                f"throughput.{key} is not a finite number: {value!r}"
            )
        if value <= 0:
            raise CheckFailure(
                f"throughput.{key} must be positive, got {value!r}"
            )
    for key in THROUGHPUT_COUNTS:
        if not isinstance(tp[key], int):
            raise CheckFailure(
                f"throughput.{key} must be an integer, got {tp[key]!r}"
            )
    check_throughput_skip(tp, require_skip)
    if results:
        cycles = [r.get("measureCycles") for r in results]
        if any(bad_number(c) for c in cycles):
            raise CheckFailure(
                "cannot cross-check throughput.simulatedCycles: a "
                "result's measureCycles is not a finite number"
            )
        expected_cycles = sum(cycles)
        if tp["simulatedCycles"] != expected_cycles:
            raise CheckFailure(
                f"throughput.simulatedCycles is {tp['simulatedCycles']} "
                f"but the results' measure windows sum to {expected_cycles}"
            )


WARMUP_REUSE_COUNTS = (
    "gridPoints",
    "warmupGroups",
    "warmupRuns",
    "restoredRuns",
    "directRuns",
)

WARMUP_REUSE_SECONDS = (
    "warmupSeconds",
    "sweepSeconds",
    "estimatedBaselineSeconds",
    "estimatedSpeedup",
)

# Snapshot-cache counters: absent in records written before the
# shared-cache runner, validated when present (all-or-nothing).
WARMUP_REUSE_CACHE_COUNTS = ("cacheHits", "cacheDiskHits", "cacheEvictions")


def check_warmup_reuse_cache(reuse):
    """Validate the snapshot-cache counters of a warmupReuse block."""
    missing = [k for k in WARMUP_REUSE_CACHE_COUNTS if k not in reuse]
    if missing:
        if len(missing) != len(WARMUP_REUSE_CACHE_COUNTS):
            raise CheckFailure(
                f"warmupReuse has only some snapshot-cache counters "
                f"(missing {missing})"
            )
        return
    for key in WARMUP_REUSE_CACHE_COUNTS:
        value = reuse[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise CheckFailure(
                f"warmupReuse.{key} must be a non-negative integer, "
                f"got {value!r}"
            )
    served = reuse["cacheHits"] + reuse["cacheDiskHits"]
    if served != reuse["restoredRuns"]:
        raise CheckFailure(
            f"warmupReuse cache accounting: cacheHits + cacheDiskHits is "
            f"{served} but restoredRuns is {reuse['restoredRuns']} (every "
            "restored point is served by exactly one cache tier)"
        )


def check_warmup_reuse(reuse, result_count):
    """Validate the warmup-sharing timing block a checkpointed sweep emits."""
    if not isinstance(reuse, dict):
        raise CheckFailure("'warmupReuse' must be an object")
    for key in WARMUP_REUSE_COUNTS:
        value = reuse.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise CheckFailure(
                f"warmupReuse.{key} must be a non-negative integer, got {value!r}"
            )
    for key in WARMUP_REUSE_SECONDS:
        value = reuse.get(key)
        if bad_number(value) or value < 0:
            raise CheckFailure(
                f"warmupReuse.{key} must be a non-negative finite number, "
                f"got {value!r}"
            )
    if reuse["gridPoints"] != result_count:
        raise CheckFailure(
            f"warmupReuse.gridPoints is {reuse['gridPoints']} but the record "
            f"has {result_count} results"
        )
    if reuse["warmupGroups"] > reuse["gridPoints"]:
        raise CheckFailure("warmupReuse.warmupGroups exceeds gridPoints")
    if reuse["warmupRuns"] > reuse["warmupGroups"]:
        raise CheckFailure("warmupReuse.warmupRuns exceeds warmupGroups")
    # journaledPoints: points a resumed distributed sweep satisfied
    # from its journal without simulating anything. Only emitted when
    # nonzero, so plain records stay byte-identical.
    journaled = reuse.get("journaledPoints", 0)
    if not isinstance(journaled, int) or isinstance(journaled, bool) or journaled < 0:
        raise CheckFailure(
            f"warmupReuse.journaledPoints must be a non-negative integer, "
            f"got {journaled!r}"
        )
    covered = (
        reuse["warmupRuns"]
        + reuse["restoredRuns"]
        + reuse["directRuns"]
        + journaled
    )
    if covered != reuse["gridPoints"]:
        raise CheckFailure(
            f"warmupReuse accounting covers {covered} points, expected "
            f"{reuse['gridPoints']} (warmupRuns + restoredRuns + directRuns "
            "+ journaledPoints)"
        )
    if reuse["estimatedSpeedup"] < 1.0 - 1e-9:
        raise CheckFailure(
            f"warmupReuse.estimatedSpeedup is {reuse['estimatedSpeedup']}, "
            "expected >= 1 (the baseline includes every skipped warmup)"
        )
    if reuse["estimatedBaselineSeconds"] < reuse["sweepSeconds"] - 1e-9:
        raise CheckFailure(
            "warmupReuse.estimatedBaselineSeconds is smaller than sweepSeconds"
        )
    check_warmup_reuse_cache(reuse)


def expand_spec(spec):
    """Expand a grid spec the way SweepSpec::expand does.

    Returns the list of expected (workload, engine, threads, width)
    series, one per grid point (selection policies and override
    variants multiply point counts but keep the same series key, so
    they are folded into a count per series).
    """
    if spec.get("type", "grid").lower() != "grid":
        return None

    def listify(value):
        return value if isinstance(value, list) else [value]

    sweeps = spec.get("sweeps")
    if sweeps is None:
        keys = ("workloads", "engines", "policies", "selection", "overrides")
        sweeps = [{k: spec[k] for k in keys if k in spec}]

    points = []
    for sweep in sweeps:
        workloads = listify(sweep["workloads"])
        engines = []
        for engine in listify(sweep.get("engines", ["paper"])):
            if engine.lower() == "all":
                engines.extend(ALL_ENGINES)
            elif engine.lower() == "paper":
                engines.extend(PAPER_ENGINES)
            else:
                engines.append(normalize_engine(engine))
        policies = []
        for policy in listify(sweep["policies"]):
            if isinstance(policy, dict):
                policies.append((policy["threads"], policy["width"]))
            else:
                n, x = policy.split(".")
                policies.append((int(n), int(x)))
        selections = listify(sweep.get("selection", ["icount"]))
        override_variants = 1
        for values in sweep.get("overrides", {}).values():
            override_variants *= len(listify(values))
        for workload, engine, (n, x) in itertools.product(
            workloads, engines, policies
        ):
            points.append(
                ((workload, engine, n, x), len(selections) * override_variants)
            )
    return points


def check_against_spec(doc, spec_path):
    with open(spec_path) as f:
        spec = json.load(f)
    expected = expand_spec(spec)
    if expected is None:
        if doc.get("results"):
            raise CheckFailure(
                f"{spec_path} is not a grid spec but the record has results"
            )
        return 0

    seen = {}
    for result in doc["results"]:
        key = (
            result["workload"],
            result["engine"],
            result["fetchThreads"],
            result["fetchWidth"],
        )
        seen[key] = seen.get(key, 0) + 1

    total = 0
    counted = {}
    for key, count in expected:
        counted[key] = counted.get(key, 0) + count
        total += count
    for key, count in counted.items():
        if seen.get(key, 0) != count:
            workload, engine, n, x = key
            raise CheckFailure(
                f"series {workload}/{engine}/{n}.{x}: expected {count} "
                f"result(s), found {seen.get(key, 0)} (missing series?)"
            )
    if len(doc["results"]) != total:
        raise CheckFailure(
            f"expected {total} results from {spec_path}, found {len(doc['results'])}"
        )
    return total


def check_file(path, args):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise CheckFailure(f"not valid JSON: {e}")

    if doc.get("schema") != SCHEMA:
        raise CheckFailure(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not doc.get("bench"):
        raise CheckFailure("missing 'bench' name")

    results = doc.get("results")
    if not isinstance(results, list):
        raise CheckFailure("'results' must be an array")
    metrics = doc.get("metrics", {})
    check_metrics(metrics)
    if not results and not metrics:
        raise CheckFailure("record has neither results nor metrics")

    if args.require_warmup_reuse and "warmupReuse" not in doc:
        raise CheckFailure(
            "record has no 'warmupReuse' block (was the sweep run with "
            "--checkpoint-warmup / \"checkpointAfterWarmup\"?)"
        )
    if "warmupReuse" in doc:
        check_warmup_reuse(doc["warmupReuse"], len(results))

    if args.require_throughput and "throughput" not in doc:
        raise CheckFailure(
            "record has no 'throughput' block (was it produced by an "
            "smtsim new enough to time its sweeps?)"
        )
    if "throughput" in doc:
        check_throughput(
            doc["throughput"], results, require_skip=args.require_throughput
        )

    for i, result in enumerate(results):
        check_result(i, result)
        check_per_thread(i, result)
    if len(results) < args.min_results:
        raise CheckFailure(
            f"expected at least {args.min_results} results, found {len(results)}"
        )

    expected = ""
    if args.spec:
        total = check_against_spec(doc, args.spec)
        expected = f", matches {args.spec} ({total} grid points)"
    return f"{len(results)} results, {len(metrics)} metrics{expected}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json records")
    parser.add_argument(
        "--min-results",
        type=int,
        default=0,
        help="fail unless the record has at least this many results",
    )
    parser.add_argument(
        "--spec",
        help="experiment spec to cross-check the record's grid against "
        "(use with a single record file)",
    )
    parser.add_argument(
        "--require-warmup-reuse",
        action="store_true",
        help="fail unless the record carries the warmup-sharing timing "
        "block a checkpointed sweep emits",
    )
    parser.add_argument(
        "--require-throughput",
        action="store_true",
        help="fail unless the record carries the simulation-throughput "
        "block (wall seconds, Mcycles/s, MIPS) and its values are "
        "finite and nonzero",
    )
    args = parser.parse_args()

    if args.spec and len(args.files) != 1:
        parser.error("--spec cross-checks exactly one record file")

    failed = False
    for path in args.files:
        try:
            summary = check_file(path, args)
        except (CheckFailure, OSError, KeyError, TypeError, ValueError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
        else:
            print(f"OK   {path}: {summary}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
