/**
 * @file
 * Custom benchmark example: define a synthetic benchmark profile from
 * scratch through the public API (rather than using the SPECint2000
 * models), build its image, inspect the generated program, and run it
 * through the SMT core alone and paired with gzip.
 */

#include <iostream>

#include "sim/simulator.hh"
#include "workload/trace.hh"

using namespace smt;

int
main()
{
    // 1. Describe a pointer-chasing database-like workload.
    BenchmarkProfile prof;
    prof.name = "mydb";
    prof.benchClass = BenchClass::MEM;
    prof.avgBlockSize = 6.5;
    prof.codeKB = 48;
    prof.workingSetKB = 8192;
    prof.loadFrac = 0.30;
    prof.storeFrac = 0.10;
    prof.chaseFrac = 0.35;
    prof.stackFrac = 0.20;
    prof.strideFrac = 0.25;
    prof.hotKB = 64;
    prof.hotProb = 0.75;
    prof.depWindow = 6;

    // 2. Build and inspect the static image.
    BenchmarkImage img = buildImage(prof, 0x400000, 0x40000000);
    std::cout << "program: " << img.program.numInsts()
              << " instructions, " << img.program.numBlocks()
              << " blocks, " << img.program.numFunctions()
              << " functions\n";

    SyntheticTraceStream probe(img);
    for (int i = 0; i < 200'000; ++i)
        probe.next();
    std::cout << "dynamic avg basic block: "
              << probe.stats().avgBlockSize()
              << " insts; avg stream length: "
              << probe.stats().avgStreamLength() << " insts\n\n";

    // 3. Run it through the full SMT core. Custom profiles are used
    //    via a custom WorkloadSpec... but buildWorkload resolves
    //    benchmarks by name, so for custom profiles drive the core
    //    directly:
    CoreParams params;
    params.numThreads = 1;
    params.engine = EngineKind::Stream;
    params.fetchThreads = 1;
    params.fetchWidth = 16;
    SmtCore core(params);
    SyntheticTraceStream trace(img);
    core.setThread(0, &trace, &img);
    core.run(50'000);
    core.resetStats();
    core.run(200'000);
    std::cout << "standalone: IPC=" << core.stats().ipc()
              << " IPFC=" << core.stats().ipfc()
              << " mispredict rate="
              << core.stats().branchMispredictRate() << '\n';

    // 4. Pair it with gzip on a 2-thread SMT.
    CoreParams smt_params;
    smt_params.numThreads = 2;
    smt_params.engine = EngineKind::Stream;
    smt_params.fetchThreads = 1;
    smt_params.fetchWidth = 16;
    SmtCore smt(smt_params);
    BenchmarkImage gzip_img =
        buildImage(profileFor("gzip"), 0x1400000, 0x50000000);
    SyntheticTraceStream t0(gzip_img), t1(img);
    smt.setThread(0, &t0, &gzip_img);
    smt.setThread(1, &t1, &img);
    smt.run(50'000);
    smt.resetStats();
    smt.run(200'000);
    std::cout << "with gzip:  total IPC=" << smt.stats().ipc()
              << " (gzip " << smt.stats().threadIpc(0) << ", mydb "
              << smt.stats().threadIpc(1) << ")\n";
    return 0;
}
