/**
 * @file
 * Quickstart: simulate the paper's gzip+twolf workload (2_MIX) on the
 * stream fetch engine with the ICOUNT.1.16 policy the paper proposes,
 * and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "sim/simulator.hh"

int
main()
{
    using namespace smt;

    // 1. Pick a Table 2 workload and a fetch architecture.
    SimConfig cfg = table3Config("2_MIX", EngineKind::Stream,
                                 /*fetch_threads=*/1,
                                 /*fetch_width=*/16);
    cfg.warmupCycles = 20'000;
    cfg.measureCycles = 100'000;

    // 2. Run.
    Simulator sim(cfg);
    sim.run();

    // 3. Inspect results.
    const SimStats &s = sim.stats();
    std::cout << "Config: " << cfg.describe() << "\n\n";
    std::cout << "Fetch throughput (IPFC): " << s.ipfc() << "\n";
    std::cout << "Commit throughput (IPC): " << s.ipc() << "\n";
    std::cout << "Wrong-path fetched:      " << s.wrongPathFetched
              << " of " << s.instsFetched << "\n";
    std::cout << "Branch mispredict rate:  "
              << s.branchMispredictRate() << "\n";
    for (unsigned t = 0; t < cfg.core.numThreads; ++t) {
        std::cout << "  thread " << t << " ("
                  << cfg.workload.benchmarks[t]
                  << ") IPC: " << s.threadIpc(t) << "\n";
    }
    return 0;
}
