/**
 * @file
 * Policy comparison: reproduce the paper's core argument on one
 * workload in a few seconds — for a memory-bound mix, fetching from
 * two threads (ICOUNT.2.8) raises fetch throughput but LOWERS commit
 * throughput, while the paper's proposal (a high-performance fetch
 * engine with ICOUNT.1.16) wins on both complexity and IPC.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/table.hh"

using namespace smt;

int
main()
{
    const std::string workload = "4_MIX";

    struct Point
    {
        EngineKind engine;
        unsigned n, x;
        const char *note;
    };
    const Point points[] = {
        {EngineKind::GshareBtb, 1, 8, "conventional, single thread"},
        {EngineKind::GshareBtb, 2, 8, "conventional SMT answer"},
        {EngineKind::Stream, 1, 16, "the paper's proposal"},
        {EngineKind::Stream, 2, 16, "all-in-one (expensive)"},
    };

    // One request, one run: the runner schedules the whole grid
    // across the worker pool.
    SweepRequest request;
    request.warmupCycles = 40'000;
    request.measureCycles = 200'000;
    for (const auto &p : points)
        request.points.push_back(
            GridPoint{workload, p.engine, p.n, p.x});
    SweepReport report = ExperimentRunner().run(request);

    TextTable t({"engine", "policy", "IPFC", "IPC", "note"});
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const auto &r = report.results[i];
        t.addRow({engineName(points[i].engine), r.policyDotString(),
                  TextTable::num(r.ipfc), TextTable::num(r.ipc),
                  points[i].note});
    }
    t.print(std::cout,
            "Fetch policies on " + workload +
                " (memory-bound mix)");

    std::cout << "\nThe stream engine at ICOUNT.1.16 needs one "
                 "I-cache port, one predictor port\nand no merge "
                 "network, yet matches or beats the dual-ported "
                 "2.X designs.\n";
    return 0;
}
