/**
 * @file
 * Fetch policy explorer: run any Table 2 workload (or single
 * benchmark) against any engine and N.X policy from the command line
 * and print the full statistics breakdown.
 *
 * Usage:
 *   fetch_policy_explorer [workload] [engine] [N] [X] [policy]
 *   fetch_policy_explorer 4_MIX stream 1 16 icount
 */

#include <cstring>
#include <iostream>

#include "sim/simulator.hh"

using namespace smt;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "2_MIX";
    std::string engine_name = argc > 2 ? argv[2] : "stream";
    unsigned n = argc > 3 ? std::atoi(argv[3]) : 1;
    unsigned x = argc > 4 ? std::atoi(argv[4]) : 16;
    std::string policy_name = argc > 5 ? argv[5] : "icount";

    EngineKind engine = EngineKind::Stream;
    if (engine_name == "gshare")
        engine = EngineKind::GshareBtb;
    else if (engine_name == "ftb" || engine_name == "gskew")
        engine = EngineKind::GskewFtb;
    else if (engine_name != "stream")
        fatal("unknown engine '%s' (gshare|gskew|stream)",
              engine_name.c_str());

    PolicyKind policy = policy_name == "rr" ? PolicyKind::RoundRobin
                                            : PolicyKind::ICount;

    SimConfig cfg = table3Config(workload, engine, n, x, policy);
    std::cout << describeTable3(cfg.core) << '\n';

    Simulator sim(cfg);
    sim.run();

    const SimStats &s = sim.stats();
    s.dump(std::cout);
    std::cout << '\n';
    for (unsigned t = 0; t < cfg.core.numThreads; ++t) {
        std::cout << "thread " << t << " ("
                  << cfg.workload.benchmarks[t]
                  << "): IPC=" << s.threadIpc(t) << '\n';
    }
    std::cout << '\n';
    sim.core().memory().dumpStats(std::cout);

    const EngineStats &es = sim.core().engine().stats();
    std::cout << "\nengine " << sim.core().engine().name()
              << ": blockPredictions=" << es.blockPredictions
              << " tableHitRate="
              << (es.blockPredictions
                      ? double(es.tableHits) / es.blockPredictions
                      : 0)
              << " recoveries=" << es.recoveries << '\n';
    return 0;
}
