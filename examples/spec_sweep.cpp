/**
 * @file
 * Experiment-spec example: define a sweep as a JSON document (the
 * same schema the smtsim CLI and configs/ use), expand it, run it on
 * all host threads, and walk the typed results — no bench binary or
 * config file required.
 */

#include <iostream>

#include "sim/sweep_spec.hh"
#include "util/table.hh"

using namespace smt;

int
main()
{
    // A small ablation: how does the stream engine's ICOUNT.1.16
    // respond to FTQ depth on a mixed workload? Short windows keep
    // this example fast; configs/ablation_ftq.json is the full sweep.
    const char *text = R"({
        "name": "spec_sweep_example",
        "warmupCycles": 5000,
        "measureCycles": 25000,
        "seed": 0,
        "workloads": ["2_MIX"],
        "engines": ["stream"],
        "policies": ["1.16"],
        "overrides": { "ftqEntries": [1, 2, 4, 8] }
    })";

    SweepSpec spec;
    try {
        spec = SweepSpec::fromString(text);
    } catch (const SpecError &e) {
        std::cerr << "spec error: " << e.what() << '\n';
        return 1;
    }

    std::cout << "Expanded " << spec.expand().size()
              << " grid points from the spec\n\n";

    auto results = runSpec(spec).results;

    TextTable t({"variant", "IPFC", "IPC"});
    for (const auto &r : results)
        t.addRow({r.overrides.describe(), TextTable::num(r.ipfc),
                  TextTable::num(r.ipc)});
    t.print(std::cout, "FTQ depth vs throughput (2_MIX, stream 1.16)");

    std::cout << "\nDeeper FTQs decouple prediction from fetch; the "
                 "paper's choice of 4\nentries sits at the knee.\n";
    return 0;
}
