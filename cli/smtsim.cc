/**
 * @file
 * smtsim: run JSON experiment specs through the simulator. Each spec
 * names workloads, fetch engines, N.X policies, parameter overrides
 * and measurement windows; smtsim expands the grid, runs it across
 * host threads and writes the BENCH_<name>.json record the bench
 * binaries emit for the same spec.
 *
 * Usage: smtsim [options] <spec.json | spec-name> ...
 *        smtsim serve [options]   (long-running sweep daemon)
 *        smtsim sweep [options] <spec> (distributed resumable sweep)
 *        smtsim worker [options]  (one sweep worker process)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bpred/engine_registry.hh"
#include "serve/distributed.hh"
#include "serve/server.hh"
#include "serve/worker.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "sim/sweep_spec.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/trace_file.hh"

using namespace smt;

namespace
{

struct Options
{
    bool list = false;
    bool listEngines = false;
    bool validate = false;
    bool quiet = false;
    bool writeJson = true;
    std::string outDir;
    std::string recordPath;
    Cycle recordPad = 0;
    std::string saveCheckpointPath;
    std::string restoreCheckpointPath;
    bool checkpointWarmup = false;
    std::string checkpointDir;
    bool noCycleSkip = false;
    std::optional<Cycle> warmup;
    std::optional<Cycle> measure;
    std::optional<std::uint64_t> seed;
    std::vector<std::string> specs;
};

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: smtsim [options] <spec.json | spec-name> ...\n"
        "       smtsim serve [options]\n"
        "       smtsim sweep [options] <spec> ...\n"
        "       smtsim worker [options]\n"
        "\n"
        "Runs JSON experiment specs (see configs/) through the\n"
        "simulator and writes BENCH_<name>.json records.\n"
        "(`smtsim serve --help` describes the sweep daemon;\n"
        "`smtsim sweep --help` the distributed, resumable sweep\n"
        "runner and its `worker` processes.)\n"
        "\n"
        "A bare spec name (no '/' and no '.json') is resolved\n"
        "against $SMTFETCH_CONFIG_DIR or the build-time configs/\n"
        "directory.\n"
        "\n"
        "options:\n"
        "  --list         print the expanded grid, do not run\n"
        "  --list-engines print every registered fetch engine with\n"
        "                 its description and parameter defaults,\n"
        "                 then exit (with --quiet: bare names only,\n"
        "                 one per line, for scripting)\n"
        "  --validate     parse and expand specs, then exit\n"
        "  --out-dir DIR  directory for BENCH_*.json records\n"
        "                 (default: $SMTFETCH_JSON_DIR or .)\n"
        "  --no-json      skip BENCH_*.json emission\n"
        "  --quiet        suppress result tables\n"
        "  --warmup N     override the spec's warmup cycles\n"
        "  --measure N    override the spec's measured cycles\n"
        "  --seed N       override the spec's seed\n"
        "  --record PATH  capture the run's correct-path streams to\n"
        "                 a trace file (the spec must expand to one\n"
        "                 grid point; multithread workloads write\n"
        "                 one PATH-derived file per thread). Replay\n"
        "                 with a {\"trace\": PATH} workload.\n"
        "  --record-pad N capture N extra post-measurement cycles\n"
        "                 of records as a replay safety margin\n"
        "  --save-checkpoint PATH\n"
        "                 run the warmup, save the full simulator\n"
        "                 state to PATH, then continue measurement\n"
        "                 (the spec must expand to one grid point)\n"
        "  --restore-checkpoint PATH\n"
        "                 skip the warmup by restoring PATH (saved\n"
        "                 under the identical configuration; the\n"
        "                 spec must expand to one grid point)\n"
        "  --checkpoint-warmup\n"
        "                 run each unique warmup once per sweep and\n"
        "                 restore snapshots for the other grid\n"
        "                 points (bit-identical; also enabled by the\n"
        "                 spec key \"checkpointAfterWarmup\")\n"
        "  --checkpoint-dir DIR\n"
        "                 persist warmup snapshots in DIR and reuse\n"
        "                 them across sweeps (implies\n"
        "                 --checkpoint-warmup)\n"
        "  --no-cycle-skip\n"
        "                 tick every cycle instead of fast-\n"
        "                 forwarding over quiescent spans (debug\n"
        "                 escape hatch; results are bit-identical\n"
        "                 either way, only slower)\n"
        "  -h, --help     show this help\n");
}

/**
 * Print every registered fetch engine. The quiet form emits bare
 * canonical names, one per line, for shell loops (the CI checkpoint
 * smoke iterates `smtsim --list-engines --quiet`).
 */
void
listEngines(bool quiet)
{
    const EngineRegistry &reg = EngineRegistry::instance();
    if (quiet) {
        for (const EngineDescriptor &d : reg.all())
            std::printf("%s\n", d.name);
        return;
    }
    const EngineParams defaults{};
    for (const EngineDescriptor &d : reg.all()) {
        std::printf("%s\n    %s\n", d.name, d.description);
        if (!d.aliases.empty()) {
            std::string aliases;
            for (const std::string &a : d.aliases)
                aliases += (aliases.empty() ? "" : ", ") + a;
            std::printf("    aliases: %s\n", aliases.c_str());
        }
        for (const EngineParamSpec &p : d.params) {
            // Preset engines report defaults with their preset
            // applied (what a spec naming the engine actually gets).
            EngineParams ep = defaults;
            if (d.preset != nullptr)
                d.preset(ep);
            std::printf("    %s=%llu  [%llu..%llu]  %s\n", p.key,
                        (unsigned long long)p.get(ep),
                        (unsigned long long)p.minValue,
                        (unsigned long long)p.maxValue, p.help);
        }
        std::printf("\n");
    }
}

/** Resolve a CLI spec argument to a readable file path. */
std::string
resolveSpecPath(const std::string &arg)
{
    bool bare = arg.find('/') == std::string::npos &&
                arg.find(".json") == std::string::npos;
    if (!bare)
        return arg;
    if (std::ifstream(arg).good())
        return arg;
    return defaultConfigDir() + "/" + arg + ".json";
}

std::uint64_t
parseCount(const char *flag, const char *text)
{
    // Strict digits-only parse: strtoull would silently skip
    // whitespace and wrap negative input.
    bool ok = text[0] != '\0';
    for (const char *p = text; *p != '\0'; ++p)
        if (*p < '0' || *p > '9')
            ok = false;
    char *end = nullptr;
    unsigned long long v = ok ? std::strtoull(text, &end, 10) : 0;
    if (!ok || end == text || *end != '\0') {
        std::fprintf(stderr, "smtsim: %s expects a non-negative "
                             "integer, got \"%s\"\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

void
printGrid(const SweepSpec &spec,
          const std::vector<GridPoint> &points)
{
    TextTable t({"#", "workload", "engine", "policy", "selection",
                 "overrides"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        std::string variant = p.overrides.describe();
        t.addRow({std::to_string(i), p.workload,
                  engineName(p.engine),
                  csprintf("%u.%u", p.fetchThreads, p.fetchWidth),
                  policyName(p.policy),
                  variant.empty() ? "-" : variant});
    }
    t.print(std::cout,
            csprintf("%s: %zu grid points, warmup %llu, measure "
                     "%llu, seed %llu",
                     spec.name.c_str(), points.size(),
                     (unsigned long long)spec.warmupCycles,
                     (unsigned long long)spec.measureCycles,
                     (unsigned long long)spec.seed));
}

int
runOne(const Options &opt, const std::string &arg)
{
    std::string path = resolveSpecPath(arg);
    SweepSpec spec = SweepSpec::fromFile(path);
    if (opt.warmup)
        spec.warmupCycles = *opt.warmup;
    if (opt.measure)
        spec.measureCycles = *opt.measure;
    if (opt.seed)
        spec.seed = *opt.seed;
    if (opt.noCycleSkip)
        spec.cycleSkip = false;
    if (spec.measureCycles == 0) {
        std::fprintf(stderr,
                     "smtsim: --measure must be positive\n");
        return 1;
    }

    // Fail fast on an unwritable output directory: a typo'd
    // --out-dir should not cost a full grid run before erroring.
    if (opt.writeJson && !opt.list && !opt.validate)
        ensureWritableDir(benchRecordDir(opt.outDir));

    if (spec.type == SpecType::Characteristics) {
        if (!opt.recordPath.empty() ||
            !opt.saveCheckpointPath.empty() ||
            !opt.restoreCheckpointPath.empty()) {
            std::fprintf(stderr,
                         "smtsim: --record and checkpoint options "
                         "do not apply to a characteristics spec "
                         "(\"%s\" runs no simulation)\n",
                         spec.name.c_str());
            return 1;
        }
        if (opt.list || opt.validate) {
            std::printf("%s: characteristics spec (%llu insts per "
                        "benchmark)\n",
                        spec.name.c_str(),
                        (unsigned long long)spec.instructions);
            return 0;
        }
        auto rows = runCharacteristics(spec.instructions);
        if (!opt.quiet) {
            TextTable t({"benchmark", "class", "BB size",
                         "stream len", "taken rate", "loads/insts"});
            for (const auto &r : rows)
                t.addRow({r.benchmark, r.ilp ? "ILP" : "MEM",
                          TextTable::num(r.blockSize),
                          TextTable::num(r.streamLength),
                          TextTable::num(r.takenRate, 3),
                          TextTable::num(r.loadFraction, 3)});
            t.print(std::cout, spec.name);
        }
        if (opt.writeJson &&
            !writeBenchRecord(spec.benchName(), {},
                              characteristicsMetrics(rows),
                              opt.outDir))
            return 3;
        return 0;
    }

    auto points = spec.expand();
    if (opt.list || opt.validate) {
        if (opt.list)
            printGrid(spec, points);
        else
            std::printf("%s: OK (%zu grid points)\n",
                        spec.name.c_str(), points.size());
        return 0;
    }

    auto needsOnePoint = [&](const char *flag) {
        if (points.size() == 1)
            return true;
        std::fprintf(stderr,
                     "smtsim: %s needs a spec that expands to "
                     "exactly one grid point, but \"%s\" expands "
                     "to %zu — narrow the spec or run each point "
                     "separately\n",
                     flag, spec.name.c_str(), points.size());
        return false;
    };
    if (!opt.recordPath.empty()) {
        if (!needsOnePoint("--record"))
            return 1;
        points[0].recordPath = opt.recordPath;
        points[0].recordPadCycles = opt.recordPad;
    }
    if (!opt.saveCheckpointPath.empty()) {
        if (!needsOnePoint("--save-checkpoint"))
            return 1;
        points[0].saveCheckpointPath = opt.saveCheckpointPath;
    }
    if (!opt.restoreCheckpointPath.empty()) {
        if (!needsOnePoint("--restore-checkpoint"))
            return 1;
        points[0].restoreCheckpointPath = opt.restoreCheckpointPath;
    }

    SweepRequest request = spec.makeRequest();
    request.points = std::move(points);
    if (opt.checkpointWarmup)
        request.reuseWarmup = true;
    if (!opt.checkpointDir.empty())
        request.checkpointDir = opt.checkpointDir;
    // A typo'd snapshot directory should fail in milliseconds, not
    // after the first warmup finishes.
    if (!request.checkpointDir.empty())
        ensureWritableDir(request.checkpointDir);

    SweepReport report = ExperimentRunner().run(request);
    const auto &results = report.results;
    const auto &points_run = request.points;
    if (!opt.recordPath.empty() && !opt.quiet) {
        // Name the files actually written (multithread runs get
        // per-thread suffixes).
        unsigned threads = static_cast<unsigned>(
            table3Config(points_run[0].workload, points_run[0].engine,
                         points_run[0].fetchThreads,
                         points_run[0].fetchWidth)
                .workload.benchmarks.size());
        std::string files;
        for (unsigned t = 0; t < threads; ++t)
            files += (t == 0 ? "" : ", ") +
                     Simulator::recordPathFor(
                         opt.recordPath, static_cast<ThreadID>(t),
                         threads);
        std::printf("recorded trace to %s\n", files.c_str());
    }
    if (!opt.quiet) {
        ExperimentRunner::printFigure(
            std::cout, spec.name + " — fetch throughput, IPFC",
            results, /*fetch=*/true);
        std::cout << '\n';
        ExperimentRunner::printFigure(
            std::cout, spec.name + " — commit throughput, IPC",
            results, /*fetch=*/false);
    }
    if (opt.writeJson &&
        !writeBenchRecord(spec.benchName(), results, {}, opt.outDir,
                          &report.timing))
        return 3;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // `smtsim serve ...` is a subcommand with its own flags: a
    // long-running daemon accepting the same spec documents over
    // HTTP (see src/serve/). `sweep` runs one spec across spawned
    // `worker` processes with journaled resume support.
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return serveMain(argc - 2, argv + 2);
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return sweepMain(argc - 2, argv + 2, argv[0]);
    if (argc > 1 && std::strcmp(argv[1], "worker") == 0)
        return workerMain(argc - 2, argv + 2);

    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "smtsim: %s expects an argument\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--list-engines") {
            opt.listEngines = true;
        } else if (arg == "--validate") {
            opt.validate = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--no-json") {
            opt.writeJson = false;
        } else if (arg == "--out-dir") {
            opt.outDir = next();
        } else if (arg == "--warmup") {
            opt.warmup = parseCount("--warmup", next());
        } else if (arg == "--measure") {
            opt.measure = parseCount("--measure", next());
        } else if (arg == "--seed") {
            opt.seed = parseCount("--seed", next());
        } else if (arg == "--record") {
            opt.recordPath = next();
        } else if (arg == "--record-pad") {
            opt.recordPad = parseCount("--record-pad", next());
        } else if (arg == "--save-checkpoint") {
            opt.saveCheckpointPath = next();
        } else if (arg == "--restore-checkpoint") {
            opt.restoreCheckpointPath = next();
        } else if (arg == "--checkpoint-warmup") {
            opt.checkpointWarmup = true;
        } else if (arg == "--checkpoint-dir") {
            opt.checkpointDir = next();
        } else if (arg == "--no-cycle-skip") {
            opt.noCycleSkip = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "smtsim: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 1;
        } else {
            opt.specs.push_back(arg);
        }
    }

    if (opt.listEngines) {
        listEngines(opt.quiet);
        return 0;
    }

    if (opt.specs.empty()) {
        usage(stderr);
        return 1;
    }

    // Output-path flags apply once per spec run: with several specs
    // each run would silently overwrite the previous spec's file.
    if (opt.specs.size() > 1 && !opt.recordPath.empty()) {
        std::fprintf(stderr,
                     "smtsim: --record with %zu specs would make "
                     "each spec overwrite \"%s\" — pass one spec "
                     "per --record invocation (or record each spec "
                     "to a distinct path)\n",
                     opt.specs.size(), opt.recordPath.c_str());
        return 1;
    }
    if (opt.specs.size() > 1 && !opt.saveCheckpointPath.empty()) {
        std::fprintf(stderr,
                     "smtsim: --save-checkpoint with %zu specs "
                     "would make each spec overwrite \"%s\" — pass "
                     "one spec per --save-checkpoint invocation\n",
                     opt.specs.size(),
                     opt.saveCheckpointPath.c_str());
        return 1;
    }
    if (!opt.recordPath.empty() &&
        !opt.restoreCheckpointPath.empty()) {
        std::fprintf(stderr,
                     "smtsim: --record cannot be combined with "
                     "--restore-checkpoint — the captured trace "
                     "would silently miss every record consumed "
                     "before the snapshot; record with a full run "
                     "instead\n");
        return 1;
    }
    if (!opt.saveCheckpointPath.empty() &&
        !opt.restoreCheckpointPath.empty()) {
        std::fprintf(stderr,
                     "smtsim: --save-checkpoint cannot be combined "
                     "with --restore-checkpoint — a restored run "
                     "skips the warmup, so there is no new "
                     "post-warmup state to save (the restored "
                     "checkpoint already is that state)\n");
        return 1;
    }

    for (const auto &specArg : opt.specs) {
        try {
            int rc = runOne(opt, specArg);
            if (rc != 0)
                return rc;
        } catch (const SpecError &e) {
            std::fprintf(stderr, "smtsim: %s\n", e.what());
            return 2;
        } catch (const TraceFileError &e) {
            std::fprintf(stderr, "smtsim: %s\n", e.what());
            return 2;
        } catch (const CheckpointError &e) {
            std::fprintf(stderr, "smtsim: %s\n", e.what());
            return 2;
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "smtsim: %s\n", e.what());
            return 2;
        }
    }
    return 0;
}
