/**
 * @file
 * Figure 4: fetch throughput of gshare+BTB fetching from up to two
 * threads (ICOUNT.2.8 / 2.16) vs one thread (1.8 / 1.16) on
 * gzip+twolf. Thin wrapper over configs/fig4_two_threads.json (see
 * smtsim).
 *
 * Paper reference: 2.8 gains ~28% over 1.8; 2.16 gains ~33% over
 * 1.16; at 2.8, 8 instructions are provided 54% of cycles.
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Figure 4: gshare+BTB fetching from two threads "
                "(gzip+twolf) ==\n\n");

    SpecRun sr = runSpecByName("fig4_two_threads");
    const auto &r18 = need(sr.results, "2_MIX", EngineKind::GshareBtb,
                           1, 8);
    const auto &r28 = need(sr.results, "2_MIX", EngineKind::GshareBtb,
                           2, 8);
    const auto &r116 = need(sr.results, "2_MIX",
                            EngineKind::GshareBtb, 1, 16);
    const auto &r216 = need(sr.results, "2_MIX",
                            EngineKind::GshareBtb, 2, 16);

    TextTable t({"policy", "IPFC", "gain over 1-thread"});
    t.addRow({"ICOUNT.1.8", TextTable::num(r18.ipfc), "-"});
    t.addRow({"ICOUNT.2.8", TextTable::num(r28.ipfc),
              TextTable::pct(r28.ipfc / r18.ipfc - 1)});
    t.addRow({"ICOUNT.1.16", TextTable::num(r116.ipfc), "-"});
    t.addRow({"ICOUNT.2.16", TextTable::num(r216.ipfc),
              TextTable::pct(r216.ipfc / r116.ipfc - 1)});
    t.print(std::cout);

    const auto &h28 = r28.stats.fetchWidthHist;
    std::printf("\nFetch width distribution, ICOUNT.2.8 "
                "(paper: =8 insts 54%%, >4 insts 80%%):\n");
    std::printf("  P(=8) = %.1f%%   P(>4) = %.1f%%\n",
                h28.fractionAt(8) * 100, h28.fractionAbove(4) * 100);

    std::printf("\nShape checks:\n");
    check("2.8 improves fetch throughput over 1.8 (paper: +28%)",
          r28.ipfc > 1.10 * r18.ipfc);
    check("2.16 improves fetch throughput over 2.8",
          r216.ipfc > r28.ipfc);

    writeBenchJson(sr.spec.benchName(), sr.results);
    return 0;
}
