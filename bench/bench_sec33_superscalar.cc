/**
 * @file
 * Section 3.3 superscalar claims: on a single-thread (superscalar)
 * processor, gskew+FTB gains ~5% IPC over gshare+BTB and the stream
 * fetch ~11% over gshare+BTB (~5.5% over gskew+FTB), averaged over
 * SPECint2000. Thin wrapper over configs/sec33_superscalar.json (see
 * smtsim).
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Section 3.3: single-thread (superscalar) fetch "
                "engines ==\n\n");

    SpecRun sr = runSpecByName("sec33_superscalar");
    const auto &rs = sr.results;
    const auto &benches = sr.spec.sweeps.at(0).workloads;

    TextTable t({"benchmark", "gshare+BTB", "gskew+FTB", "stream",
                 "stream vs gshare"});
    double gm_ftb = 0, gm_stream = 0;
    for (const auto &b : benches) {
        const auto &g = need(rs, b, EngineKind::GshareBtb, 1, 16);
        const auto &f = need(rs, b, EngineKind::GskewFtb, 1, 16);
        const auto &s = need(rs, b, EngineKind::Stream, 1, 16);
        t.addRow({b, TextTable::num(g.ipc), TextTable::num(f.ipc),
                  TextTable::num(s.ipc),
                  TextTable::pct(s.ipc / g.ipc - 1)});
        gm_ftb += f.ipc / g.ipc;
        gm_stream += s.ipc / g.ipc;
    }
    t.print(std::cout);

    double avg_ftb = (gm_ftb / benches.size() - 1) * 100;
    double avg_stream = (gm_stream / benches.size() - 1) * 100;
    std::printf("\naverage gskew+FTB vs gshare+BTB: %+.1f%% "
                "(paper: +5%%)\n", avg_ftb);
    std::printf("average stream vs gshare+BTB:    %+.1f%% "
                "(paper: +11%%)\n", avg_stream);

    std::printf("\nShape checks:\n");
    check("gskew+FTB >= gshare+BTB on average", avg_ftb > -1.0);
    check("stream >= gskew+FTB on average", avg_stream >= avg_ftb - 1.0);

    writeBenchJson(sr.spec.benchName(), rs);
    return 0;
}
