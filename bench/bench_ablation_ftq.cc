/**
 * @file
 * Ablation A1: FTQ depth. The decoupled front-end tolerates predictor
 * latency through the FTQ; sweeping its depth shows how much
 * decoupling the design needs (the paper uses 4 entries per thread).
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Ablation: FTQ depth (stream engine, "
                "ICOUNT.1.16) ==\n\n");

    BenchReport report("ablation_ftq");
    TextTable t({"FTQ entries", "2_MIX IPC", "4_ILP IPC"});
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        double ipc_mix = 0, ipc_ilp = 0;
        for (const char *wl : {"2_MIX", "4_ILP"}) {
            SimConfig cfg =
                table3Config(wl, EngineKind::Stream, 1, 16);
            cfg.core.ftqEntries = depth;
            cfg.warmupCycles = 40'000;
            cfg.measureCycles = 200'000;
            Simulator sim(cfg);
            sim.run();
            (std::string(wl) == "2_MIX" ? ipc_mix : ipc_ilp) =
                sim.stats().ipc();
        }
        report.metric(csprintf("ftq%u.2_MIX.ipc", depth), ipc_mix);
        report.metric(csprintf("ftq%u.4_ILP.ipc", depth), ipc_ilp);
        t.addRow({std::to_string(depth), TextTable::num(ipc_mix),
                  TextTable::num(ipc_ilp)});
    }
    t.print(std::cout);
    report.write();
    return 0;
}
