/**
 * @file
 * Ablation A1: FTQ depth. The decoupled front-end tolerates predictor
 * latency through the FTQ; sweeping its depth shows how much
 * decoupling the design needs (the paper uses 4 entries per thread).
 * Thin wrapper over configs/ablation_ftq.json (see smtsim).
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Ablation: FTQ depth (stream engine, "
                "ICOUNT.1.16) ==\n\n");

    SpecRun sr = runSpecByName("ablation_ftq");
    BenchReport report(sr.spec.benchName());
    report.add(sr.results);

    TextTable t({"FTQ entries", "2_MIX IPC", "4_ILP IPC"});
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        RunOverrides ov;
        ov.ftqEntries = depth;
        const auto *mix = find(sr.results, "2_MIX",
                               EngineKind::Stream, 1, 16,
                               PolicyKind::ICount, ov);
        const auto *ilp = find(sr.results, "4_ILP",
                               EngineKind::Stream, 1, 16,
                               PolicyKind::ICount, ov);
        if (mix == nullptr || ilp == nullptr)
            fatal("FTQ depth %u missing from the spec grid", depth);
        report.metric(csprintf("ftq%u.2_MIX.ipc", depth), mix->ipc);
        report.metric(csprintf("ftq%u.4_ILP.ipc", depth), ilp->ipc);
        t.addRow({std::to_string(depth), TextTable::num(mix->ipc),
                  TextTable::num(ilp->ipc)});
    }
    t.print(std::cout);
    report.write();
    return 0;
}
