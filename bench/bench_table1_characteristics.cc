/**
 * @file
 * Table 1 + Table 2: per-benchmark synthetic workload characteristics
 * (dynamic average basic-block size vs the paper's Table 1) and the
 * Table 2 multithreaded workload definitions. Thin wrapper over
 * configs/table1_characteristics.json (see smtsim).
 */

#include "bench_common.hh"
#include "workload/workloads.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Table 1: SPECint2000 synthetic model "
                "characteristics ==\n\n");

    SweepSpec spec = loadSpec("table1_characteristics");
    auto rows = runCharacteristics(spec.instructions);

    TextTable t({"benchmark", "class", "BB size (paper)",
                 "BB size (model)", "stream len", "taken rate",
                 "loads/insts"});
    for (const auto &r : rows) {
        t.addRow({r.benchmark, r.ilp ? "ILP" : "MEM",
                  TextTable::num(r.paperBlockSize),
                  TextTable::num(r.blockSize),
                  TextTable::num(r.streamLength),
                  TextTable::num(r.takenRate, 3),
                  TextTable::num(r.loadFraction, 3)});
    }
    t.print(std::cout);

    std::printf("\n== Table 2: multithreaded workloads ==\n\n");
    TextTable t2({"workload", "benchmarks"});
    for (const auto &w : table2Workloads()) {
        std::string list;
        for (const auto &b : w.benchmarks)
            list += (list.empty() ? "" : ", ") + b;
        t2.addRow({w.name, list});
    }
    t2.print(std::cout);

    writeBenchJson(spec.benchName(), {},
                   characteristicsMetrics(rows));
    return 0;
}
