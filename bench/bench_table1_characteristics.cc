/**
 * @file
 * Table 1 + Table 2: per-benchmark synthetic workload characteristics
 * (dynamic average basic-block size vs the paper's Table 1) and the
 * Table 2 multithreaded workload definitions.
 */

#include "bench_common.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Table 1: SPECint2000 synthetic model "
                "characteristics ==\n\n");

    BenchReport report("table1_characteristics");
    TextTable t({"benchmark", "class", "BB size (paper)",
                 "BB size (model)", "stream len", "taken rate",
                 "loads/insts"});
    for (const auto &prof : allProfiles()) {
        auto img = buildImage(prof, 0x400000, 0x40000000);
        TraceStream ts(img);
        for (int i = 0; i < 400'000; ++i)
            ts.next();
        const auto &s = ts.stats();
        report.metric(prof.name + ".bbSize", s.avgBlockSize());
        report.metric(prof.name + ".streamLen", s.avgStreamLength());
        report.metric(prof.name + ".takenRate",
                      s.ctis ? double(s.takenCtis) / s.ctis : 0);
        report.metric(prof.name + ".loadFrac",
                      double(s.loads) / s.insts);
        t.addRow({prof.name,
                  prof.benchClass == BenchClass::ILP ? "ILP" : "MEM",
                  TextTable::num(prof.avgBlockSize),
                  TextTable::num(s.avgBlockSize()),
                  TextTable::num(s.avgStreamLength()),
                  TextTable::num(
                      s.ctis ? double(s.takenCtis) / s.ctis : 0, 3),
                  TextTable::num(double(s.loads) / s.insts, 3)});
    }
    t.print(std::cout);

    std::printf("\n== Table 2: multithreaded workloads ==\n\n");
    TextTable t2({"workload", "benchmarks"});
    for (const auto &w : table2Workloads()) {
        std::string list;
        for (const auto &b : w.benchmarks)
            list += (list.empty() ? "" : ", ") + b;
        t2.addRow({w.name, list});
    }
    t2.print(std::cout);
    report.write();
    return 0;
}
