/**
 * @file
 * Figure 8: MIX and MEM workloads with ICOUNT.1.8 vs ICOUNT.1.16 vs
 * ICOUNT.2.16. Thin wrapper over configs/fig8_mem_wide.json (see
 * smtsim).
 *
 * Paper reference shapes: ICOUNT.1.16 gives the best commit
 * throughput (wide fetch + fine-grain thread selection); ICOUNT.2.16
 * is worse than both 1.16 and 1.8 almost everywhere; gskew+FTB and
 * stream at 1.16 average a 3-4% improvement over gshare+BTB at 1.8.
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Figure 8: MIX/MEM workloads, ICOUNT.1.8 vs 1.16 "
                "vs 2.16 ==\n\n");

    SpecRun sr = runSpecByName("fig8_mem_wide");
    const auto &rs = sr.results;
    printBothFigures(rs, "Fig. 8");

    std::vector<std::string> wls = {"2_MIX", "2_MEM", "4_MIX", "4_MEM",
                                    "6_MIX", "8_MIX"};
    std::printf("Shape checks:\n");
    int wide_single_ok = 0, dual_wide_worse = 0, n = 0;
    for (const auto &w : wls) {
        for (auto e : paperEngines()) {
            const auto *a = find(rs, w, e, 1, 8);
            const auto *b = find(rs, w, e, 1, 16);
            const auto *c = find(rs, w, e, 2, 16);
            if (a && b && c) {
                if (b->ipc >= 0.92 * a->ipc)
                    ++wide_single_ok;
                if (c->ipc <= b->ipc)
                    ++dual_wide_worse;
                ++n;
            }
        }
    }
    check(csprintf("1.16 holds or beats 1.8 commit throughput "
                   "(%d of %d)", wide_single_ok, n),
          wide_single_ok >= n - 5);
    check(csprintf("2.16 is no better than 1.16 (%d of %d)",
                   dual_wide_worse, n),
          dual_wide_worse >= n - 4);

    writeBenchJson(sr.spec.benchName(), rs);
    return 0;
}
