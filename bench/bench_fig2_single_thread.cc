/**
 * @file
 * Figure 2: fetch throughput (IPFC) of the conventional gshare+BTB
 * fetch unit with ICOUNT.1.8 vs ICOUNT.1.16 on the gzip+twolf (2_MIX)
 * workload, plus the §3.1 fetch-width distribution claims. Thin
 * wrapper over configs/fig2_single_thread.json (see smtsim).
 *
 * Paper reference: 1.8 ~= 4.7 IPFC; 1.16 gains little because the
 * predictor delivers one basic block per cycle. gshare+BTB provides
 * >4 instructions ~60% and exactly 8 ~31% of fetch cycles at 1.8.
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Figure 2: gshare+BTB fetching from one thread "
                "(gzip+twolf) ==\n\n");

    SpecRun sr = runSpecByName("fig2_single_thread");
    const auto &r18 = need(sr.results, "2_MIX", EngineKind::GshareBtb,
                           1, 8);
    const auto &r116 = need(sr.results, "2_MIX",
                            EngineKind::GshareBtb, 1, 16);

    TextTable t({"policy", "IPFC (paper ~)", "IPFC (measured)"});
    t.addRow({"ICOUNT.1.8", "4.7", TextTable::num(r18.ipfc)});
    t.addRow({"ICOUNT.1.16", "5.5", TextTable::num(r116.ipfc)});
    t.print(std::cout);

    const auto &h18 = r18.stats.fetchWidthHist;
    const auto &h116 = r116.stats.fetchWidthHist;
    std::printf("\nFetch width distribution, ICOUNT.1.8 "
                "(paper: >4 insts 60%%, =8 insts 31%% of cycles):\n");
    std::printf("  P(>4)  = %.1f%%\n", h18.fractionAbove(4) * 100);
    std::printf("  P(=8)  = %.1f%%\n", h18.fractionAt(8) * 100);
    std::printf("Fetch width distribution, ICOUNT.1.16 "
                "(paper: >8 insts 32%%, =16 insts 6%% of cycles):\n");
    std::printf("  P(>8)  = %.1f%%\n", h116.fractionAbove(8) * 100);
    std::printf("  P(=16) = %.1f%%\n", h116.fractionAt(16) * 100);

    std::printf("\nShape checks:\n");
    check("1.8 IPFC well below the 8-wide bandwidth",
          r18.ipfc < 6.5);
    check("1.16 gains less than +40% over 1.8 (one basic block "
          "per prediction)",
          r116.ipfc < 1.4 * r18.ipfc);

    writeBenchJson(sr.spec.benchName(), sr.results);
    return 0;
}
