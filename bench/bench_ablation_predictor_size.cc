/**
 * @file
 * Ablation A2: predictor hardware budget. Sweeps the stream predictor
 * and gshare table sizes around the paper's ~45KB budget point. Thin
 * wrapper over configs/ablation_predictor_size.json (see smtsim).
 */

#include "bench_common.hh"

using namespace smtbench;

namespace
{

double
ipcAtShift(const std::vector<ExperimentResult> &rs, EngineKind engine,
           unsigned shift)
{
    RunOverrides ov;
    ov.predictorShift = shift;
    const auto *r = find(rs, "4_MIX", engine, 1, 16,
                         PolicyKind::ICount, ov);
    if (r == nullptr)
        fatal("predictor shift %u missing for %s", shift,
              engineName(engine));
    return r->ipc;
}

} // namespace

int
main()
{
    std::printf("== Ablation: predictor budget sweep (4_MIX, "
                "ICOUNT.1.16) ==\n\n");

    SpecRun sr = runSpecByName("ablation_predictor_size");
    BenchReport report(sr.spec.benchName());
    report.add(sr.results);

    TextTable t({"budget", "gshare+BTB", "gskew+FTB", "stream"});
    const char *labels[] = {"1x (Table 3)", "1/2x", "1/4x", "1/8x"};
    for (unsigned shift = 0; shift < 4; ++shift) {
        double g = ipcAtShift(sr.results, EngineKind::GshareBtb,
                              shift);
        double k = ipcAtShift(sr.results, EngineKind::GskewFtb,
                              shift);
        double s = ipcAtShift(sr.results, EngineKind::Stream, shift);
        report.metric(csprintf("shift%u.gshareBtb.ipc", shift), g);
        report.metric(csprintf("shift%u.gskewFtb.ipc", shift), k);
        report.metric(csprintf("shift%u.stream.ipc", shift), s);
        t.addRow({labels[shift], TextTable::num(g), TextTable::num(k),
                  TextTable::num(s)});
    }
    t.print(std::cout);
    report.write();
    return 0;
}
