/**
 * @file
 * Ablation A2: predictor hardware budget. Sweeps the stream predictor
 * and gshare table sizes around the paper's ~45KB budget point.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace smtbench;

namespace
{

double
runWith(EngineKind engine, unsigned scale_shift)
{
    SimConfig cfg = table3Config("4_MIX", engine, 1, 16);
    auto &ep = cfg.core.engineParams;
    ep.gshareEntries >>= scale_shift;
    ep.gskewEntriesPerBank >>= scale_shift;
    ep.btbEntries >>= scale_shift;
    ep.ftbEntries >>= scale_shift;
    ep.streamL1Entries >>= scale_shift;
    ep.streamL2Entries >>= scale_shift;
    cfg.warmupCycles = 40'000;
    cfg.measureCycles = 200'000;
    Simulator sim(cfg);
    sim.run();
    return sim.stats().ipc();
}

} // namespace

int
main()
{
    std::printf("== Ablation: predictor budget sweep (4_MIX, "
                "ICOUNT.1.16) ==\n\n");

    BenchReport report("ablation_predictor_size");
    TextTable t({"budget", "gshare+BTB", "gskew+FTB", "stream"});
    const char *labels[] = {"1x (Table 3)", "1/2x", "1/4x", "1/8x"};
    for (unsigned shift = 0; shift < 4; ++shift) {
        double g = runWith(EngineKind::GshareBtb, shift);
        double k = runWith(EngineKind::GskewFtb, shift);
        double s = runWith(EngineKind::Stream, shift);
        report.metric(csprintf("shift%u.gshareBtb.ipc", shift), g);
        report.metric(csprintf("shift%u.gskewFtb.ipc", shift), k);
        report.metric(csprintf("shift%u.stream.ipc", shift), s);
        t.addRow({labels[shift], TextTable::num(g), TextTable::num(k),
                  TextTable::num(s)});
    }
    t.print(std::cout);
    report.write();
    return 0;
}
