/**
 * @file
 * Ablation A2: predictor hardware budget. Sweeps the stream predictor
 * and gshare table sizes around the paper's ~45KB budget point.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace smtbench;

namespace
{

double
runWith(EngineKind engine, unsigned scale_shift)
{
    SimConfig cfg = table3Config("4_MIX", engine, 1, 16);
    auto &ep = cfg.core.engineParams;
    ep.gshareEntries >>= scale_shift;
    ep.gskewEntriesPerBank >>= scale_shift;
    ep.btbEntries >>= scale_shift;
    ep.ftbEntries >>= scale_shift;
    ep.streamL1Entries >>= scale_shift;
    ep.streamL2Entries >>= scale_shift;
    cfg.warmupCycles = 40'000;
    cfg.measureCycles = 200'000;
    Simulator sim(cfg);
    sim.run();
    return sim.stats().ipc();
}

} // namespace

int
main()
{
    std::printf("== Ablation: predictor budget sweep (4_MIX, "
                "ICOUNT.1.16) ==\n\n");

    TextTable t({"budget", "gshare+BTB", "gskew+FTB", "stream"});
    const char *labels[] = {"1x (Table 3)", "1/2x", "1/4x", "1/8x"};
    for (unsigned shift = 0; shift < 4; ++shift) {
        t.addRow({labels[shift],
                  TextTable::num(runWith(EngineKind::GshareBtb, shift)),
                  TextTable::num(runWith(EngineKind::GskewFtb, shift)),
                  TextTable::num(runWith(EngineKind::Stream, shift))});
    }
    t.print(std::cout);
    return 0;
}
