/**
 * @file
 * Figure 6: ILP workloads with the wide single-thread policy:
 * ICOUNT.2.8 vs ICOUNT.1.16 vs ICOUNT.2.16. Thin wrapper over
 * configs/fig6_ilp_wide.json (see smtsim).
 *
 * Paper reference shapes: the stream fetch with 1.16 outperforms its
 * own 2.8 (+9% commit) and the other engines' 2.8 (+19% over
 * gshare+BTB, +13% over gskew+FTB); gshare+BTB and gskew+FTB lose
 * IPC moving from 2.8 to 1.16 (single-basic-block prediction).
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Figure 6: ILP workloads, ICOUNT.2.8 vs 1.16 vs "
                "2.16 ==\n\n");

    SpecRun sr = runSpecByName("fig6_ilp_wide");
    const auto &rs = sr.results;
    printBothFigures(rs, "Fig. 6");

    std::vector<std::string> wls = {"2_ILP", "4_ILP", "6_ILP", "8_ILP"};
    std::printf("Shape checks:\n");
    int stream_116_wins = 0, gshare_116_loses = 0;
    double gain_vs_gshare = 0;
    for (const auto &w : wls) {
        const auto *s116 = find(rs, w, EngineKind::Stream, 1, 16);
        const auto *s28 = find(rs, w, EngineKind::Stream, 2, 8);
        const auto *g28 = find(rs, w, EngineKind::GshareBtb, 2, 8);
        const auto *g116 = find(rs, w, EngineKind::GshareBtb, 1, 16);
        if (s116 && s28 && s116->ipc >= 0.97 * s28->ipc)
            ++stream_116_wins;
        if (g116 && g28 && g116->ipc <= 1.03 * g28->ipc)
            ++gshare_116_loses;
        if (s116 && g28)
            gain_vs_gshare += pct(s116->ipc, g28->ipc);
    }
    check(csprintf("stream 1.16 matches/beats stream 2.8 IPC (%d of 4"
                   ", paper: +9%%)", stream_116_wins),
          stream_116_wins >= 3);
    check(csprintf("gshare+BTB gains nothing from 1.16 vs 2.8 "
                   "(%d of 4, paper: -9.7%%)", gshare_116_loses),
          gshare_116_loses >= 2);
    std::printf("  stream 1.16 vs gshare+BTB 2.8 average IPC delta: "
                "%+.1f%% (paper: +19%%)\n", gain_vs_gshare / 4);

    writeBenchJson(sr.spec.benchName(), rs);
    return 0;
}
