/**
 * @file
 * Figure 7: MIX and MEM workloads under ICOUNT.1.8 vs ICOUNT.2.8.
 * Thin wrapper over configs/fig7_mem.json (see smtsim).
 *
 * Paper reference shapes: fetch throughput still rises from 1.8 to
 * 2.8, but commit throughput FALLS — fetching from a second,
 * low-quality thread lets a stalled thread monopolize shared
 * resources (the Tullsen/Brown long-latency-load clog).
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Figure 7: MIX/MEM workloads, ICOUNT.1.8 vs "
                "ICOUNT.2.8 ==\n\n");

    SpecRun sr = runSpecByName("fig7_mem");
    const auto &rs = sr.results;
    printBothFigures(rs, "Fig. 7");

    std::vector<std::string> wls = {"2_MIX", "2_MEM", "4_MIX", "4_MEM",
                                    "6_MIX", "8_MIX"};
    std::printf("Shape checks:\n");
    int ipfc_up = 0, ipc_down = 0, n = 0;
    for (const auto &w : wls) {
        for (auto e : paperEngines()) {
            const auto *a = find(rs, w, e, 1, 8);
            const auto *b = find(rs, w, e, 2, 8);
            if (a && b) {
                if (b->ipfc > a->ipfc)
                    ++ipfc_up;
                if (b->ipc < a->ipc)
                    ++ipc_down;
                ++n;
            }
        }
    }
    check(csprintf("2.8 raises fetch throughput (%d of %d)", ipfc_up,
                   n),
          ipfc_up >= n - 2);
    check(csprintf("2.8 REDUCES commit throughput — the paper's "
                   "inversion (%d of %d)", ipc_down, n),
          ipc_down >= n - 4);

    writeBenchJson(sr.spec.benchName(), rs);
    return 0;
}
