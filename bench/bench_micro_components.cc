/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrates: cache
 * access, trace generation and whole-core cycle throughput.
 */

#include <benchmark/benchmark.h>

#include "mem/hierarchy.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "workload/trace.hh"

using namespace smt;

static void
BM_CacheAccess(benchmark::State &state)
{
    MemoryHierarchy mem{MemoryParams{}};
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        Addr a = 0x40000000 + (rng.next() & 0xfffff);
        benchmark::DoNotOptimize(mem.dcacheAccess(0, a, false, now));
        ++now;
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_TraceGeneration(benchmark::State &state)
{
    auto img = buildImage(profileFor("gzip"), 0x400000, 0x40000000);
    SyntheticTraceStream trace(img);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next());
}
BENCHMARK(BM_TraceGeneration);

static void
BM_CoreCycle(benchmark::State &state)
{
    SimConfig cfg = table3Config("2_MIX", EngineKind::Stream, 1, 16);
    Simulator sim(cfg);
    sim.runExtra(10'000); // prime
    auto &core = sim.core();
    for (auto _ : state)
        core.cycle();
    state.counters["committed/cycle"] = benchmark::Counter(
        static_cast<double>(core.stats().instsCommitted),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CoreCycle);

BENCHMARK_MAIN();
