/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrates: cache
 * access, trace generation, whole-core cycle throughput, and the
 * hot-loop structures (ring-buffer ROB create/commit/squash/find, IQ
 * insert/pick/occupancy). The structure benches are the before/after
 * evidence for the zero-steady-state-allocation storage rewrite — run
 * them under `heaptrack` (or an allocator interposer) to verify the
 * loops make no heap allocations.
 */

#include <benchmark/benchmark.h>

#include "core/exec.hh"
#include "core/iq.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "mem/hierarchy.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "workload/trace.hh"

using namespace smt;

static void
BM_CacheAccess(benchmark::State &state)
{
    MemoryHierarchy mem{MemoryParams{}};
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        Addr a = 0x40000000 + (rng.next() & 0xfffff);
        benchmark::DoNotOptimize(mem.dcacheAccess(0, a, false, now));
        ++now;
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_TraceGeneration(benchmark::State &state)
{
    auto img = buildImage(profileFor("gzip"), 0x400000, 0x40000000);
    SyntheticTraceStream trace(img);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next());
}
BENCHMARK(BM_TraceGeneration);

static void
BM_RobCreateCommit(benchmark::State &state)
{
    // Steady-state churn: fill the window, then one create + one
    // commit per iteration (ring slot reuse, no allocation).
    Rob rob(1, 512);
    for (int i = 0; i < 256; ++i)
        rob.create(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(&rob.create(0));
        rob.popHead(0);
    }
}
BENCHMARK(BM_RobCreateCommit);

static void
BM_RobSquash(benchmark::State &state)
{
    // Mispredict repair: create a run of young instructions, squash
    // them back off (pop-from-the-back), like squashAfter does.
    Rob rob(1, 512);
    for (int i = 0; i < 64; ++i)
        rob.create(0);
    for (auto _ : state) {
        for (int i = 0; i < 8; ++i)
            rob.create(0);
        for (int i = 0; i < 8; ++i)
            rob.popYoungest(0);
    }
}
BENCHMARK(BM_RobSquash);

static void
BM_RobFind(benchmark::State &state)
{
    // The writeback-stage lookup: (tid, seq) -> DynInst in a dense
    // window (the O(1) seq-offset fast path).
    Rob rob(1, 512);
    for (int i = 0; i < 256; ++i)
        rob.create(0);
    InstSeqNum seq = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rob.find(0, seq));
        seq = seq % 256 + 1;
    }
}
BENCHMARK(BM_RobFind);

static void
BM_RobFindWithHole(benchmark::State &state)
{
    // Same lookup when the window contains a squash hole (binary
    // search fallback).
    Rob rob(1, 512);
    for (int i = 0; i < 128; ++i)
        rob.create(0);
    for (int i = 0; i < 8; ++i)
        rob.popYoungest(0); // squash 121..128
    for (int i = 0; i < 128; ++i)
        rob.create(0); // 129..256 past the hole
    InstSeqNum seq = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rob.find(0, seq));
        seq = seq % 120 + 1;
    }
}
BENCHMARK(BM_RobFindWithHole);

static void
BM_IqInsertPick(benchmark::State &state)
{
    // One dispatch+issue round: insert a fetch group, pick it back
    // out oldest-first under FU limits.
    IssueQueues iqs(32, 32, 32);
    RenameUnit rename(384, 384, 2);
    Rob rob(2, 512);
    std::vector<DynInst *> batch;
    for (int i = 0; i < 8; ++i) {
        DynInst &inst = rob.create(i % 2);
        inst.op = i < 5 ? OpClass::IntAlu
                        : (i < 7 ? OpClass::Load : OpClass::FpAlu);
        batch.push_back(&inst);
    }
    std::vector<DynInst *> picked;
    picked.reserve(8);
    for (auto _ : state) {
        for (DynInst *inst : batch)
            iqs.insert(inst);
        picked.clear();
        iqs.pickReady(rename, 6, 4, 3, picked);
        benchmark::DoNotOptimize(picked.data());
    }
}
BENCHMARK(BM_IqInsertPick);

static void
BM_IqOccupancy(benchmark::State &state)
{
    // The incremental counters: per-thread and total occupancy reads
    // with full queues (previously an every-instruction scan).
    IssueQueues iqs(32, 32, 32);
    Rob rob(2, 512);
    for (int i = 0; i < 64; ++i) {
        DynInst &inst = rob.create(i % 2);
        inst.op = i % 2 == 0 ? OpClass::IntAlu : OpClass::Load;
        iqs.insert(&inst);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(iqs.threadOccupancy(0));
        benchmark::DoNotOptimize(iqs.threadOccupancy(1));
        benchmark::DoNotOptimize(iqs.totalOccupancy());
    }
}
BENCHMARK(BM_IqOccupancy);

static void
BM_CoreCycle(benchmark::State &state)
{
    SimConfig cfg = table3Config("2_MIX", EngineKind::Stream, 1, 16);
    Simulator sim(cfg);
    sim.runExtra(10'000); // prime
    auto &core = sim.core();
    for (auto _ : state)
        core.cycle();
    state.counters["committed/cycle"] = benchmark::Counter(
        static_cast<double>(core.stats().instsCommitted),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CoreCycle);

static void
BM_NextEventScan(benchmark::State &state)
{
    // The sleep-path wheel scan with a distant wake-up: a lone
    // long-latency completion 1000 slots away makes the scan walk
    // ~1000 empty slots, the worst realistic case (DRAM-bound spans).
    CoreParams params;
    params.fpLatency = 1'000;
    MemoryHierarchy mem{params.memory};
    ExecUnit exec(params, mem);
    DynInst inst;
    inst.tid = 0;
    inst.seq = 1;
    inst.op = OpClass::FpAlu;
    Cycle now = 0;
    exec.issue(inst, now);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.nextEventCycle(now));
}
BENCHMARK(BM_NextEventScan);

static void
BM_QuiescenceCheck(benchmark::State &state)
{
    // The per-cycle skip gate on a live core: every stage's no-op
    // predicate plus the issue-queue ready scan. This is pure
    // overhead on busy cycles, so it must stay cheap relative to
    // BM_CoreCycle.
    SimConfig cfg = table3Config("2_MEM", EngineKind::GshareBtb, 2, 8);
    cfg.core.longLoadPolicy = LongLoadPolicy::Stall;
    Simulator sim(cfg);
    sim.runExtra(10'000); // prime
    auto &core = sim.core();
    for (auto _ : state)
        benchmark::DoNotOptimize(core.quiescent());
}
BENCHMARK(BM_QuiescenceCheck);

BENCHMARK_MAIN();
