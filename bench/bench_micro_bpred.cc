/**
 * @file
 * google-benchmark microbenchmarks for the predictor structures: raw
 * lookup/update throughput of gshare, gskew, BTB, FTB and the stream
 * predictor (simulator hot paths).
 */

#include <benchmark/benchmark.h>

#include "bpred/btb.hh"
#include "bpred/ftb.hh"
#include "bpred/gshare.hh"
#include "bpred/gskew.hh"
#include "bpred/history.hh"
#include "bpred/stream_pred.hh"
#include "util/random.hh"

using namespace smt;

static void
BM_GsharePredictUpdate(benchmark::State &state)
{
    GsharePredictor pred(64 * 1024, 16);
    Rng rng(1);
    std::uint64_t hist = 0;
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.next() & 0xffff) * 4;
        bool taken = pred.predict(pc, hist);
        pred.update(pc, hist, rng.chance(0.6));
        hist = (hist << 1) | taken;
        benchmark::DoNotOptimize(taken);
    }
}
BENCHMARK(BM_GsharePredictUpdate);

static void
BM_GskewPredictUpdate(benchmark::State &state)
{
    GskewPredictor pred(32 * 1024, 15);
    Rng rng(2);
    std::uint64_t hist = 0;
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.next() & 0xffff) * 4;
        bool taken = pred.predict(pc, hist);
        pred.update(pc, hist, rng.chance(0.6));
        hist = (hist << 1) | taken;
        benchmark::DoNotOptimize(taken);
    }
}
BENCHMARK(BM_GskewPredictUpdate);

static void
BM_BtbLookupUpdate(benchmark::State &state)
{
    Btb btb(2048, 4);
    Rng rng(3);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.next() & 0x3fff) * 4;
        benchmark::DoNotOptimize(btb.lookup(pc));
        btb.update(pc, pc + 64, OpClass::CondBranch);
    }
}
BENCHMARK(BM_BtbLookupUpdate);

static void
BM_FtbLookupUpdate(benchmark::State &state)
{
    Ftb ftb(2048, 4, 32);
    Rng rng(4);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.next() & 0x3fff) * 4;
        benchmark::DoNotOptimize(ftb.lookup(pc));
        ftb.update(pc, 8 + (pc & 7), pc + 256, OpClass::CondBranch);
    }
}
BENCHMARK(BM_FtbLookupUpdate);

static void
BM_StreamPredict(benchmark::State &state)
{
    StreamPredictor sp(1024, 4, 4096, 4, 64);
    PathHistory path(16, 2, 4, 10);
    Rng rng(5);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.next() & 0x3fff) * 4;
        auto p = sp.predict(pc, path);
        sp.update(pc, 12, pc + 48, OpClass::CondBranch, path);
        path.push(pc);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_StreamPredict);

BENCHMARK_MAIN();
