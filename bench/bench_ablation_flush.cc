/**
 * @file
 * Ablation A4 (extension): Tullsen & Brown's long-latency-load
 * policies (STALL / FLUSH) on top of each fetch configuration. The
 * paper argues ICOUNT.1.X avoids the clog by construction; this
 * ablation shows how much of the 2.X loss a load-aware policy
 * recovers, and how much it still trails the paper's proposal.
 */

#include "bench_common.hh"
#include "sim/simulator.hh"

using namespace smtbench;

namespace
{

double
runWith(const char *wl, unsigned n, unsigned x, LongLoadPolicy pol)
{
    SimConfig cfg = table3Config(wl, EngineKind::Stream, n, x);
    cfg.core.longLoadPolicy = pol;
    cfg.warmupCycles = 40'000;
    cfg.measureCycles = 200'000;
    Simulator sim(cfg);
    sim.run();
    return sim.stats().ipc();
}

} // namespace

int
main()
{
    std::printf("== Ablation: long-latency-load policies (stream "
                "engine) ==\n\n");

    TextTable t({"workload", "policy", "baseline", "STALL", "FLUSH"});
    for (const char *wl : {"2_MIX", "2_MEM", "4_MIX"}) {
        for (auto [n, x] : {std::pair{2u, 8u}, {1u, 16u}}) {
            t.addRow({wl, csprintf("%u.%u", n, x),
                      TextTable::num(
                          runWith(wl, n, x, LongLoadPolicy::None)),
                      TextTable::num(
                          runWith(wl, n, x, LongLoadPolicy::Stall)),
                      TextTable::num(
                          runWith(wl, n, x, LongLoadPolicy::Flush))});
        }
    }
    t.print(std::cout);
    std::printf("\nSTALL/FLUSH recover part of the 2.X clog loss "
                "(Tullsen & Brown), while the\npaper's ICOUNT.1.16 "
                "needs no load-awareness at all.\n");
    return 0;
}
