/**
 * @file
 * Ablation A4 (extension): Tullsen & Brown's long-latency-load
 * policies (STALL / FLUSH) on top of each fetch configuration. The
 * paper argues ICOUNT.1.X avoids the clog by construction; this
 * ablation shows how much of the 2.X loss a load-aware policy
 * recovers, and how much it still trails the paper's proposal. Thin
 * wrapper over configs/ablation_flush.json (see smtsim).
 */

#include "bench_common.hh"

using namespace smtbench;

namespace
{

double
ipcWith(const std::vector<ExperimentResult> &rs, const char *wl,
        unsigned n, unsigned x, LongLoadPolicy pol)
{
    RunOverrides ov;
    ov.longLoadPolicy = pol;
    const auto *r = find(rs, wl, EngineKind::Stream, n, x,
                         PolicyKind::ICount, ov);
    if (r == nullptr)
        fatal("long-load point %s/%u.%u/%s missing from the spec",
              wl, n, x, longLoadPolicyName(pol));
    return r->ipc;
}

} // namespace

int
main()
{
    std::printf("== Ablation: long-latency-load policies (stream "
                "engine) ==\n\n");

    SpecRun sr = runSpecByName("ablation_flush");
    BenchReport report(sr.spec.benchName());
    report.add(sr.results);

    TextTable t({"workload", "policy", "baseline", "STALL", "FLUSH"});
    for (const char *wl : {"2_MIX", "2_MEM", "4_MIX"}) {
        for (auto [n, x] : {std::pair{2u, 8u}, {1u, 16u}}) {
            double base = ipcWith(sr.results, wl, n, x,
                                  LongLoadPolicy::None);
            double stall = ipcWith(sr.results, wl, n, x,
                                   LongLoadPolicy::Stall);
            double flush = ipcWith(sr.results, wl, n, x,
                                   LongLoadPolicy::Flush);
            std::string key = csprintf("%s.%u.%u", wl, n, x);
            report.metric(key + ".baseline.ipc", base);
            report.metric(key + ".stall.ipc", stall);
            report.metric(key + ".flush.ipc", flush);
            t.addRow({wl, csprintf("%u.%u", n, x),
                      TextTable::num(base), TextTable::num(stall),
                      TextTable::num(flush)});
        }
    }
    t.print(std::cout);
    report.write();
    std::printf("\nSTALL/FLUSH recover part of the 2.X clog loss "
                "(Tullsen & Brown), while the\npaper's ICOUNT.1.16 "
                "needs no load-awareness at all.\n");
    return 0;
}
