/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries: grid
 * runners and table renderers that print each figure's series next to
 * the paper's qualitative expectations.
 */

#ifndef SMTFETCH_BENCH_COMMON_HH
#define SMTFETCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/table.hh"

namespace smtbench
{

using namespace smt;

/** Default measurement windows for figure reproduction. */
inline ExperimentRunner
makeRunner()
{
    return ExperimentRunner(/*warmup=*/40'000, /*measure=*/250'000);
}

/** Run a (workload x policy x engine) grid and print both metrics. */
inline std::vector<ExperimentResult>
runGrid(const std::vector<std::string> &workloads,
        const std::vector<std::pair<unsigned, unsigned>> &policies,
        const std::string &title)
{
    ExperimentRunner runner = makeRunner();
    std::vector<ExperimentRunner::GridPoint> pts;
    for (const auto &w : workloads)
        for (auto e : allEngines())
            for (auto [n, x] : policies)
                pts.push_back({w, e, n, x, PolicyKind::ICount});

    auto results = runner.runAll(pts);

    ExperimentRunner::printFigure(std::cout, title + " (a) Fetch throughput, IPFC",
                                  results, /*fetch=*/true);
    std::cout << '\n';
    ExperimentRunner::printFigure(std::cout, title + " (b) Commit throughput, IPC",
                                  results, /*fetch=*/false);
    std::cout << '\n';
    return results;
}

/**
 * Write the machine-readable record for a bench run: a
 * BENCH_<bench>.json document next to the printed table. The output
 * directory defaults to the working directory and can be overridden
 * with SMTFETCH_JSON_DIR; set SMTFETCH_NO_JSON=1 to skip emission.
 */
inline void
writeBenchJson(const std::string &bench,
               const std::vector<ExperimentResult> &results,
               const std::vector<std::pair<std::string, double>>
                   &metrics = {})
{
    const char *off = std::getenv("SMTFETCH_NO_JSON");
    if (off != nullptr && off[0] != '\0' && off[0] != '0')
        return;
    const char *dir = std::getenv("SMTFETCH_JSON_DIR");
    std::string path = std::string(dir != nullptr ? dir : ".") +
                       "/BENCH_" + bench + ".json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }
    ExperimentRunner::writeJson(os, bench, results, metrics);
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Incremental collector for a bench's machine-readable record: grid
 * results and/or ad-hoc named metrics, written as BENCH_<name>.json.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench)
        : bench(std::move(bench))
    {
    }

    void add(const ExperimentResult &r) { results.push_back(r); }

    void
    add(const std::vector<ExperimentResult> &rs)
    {
        results.insert(results.end(), rs.begin(), rs.end());
    }

    void
    metric(const std::string &name, double v)
    {
        metrics.emplace_back(name, v);
    }

    void write() const { writeBenchJson(bench, results, metrics); }

  private:
    std::string bench;
    std::vector<ExperimentResult> results;
    std::vector<std::pair<std::string, double>> metrics;
};

/** Find one grid point. */
inline const ExperimentResult *
find(const std::vector<ExperimentResult> &rs, const std::string &wl,
     EngineKind e, unsigned n, unsigned x)
{
    for (const auto &r : rs)
        if (r.workload == wl && r.engine == e && r.fetchThreads == n &&
            r.fetchWidth == x)
            return &r;
    return nullptr;
}

/** Print a "paper expects X, we measured Y" check line. */
inline void
check(const std::string &what, bool holds)
{
    std::printf("  [%s] %s\n", holds ? "OK " : "...", what.c_str());
}

inline double
pct(double a, double b)
{
    return b == 0 ? 0 : (a / b - 1.0) * 100.0;
}

} // namespace smtbench

#endif // SMTFETCH_BENCH_COMMON_HH
