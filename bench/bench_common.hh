/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries. Each
 * binary is a thin wrapper over the experiment spec of the same name
 * under configs/ (the grids the smtsim CLI runs); the wrapper adds
 * the figure tables and "paper expects X" shape checks.
 */

#ifndef SMTFETCH_BENCH_COMMON_HH
#define SMTFETCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/sweep_spec.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace smtbench
{

using namespace smt;

/** Load configs/<name>.json; fatal() on any spec problem. */
inline SweepSpec
loadSpec(const std::string &name)
{
    try {
        return SweepSpec::fromFile(defaultConfigDir() + "/" + name +
                                   ".json");
    } catch (const SpecError &e) {
        fatal("%s", e.what());
    }
}

/** A spec together with its grid results. */
struct SpecRun
{
    SweepSpec spec;
    std::vector<ExperimentResult> results;
};

/** Load configs/<name>.json and run its grid. */
inline SpecRun
runSpecByName(const std::string &name)
{
    SpecRun sr{loadSpec(name), {}};
    sr.results = runSpec(sr.spec).results;
    return sr;
}

/** Print a figure's (a) IPFC and (b) IPC tables. */
inline void
printBothFigures(const std::vector<ExperimentResult> &results,
                 const std::string &title)
{
    ExperimentRunner::printFigure(
        std::cout, title + " (a) Fetch throughput, IPFC", results,
        /*fetch=*/true);
    std::cout << '\n';
    ExperimentRunner::printFigure(
        std::cout, title + " (b) Commit throughput, IPC", results,
        /*fetch=*/false);
    std::cout << '\n';
}

/**
 * Write the machine-readable record for a bench run: a
 * BENCH_<bench>.json document next to the printed table. The output
 * directory defaults to the working directory and can be overridden
 * with SMTFETCH_JSON_DIR; set SMTFETCH_NO_JSON=1 to skip emission.
 */
inline void
writeBenchJson(const std::string &bench,
               const std::vector<ExperimentResult> &results,
               const std::vector<std::pair<std::string, double>>
                   &metrics = {})
{
    writeBenchRecord(bench, results, metrics);
}

/**
 * Incremental collector for a bench's machine-readable record: grid
 * results and/or ad-hoc named metrics, written as BENCH_<name>.json.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench)
        : bench(std::move(bench))
    {
    }

    void add(const ExperimentResult &r) { results.push_back(r); }

    void
    add(const std::vector<ExperimentResult> &rs)
    {
        results.insert(results.end(), rs.begin(), rs.end());
    }

    void
    metric(const std::string &name, double v)
    {
        metrics.emplace_back(name, v);
    }

    void write() const { writeBenchJson(bench, results, metrics); }

  private:
    std::string bench;
    std::vector<ExperimentResult> results;
    std::vector<std::pair<std::string, double>> metrics;
};

/** Find one grid point (any selection policy, no overrides). */
inline const ExperimentResult *
find(const std::vector<ExperimentResult> &rs, const std::string &wl,
     EngineKind e, unsigned n, unsigned x)
{
    for (const auto &r : rs)
        if (r.workload == wl && r.engine == e && r.fetchThreads == n &&
            r.fetchWidth == x && !r.overrides.any())
            return &r;
    return nullptr;
}

/** Find one grid point by selection policy and overrides too. */
inline const ExperimentResult *
find(const std::vector<ExperimentResult> &rs, const std::string &wl,
     EngineKind e, unsigned n, unsigned x, PolicyKind selection,
     const RunOverrides &ov = RunOverrides{})
{
    for (const auto &r : rs)
        if (r.workload == wl && r.engine == e && r.fetchThreads == n &&
            r.fetchWidth == x && r.policy == selection &&
            r.overrides == ov)
            return &r;
    return nullptr;
}

/** Like find(), but fatal() when the point is missing. */
inline const ExperimentResult &
need(const std::vector<ExperimentResult> &rs, const std::string &wl,
     EngineKind e, unsigned n, unsigned x)
{
    const ExperimentResult *r = find(rs, wl, e, n, x);
    if (r == nullptr)
        fatal("grid point %s/%s/%u.%u missing from the spec",
              wl.c_str(), engineName(e), n, x);
    return *r;
}

/** Print a "paper expects X, we measured Y" check line. */
inline void
check(const std::string &what, bool holds)
{
    std::printf("  [%s] %s\n", holds ? "OK " : "...", what.c_str());
}

inline double
pct(double a, double b)
{
    return b == 0 ? 0 : (a / b - 1.0) * 100.0;
}

} // namespace smtbench

#endif // SMTFETCH_BENCH_COMMON_HH
