/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries: grid
 * runners and table renderers that print each figure's series next to
 * the paper's qualitative expectations.
 */

#ifndef SMTFETCH_BENCH_COMMON_HH
#define SMTFETCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/table.hh"

namespace smtbench
{

using namespace smt;

/** Default measurement windows for figure reproduction. */
inline ExperimentRunner
makeRunner()
{
    return ExperimentRunner(/*warmup=*/40'000, /*measure=*/250'000);
}

/** Run a (workload x policy x engine) grid and print both metrics. */
inline std::vector<ExperimentResult>
runGrid(const std::vector<std::string> &workloads,
        const std::vector<std::pair<unsigned, unsigned>> &policies,
        const std::string &title)
{
    ExperimentRunner runner = makeRunner();
    std::vector<ExperimentRunner::GridPoint> pts;
    for (const auto &w : workloads)
        for (auto e : allEngines())
            for (auto [n, x] : policies)
                pts.push_back({w, e, n, x, PolicyKind::ICount});

    auto results = runner.runAll(pts);

    ExperimentRunner::printFigure(std::cout, title + " (a) Fetch throughput, IPFC",
                                  results, /*fetch=*/true);
    std::cout << '\n';
    ExperimentRunner::printFigure(std::cout, title + " (b) Commit throughput, IPC",
                                  results, /*fetch=*/false);
    std::cout << '\n';
    return results;
}

/** Find one grid point. */
inline const ExperimentResult *
find(const std::vector<ExperimentResult> &rs, const std::string &wl,
     EngineKind e, unsigned n, unsigned x)
{
    for (const auto &r : rs)
        if (r.workload == wl && r.engine == e && r.fetchThreads == n &&
            r.fetchWidth == x)
            return &r;
    return nullptr;
}

/** Print a "paper expects X, we measured Y" check line. */
inline void
check(const std::string &what, bool holds)
{
    std::printf("  [%s] %s\n", holds ? "OK " : "...", what.c_str());
}

inline double
pct(double a, double b)
{
    return b == 0 ? 0 : (a / b - 1.0) * 100.0;
}

} // namespace smtbench

#endif // SMTFETCH_BENCH_COMMON_HH
