/**
 * @file
 * Ablation A3: fetch policy. ICOUNT vs round-robin across the key
 * policy/workload points; the paper builds on ICOUNT because RR
 * ignores pipeline occupancy and feeds clogged threads.
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Ablation: ICOUNT vs Round-Robin (stream engine) "
                "==\n\n");

    ExperimentRunner runner = makeRunner();
    BenchReport report("ablation_policy");
    TextTable t({"workload", "policy", "RR IPC", "ICOUNT IPC",
                 "ICOUNT gain"});
    for (const char *wl : {"2_ILP", "2_MIX", "4_MIX", "8_MIX"}) {
        for (auto [n, x] :
             {std::pair{1u, 8u}, {2u, 8u}, {1u, 16u}}) {
            auto rr = runner.run(wl, EngineKind::Stream, n, x,
                                 PolicyKind::RoundRobin);
            auto ic = runner.run(wl, EngineKind::Stream, n, x,
                                 PolicyKind::ICount);
            report.add(rr);
            report.add(ic);
            t.addRow({wl, csprintf("%u.%u", n, x),
                      TextTable::num(rr.ipc), TextTable::num(ic.ipc),
                      TextTable::pct(ic.ipc / rr.ipc - 1)});
        }
    }
    t.print(std::cout);
    report.write();
    return 0;
}
