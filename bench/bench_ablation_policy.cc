/**
 * @file
 * Ablation A3: fetch policy. ICOUNT vs round-robin across the key
 * policy/workload points; the paper builds on ICOUNT because RR
 * ignores pipeline occupancy and feeds clogged threads. Thin wrapper
 * over configs/ablation_policy.json (see smtsim).
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Ablation: ICOUNT vs Round-Robin (stream engine) "
                "==\n\n");

    SpecRun sr = runSpecByName("ablation_policy");
    BenchReport report(sr.spec.benchName());
    report.add(sr.results);

    TextTable t({"workload", "policy", "RR IPC", "ICOUNT IPC",
                 "ICOUNT gain"});
    for (const char *wl : {"2_ILP", "2_MIX", "4_MIX", "8_MIX"}) {
        for (auto [n, x] :
             {std::pair{1u, 8u}, {2u, 8u}, {1u, 16u}}) {
            const auto *rr = find(sr.results, wl, EngineKind::Stream,
                                  n, x, PolicyKind::RoundRobin);
            const auto *ic = find(sr.results, wl, EngineKind::Stream,
                                  n, x, PolicyKind::ICount);
            if (rr == nullptr || ic == nullptr)
                fatal("policy point %s/%u.%u missing from the spec",
                      wl, n, x);
            t.addRow({wl, csprintf("%u.%u", n, x),
                      TextTable::num(rr->ipc), TextTable::num(ic->ipc),
                      TextTable::pct(ic->ipc / rr->ipc - 1)});
        }
    }
    t.print(std::cout);
    report.write();
    return 0;
}
