/**
 * @file
 * Figure 5: fetch and commit throughput for ILP workloads under
 * ICOUNT.1.8 vs ICOUNT.2.8, all three fetch engines. Thin wrapper
 * over configs/fig5_ilp.json (see smtsim).
 *
 * Paper reference shapes: 2.8 > 1.8 for every engine (fetch is the
 * ILP bottleneck); stream > gskew+FTB > gshare+BTB; at 1.8 the stream
 * fetch gains ~20% IPC over gshare+BTB.
 */

#include "bench_common.hh"

using namespace smtbench;

int
main()
{
    std::printf("== Figure 5: ILP workloads, ICOUNT.1.8 vs "
                "ICOUNT.2.8 ==\n\n");

    SpecRun sr = runSpecByName("fig5_ilp");
    const auto &rs = sr.results;
    printBothFigures(rs, "Fig. 5");

    std::vector<std::string> wls = {"2_ILP", "4_ILP", "6_ILP", "8_ILP"};
    std::printf("Shape checks:\n");
    int two_beats_one = 0, stream_leads = 0, n = 0;
    for (const auto &w : wls) {
        for (auto e : paperEngines()) {
            const auto *a = find(rs, w, e, 1, 8);
            const auto *b = find(rs, w, e, 2, 8);
            if (a && b && b->ipc > a->ipc)
                ++two_beats_one;
            ++n;
        }
        const auto *g = find(rs, w, EngineKind::GshareBtb, 1, 8);
        const auto *s = find(rs, w, EngineKind::Stream, 1, 8);
        if (g && s && s->ipfc >= g->ipfc)
            ++stream_leads;
    }
    check(csprintf("2.8 beats 1.8 in IPC (%d of %d engine/workload "
                   "points)", two_beats_one, n),
          two_beats_one >= n - 2);
    check(csprintf("stream fetch >= gshare+BTB IPFC at 1.8 (%d of 4 "
                   "workloads)", stream_leads),
          stream_leads >= 3);

    writeBenchJson(sr.spec.benchName(), rs);
    return 0;
}
