/**
 * @file
 * The smtsim serve daemon: SweepServer glues the HTTP transport
 * (serve/http.hh) to the request handling (serve/service.hh), and
 * serveMain implements the `smtsim serve` subcommand.
 */

#ifndef SMTFETCH_SERVE_SERVER_HH
#define SMTFETCH_SERVE_SERVER_HH

#include <memory>

#include "serve/http.hh"
#include "serve/service.hh"

namespace smt
{

/**
 * A running daemon. Construction binds the port and starts serving;
 * requests are handled until stop(). Tests embed this directly; the
 * CLI wraps it in serveMain's signal-aware run loop.
 */
class SweepServer
{
  public:
    explicit SweepServer(const ServeOptions &options);
    ~SweepServer();

    /** The actually-bound port (options.port == 0 picks one). */
    std::uint16_t port() const { return http->port(); }

    SweepService &serviceRef() { return *service; }

    /** A client POSTed /v1/shutdown. */
    bool
    shutdownRequested() const
    {
        return service->shutdownRequested();
    }

    /** Stop accepting and drain connections (idempotent). */
    void stop();

  private:
    // Service first: connection threads reach through http into
    // service, so it must outlive the transport.
    std::unique_ptr<SweepService> service;
    std::unique_ptr<HttpServer> http;
};

/** The `smtsim serve` subcommand (argv past the subcommand word). */
int serveMain(int argc, char **argv);

} // namespace smt

#endif // SMTFETCH_SERVE_SERVER_HH
