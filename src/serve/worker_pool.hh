/**
 * @file
 * The coordinator side of the distributed-sweep protocol: WorkerPool
 * owns N `smtsim worker` processes (or attaches to externally
 * started ones, the test harness path) and runs one grid point at a
 * time on each over loopback HTTP. Transport failures — a worker
 * SIGKILLed mid-point, a refused connect — are retried on a freshly
 * respawned worker; HTTP error statuses are real simulation answers
 * and propagate as exceptions.
 */

#ifndef SMTFETCH_SERVE_WORKER_POOL_HH
#define SMTFETCH_SERVE_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/executor.hh"

namespace smt
{

class WorkerPool
{
  public:
    struct Options
    {
        unsigned workers = 2;

        /** The smtsim binary to exec (normally selfExePath()). */
        std::string exePath;

        std::string host = "127.0.0.1";

        /** Per-worker in-memory snapshot-cache budget. */
        std::size_t cacheMaxBytes = 256u << 20;
    };

    /** Spawn-mode pool: forks options.workers worker processes and
     *  waits for each port-file handshake. Throws ServeError when a
     *  worker cannot be started. */
    explicit WorkerPool(const Options &options);

    /** Attach-mode pool: drives already-listening worker endpoints
     *  (in-process WorkerService servers in tests). Dead endpoints
     *  are never respawned — transport failures propagate. */
    explicit WorkerPool(std::vector<std::uint16_t> attach_ports,
                        std::string host = "127.0.0.1");

    /** Kills (SIGKILL) and reaps every spawned worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run one grid point on an idle worker (blocking until one is
     * free). Retries transport failures on a respawned worker a few
     * times before giving up; throws std::runtime_error on a worker
     * simulation error and ServeError when workers die repeatedly.
     */
    PointOutcome runPoint(const ExecutorParams &params,
                          const GridPoint &point,
                          const std::string &snapshot_dir,
                          bool reuse);

    unsigned size() const { return (unsigned)workers.size(); }

    /** Worker processes respawned after transport failures. */
    std::uint64_t respawns() const;

  private:
    struct Worker
    {
        long pid = -1; //!< -1 in attach mode
        std::uint16_t port = 0;
        bool busy = false;
        unsigned generation = 0;
    };

    unsigned checkout();
    void checkin(unsigned slot);
    void spawnOne(unsigned slot);
    void killOne(Worker &w);

    Options options;
    bool spawned = false; //!< spawn mode (vs attach mode)
    std::string tmpDir;   //!< port-file handshake directory

    mutable std::mutex m;
    std::condition_variable cvIdle;
    std::vector<Worker> workers;
    std::uint64_t respawnCount = 0;
};

/** Absolute path of the running executable (worker spawning).
 *  Throws ServeError when the platform cannot provide one and
 *  `argv0_fallback` does not name an existing file. */
std::string selfExePath(const std::string &argv0_fallback = "");

} // namespace smt

#endif // SMTFETCH_SERVE_WORKER_POOL_HH
