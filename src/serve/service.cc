#include "serve/service.hh"

#include <cstdlib>
#include <optional>
#include <sstream>

#include "serve/distributed.hh"
#include "serve/http.hh"
#include "sim/experiment.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

const char *
stateName(SweepScheduler::JobState s)
{
    switch (s) {
      case SweepScheduler::JobState::Queued: return "queued";
      case SweepScheduler::JobState::Running: return "running";
      case SweepScheduler::JobState::Done: return "done";
      case SweepScheduler::JobState::Failed: return "failed";
      case SweepScheduler::JobState::Cancelled: return "cancelled";
    }
    return "unknown";
}

std::string
errorBody(const std::string &message)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("error", message);
    jw.endObject();
    return os.str();
}

void
writeStatusFields(JsonWriter &jw, SweepScheduler::JobId id,
                  const std::string &bench,
                  const SweepScheduler::JobStatus &s)
{
    jw.field("id", static_cast<std::uint64_t>(id));
    jw.field("bench", bench);
    if (!s.name.empty())
        jw.field("name", s.name);
    jw.field("state", stateName(s.state));
    jw.field("totalPoints",
             static_cast<std::uint64_t>(s.totalPoints));
    jw.field("completedPoints",
             static_cast<std::uint64_t>(s.completedPoints));
    jw.field("cancelledPoints",
             static_cast<std::uint64_t>(s.cancelledPoints));
    jw.field("warmupRuns",
             static_cast<std::uint64_t>(s.warmupRuns));
    jw.field("restoredRuns",
             static_cast<std::uint64_t>(s.restoredRuns));
    if (!s.error.empty())
        jw.field("error", s.error);
    jw.field("firstDoneSeq", s.firstDoneSeq);
    jw.field("lastDoneSeq", s.lastDoneSeq);
}

/** "/v1/sweeps/<id>[/...]" → id, or nullopt for non-numeric ids. */
std::optional<SweepScheduler::JobId>
parseId(const std::string &digits)
{
    if (digits.empty())
        return std::nullopt;
    for (char c : digits)
        if (c < '0' || c > '9')
            return std::nullopt;
    return static_cast<SweepScheduler::JobId>(
        std::strtoull(digits.c_str(), nullptr, 10));
}

} // namespace

SweepService::SweepService(const ServeOptions &options)
    : cache(options.cacheMaxBytes),
      scheduler(options.workers, &cache, options.snapshotDir),
      snapshotDir(options.snapshotDir)
{
}

SweepService::Response
SweepService::handle(const std::string &method,
                     const std::string &target,
                     const std::string &body)
{
    if (target == "/v1/healthz") {
        if (method != "GET")
            return {405, errorBody("use GET " + target)};
        return {200, "{\"ok\": true}"};
    }
    if (target == "/v1/status") {
        if (method != "GET")
            return {405, errorBody("use GET " + target)};
        return daemonStatus();
    }
    if (target == "/v1/shutdown") {
        if (method != "POST")
            return {405, errorBody("use POST " + target)};
        shutdown.store(true);
        return {200, "{\"shuttingDown\": true}"};
    }
    if (target == "/v1/sweeps") {
        if (method == "POST")
            return submit(body);
        if (method == "GET")
            return list();
        return {405, errorBody("use GET or POST " + target)};
    }

    const std::string prefix = "/v1/sweeps/";
    if (target.rfind(prefix, 0) == 0) {
        std::string rest = target.substr(prefix.size());
        std::string digits = rest;
        std::string tail;
        std::size_t slash = rest.find('/');
        if (slash != std::string::npos) {
            digits = rest.substr(0, slash);
            tail = rest.substr(slash);
        }
        auto id = parseId(digits);
        if (!id)
            return {404, errorBody("bad sweep id \"" + digits +
                                   "\" (expected digits)")};
        if (tail.empty()) {
            if (method != "GET")
                return {405, errorBody("use GET " + target)};
            return jobStatus(*id);
        }
        if (tail == "/record") {
            if (method != "GET")
                return {405, errorBody("use GET " + target)};
            return jobRecord(*id);
        }
        if (tail == "/cancel") {
            if (method != "POST")
                return {405, errorBody("use POST " + target)};
            return jobCancel(*id);
        }
    }

    return {404, errorBody("unknown endpoint " + method + " " +
                           target)};
}

SweepService::Response
SweepService::submit(const std::string &body)
{
    SweepSpec spec;
    try {
        // The exact parser/validator the CLI runs — same schema,
        // same error messages.
        spec = SweepSpec::fromString(body);
        if (spec.type != SpecType::Grid)
            throw SpecError(csprintf(
                "spec \"%s\" is not a grid spec", spec.name.c_str()));
    } catch (const SpecError &e) {
        return {400, errorBody(e.what())};
    }

    SweepRequest request = spec.makeRequest();
    // The daemon's whole point is cross-client warmup sharing:
    // every sweep joins the shared snapshot cache (results are
    // bit-identical to the plain path either way).
    request.reuseWarmup = true;

    SweepScheduler::JobId id;
    try {
        if (spec.distributedWorkers > 0) {
            // {"distributed": {"workers": N}}: fan this sweep out
            // to N spawned worker processes. The daemon's default
            // snapshot tier doubles as the journal directory when
            // the spec names no checkpointDir, so these sweeps
            // resume across daemon restarts too.
            if (request.checkpointDir.empty())
                request.checkpointDir = snapshotDir;
            DistributedOptions dopts;
            dopts.workers = spec.distributedWorkers;
            dopts.exePath = selfExePath();
            id = submitDistributed(scheduler, request,
                                   spec.benchName(), dopts)
                     .id;
        } else {
            id = scheduler.submit(request, spec.name);
        }
    } catch (const std::invalid_argument &e) {
        return {400, errorBody(e.what())};
    } catch (const JournalError &e) {
        return {409, errorBody(e.what())};
    } catch (const ServeError &e) {
        return {500, errorBody(e.what())};
    }
    {
        std::lock_guard<std::mutex> lock(m);
        benchNames.emplace(id, spec.benchName());
    }

    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("id", static_cast<std::uint64_t>(id));
    jw.field("bench", spec.benchName());
    jw.field("status",
             csprintf("/v1/sweeps/%llu", (unsigned long long)id));
    jw.field("record",
             csprintf("/v1/sweeps/%llu/record",
                      (unsigned long long)id));
    jw.endObject();
    return {201, os.str()};
}

SweepService::Response
SweepService::list() const
{
    std::map<SweepScheduler::JobId, std::string> names;
    {
        std::lock_guard<std::mutex> lock(m);
        names = benchNames;
    }
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.key("sweeps");
    jw.beginArray();
    for (const auto &[id, bench] : names) {
        auto s = scheduler.status(id);
        if (!s)
            continue;
        jw.beginObject();
        writeStatusFields(jw, id, bench, *s);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return {200, os.str()};
}

SweepService::Response
SweepService::jobStatus(SweepScheduler::JobId id) const
{
    auto s = scheduler.status(id);
    if (!s)
        return {404, errorBody(csprintf("unknown sweep id %llu",
                                        (unsigned long long)id))};
    std::string bench;
    {
        std::lock_guard<std::mutex> lock(m);
        auto it = benchNames.find(id);
        bench = it == benchNames.end() ? "" : it->second;
    }
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    writeStatusFields(jw, id, bench, *s);
    jw.endObject();
    return {200, os.str()};
}

SweepService::Response
SweepService::jobRecord(SweepScheduler::JobId id) const
{
    auto s = scheduler.status(id);
    if (!s)
        return {404, errorBody(csprintf("unknown sweep id %llu",
                                        (unsigned long long)id))};
    const SweepReport *report = scheduler.report(id);
    if (report == nullptr)
        return {409,
                errorBody(csprintf(
                    "sweep %llu is %s — the record exists only "
                    "once the sweep is done",
                    (unsigned long long)id, stateName(s->state)))};
    std::string bench;
    {
        std::lock_guard<std::mutex> lock(m);
        auto it = benchNames.find(id);
        bench = it == benchNames.end() ? "sweep" : it->second;
    }
    // Byte-compatible with the single-process runner: both render
    // through ExperimentRunner::writeJson.
    std::ostringstream os;
    ExperimentRunner::writeJson(os, bench, report->results, {},
                                &report->timing);
    return {200, os.str()};
}

SweepService::Response
SweepService::jobCancel(SweepScheduler::JobId id)
{
    if (!scheduler.status(id))
        return {404, errorBody(csprintf("unknown sweep id %llu",
                                        (unsigned long long)id))};
    bool cancelled = scheduler.cancel(id);
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("id", static_cast<std::uint64_t>(id));
    jw.field("cancelled", cancelled);
    jw.endObject();
    return {200, os.str()};
}

SweepService::Response
SweepService::daemonStatus() const
{
    auto cs = cache.stats();
    std::size_t sweeps;
    {
        std::lock_guard<std::mutex> lock(m);
        sweeps = benchNames.size();
    }
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("workers", scheduler.workerCount());
    jw.field("sweeps", static_cast<std::uint64_t>(sweeps));
    jw.key("cache");
    jw.beginObject();
    jw.field("hits", cs.hits);
    jw.field("diskHits", cs.diskHits);
    jw.field("misses", cs.misses);
    jw.field("insertions", cs.insertions);
    jw.field("evictions", cs.evictions);
    jw.field("persistFailures", cs.persistFailures);
    jw.field("bytes", static_cast<std::uint64_t>(cs.bytes));
    jw.field("entries", static_cast<std::uint64_t>(cs.entries));
    jw.field("maxBytes", static_cast<std::uint64_t>(cs.maxBytes));
    jw.endObject();
    jw.endObject();
    return {200, os.str()};
}

} // namespace smt
