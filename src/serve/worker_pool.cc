#include "serve/worker_pool.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#ifndef _WIN32
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "serve/http.hh"
#include "sim/result_codec.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

/** Transport retries per point before declaring the fleet broken. */
constexpr unsigned maxAttempts = 3;

} // namespace

WorkerPool::WorkerPool(const Options &options_in)
    : options(options_in), spawned(true)
{
#ifdef _WIN32
    throw ServeError("distributed sweeps require POSIX process "
                     "spawning (not available on this platform)");
#else
    if (options.workers == 0)
        options.workers = 2;
    if (options.exePath.empty())
        throw ServeError("worker pool: no smtsim executable path");

    const char *t = std::getenv("TMPDIR");
    std::string tmpl = std::string(t != nullptr && *t != '\0'
                                       ? t
                                       : "/tmp") +
                       "/smtsim_workers_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr)
        throw ServeError(
            "worker pool: cannot create handshake directory: " +
            std::string(std::strerror(errno)));
    tmpDir = buf.data();

    workers.resize(options.workers);
    try {
        for (unsigned slot = 0; slot < options.workers; ++slot)
            spawnOne(slot);
    } catch (...) {
        for (Worker &w : workers)
            killOne(w);
        ::rmdir(tmpDir.c_str());
        throw;
    }
#endif
}

WorkerPool::WorkerPool(std::vector<std::uint16_t> attach_ports,
                       std::string host)
{
    options.host = std::move(host);
    workers.resize(attach_ports.size());
    for (std::size_t i = 0; i < attach_ports.size(); ++i)
        workers[i].port = attach_ports[i];
}

WorkerPool::~WorkerPool()
{
#ifndef _WIN32
    for (Worker &w : workers)
        killOne(w);
    if (!tmpDir.empty())
        ::rmdir(tmpDir.c_str());
#endif
}

std::uint64_t
WorkerPool::respawns() const
{
    std::lock_guard<std::mutex> lock(m);
    return respawnCount;
}

unsigned
WorkerPool::checkout()
{
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
        for (unsigned i = 0; i < workers.size(); ++i) {
            if (!workers[i].busy) {
                workers[i].busy = true;
                return i;
            }
        }
        cvIdle.wait(lock);
    }
}

void
WorkerPool::checkin(unsigned slot)
{
    {
        std::lock_guard<std::mutex> lock(m);
        workers[slot].busy = false;
    }
    cvIdle.notify_one();
}

void
WorkerPool::killOne(Worker &w)
{
#ifndef _WIN32
    if (w.pid > 0) {
        // Workers are stateless (disk-tier writes are atomic), so a
        // hard kill is always safe and never blocks teardown.
        ::kill(static_cast<pid_t>(w.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(w.pid), nullptr, 0);
        w.pid = -1;
    }
    if (w.generation > 0) {
        std::string portFile =
            tmpDir + csprintf("/worker%u.port",
                              (unsigned)(&w - workers.data()));
        std::remove(portFile.c_str());
    }
#else
    (void)w;
#endif
}

void
WorkerPool::spawnOne(unsigned slot)
{
#ifdef _WIN32
    (void)slot;
    throw ServeError("distributed sweeps require POSIX process "
                     "spawning");
#else
    {
        std::lock_guard<std::mutex> lock(m);
        ++workers[slot].generation;
    }
    std::string portFile = tmpDir + csprintf("/worker%u.port", slot);
    std::remove(portFile.c_str());
    std::string cacheMb =
        std::to_string(options.cacheMaxBytes >> 20);

    pid_t pid = ::fork();
    if (pid < 0)
        throw ServeError("worker pool: fork failed: " +
                         std::string(std::strerror(errno)));
    if (pid == 0) {
#ifdef __linux__
        // Die with the coordinator: a SIGKILLed `smtsim sweep` must
        // not leave orphan simulators burning CPU.
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() == 1)
            ::_exit(125); // the parent died before prctl took hold
#endif
        ::execl(options.exePath.c_str(), options.exePath.c_str(),
                "worker", "--port", "0", "--port-file",
                portFile.c_str(), "--cache-mb", cacheMb.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127); // exec failed; the parent sees a dead child
    }

    // Handshake: the worker writes its bound port once listening.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(15);
    std::uint16_t port = 0;
    for (;;) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            throw ServeError(csprintf(
                "worker pool: %s worker exited during startup "
                "(status %d) — run `%s worker` by hand to see why",
                options.exePath.c_str(), status,
                options.exePath.c_str()));
        std::ifstream pf(portFile);
        unsigned p = 0;
        if (pf && pf >> p && p > 0 && p <= 65535) {
            port = static_cast<std::uint16_t>(p);
            break;
        }
        if (std::chrono::steady_clock::now() > deadline) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
            throw ServeError(
                "worker pool: worker startup handshake timed out");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    std::lock_guard<std::mutex> lock(m);
    workers[slot].pid = pid;
    workers[slot].port = port;
#endif
}

PointOutcome
WorkerPool::runPoint(const ExecutorParams &params,
                     const GridPoint &point,
                     const std::string &snapshot_dir, bool reuse)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.key("params");
    writeExecutorParamsJson(jw, params);
    jw.key("point");
    jw.raw(pointToWireJson(point));
    if (!snapshot_dir.empty())
        jw.field("snapshotDir", snapshot_dir);
    jw.field("reuse", reuse);
    jw.endObject();
    std::string body = os.str();

    unsigned slot = checkout();
    struct Checkin
    {
        WorkerPool &pool;
        unsigned slot;
        ~Checkin() { pool.checkin(slot); }
    } guard{*this, slot};

    for (unsigned attempt = 1;; ++attempt) {
        std::uint16_t port;
        {
            std::lock_guard<std::mutex> lock(m);
            port = workers[slot].port;
        }
        try {
            HttpResponse resp = httpFetch(
                options.host, port, "POST", "/v1/point", body);
            if (resp.status != 200) {
                // A real answer: the simulation rejected the point
                // deterministically. Respawning cannot help.
                std::string msg = resp.body;
                try {
                    JsonValue doc = jsonParse(resp.body);
                    if (const JsonValue *e = doc.find("error"))
                        msg = e->asString();
                } catch (...) {
                }
                throw std::runtime_error(csprintf(
                    "sweep worker rejected the point (HTTP %d): %s",
                    resp.status, msg.c_str()));
            }
            JsonValue doc = jsonParse(resp.body);
            const JsonValue *outcome = doc.find("outcome");
            if (outcome == nullptr)
                throw std::runtime_error(
                    "sweep worker answered without an \"outcome\"");
            return outcomeFromWireJson(*outcome);
        } catch (const ServeError &e) {
            // Transport failure: the worker died (or was killed)
            // mid-point. The point lost no state — warmups persist
            // in the disk tier — so respawn and retry.
            if (!spawned || attempt >= maxAttempts)
                throw ServeError(csprintf(
                    "sweep worker on port %u failed %u time%s: %s",
                    (unsigned)port, attempt,
                    attempt == 1 ? "" : "s", e.what()));
            warn("sweep worker (port %u) transport failure: %s — "
                 "respawning",
                 (unsigned)port, e.what());
            {
                std::lock_guard<std::mutex> lock(m);
                killOne(workers[slot]);
                ++respawnCount;
            }
            spawnOne(slot);
        }
    }
}

std::string
selfExePath(const std::string &argv0_fallback)
{
#ifdef __linux__
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return std::string(buf);
    }
#endif
    if (!argv0_fallback.empty() &&
        std::ifstream(argv0_fallback).good())
        return argv0_fallback;
    throw ServeError(
        "cannot determine the smtsim executable path for spawning "
        "workers (no /proc/self/exe and argv[0] is not a readable "
        "file)");
}

} // namespace smt
