#include "serve/http.hh"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "util/logging.hh"

namespace smt
{

#ifndef _WIN32

namespace
{

/** Map an HTTP status code to its reason phrase (the ones we emit). */
const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 500: return "Internal Server Error";
      default: return "Unknown";
    }
}

/**
 * recv() that retries EINTR: a signal landing mid-read (SIGCHLD from
 * a reaped sweep worker, a profiler tick) must not look like a dead
 * connection. Every other failure — including an SO_RCVTIMEO
 * timeout (EAGAIN) — still reports through the return value.
 */
ssize_t
recvRetry(int fd, char *buf, std::size_t len)
{
    ssize_t n;
    do {
        n = ::recv(fd, buf, len, 0);
    } while (n < 0 && errno == EINTR);
    return n;
}

enum class HeadRead
{
    Ok,
    Closed,  //!< EOF/timeout before the terminator; say nothing
    TooLarge //!< overflowed maxHead; answer 400
};

/** Read until the header terminator. */
HeadRead
readHead(int fd, std::string &head, std::string &rest)
{
    static constexpr std::size_t maxHead = 64 * 1024;
    char buf[4096];
    for (;;) {
        std::size_t end = head.find("\r\n\r\n");
        if (end != std::string::npos) {
            rest = head.substr(end + 4);
            head.resize(end + 4);
            return HeadRead::Ok;
        }
        if (head.size() > maxHead)
            return HeadRead::TooLarge;
        ssize_t n = recvRetry(fd, buf, sizeof(buf));
        if (n <= 0)
            return HeadRead::Closed;
        head.append(buf, static_cast<std::size_t>(n));
    }
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
        );
        if (n < 0 && errno == EINTR)
            continue; // interrupted, not dead — retry
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Strict Content-Length parse: optional surrounding blanks, then
 * digits only, overflow-checked. strtoull would accept "-1" (wrapped
 * to 2^64-1), "12x34" (as 12) and "junk" (as 0) — each one either a
 * protocol violation or a silently truncated body.
 */
bool
parseContentLength(const std::string &text, std::size_t &out)
{
    std::size_t b = 0, e = text.size();
    while (b < e && (text[b] == ' ' || text[b] == '\t'))
        ++b;
    while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t'))
        --e;
    if (b == e)
        return false;
    std::uint64_t v = 0;
    for (; b < e; ++b) {
        char c = text[b];
        if (c < '0' || c > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false; // overflow
        v = v * 10 + digit;
    }
    out = static_cast<std::size_t>(v);
    return true;
}

} // namespace

HttpServer::HttpServer(const std::string &host, std::uint16_t port,
                       Handler handler)
    : handler(std::move(handler))
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        throw ServeError("serve: cannot create socket: " +
                         std::string(std::strerror(errno)));

    int one = 1;
    if (::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0) {
        // Without SO_REUSEADDR a daemon restart can spend minutes in
        // TIME_WAIT bind failures; fail loudly instead of sometimes.
        int err = errno;
        ::close(listenFd);
        throw ServeError("serve: cannot set SO_REUSEADDR: " +
                         std::string(std::strerror(err)));
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd);
        throw ServeError("serve: bad listen address \"" + host +
                         "\" (expected a dotted IPv4 address, e.g. "
                         "127.0.0.1)");
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        ::close(listenFd);
        throw ServeError(csprintf(
            "serve: cannot bind %s:%u: %s", host.c_str(),
            (unsigned)port, std::strerror(err)));
    }
    if (::listen(listenFd, 64) != 0) {
        int err = errno;
        ::close(listenFd);
        throw ServeError("serve: cannot listen: " +
                         std::string(std::strerror(err)));
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        boundPort = ntohs(bound.sin_port);

    acceptThread = std::thread([this] { acceptLoop(); });
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(m);
        if (stopped)
            return;
        stopped = true;
    }
    // Closing the listening socket fails the blocking accept(), which
    // ends the accept loop.
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
    if (acceptThread.joinable())
        acceptThread.join();
    std::unique_lock<std::mutex> lock(m);
    cvIdle.wait(lock, [&] { return activeConnections == 0; });
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            std::lock_guard<std::mutex> lock(m);
            if (stopped)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listening socket is gone
        }

        // A stuck client must not wedge its connection thread
        // forever (stop() waits for all of them).
        timeval tv{};
        tv.tv_sec = 10;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

        {
            std::lock_guard<std::mutex> lock(m);
            ++activeConnections;
        }
        std::thread([this, fd] {
            handleConnection(fd);
            ::close(fd);
            {
                std::lock_guard<std::mutex> lock(m);
                --activeConnections;
            }
            cvIdle.notify_all();
        }).detach();
    }
}

void
HttpServer::handleConnection(int fd)
{
    auto respond = [&](const HttpResponse &r) {
        std::string out = csprintf(
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n"
            "\r\n",
            r.status, reasonPhrase(r.status), r.contentType.c_str(),
            r.body.size());
        out += r.body;
        writeAll(fd, out);
    };

    std::string head, body;
    switch (readHead(fd, head, body)) {
      case HeadRead::Ok:
        break;
      case HeadRead::Closed:
        return; // client vanished mid-request; nothing to say
      case HeadRead::TooLarge:
        respond({400, "application/json",
                 "{\"error\": \"request header too large\"}"});
        return;
    }

    // Request line: METHOD SP TARGET SP VERSION CRLF
    std::size_t line_end = head.find("\r\n");
    std::string line = head.substr(0, line_end);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        respond({400, "application/json",
                 "{\"error\": \"malformed request line\"}"});
        return;
    }

    HttpRequest req;
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t q = req.target.find('?');
    if (q != std::string::npos)
        req.target.resize(q);

    // Headers: only Content-Length matters to us.
    std::size_t content_length = 0;
    std::size_t pos = line_end + 2;
    while (pos + 2 <= head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos || eol == pos)
            break;
        std::string h = head.substr(pos, eol - pos);
        pos = eol + 2;
        std::size_t colon = h.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = h.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (name == "content-length") {
            if (!parseContentLength(h.substr(colon + 1),
                                    content_length)) {
                respond({400, "application/json",
                         "{\"error\": \"malformed Content-Length "
                         "header\"}"});
                return;
            }
        }
    }

    static constexpr std::size_t maxBody = 16 * 1024 * 1024;
    if (content_length > maxBody) {
        respond({400, "application/json",
                 "{\"error\": \"request body too large\"}"});
        return;
    }
    while (body.size() < content_length) {
        char buf[8192];
        ssize_t n = recvRetry(fd, buf, sizeof(buf));
        if (n <= 0)
            return; // truncated body: the client gave up
        body.append(buf, static_cast<std::size_t>(n));
    }
    req.body = body.substr(0, content_length);

    HttpResponse resp;
    try {
        resp = handler(req);
    } catch (const std::exception &e) {
        resp.status = 500;
        std::string msg = e.what();
        // Crude but sufficient escaping for an error string.
        std::string esc;
        for (char c : msg) {
            if (c == '"' || c == '\\')
                esc += '\\';
            if (c == '\n') {
                esc += "\\n";
                continue;
            }
            esc += c;
        }
        resp.body = "{\"error\": \"" + esc + "\"}";
    }
    respond(resp);
}

HttpResponse
httpFetch(const std::string &host, std::uint16_t port,
          const std::string &method, const std::string &target,
          const std::string &body, int timeout_seconds)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ServeError("http client: cannot create socket: " +
                         std::string(std::strerror(errno)));
    // RAII so every throw below closes the socket.
    struct FdGuard
    {
        int fd;
        ~FdGuard() { ::close(fd); }
    } guard{fd};

    timeval tv{};
    tv.tv_sec = timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw ServeError("http client: bad address \"" + host +
                         "\"");
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno == EISCONN)
        rc = 0; // the interrupted connect finished underneath us
    if (rc < 0)
        throw ServeError(csprintf(
            "http client: cannot connect to %s:%u: %s", host.c_str(),
            (unsigned)port, std::strerror(errno)));

    std::string req = csprintf(
        "%s %s HTTP/1.1\r\n"
        "Host: %s:%u\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        method.c_str(), target.c_str(), host.c_str(), (unsigned)port,
        body.size());
    req += body;
    if (!writeAll(fd, req))
        throw ServeError(csprintf(
            "http client: cannot send request to %s:%u: %s",
            host.c_str(), (unsigned)port, std::strerror(errno)));

    // Connection: close framing — read until EOF.
    std::string data;
    char buf[8192];
    for (;;) {
        ssize_t n = recvRetry(fd, buf, sizeof(buf));
        if (n < 0)
            throw ServeError(csprintf(
                "http client: read from %s:%u failed: %s",
                host.c_str(), (unsigned)port,
                std::strerror(errno)));
        if (n == 0)
            break;
        data.append(buf, static_cast<std::size_t>(n));
    }

    std::size_t head_end = data.find("\r\n\r\n");
    std::size_t line_end = data.find("\r\n");
    if (head_end == std::string::npos ||
        data.compare(0, 5, "HTTP/") != 0)
        throw ServeError(csprintf(
            "http client: malformed response from %s:%u",
            host.c_str(), (unsigned)port));

    HttpResponse resp;
    std::size_t sp = data.find(' ');
    if (sp == std::string::npos || sp + 4 > line_end)
        throw ServeError(csprintf(
            "http client: malformed status line from %s:%u",
            host.c_str(), (unsigned)port));
    resp.status = 0;
    for (std::size_t i = sp + 1; i < sp + 4; ++i) {
        if (data[i] < '0' || data[i] > '9')
            throw ServeError(csprintf(
                "http client: malformed status line from %s:%u",
                host.c_str(), (unsigned)port));
        resp.status = resp.status * 10 + (data[i] - '0');
    }
    resp.body = data.substr(head_end + 4);

    // Validate the advertised length when present: a worker killed
    // mid-response must read as a transport error, not a short body.
    std::string headers = data.substr(0, head_end);
    for (char &c : headers)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    std::size_t cl = headers.find("\r\ncontent-length:");
    if (cl != std::string::npos) {
        std::size_t vstart = cl + 17;
        std::size_t vend = headers.find("\r\n", vstart);
        std::size_t expected = 0;
        if (parseContentLength(
                headers.substr(vstart, vend - vstart), expected)) {
            if (resp.body.size() < expected)
                throw ServeError(csprintf(
                    "http client: truncated response from %s:%u "
                    "(%zu of %zu body bytes)",
                    host.c_str(), (unsigned)port, resp.body.size(),
                    expected));
            resp.body.resize(expected);
        }
    }
    return resp;
}

#else // _WIN32

HttpServer::HttpServer(const std::string &, std::uint16_t, Handler)
{
    fatal("smtsim serve requires POSIX sockets (not available on "
          "this platform)");
}

HttpServer::~HttpServer() = default;

void
HttpServer::stop()
{
}

void
HttpServer::acceptLoop()
{
}

void
HttpServer::handleConnection(int)
{
}

HttpResponse
httpFetch(const std::string &, std::uint16_t, const std::string &,
          const std::string &, const std::string &, int)
{
    fatal("the smtsim http client requires POSIX sockets (not "
          "available on this platform)");
}

#endif // _WIN32

} // namespace smt
