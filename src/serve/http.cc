#include "serve/http.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "util/logging.hh"

namespace smt
{

#ifndef _WIN32

namespace
{

/** Map an HTTP status code to its reason phrase (the ones we emit). */
const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 500: return "Internal Server Error";
      default: return "Unknown";
    }
}

/** Read until the header terminator; false on EOF/timeout/overflow. */
bool
readHead(int fd, std::string &head, std::string &rest)
{
    static constexpr std::size_t maxHead = 64 * 1024;
    char buf[4096];
    for (;;) {
        std::size_t end = head.find("\r\n\r\n");
        if (end != std::string::npos) {
            rest = head.substr(end + 4);
            head.resize(end + 4);
            return true;
        }
        if (head.size() > maxHead)
            return false;
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        head.append(buf, static_cast<std::size_t>(n));
    }
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
        );
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

HttpServer::HttpServer(const std::string &host, std::uint16_t port,
                       Handler handler)
    : handler(std::move(handler))
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        throw ServeError("serve: cannot create socket: " +
                         std::string(std::strerror(errno)));

    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd);
        throw ServeError("serve: bad listen address \"" + host +
                         "\" (expected a dotted IPv4 address, e.g. "
                         "127.0.0.1)");
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        ::close(listenFd);
        throw ServeError(csprintf(
            "serve: cannot bind %s:%u: %s", host.c_str(),
            (unsigned)port, std::strerror(err)));
    }
    if (::listen(listenFd, 64) != 0) {
        int err = errno;
        ::close(listenFd);
        throw ServeError("serve: cannot listen: " +
                         std::string(std::strerror(err)));
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        boundPort = ntohs(bound.sin_port);

    acceptThread = std::thread([this] { acceptLoop(); });
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(m);
        if (stopped)
            return;
        stopped = true;
    }
    // Closing the listening socket fails the blocking accept(), which
    // ends the accept loop.
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
    if (acceptThread.joinable())
        acceptThread.join();
    std::unique_lock<std::mutex> lock(m);
    cvIdle.wait(lock, [&] { return activeConnections == 0; });
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            std::lock_guard<std::mutex> lock(m);
            if (stopped)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listening socket is gone
        }

        // A stuck client must not wedge its connection thread
        // forever (stop() waits for all of them).
        timeval tv{};
        tv.tv_sec = 10;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

        {
            std::lock_guard<std::mutex> lock(m);
            ++activeConnections;
        }
        std::thread([this, fd] {
            handleConnection(fd);
            ::close(fd);
            {
                std::lock_guard<std::mutex> lock(m);
                --activeConnections;
            }
            cvIdle.notify_all();
        }).detach();
    }
}

void
HttpServer::handleConnection(int fd)
{
    auto respond = [&](const HttpResponse &r) {
        std::string out = csprintf(
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n"
            "\r\n",
            r.status, reasonPhrase(r.status), r.contentType.c_str(),
            r.body.size());
        out += r.body;
        writeAll(fd, out);
    };

    std::string head, body;
    if (!readHead(fd, head, body))
        return; // client vanished or sent garbage; nothing to say

    // Request line: METHOD SP TARGET SP VERSION CRLF
    std::size_t line_end = head.find("\r\n");
    std::string line = head.substr(0, line_end);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        respond({400, "application/json",
                 "{\"error\": \"malformed request line\"}"});
        return;
    }

    HttpRequest req;
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t q = req.target.find('?');
    if (q != std::string::npos)
        req.target.resize(q);

    // Headers: only Content-Length matters to us.
    std::size_t content_length = 0;
    std::size_t pos = line_end + 2;
    while (pos + 2 <= head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos || eol == pos)
            break;
        std::string h = head.substr(pos, eol - pos);
        pos = eol + 2;
        std::size_t colon = h.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = h.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (name == "content-length") {
            content_length = std::strtoull(
                h.c_str() + colon + 1, nullptr, 10);
        }
    }

    static constexpr std::size_t maxBody = 16 * 1024 * 1024;
    if (content_length > maxBody) {
        respond({400, "application/json",
                 "{\"error\": \"request body too large\"}"});
        return;
    }
    while (body.size() < content_length) {
        char buf[8192];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;
        body.append(buf, static_cast<std::size_t>(n));
    }
    req.body = body.substr(0, content_length);

    HttpResponse resp;
    try {
        resp = handler(req);
    } catch (const std::exception &e) {
        resp.status = 500;
        std::string msg = e.what();
        // Crude but sufficient escaping for an error string.
        std::string esc;
        for (char c : msg) {
            if (c == '"' || c == '\\')
                esc += '\\';
            if (c == '\n') {
                esc += "\\n";
                continue;
            }
            esc += c;
        }
        resp.body = "{\"error\": \"" + esc + "\"}";
    }
    respond(resp);
}

#else // _WIN32

HttpServer::HttpServer(const std::string &, std::uint16_t, Handler)
{
    fatal("smtsim serve requires POSIX sockets (not available on "
          "this platform)");
}

HttpServer::~HttpServer() = default;

void
HttpServer::stop()
{
}

void
HttpServer::acceptLoop()
{
}

void
HttpServer::handleConnection(int)
{
}

#endif // _WIN32

} // namespace smt
