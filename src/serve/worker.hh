/**
 * @file
 * The worker half of the distributed-sweep protocol: `smtsim worker`
 * runs a loopback HTTP server that simulates exactly one grid point
 * per request and streams the PointOutcome back as JSON. Workers are
 * stateless between requests except for their in-memory warmup
 * snapshot cache; cross-process warmup sharing goes through the
 * sweep's checkpointDir disk tier, which every request names
 * explicitly.
 *
 * Endpoints:
 *   POST /v1/point     {"params": {...}, "point": {...},
 *                       "snapshotDir": "...", "reuse": bool}
 *                      → 200 {"outcome": {...}}
 *                      → 400 on malformed payloads
 *                      → 500 {"error": ...} on simulation errors
 *   GET  /v1/healthz   liveness probe
 *   POST /v1/shutdown  exit the run loop
 */

#ifndef SMTFETCH_SERVE_WORKER_HH
#define SMTFETCH_SERVE_WORKER_HH

#include <atomic>
#include <cstddef>
#include <string>

#include "sim/snapshot_cache.hh"

namespace smt
{

/**
 * Routes one worker API request. Thread-safe; the point handler can
 * run concurrently from several connection threads (the coordinator
 * normally sends one point at a time per worker, but nothing breaks
 * if it doesn't).
 */
class WorkerService
{
  public:
    explicit WorkerService(
        std::size_t cache_max_bytes =
            WarmupSnapshotCache::defaultMaxBytes)
        : cache(cache_max_bytes)
    {
    }

    struct Response
    {
        int status = 200;
        std::string body; //!< always a JSON document
    };

    Response handle(const std::string &method,
                    const std::string &target,
                    const std::string &body);

    bool shutdownRequested() const { return shutdown.load(); }

  private:
    Response runPoint(const std::string &body);

    WarmupSnapshotCache cache;
    std::atomic<bool> shutdown{false};
};

/** The `smtsim worker` subcommand (argv past the subcommand word). */
int workerMain(int argc, char **argv);

} // namespace smt

#endif // SMTFETCH_SERVE_WORKER_HH
