/**
 * @file
 * The serve daemon's request handling, independent of HTTP: JSON in,
 * JSON out. SweepService owns the process-wide WarmupSnapshotCache
 * and the SweepScheduler worker pool; submitted specs go through
 * exactly the same SweepSpec parser/validator as the smtsim CLI, so a
 * spec that validates on one frontend is accepted verbatim by the
 * other — with identical error messages.
 *
 * Endpoints (see README "smtsim serve"):
 *   POST /v1/sweeps            submit a spec document
 *   GET  /v1/sweeps            list submitted sweeps
 *   GET  /v1/sweeps/<id>       structured progress/status
 *   GET  /v1/sweeps/<id>/record  finished BENCH record (409 before)
 *   POST /v1/sweeps/<id>/cancel  stop scheduling remaining points
 *   GET  /v1/status            daemon + snapshot-cache statistics
 *   GET  /v1/healthz           liveness probe
 *   POST /v1/shutdown          request daemon shutdown
 */

#ifndef SMTFETCH_SERVE_SERVICE_HH
#define SMTFETCH_SERVE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/scheduler.hh"
#include "sim/snapshot_cache.hh"

namespace smt
{

/** Daemon configuration (CLI flags of `smtsim serve`). */
struct ServeOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; //!< 0: ephemeral, printed on startup

    /** Worker pool size; 0 picks the host concurrency. */
    unsigned workers = 0;

    /** In-memory snapshot-cache budget. */
    std::size_t cacheMaxBytes = WarmupSnapshotCache::defaultMaxBytes;

    /**
     * Default persistent snapshot tier for sweeps that don't name
     * their own checkpointDir (empty: memory-only for those).
     */
    std::string snapshotDir;
};

/**
 * Routes one API request to the scheduler/cache and renders the JSON
 * response. Thread-safe (the HTTP layer calls handle() from
 * concurrent connection threads).
 */
class SweepService
{
  public:
    explicit SweepService(const ServeOptions &options);

    struct Response
    {
        int status = 200;
        std::string body; //!< always a JSON document
    };

    Response handle(const std::string &method,
                    const std::string &target,
                    const std::string &body);

    /** POST /v1/shutdown arrived; the daemon's run loop polls this. */
    bool
    shutdownRequested() const
    {
        return shutdown.load();
    }

    WarmupSnapshotCache &cacheRef() { return cache; }
    SweepScheduler &schedulerRef() { return scheduler; }

  private:
    Response submit(const std::string &body);
    Response list() const;
    Response jobStatus(SweepScheduler::JobId id) const;
    Response jobRecord(SweepScheduler::JobId id) const;
    Response jobCancel(SweepScheduler::JobId id);
    Response daemonStatus() const;

    WarmupSnapshotCache cache;
    SweepScheduler scheduler;
    /** Default disk tier (ServeOptions::snapshotDir) — distributed
     *  sweeps journal/persist here when their spec names no
     *  checkpointDir of its own. */
    std::string snapshotDir;
    std::atomic<bool> shutdown{false};

    mutable std::mutex m;
    /** Submitted jobs, in order: id → BENCH record name. */
    std::map<SweepScheduler::JobId, std::string> benchNames;
};

} // namespace smt

#endif // SMTFETCH_SERVE_SERVICE_HH
