#include "serve/worker.hh"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "serve/http.hh"
#include "sim/executor.hh"
#include "sim/result_codec.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

std::string
errorBody(const std::string &message)
{
    return "{\"error\": \"" + jsonEscape(message) + "\"}";
}

} // namespace

WorkerService::Response
WorkerService::handle(const std::string &method,
                      const std::string &target,
                      const std::string &body)
{
    if (target == "/v1/healthz") {
        if (method != "GET")
            return {405, errorBody("use GET " + target)};
        return {200, "{\"ok\": true}"};
    }
    if (target == "/v1/shutdown") {
        if (method != "POST")
            return {405, errorBody("use POST " + target)};
        shutdown.store(true);
        return {200, "{\"shuttingDown\": true}"};
    }
    if (target == "/v1/point") {
        if (method != "POST")
            return {405, errorBody("use POST " + target)};
        return runPoint(body);
    }
    return {404,
            errorBody("unknown endpoint " + method + " " + target)};
}

WorkerService::Response
WorkerService::runPoint(const std::string &body)
{
    ExecutorParams params;
    GridPoint point;
    std::string snapshotDir;
    bool reuse = false;
    try {
        JsonValue doc = jsonParse(body);
        const JsonValue *p = doc.find("params");
        const JsonValue *pt = doc.find("point");
        if (p == nullptr || pt == nullptr)
            throw CodecError(
                "a point request needs \"params\" and \"point\"");
        params = executorParamsFromWireJson(*p);
        point = pointFromWireJson(*pt);
        if (const JsonValue *d = doc.find("snapshotDir"))
            snapshotDir = d->asString();
        if (const JsonValue *r = doc.find("reuse"))
            reuse = r->asBool();
    } catch (const std::exception &e) {
        return {400, errorBody(e.what())};
    }

    try {
        PointExecutor executor(params, reuse ? &cache : nullptr,
                               snapshotDir);
        PointOutcome outcome = executor.execute(point);
        std::ostringstream os;
        JsonWriter jw(os, 0);
        jw.beginObject();
        jw.key("outcome");
        jw.raw(outcomeToWireJson(outcome));
        jw.endObject();
        return {200, os.str()};
    } catch (const std::exception &e) {
        // Deterministic simulation failures (bad trace path, config
        // rejection) — a real answer, not a transport problem: the
        // coordinator fails the job instead of respawning us.
        return {500, errorBody(e.what())};
    }
}

namespace
{

void
workerUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: smtsim worker [options]\n"
        "\n"
        "Runs a distributed-sweep worker: a loopback HTTP server\n"
        "that simulates one grid point per POST /v1/point request\n"
        "(see README \"Distributed sweeps\"). Normally spawned by\n"
        "`smtsim sweep --workers N` or the serve daemon, not by\n"
        "hand.\n"
        "\n"
        "options:\n"
        "  --port N        listen port (default 0: ephemeral)\n"
        "  --port-file PATH\n"
        "                  write the bound port to PATH once\n"
        "                  listening (the spawn handshake)\n"
        "  --host ADDR     listen address (default 127.0.0.1)\n"
        "  --cache-mb N    in-memory snapshot-cache budget in MiB\n"
        "                  (default 256)\n"
        "  -h, --help      show this help\n");
}

std::uint64_t
parseWorkerCount(const char *flag, const char *text)
{
    bool ok = text[0] != '\0';
    for (const char *p = text; *p != '\0'; ++p)
        if (*p < '0' || *p > '9')
            ok = false;
    char *end = nullptr;
    unsigned long long v = ok ? std::strtoull(text, &end, 10) : 0;
    if (!ok || end == text || *end != '\0') {
        std::fprintf(stderr,
                     "smtsim worker: %s expects a non-negative "
                     "integer, got \"%s\"\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

#ifndef _WIN32
std::atomic<bool> workerSignalled{false};

void
onWorkerSignal(int)
{
    workerSignalled.store(true);
}
#endif

} // namespace

int
workerMain(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string portFile;
    std::size_t cacheMaxBytes = WarmupSnapshotCache::defaultMaxBytes;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "smtsim worker: %s expects an "
                             "argument\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            workerUsage(stdout);
            return 0;
        } else if (arg == "--port") {
            std::uint64_t p = parseWorkerCount("--port", next());
            if (p > 65535) {
                std::fprintf(stderr,
                             "smtsim worker: --port %llu is out of "
                             "range [0, 65535]\n",
                             (unsigned long long)p);
                return 1;
            }
            port = static_cast<std::uint16_t>(p);
        } else if (arg == "--port-file") {
            portFile = next();
        } else if (arg == "--host") {
            host = next();
        } else if (arg == "--cache-mb") {
            cacheMaxBytes = static_cast<std::size_t>(
                                parseWorkerCount("--cache-mb",
                                                 next()))
                            << 20;
        } else {
            std::fprintf(stderr,
                         "smtsim worker: unknown option %s\n",
                         arg.c_str());
            workerUsage(stderr);
            return 1;
        }
    }

#ifdef _WIN32
    std::fprintf(stderr, "smtsim worker requires POSIX sockets\n");
    return 1;
#else
    try {
        WorkerService service(cacheMaxBytes);
        HttpServer http(host, port, [&](const HttpRequest &req) {
            auto r = service.handle(req.method, req.target,
                                    req.body);
            HttpResponse resp;
            resp.status = r.status;
            resp.body = std::move(r.body);
            return resp;
        });

        if (!portFile.empty()) {
            std::ofstream pf(portFile);
            if (!pf || !(pf << http.port() << '\n')) {
                std::fprintf(stderr,
                             "smtsim worker: cannot write port "
                             "file %s\n",
                             portFile.c_str());
                return 1;
            }
        }
        std::printf("smtsim worker: listening on %s:%u\n",
                    host.c_str(), (unsigned)http.port());
        std::fflush(stdout);

        workerSignalled.store(false);
        std::signal(SIGINT, onWorkerSignal);
        std::signal(SIGTERM, onWorkerSignal);

        while (!workerSignalled.load() &&
               !service.shutdownRequested())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));

        http.stop();
        return 0;
    } catch (const ServeError &e) {
        std::fprintf(stderr, "smtsim worker: %s\n", e.what());
        return 1;
    }
#endif
}

} // namespace smt
