#include "serve/server.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "sim/sweep_spec.hh"
#include "util/logging.hh"

namespace smt
{

SweepServer::SweepServer(const ServeOptions &options)
    : service(std::make_unique<SweepService>(options))
{
    http = std::make_unique<HttpServer>(
        options.host, options.port,
        [this](const HttpRequest &req) {
            auto r = service->handle(req.method, req.target,
                                     req.body);
            HttpResponse resp;
            resp.status = r.status;
            resp.body = std::move(r.body);
            return resp;
        });
}

SweepServer::~SweepServer()
{
    stop();
}

void
SweepServer::stop()
{
    if (http)
        http->stop();
}

namespace
{

#ifndef _WIN32
std::atomic<bool> signalled{false};

void
onSignal(int)
{
    signalled.store(true);
}
#endif

void
serveUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: smtsim serve [options]\n"
        "\n"
        "Runs a long-lived sweep daemon: clients submit the same\n"
        "JSON spec documents the CLI runs, the daemon schedules\n"
        "their grid points fairly across one worker pool and every\n"
        "sweep shares one warmup-snapshot cache (popular warmup\n"
        "configs are simulated once, ever). See the README's\n"
        "\"smtsim serve\" section for the endpoints.\n"
        "\n"
        "options:\n"
        "  --port N        listen port (default 0: pick an\n"
        "                  ephemeral port and print it)\n"
        "  --port-file PATH\n"
        "                  write the bound port to PATH once\n"
        "                  listening (for scripts that spawn the\n"
        "                  daemon with --port 0)\n"
        "  --host ADDR     listen address (default 127.0.0.1;\n"
        "                  loopback only — the daemon is not meant\n"
        "                  to face a network)\n"
        "  --workers N     simulation worker threads (default:\n"
        "                  host concurrency)\n"
        "  --cache-mb N    in-memory snapshot-cache budget in MiB\n"
        "                  (default 256)\n"
        "  --checkpoint-dir DIR\n"
        "                  persist warmup snapshots in DIR (shared\n"
        "                  disk tier for sweeps without their own\n"
        "                  checkpointDir)\n"
        "  -h, --help      show this help\n");
}

std::uint64_t
parseServeCount(const char *flag, const char *text)
{
    bool ok = text[0] != '\0';
    for (const char *p = text; *p != '\0'; ++p)
        if (*p < '0' || *p > '9')
            ok = false;
    char *end = nullptr;
    unsigned long long v = ok ? std::strtoull(text, &end, 10) : 0;
    if (!ok || end == text || *end != '\0') {
        std::fprintf(stderr,
                     "smtsim serve: %s expects a non-negative "
                     "integer, got \"%s\"\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

} // namespace

int
serveMain(int argc, char **argv)
{
    ServeOptions options;
    std::string portFile;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "smtsim serve: %s expects an "
                             "argument\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            serveUsage(stdout);
            return 0;
        } else if (arg == "--port") {
            std::uint64_t p = parseServeCount("--port", next());
            if (p > 65535) {
                std::fprintf(stderr,
                             "smtsim serve: --port %llu is out of "
                             "range [0, 65535]\n",
                             (unsigned long long)p);
                return 1;
            }
            options.port = static_cast<std::uint16_t>(p);
        } else if (arg == "--port-file") {
            portFile = next();
        } else if (arg == "--host") {
            options.host = next();
        } else if (arg == "--workers") {
            options.workers = static_cast<unsigned>(
                parseServeCount("--workers", next()));
        } else if (arg == "--cache-mb") {
            options.cacheMaxBytes =
                static_cast<std::size_t>(
                    parseServeCount("--cache-mb", next()))
                << 20;
        } else if (arg == "--checkpoint-dir") {
            options.snapshotDir = next();
        } else {
            std::fprintf(stderr,
                         "smtsim serve: unknown option %s\n",
                         arg.c_str());
            serveUsage(stderr);
            return 1;
        }
    }

    if (!options.snapshotDir.empty()) {
        try {
            ensureWritableDir(options.snapshotDir);
        } catch (const SpecError &e) {
            std::fprintf(stderr, "smtsim serve: %s\n", e.what());
            return 1;
        }
    }

#ifdef _WIN32
    std::fprintf(stderr, "smtsim serve requires POSIX sockets\n");
    return 1;
#else
    try {
        SweepServer server(options);

        if (!portFile.empty()) {
            std::ofstream pf(portFile);
            if (!pf || !(pf << server.port() << '\n')) {
                std::fprintf(stderr,
                             "smtsim serve: cannot write port file "
                             "%s\n",
                             portFile.c_str());
                return 1;
            }
        }
        std::printf("smtsim serve: listening on %s:%u\n",
                    options.host.c_str(), (unsigned)server.port());
        std::fflush(stdout);

        signalled.store(false);
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        while (!signalled.load() && !server.shutdownRequested())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));

        std::printf("smtsim serve: shutting down\n");
        server.stop();
        return 0;
    } catch (const ServeError &e) {
        std::fprintf(stderr, "smtsim serve: %s\n", e.what());
        return 1;
    }
#endif
}

} // namespace smt
