#include "serve/distributed.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <unordered_set>

#include "serve/http.hh"
#include "sim/journal.hh"
#include "sim/result_codec.hh"
#include "sim/sweep_spec.hh"
#include "util/logging.hh"

namespace smt
{

DistributedSubmit
submitDistributed(SweepScheduler &scheduler,
                  const SweepRequest &request,
                  const std::string &bench,
                  const DistributedOptions &options)
{
    ExecutorParams params{request.warmupCycles, request.measureCycles,
                          request.seed, request.cycleSkip};

    DistributedSubmit out;
    SweepScheduler::SubmitOptions so;

    if (!request.checkpointDir.empty()) {
        // Match the warmup grouping the scheduler reports so the
        // journal header describes the same sweep shape.
        std::size_t warmupGroups = 0;
        if (request.reuseEnabled()) {
            PointExecutor probe(params);
            std::unordered_set<std::string> keys;
            for (const GridPoint &p : request.points)
                if (PointExecutor::reusable(p))
                    keys.insert(probe.warmupKey(p));
            warmupGroups = keys.size();
        }
        out.journal = std::make_shared<SweepJournal>(
            SweepJournal::pathFor(request.checkpointDir, bench),
            bench, sweepRequestKey(request), request.points.size(),
            warmupGroups, options.fresh);
        so.journal = out.journal;
        so.precompleted = out.journal->completed();
        out.journaledPoints = so.precompleted.size();
    }

    if (out.journal &&
        out.journaledPoints >= request.points.size()) {
        // Every point is already journaled: the job finalizes at
        // submit without claiming anything, so don't spawn a fleet
        // just to kill it. The runner still marks the job as
        // remote-executed (reuse accounting) but can never run.
        so.runner = [](std::size_t, const GridPoint &) -> PointOutcome {
            throw std::logic_error(
                "fully journaled sweep dispatched a point");
        };
        so.groupGate = request.reuseEnabled();
        out.id = scheduler.submit(request, bench, std::move(so));
        return out;
    }

    if (!options.attachPorts.empty()) {
        out.pool = std::make_shared<WorkerPool>(options.attachPorts);
    } else {
        WorkerPool::Options po;
        po.workers = options.workers;
        po.exePath = options.exePath;
        po.cacheMaxBytes = options.workerCacheMaxBytes;
        out.pool = std::make_shared<WorkerPool>(po);
    }

    // The runner owns the fleet: when the scheduler finalizes the
    // job it drops this closure, which tears the worker processes
    // down deterministically.
    std::shared_ptr<WorkerPool> pool = out.pool;
    std::string snapshotDir = request.checkpointDir;
    bool reuse = request.reuseEnabled();
    so.runner = [pool, params, snapshotDir,
                 reuse](std::size_t, const GridPoint &point) {
        return pool->runPoint(params, point, snapshotDir, reuse);
    };

    // Cross-process warmup sharing only works through the disk
    // tier; without a checkpointDir each worker has a private
    // cache, so serializing group leaders would only slow us down.
    so.groupGate = reuse && !request.checkpointDir.empty();

    out.id = scheduler.submit(request, bench, std::move(so));
    return out;
}

DistributedRun
runDistributed(const SweepRequest &request, const std::string &bench,
               const DistributedOptions &options)
{
    unsigned fleet = options.attachPorts.empty()
                         ? options.workers
                         : (unsigned)options.attachPorts.size();
    if (fleet == 0)
        fleet = 2;
    // One scheduler thread per worker process: each thread blocks on
    // its worker's HTTP round-trip, keeping the whole fleet busy.
    SweepScheduler scheduler(fleet, nullptr, "");
    DistributedSubmit sub =
        submitDistributed(scheduler, request, bench, options);
    DistributedRun run;
    run.journaledPoints = sub.journaledPoints;
    run.report = scheduler.wait(sub.id);
    run.respawns = sub.pool ? sub.pool->respawns() : 0;
    return run;
}

namespace
{

void
sweepUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: smtsim sweep [options] <spec.json | spec-name> ...\n"
        "\n"
        "Runs a grid spec across a fleet of spawned `smtsim worker`\n"
        "processes (one grid point per worker at a time) and writes\n"
        "the same BENCH_<name>.json record the single-process runner\n"
        "writes — the per-point results are bit-identical.\n"
        "\n"
        "With --checkpoint-dir the sweep is resumable: every\n"
        "finished point is journaled there, and a re-run of the same\n"
        "spec skips the journaled points and restores the persisted\n"
        "warmup snapshots — zero points recomputed, zero warmups\n"
        "re-simulated after a mid-run kill.\n"
        "\n"
        "options:\n"
        "  --workers N    worker processes to spawn (default 2)\n"
        "  --out-dir DIR  directory for BENCH_*.json records\n"
        "                 (default: $SMTFETCH_JSON_DIR or .)\n"
        "  --no-json      skip BENCH_*.json emission\n"
        "  --quiet        suppress result tables\n"
        "  --checkpoint-dir DIR\n"
        "                 journal completed points and persist\n"
        "                 warmup snapshots in DIR (enables resume;\n"
        "                 implies warmup sharing)\n"
        "  --fresh        ignore (and overwrite) an existing journal\n"
        "                 instead of resuming from it\n"
        "  --cache-mb N   per-worker in-memory snapshot-cache\n"
        "                 budget in MiB (default 256)\n"
        "  --warmup N     override the spec's warmup cycles\n"
        "  --measure N    override the spec's measured cycles\n"
        "  --seed N       override the spec's seed\n"
        "  -h, --help     show this help\n");
}

std::uint64_t
parseSweepCount(const char *flag, const char *text)
{
    bool ok = text[0] != '\0';
    for (const char *p = text; *p != '\0'; ++p)
        if (*p < '0' || *p > '9')
            ok = false;
    char *end = nullptr;
    unsigned long long v = ok ? std::strtoull(text, &end, 10) : 0;
    if (!ok || end == text || *end != '\0') {
        std::fprintf(stderr,
                     "smtsim sweep: %s expects a non-negative "
                     "integer, got \"%s\"\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

std::string
resolveSweepSpecPath(const std::string &arg)
{
    bool bare = arg.find('/') == std::string::npos &&
                arg.find(".json") == std::string::npos;
    if (!bare)
        return arg;
    if (std::ifstream(arg).good())
        return arg;
    return defaultConfigDir() + "/" + arg + ".json";
}

struct SweepCliOptions
{
    unsigned workers = 2;
    bool quiet = false;
    bool writeJson = true;
    bool fresh = false;
    std::string outDir;
    std::string checkpointDir;
    std::size_t cacheMaxBytes = 256u << 20;
    std::optional<Cycle> warmup;
    std::optional<Cycle> measure;
    std::optional<std::uint64_t> seed;
    std::vector<std::string> specs;
};

int
sweepOne(const SweepCliOptions &opt, const std::string &self_exe,
         const std::string &arg)
{
    SweepSpec spec = SweepSpec::fromFile(resolveSweepSpecPath(arg));
    if (spec.type != SpecType::Grid) {
        std::fprintf(stderr,
                     "smtsim sweep: \"%s\" is not a grid spec — a "
                     "characteristics spec runs no simulation, so "
                     "there is nothing to distribute\n",
                     spec.name.c_str());
        return 1;
    }
    if (opt.warmup)
        spec.warmupCycles = *opt.warmup;
    if (opt.measure)
        spec.measureCycles = *opt.measure;
    if (opt.seed)
        spec.seed = *opt.seed;
    if (spec.measureCycles == 0) {
        std::fprintf(stderr,
                     "smtsim sweep: --measure must be positive\n");
        return 1;
    }

    if (opt.writeJson)
        ensureWritableDir(benchRecordDir(opt.outDir));

    SweepRequest request = spec.makeRequest();
    if (!opt.checkpointDir.empty())
        request.checkpointDir = opt.checkpointDir;
    if (!request.checkpointDir.empty())
        ensureWritableDir(request.checkpointDir);
    else
        warn("smtsim sweep: no --checkpoint-dir — this run cannot "
             "be resumed and workers share no warmup snapshots");

    DistributedOptions dopts;
    dopts.workers = opt.workers;
    dopts.exePath = selfExePath(self_exe);
    dopts.fresh = opt.fresh;
    dopts.workerCacheMaxBytes = opt.cacheMaxBytes;

    std::printf("%s: %zu grid points across %u workers\n",
                spec.name.c_str(), request.points.size(),
                opt.workers);
    std::fflush(stdout);

    // Submit through a visible scheduler (rather than the
    // runDistributed convenience) so the resume count prints before
    // the hours-long wait, not after.
    SweepScheduler scheduler(opt.workers, nullptr, "");
    DistributedSubmit sub = submitDistributed(
        scheduler, request, spec.benchName(), dopts);
    if (sub.journaledPoints > 0) {
        std::printf("resuming %s: %zu of %zu points already "
                    "journaled in %s\n",
                    spec.benchName().c_str(), sub.journaledPoints,
                    request.points.size(),
                    request.checkpointDir.c_str());
        std::fflush(stdout);
    }
    SweepReport report = scheduler.wait(sub.id);
    std::uint64_t respawns = sub.pool ? sub.pool->respawns() : 0;
    if (respawns > 0)
        std::printf("recovered from %llu worker failure%s\n",
                    (unsigned long long)respawns,
                    respawns == 1 ? "" : "s");

    if (!opt.quiet) {
        ExperimentRunner::printFigure(
            std::cout, spec.name + " — fetch throughput, IPFC",
            report.results, /*fetch=*/true);
        std::cout << '\n';
        ExperimentRunner::printFigure(
            std::cout, spec.name + " — commit throughput, IPC",
            report.results, /*fetch=*/false);
    }
    if (opt.writeJson &&
        !writeBenchRecord(spec.benchName(), report.results, {},
                          opt.outDir, &report.timing))
        return 3;
    return 0;
}

} // namespace

int
sweepMain(int argc, char **argv, const std::string &self_exe)
{
    SweepCliOptions opt;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "smtsim sweep: %s expects an "
                             "argument\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            sweepUsage(stdout);
            return 0;
        } else if (arg == "--workers") {
            std::uint64_t w = parseSweepCount("--workers", next());
            if (w == 0 || w > 256) {
                std::fprintf(stderr,
                             "smtsim sweep: --workers %llu is out "
                             "of range [1, 256]\n",
                             (unsigned long long)w);
                return 1;
            }
            opt.workers = static_cast<unsigned>(w);
        } else if (arg == "--out-dir") {
            opt.outDir = next();
        } else if (arg == "--no-json") {
            opt.writeJson = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--checkpoint-dir") {
            opt.checkpointDir = next();
        } else if (arg == "--fresh") {
            opt.fresh = true;
        } else if (arg == "--cache-mb") {
            opt.cacheMaxBytes =
                static_cast<std::size_t>(
                    parseSweepCount("--cache-mb", next()))
                << 20;
        } else if (arg == "--warmup") {
            opt.warmup = parseSweepCount("--warmup", next());
        } else if (arg == "--measure") {
            opt.measure = parseSweepCount("--measure", next());
        } else if (arg == "--seed") {
            opt.seed = parseSweepCount("--seed", next());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "smtsim sweep: unknown option %s\n",
                         arg.c_str());
            sweepUsage(stderr);
            return 1;
        } else {
            opt.specs.push_back(arg);
        }
    }

    if (opt.specs.empty()) {
        sweepUsage(stderr);
        return 1;
    }

#ifdef _WIN32
    std::fprintf(stderr, "smtsim sweep requires POSIX process "
                         "spawning\n");
    return 1;
#else
    for (const auto &specArg : opt.specs) {
        try {
            int rc = sweepOne(opt, self_exe, specArg);
            if (rc != 0)
                return rc;
        } catch (const SpecError &e) {
            std::fprintf(stderr, "smtsim sweep: %s\n", e.what());
            return 2;
        } catch (const JournalError &e) {
            std::fprintf(stderr, "smtsim sweep: %s\n", e.what());
            return 2;
        } catch (const ServeError &e) {
            std::fprintf(stderr, "smtsim sweep: %s\n", e.what());
            return 2;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "smtsim sweep: %s\n", e.what());
            return 2;
        }
    }
    return 0;
#endif
}

} // namespace smt
