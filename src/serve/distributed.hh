/**
 * @file
 * Distributed, resumable sweeps: the coordinator glue that routes a
 * SweepRequest's grid points through a WorkerPool of `smtsim worker`
 * processes instead of in-process executors, journals every finished
 * point under the sweep's checkpointDir, and prefills a resumed run
 * from that journal so killed sweeps restart with zero re-simulated
 * points and zero re-run warmups (the disk snapshot tier carries the
 * warmups across runs and processes).
 *
 * Both frontends sit on submitDistributed(): `smtsim sweep --workers
 * N <spec>` (sweepMain) and the serve daemon's POST /v1/sweeps with a
 * spec carrying {"distributed": {"workers": N}}.
 */

#ifndef SMTFETCH_SERVE_DISTRIBUTED_HH
#define SMTFETCH_SERVE_DISTRIBUTED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/worker_pool.hh"
#include "sim/scheduler.hh"

namespace smt
{

/** How to build the worker fleet for one distributed sweep. */
struct DistributedOptions
{
    /** Worker processes to spawn (spawn mode). */
    unsigned workers = 2;

    /** The smtsim binary to exec (normally selfExePath()). */
    std::string exePath;

    /** Non-empty switches to attach mode: drive these
     *  already-listening worker ports instead of spawning (the test
     *  harness path; no respawn on transport failure). */
    std::vector<std::uint16_t> attachPorts;

    /** Ignore (and overwrite) any existing resume journal. */
    bool fresh = false;

    /** Per-worker in-memory snapshot-cache budget. */
    std::size_t workerCacheMaxBytes = 256u << 20;
};

/** What submitDistributed set up, for progress/report plumbing. */
struct DistributedSubmit
{
    SweepScheduler::JobId id = 0;

    /** Points prefilled from the resume journal (not re-simulated). */
    std::size_t journaledPoints = 0;

    /** The fleet; kept alive by the job's runner until the job goes
     *  terminal. Exposed for respawn accounting. */
    std::shared_ptr<WorkerPool> pool;

    std::shared_ptr<SweepJournal> journal;
};

/**
 * Queue `request` on `scheduler` with every point routed through a
 * worker fleet. When the request names a checkpointDir, finished
 * points are journaled there under `bench` and an existing compatible
 * journal prefills the job (JournalError propagates on an
 * incompatible one unless options.fresh). Throws ServeError when the
 * fleet cannot be started.
 */
DistributedSubmit submitDistributed(SweepScheduler &scheduler,
                                    const SweepRequest &request,
                                    const std::string &bench,
                                    const DistributedOptions &options);

/** One distributed sweep run end to end (a private scheduler sized
 *  to the fleet). Exceptions from the failing point propagate. */
struct DistributedRun
{
    SweepReport report;
    std::size_t journaledPoints = 0;
    std::uint64_t respawns = 0;
};

DistributedRun runDistributed(const SweepRequest &request,
                              const std::string &bench,
                              const DistributedOptions &options);

/** The `smtsim sweep` subcommand (argv past the subcommand word);
 *  `self_exe` is the coordinator's argv[0] for worker spawning. */
int sweepMain(int argc, char **argv, const std::string &self_exe);

} // namespace smt

#endif // SMTFETCH_SERVE_DISTRIBUTED_HH
