/**
 * @file
 * A deliberately small HTTP/1.1 server for the smtsim serve daemon:
 * loopback TCP, Content-Length bodies, one request per connection
 * (Connection: close). Just enough protocol for local sweep clients
 * (tools/serve_stress.py, curl) — not a general web server, and not
 * meant to face a network.
 */

#ifndef SMTFETCH_SERVE_HTTP_HH
#define SMTFETCH_SERVE_HTTP_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace smt
{

/** User-facing serve failure (bad port, bind failure, ...). */
class ServeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

struct HttpRequest
{
    std::string method; //!< GET / POST / ...
    std::string target; //!< path only ("/v1/sweeps/3")
    std::string body;
};

struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/**
 * Accepts connections on a loopback TCP port and runs each request
 * through the handler on a short-lived connection thread. The
 * handler must be thread-safe; exceptions it throws become 500
 * responses.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    /**
     * Binds and starts accepting immediately. @param port 0 picks an
     * ephemeral port (read it back with port()). Throws ServeError
     * when the socket cannot be bound.
     */
    HttpServer(const std::string &host, std::uint16_t port,
               Handler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** The actually-bound port. */
    std::uint16_t port() const { return boundPort; }

    /** Stop accepting, drain in-flight connections, join. */
    void stop();

  private:
    void acceptLoop();
    void handleConnection(int fd);

    Handler handler;
    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::thread acceptThread;

    std::mutex m;
    std::condition_variable cvIdle;
    unsigned activeConnections = 0;
    bool stopped = false;
};

/**
 * One blocking HTTP/1.1 request against a loopback server (the
 * coordinator side of the distributed-sweep worker protocol, also
 * handy in tests). Sends Connection: close and reads to EOF; the
 * per-call timeout bounds both directions. Throws ServeError on any
 * transport failure — connect refusal, timeout, truncated response —
 * so callers can distinguish "the worker died" (retry/respawn) from
 * an HTTP error status (a real answer).
 */
HttpResponse httpFetch(const std::string &host, std::uint16_t port,
                       const std::string &method,
                       const std::string &target,
                       const std::string &body,
                       int timeout_seconds = 600);

} // namespace smt

#endif // SMTFETCH_SERVE_HTTP_HH
