/**
 * @file
 * Minimal streaming JSON writer: nesting-aware comma/indent handling
 * and string escaping, enough for machine-readable stat and result
 * records. No external dependencies.
 */

#ifndef SMTFETCH_UTIL_JSON_HH
#define SMTFETCH_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace smt
{

/** Escape a string for inclusion in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Values are emitted in call order; the writer
 * tracks object/array nesting and inserts commas, newlines and
 * indentation. Pass indent_step 0 for compact single-line output
 * (stable across runs, suitable for diffing and embedding).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent_step = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    JsonWriter &key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** key + value in one call. */
    template <typename T>
    void
    field(const std::string &k, const T &v)
    {
        key(k).value(v);
    }

    /**
     * Emit a pre-rendered JSON fragment verbatim as the next value
     * (embedding a nested document produced elsewhere).
     */
    void raw(const std::string &json_text);

  private:
    struct Scope
    {
        bool isArray = false;
        unsigned items = 0;
    };

    /** Comma/indent bookkeeping before a value or key. */
    void preValue();
    void newline();

    std::ostream &os;
    int indentStep;
    bool pendingKey = false;
    std::vector<Scope> stack;
};

} // namespace smt

#endif // SMTFETCH_UTIL_JSON_HH
