/**
 * @file
 * Minimal JSON support: a streaming writer (nesting-aware
 * comma/indent handling and string escaping) and a strict
 * recursive-descent parser into a JsonValue tree, enough for
 * machine-readable stat records and experiment specs. No external
 * dependencies.
 */

#ifndef SMTFETCH_UTIL_JSON_HH
#define SMTFETCH_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace smt
{

/** Escape a string for inclusion in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Values are emitted in call order; the writer
 * tracks object/array nesting and inserts commas, newlines and
 * indentation. Pass indent_step 0 for compact single-line output
 * (stable across runs, suitable for diffing and embedding).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent_step = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    JsonWriter &key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** key + value in one call. */
    template <typename T>
    void
    field(const std::string &k, const T &v)
    {
        key(k).value(v);
    }

    /**
     * Emit a pre-rendered JSON fragment verbatim as the next value
     * (embedding a nested document produced elsewhere).
     */
    void raw(const std::string &json_text);

  private:
    struct Scope
    {
        bool isArray = false;
        unsigned items = 0;
    };

    /** Comma/indent bookkeeping before a value or key. */
    void preValue();
    void newline();

    std::ostream &os;
    int indentStep;
    bool pendingKey = false;
    std::vector<Scope> stack;
};

/**
 * Error raised while parsing malformed JSON text. The message is
 * stored verbatim; throw sites embed the 1-based line and column of
 * the offending character, which are also carried as fields.
 */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t line,
                   std::size_t column);

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

  private:
    std::size_t line_;
    std::size_t column_;
};

/** Error raised by JsonValue accessors on a kind mismatch. */
class JsonTypeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A parsed JSON document node. Objects preserve member order so a
 * parse/dump round trip of writer output is stable, and so spec
 * consumers can iterate keys in file order.
 */
class JsonValue
{
  public:
    enum class Kind : unsigned char
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Array = std::vector<JsonValue>;
    using Member = std::pair<std::string, JsonValue>;
    using Object = std::vector<Member>;

    JsonValue() = default; //!< null
    explicit JsonValue(bool v) : kind_(Kind::Bool), boolean(v) {}
    explicit JsonValue(double v) : kind_(Kind::Number), number(v) {}
    explicit JsonValue(std::string v)
        : kind_(Kind::String), string(std::move(v))
    {
    }
    explicit JsonValue(Array v)
        : kind_(Kind::Array), array(std::move(v))
    {
    }
    explicit JsonValue(Object v)
        : kind_(Kind::Object), object(std::move(v))
    {
    }

    Kind kind() const { return kind_; }
    static const char *kindName(Kind kind);
    const char *kindName() const { return kindName(kind_); }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @name Checked accessors; JsonTypeError on kind mismatch. */
    /// @{
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Number that must be integral and fit an unsigned 64-bit. */
    std::uint64_t asUInt64() const;
    /// @}

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Array/object element count, string length; 0 for scalars. */
    std::size_t size() const;

    /**
     * Render back to JSON text through JsonWriter (indent_step 0 for
     * the compact single-line form).
     */
    std::string dump(int indent_step = 0) const;
    void write(JsonWriter &jw) const;

  private:
    Kind kind_ = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    Array array;
    Object object;
};

/**
 * Parse a complete JSON document (strict grammar: no comments, no
 * trailing commas, exactly one top-level value). Throws
 * JsonParseError with line/column context on malformed input.
 */
JsonValue jsonParse(const std::string &text);

} // namespace smt

#endif // SMTFETCH_UTIL_JSON_HH
