/**
 * @file
 * Saturating up/down counter, the basic storage cell of direction
 * predictors.
 */

#ifndef SMTFETCH_UTIL_SAT_COUNTER_HH
#define SMTFETCH_UTIL_SAT_COUNTER_HH

#include <cstdint>

namespace smt
{

/**
 * An n-bit saturating counter. The top half of the range predicts
 * "taken" (or "strong" for confidence uses).
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Counter width in bits (1..8).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits, std::uint8_t initial = 0)
        : maxVal(static_cast<std::uint8_t>((1u << bits) - 1)),
          value(initial > maxVal ? maxVal : initial)
    {
    }

    /** Increment, saturating at max. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Counter in the taken half of its range? */
    bool predictTaken() const { return value > (maxVal >> 1); }

    /** At either saturation endpoint? */
    bool
    isSaturated() const
    {
        return value == 0 || value == maxVal;
    }

    std::uint8_t raw() const { return value; }
    std::uint8_t max() const { return maxVal; }

    /** Restore a serialized raw value (clamped to the counter max). */
    void
    setRaw(std::uint8_t v)
    {
        value = v > maxVal ? maxVal : v;
    }

  private:
    std::uint8_t maxVal = 3;
    std::uint8_t value = 0;
};

} // namespace smt

#endif // SMTFETCH_UTIL_SAT_COUNTER_HH
