/**
 * @file
 * Self-contained SHA-256 (FIPS 180-4) for trace-corpus checksums.
 * Streaming interface so multi-GB trace files hash in fixed memory;
 * no external dependencies.
 */

#ifndef SMTFETCH_UTIL_SHA256_HH
#define SMTFETCH_UTIL_SHA256_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace smt
{

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb `len` bytes; call any number of times before digest. */
    void update(const void *data, std::size_t len);

    /**
     * Finalize (first call) and return the digest as 64 lowercase hex
     * characters. Further update() calls are invalid.
     */
    std::string hexDigest();

  private:
    void processBlock(const unsigned char *block);

    std::uint32_t state[8];
    unsigned char buffer[64];
    std::size_t bufferLen = 0;
    std::uint64_t totalBytes = 0;
    bool finalized = false;
    unsigned char digest[32];
};

/** One-shot digest of an in-memory buffer. */
std::string sha256Hex(const void *data, std::size_t len);

/**
 * Digest of a file's contents, streamed in fixed-size chunks.
 * Throws std::runtime_error naming the path when it cannot be read.
 */
std::string sha256File(const std::string &path);

} // namespace smt

#endif // SMTFETCH_UTIL_SHA256_HH
