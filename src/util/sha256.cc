#include "util/sha256.hh"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace smt
{

namespace
{

constexpr std::uint32_t roundK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t
rotr(std::uint32_t v, unsigned n)
{
    return (v >> n) | (v << (32 - n));
}

} // namespace

Sha256::Sha256()
    : state{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{
}

void
Sha256::processBlock(const unsigned char *block)
{
    std::uint32_t w[64];
    for (unsigned i = 0; i < 16; ++i)
        w[i] = (std::uint32_t(block[4 * i]) << 24) |
               (std::uint32_t(block[4 * i + 1]) << 16) |
               (std::uint32_t(block[4 * i + 2]) << 8) |
               std::uint32_t(block[4 * i + 3]);
    for (unsigned i = 16; i < 64; ++i) {
        std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                           (w[i - 15] >> 3);
        std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                           (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2],
                  d = state[3], e = state[4], f = state[5],
                  g = state[6], h = state[7];
    for (unsigned i = 0; i < 64; ++i) {
        std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        std::uint32_t ch = (e & f) ^ (~e & g);
        std::uint32_t t1 = h + s1 + ch + roundK[i] + w[i];
        std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

void
Sha256::update(const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    totalBytes += len;
    while (len > 0) {
        std::size_t take = std::min(len, sizeof(buffer) - bufferLen);
        std::memcpy(buffer + bufferLen, p, take);
        bufferLen += take;
        p += take;
        len -= take;
        if (bufferLen == sizeof(buffer)) {
            processBlock(buffer);
            bufferLen = 0;
        }
    }
}

std::string
Sha256::hexDigest()
{
    if (!finalized) {
        std::uint64_t bits = totalBytes * 8;
        unsigned char pad = 0x80;
        update(&pad, 1);
        totalBytes -= 1; // padding is not message content
        unsigned char zero = 0;
        while (bufferLen != 56) {
            update(&zero, 1);
            totalBytes -= 1;
        }
        unsigned char len_be[8];
        for (int i = 0; i < 8; ++i)
            len_be[i] =
                static_cast<unsigned char>(bits >> (56 - 8 * i));
        update(len_be, 8);
        for (unsigned i = 0; i < 8; ++i) {
            digest[4 * i] = static_cast<unsigned char>(state[i] >> 24);
            digest[4 * i + 1] =
                static_cast<unsigned char>(state[i] >> 16);
            digest[4 * i + 2] =
                static_cast<unsigned char>(state[i] >> 8);
            digest[4 * i + 3] = static_cast<unsigned char>(state[i]);
        }
        finalized = true;
    }
    static const char hex[] = "0123456789abcdef";
    std::string out(64, '0');
    for (unsigned i = 0; i < 32; ++i) {
        out[2 * i] = hex[digest[i] >> 4];
        out[2 * i + 1] = hex[digest[i] & 0xf];
    }
    return out;
}

std::string
sha256Hex(const void *data, std::size_t len)
{
    Sha256 ctx;
    ctx.update(data, len);
    return ctx.hexDigest();
}

std::string
sha256File(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error(path +
                                 ": cannot open for checksumming");
    Sha256 ctx;
    char chunk[64 * 1024];
    while (is.read(chunk, sizeof(chunk)) || is.gcount() > 0)
        ctx.update(chunk, static_cast<std::size_t>(is.gcount()));
    if (is.bad())
        throw std::runtime_error(path + ": read error while "
                                        "checksumming");
    return ctx.hexDigest();
}

} // namespace smt
