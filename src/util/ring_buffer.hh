/**
 * @file
 * Fixed-capacity ring buffer with deque-like ends: the storage that
 * backs every per-cycle queue in the core (ROB instruction lists,
 * decode/rename latches, fetch buffer, FTQ). All slots are allocated
 * once at setCapacity(); pushes and pops move two indices, so
 * steady-state simulation performs zero heap allocation and elements
 * keep stable addresses while they are live (a slot is only reused
 * after its element was popped and capacity-many pushes went by).
 *
 * Unlike std::deque, pop_front/pop_back do NOT destroy the element:
 * the popped object stays constructed in its slot until a later push
 * overwrites it (emplace_back resets it to T{}). For payloads owning
 * resources (e.g. DynInst's shared_ptr RAS snapshots) this retains
 * the resource for up to capacity-many pushes — bounded, and the
 * price of keeping the pop hot path to an index move.
 */

#ifndef SMTFETCH_UTIL_RING_BUFFER_HH
#define SMTFETCH_UTIL_RING_BUFFER_HH

#include <bit>
#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace smt
{

/** Bounded FIFO/LIFO-at-the-ends queue over preallocated slots. */
template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    explicit RingBuffer(unsigned capacity) { setCapacity(capacity); }

    /**
     * (Re)size the buffer; discards any contents. The slot array is
     * rounded up to a power of two so indexing is a mask, but full()
     * still triggers at the requested logical capacity.
     */
    void
    setCapacity(unsigned capacity)
    {
        cap = capacity;
        slots.clear();
        slots.resize(std::bit_ceil(capacity < 1u ? 1u : capacity));
        mask = slots.size() - 1;
        head = 0;
        count = 0;
    }

    unsigned capacity() const { return cap; }
    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    std::size_t size() const { return count; }

    T &
    front()
    {
        if (empty())
            panic("ring buffer front() on empty buffer");
        return slots[head];
    }

    const T &
    front() const
    {
        if (empty())
            panic("ring buffer front() on empty buffer");
        return slots[head];
    }

    T &
    back()
    {
        if (empty())
            panic("ring buffer back() on empty buffer");
        return slots[(head + count - 1) & mask];
    }

    const T &
    back() const
    {
        if (empty())
            panic("ring buffer back() on empty buffer");
        return slots[(head + count - 1) & mask];
    }

    /** Index-based access, 0 = oldest. */
    T &operator[](std::size_t idx) { return slots[(head + idx) & mask]; }
    const T &
    operator[](std::size_t idx) const
    {
        return slots[(head + idx) & mask];
    }

    void
    push_back(const T &v)
    {
        emplace_slot() = v;
    }

    /** Append a default-reset element and return it (slot reuse). */
    T &
    emplace_back()
    {
        T &slot = emplace_slot();
        slot = T{};
        return slot;
    }

    void
    pop_front()
    {
        if (empty())
            panic("ring buffer pop_front() on empty buffer");
        head = (head + 1) & mask;
        --count;
    }

    void
    pop_back()
    {
        if (empty())
            panic("ring buffer pop_back() on empty buffer");
        --count;
    }

    /** Drop all elements (slots are retained for reuse). */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    T &
    emplace_slot()
    {
        if (full())
            panic("ring buffer overflow (capacity %u)", cap);
        T &slot = slots[(head + count) & mask];
        ++count;
        return slot;
    }

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
    std::size_t mask = 0;
    unsigned cap = 0;
};

} // namespace smt

#endif // SMTFETCH_UTIL_RING_BUFFER_HH
