/**
 * @file
 * Bit-manipulation helpers used by predictor index functions.
 */

#ifndef SMTFETCH_UTIL_BITFIELD_HH
#define SMTFETCH_UTIL_BITFIELD_HH

#include <cstdint>

namespace smt
{

/** Mask keeping the low n bits (n in [0, 64]). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Extract bits [lo, lo+n) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned lo, unsigned n)
{
    return (x >> lo) & mask(n);
}

/** XOR-fold x down to n bits. */
constexpr std::uint64_t
foldXor(std::uint64_t x, unsigned n)
{
    if (n == 0)
        return 0;
    std::uint64_t r = 0;
    while (x != 0) {
        r ^= x & mask(n);
        x >>= n;
    }
    return r;
}

/** Cheap 64-bit mixing (used by skewed predictor hash family). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace smt

#endif // SMTFETCH_UTIL_BITFIELD_HH
