#include "util/json.hh"

#include <cstdio>

#include "util/logging.hh"

namespace smt
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, int indent_step)
    : os(os), indentStep(indent_step)
{
}

void
JsonWriter::newline()
{
    if (indentStep <= 0)
        return;
    os << '\n';
    for (std::size_t i = 0; i < stack.size(); ++i)
        for (int j = 0; j < indentStep; ++j)
            os << ' ';
}

void
JsonWriter::preValue()
{
    if (pendingKey) {
        pendingKey = false;
        return; // key() already handled the comma/indent
    }
    if (!stack.empty()) {
        if (stack.back().items > 0)
            os << ',';
        newline();
        ++stack.back().items;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    os << '{';
    stack.push_back({false, 0});
}

void
JsonWriter::endObject()
{
    if (stack.empty() || stack.back().isArray)
        panic("JsonWriter::endObject outside an object");
    bool had_items = stack.back().items > 0;
    stack.pop_back();
    if (had_items)
        newline();
    os << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os << '[';
    stack.push_back({true, 0});
}

void
JsonWriter::endArray()
{
    if (stack.empty() || !stack.back().isArray)
        panic("JsonWriter::endArray outside an array");
    bool had_items = stack.back().items > 0;
    stack.pop_back();
    if (had_items)
        newline();
    os << ']';
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack.empty() || stack.back().isArray)
        panic("JsonWriter::key outside an object");
    if (stack.back().items > 0)
        os << ',';
    newline();
    ++stack.back().items;
    os << '"' << jsonEscape(k) << '"' << ':';
    if (indentStep > 0)
        os << ' ';
    pendingKey = true;
    return *this;
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    os << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    // %.17g round-trips any double exactly; determinism tests rely on
    // the rendering being reproducible bit for bit.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os << (v ? "true" : "false");
}

void
JsonWriter::raw(const std::string &json_text)
{
    preValue();
    os << json_text;
}

} // namespace smt
