#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace smt
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, int indent_step)
    : os(os), indentStep(indent_step)
{
}

void
JsonWriter::newline()
{
    if (indentStep <= 0)
        return;
    os << '\n';
    for (std::size_t i = 0; i < stack.size(); ++i)
        for (int j = 0; j < indentStep; ++j)
            os << ' ';
}

void
JsonWriter::preValue()
{
    if (pendingKey) {
        pendingKey = false;
        return; // key() already handled the comma/indent
    }
    if (!stack.empty()) {
        if (stack.back().items > 0)
            os << ',';
        newline();
        ++stack.back().items;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    os << '{';
    stack.push_back({false, 0});
}

void
JsonWriter::endObject()
{
    if (stack.empty() || stack.back().isArray)
        panic("JsonWriter::endObject outside an object");
    bool had_items = stack.back().items > 0;
    stack.pop_back();
    if (had_items)
        newline();
    os << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os << '[';
    stack.push_back({true, 0});
}

void
JsonWriter::endArray()
{
    if (stack.empty() || !stack.back().isArray)
        panic("JsonWriter::endArray outside an array");
    bool had_items = stack.back().items > 0;
    stack.pop_back();
    if (had_items)
        newline();
    os << ']';
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack.empty() || stack.back().isArray)
        panic("JsonWriter::key outside an object");
    if (stack.back().items > 0)
        os << ',';
    newline();
    ++stack.back().items;
    os << '"' << jsonEscape(k) << '"' << ':';
    if (indentStep > 0)
        os << ' ';
    pendingKey = true;
    return *this;
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    os << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    // JSON has no NaN/Infinity literals — "%.17g" would print tokens
    // jsonParse itself rejects. Emit null so the document stays
    // parseable and the non-finite value is visible downstream.
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // %.17g round-trips any double exactly; determinism tests rely on
    // the rendering being reproducible bit for bit.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os << (v ? "true" : "false");
}

void
JsonWriter::raw(const std::string &json_text)
{
    preValue();
    os << json_text;
}

// ------------------------------------------------------------- JsonValue

JsonParseError::JsonParseError(const std::string &what, std::size_t line,
                               std::size_t column)
    : std::runtime_error(what), line_(line), column_(column)
{
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace
{

[[noreturn]] void
typeMismatch(const JsonValue &v, const char *wanted)
{
    throw JsonTypeError(csprintf("expected JSON %s, found %s", wanted,
                                 v.kindName()));
}

} // namespace

bool
JsonValue::asBool() const
{
    if (!isBool())
        typeMismatch(*this, "bool");
    return boolean;
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        typeMismatch(*this, "number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        typeMismatch(*this, "string");
    return string;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (!isArray())
        typeMismatch(*this, "array");
    return array;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (!isObject())
        typeMismatch(*this, "object");
    return object;
}

std::uint64_t
JsonValue::asUInt64() const
{
    double v = asNumber();
    // The bound is exactly 2^64, the first unrepresentable value.
    if (v < 0 || v != std::floor(v) || v >= 1.8446744073709552e19)
        throw JsonTypeError(csprintf("expected a non-negative "
                                     "integer, found %g",
                                     v));
    return static_cast<std::uint64_t>(v);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

std::size_t
JsonValue::size() const
{
    switch (kind_) {
      case Kind::Array: return array.size();
      case Kind::Object: return object.size();
      case Kind::String: return string.size();
      default: return 0;
    }
}

void
JsonValue::write(JsonWriter &jw) const
{
    switch (kind_) {
      case Kind::Null:
        jw.raw("null");
        break;
      case Kind::Bool:
        jw.value(boolean);
        break;
      case Kind::Number:
        jw.value(number);
        break;
      case Kind::String:
        jw.value(string);
        break;
      case Kind::Array:
        jw.beginArray();
        for (const auto &v : array)
            v.write(jw);
        jw.endArray();
        break;
      case Kind::Object:
        jw.beginObject();
        for (const auto &[k, v] : object) {
            jw.key(k);
            v.write(jw);
        }
        jw.endObject();
        break;
    }
}

std::string
JsonValue::dump(int indent_step) const
{
    std::ostringstream os;
    JsonWriter jw(os, indent_step);
    write(jw);
    return os.str();
}

// ---------------------------------------------------------------- parser

namespace
{

/** Strict recursive-descent JSON parser with line/column tracking. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    JsonValue
    parse()
    {
        skipWs();
        JsonValue v = parseValue(0);
        skipWs();
        if (pos != text.size())
            fail("trailing characters after the top-level value");
        return v;
    }

  private:
    static constexpr unsigned maxDepth = 128;

    const std::string &text;
    std::size_t pos = 0;
    std::size_t line = 1;
    std::size_t lineStart = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::size_t column = pos - lineStart + 1;
        throw JsonParseError(csprintf("JSON parse error at line "
                                      "%zu, column %zu: %s",
                                      line, column, what.c_str()),
                             line, column);
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return atEnd() ? '\0' : text[pos]; }

    char
    advance()
    {
        char c = text[pos++];
        if (c == '\n') {
            ++line;
            lineStart = pos;
        }
        return c;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            advance();
        }
    }

    void
    expect(char c, const char *where)
    {
        if (atEnd() || peek() != c)
            fail(csprintf("expected '%c' %s", c, where));
        advance();
    }

    /** Consume a keyword (true/false/null) already matched on [0]. */
    void
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (atEnd() || peek() != *p)
                fail(csprintf("invalid literal (expected '%s')",
                              word));
            advance();
        }
    }

    JsonValue
    parseValue(unsigned depth)
    {
        if (depth > maxDepth)
            fail("nesting depth limit exceeded");
        if (atEnd())
            fail("unexpected end of input (expected a value)");
        char c = peek();
        switch (c) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return JsonValue(parseString());
          case 't':
            literal("true");
            return JsonValue(true);
          case 'f':
            literal("false");
            return JsonValue(false);
          case 'n':
            literal("null");
            return JsonValue();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return JsonValue(parseNumber());
            fail(csprintf("unexpected character '%c' (expected a "
                          "value)",
                          c));
        }
    }

    JsonValue
    parseObject(unsigned depth)
    {
        expect('{', "to start an object");
        JsonValue::Object members;
        skipWs();
        if (peek() == '}') {
            advance();
            return JsonValue(std::move(members));
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            skipWs();
            expect(':', "after object key");
            skipWs();
            members.emplace_back(std::move(key),
                                 parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}', "or ',' after object member");
            return JsonValue(std::move(members));
        }
    }

    JsonValue
    parseArray(unsigned depth)
    {
        expect('[', "to start an array");
        JsonValue::Array elems;
        skipWs();
        if (peek() == ']') {
            advance();
            return JsonValue(std::move(elems));
        }
        while (true) {
            skipWs();
            elems.push_back(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']', "or ',' after array element");
            return JsonValue(std::move(elems));
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                fail("unterminated \\u escape");
            char c = advance();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"', "to start a string");
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            char c = advance();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                fail("unterminated escape sequence");
            char e = advance();
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = hex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: require the low half.
                    if (atEnd() || peek() != '\\')
                        fail("unpaired UTF-16 high surrogate");
                    advance();
                    if (atEnd() || peek() != 'u')
                        fail("unpaired UTF-16 high surrogate");
                    advance();
                    unsigned lo = hex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("invalid UTF-16 low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired UTF-16 low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail(csprintf("invalid escape sequence '\\%c'", e));
            }
        }
    }

    double
    parseNumber()
    {
        std::size_t start = pos;
        if (peek() == '-')
            advance();
        if (atEnd() || peek() < '0' || peek() > '9')
            fail("invalid number (expected a digit)");
        if (peek() == '0') {
            advance();
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (peek() == '.') {
            advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("invalid number (expected a fraction digit)");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            advance();
            if (peek() == '+' || peek() == '-')
                advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("invalid number (expected an exponent digit)");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        std::string slice = text.substr(start, pos - start);
        double v = std::strtod(slice.c_str(), nullptr);
        if (!std::isfinite(v))
            fail(csprintf("number out of range: %s",
                          slice.c_str()));
        return v;
    }
};

} // namespace

JsonValue
jsonParse(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace smt
