#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace smt
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

Rng::Rng(std::string_view name, std::uint64_t salt)
    : Rng(hashString(name) ^ (salt * 0x9e3779b97f4a7c15ULL))
{
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with bound 0");
    // Debiased multiply-shift rejection.
    while (true) {
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo >= bound || lo >= (-bound) % bound)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range: lo %lld > hi %lld", (long long)lo,
              (long long)hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

unsigned
Rng::positiveGeometric(double mean, unsigned cap)
{
    if (mean < 1.0)
        mean = 1.0;
    // Geometric on {1,2,...} with mean m has success prob 1/m.
    double p = 1.0 / mean;
    double u = uniform();
    // Inverse CDF; guard the log of values near 0.
    double val = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
    if (val < 1.0)
        val = 1.0;
    unsigned v = static_cast<unsigned>(val);
    return v > cap ? cap : v;
}

std::uint64_t
Rng::hashString(std::string_view str)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : str) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace smt
