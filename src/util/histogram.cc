#include "util/histogram.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

Histogram::Histogram(unsigned max_value)
    : bins(max_value + 1, 0)
{
}

void
Histogram::sample(unsigned value)
{
    unsigned idx = value;
    if (idx >= bins.size()) {
        idx = static_cast<unsigned>(bins.size()) - 1;
        ++overflow;
    }
    ++bins[idx];
    ++total;
    weighted += value;
}

void
Histogram::reset()
{
    for (auto &b : bins)
        b = 0;
    total = 0;
    weighted = 0;
    overflow = 0;
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(weighted) / static_cast<double>(total);
}

double
Histogram::fractionAt(unsigned v) const
{
    if (total == 0 || v >= bins.size())
        return 0.0;
    return static_cast<double>(bins[v]) / static_cast<double>(total);
}

double
Histogram::fractionAtLeast(unsigned v) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t n = 0;
    for (unsigned i = v; i < bins.size(); ++i)
        n += bins[i];
    return static_cast<double>(n) / static_cast<double>(total);
}

double
Histogram::fractionAbove(unsigned v) const
{
    return fractionAtLeast(v + 1);
}

std::uint64_t
Histogram::at(unsigned v) const
{
    if (v >= bins.size())
        return 0;
    return bins[v];
}

std::string
Histogram::summary() const
{
    return csprintf("mean=%.2f n=%llu", mean(),
                    static_cast<unsigned long long>(total));
}

void
Histogram::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(bins.size()));
    for (std::uint64_t b : bins)
        w.u64(b);
    w.u64(total);
    w.u64(weighted);
    w.u64(overflow);
}

void
Histogram::restore(CheckpointReader &r)
{
    std::uint32_t n = r.u32();
    if (n != bins.size())
        r.fail(csprintf("histogram holds %u buckets but this "
                        "configuration uses %zu",
                        n, bins.size()));
    for (auto &b : bins)
        b = r.u64();
    total = r.u64();
    weighted = r.u64();
    overflow = r.u64();
}

} // namespace smt
