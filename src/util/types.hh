/**
 * @file
 * Fundamental scalar types shared by every smtfetch module.
 */

#ifndef SMTFETCH_UTIL_TYPES_HH
#define SMTFETCH_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace smt
{

/** Byte address in the synthetic address space. */
using Addr = std::uint64_t;

/** Simulation cycle count. */
using Cycle = std::uint64_t;

/** Hardware thread (context) identifier. */
using ThreadID = std::int16_t;

/** Global dynamic instruction sequence number (per thread). */
using InstSeqNum = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::int16_t;

/** Invalid/unassigned thread. */
constexpr ThreadID invalidThread = -1;

/** Invalid register (instruction has no such operand). */
constexpr RegIndex invalidReg = -1;

/** Sentinel address meaning "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Fixed synthetic instruction size in bytes (Alpha-like RISC). */
constexpr unsigned instBytes = 4;

/** Number of architectural integer registers per thread. */
constexpr unsigned numArchIntRegs = 32;

/** Number of architectural floating-point registers per thread. */
constexpr unsigned numArchFpRegs = 32;

/** Maximum number of hardware threads supported by the model. */
constexpr unsigned maxThreads = 8;

} // namespace smt

#endif // SMTFETCH_UTIL_TYPES_HH
