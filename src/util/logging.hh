/**
 * @file
 * gem5-style status/error reporting: panic() for internal invariant
 * violations (simulator bugs), fatal() for user configuration errors,
 * warn()/inform() for non-fatal notices.
 */

#ifndef SMTFETCH_UTIL_LOGGING_HH
#define SMTFETCH_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace smt
{

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happens that should never happen regardless of
 * user input, i.e. a simulator bug. Calls std::abort().
 */
[[noreturn]] void panic(const char *fmt, ...);

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Call when the simulation cannot continue due to a condition that is
 * the user's fault (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...);

/** Warn about suspicious but non-fatal conditions. */
void warn(const char *fmt, ...);

/** Print an informational status message. */
void inform(const char *fmt, ...);

/** Format a printf-style message into a std::string. */
std::string csprintf(const char *fmt, ...);

} // namespace smt

#endif // SMTFETCH_UTIL_LOGGING_HH
