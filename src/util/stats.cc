#include "util/stats.hh"

#include <iomanip>
#include <memory>

namespace smt
{

StatGroup::StatGroup(std::string name)
    : groupName(std::move(name))
{
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    counters.push_back({name, desc, std::make_unique<Counter>()});
    return *counters.back().counter;
}

void
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> eval)
{
    formulas.push_back({name, desc, std::move(eval)});
}

void
StatGroup::resetAll()
{
    for (auto &c : counters)
        c.counter->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &c : counters) {
        os << groupName << '.' << c.name << ' ' << c.counter->value()
           << "  # " << c.desc << '\n';
    }
    for (const auto &f : formulas) {
        os << groupName << '.' << f.name << ' ' << std::fixed
           << std::setprecision(4) << f.eval() << "  # " << f.desc
           << '\n';
    }
}

} // namespace smt
