/**
 * @file
 * StatsRegistry: the unified named-statistics registry. Components
 * (pipeline stages, fetch engines, caches) register their counters,
 * scalars, histograms and derived formulas under dotted names in the
 * gem5 style ("commit.insts", "engine.tableHits"); the registry then
 * renders them as stable text or machine-readable JSON.
 *
 * Hot-path storage stays with the owning component (a registered
 * counter is a pointer to the component's own field, so incrementing
 * it costs exactly what a struct member costs); the registry is the
 * authoritative naming and emission layer over that storage.
 */

#ifndef SMTFETCH_UTIL_STATS_REGISTRY_HH
#define SMTFETCH_UTIL_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/histogram.hh"

namespace smt
{

class JsonWriter;

/** Named stat index over component-owned (or registry-owned) storage. */
class StatsRegistry
{
  public:
    StatsRegistry() = default;

    // Non-copyable: entries hold pointers into component storage and
    // registry-owned slots.
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Register a component-owned 64-bit counter. */
    void addCounter(const std::string &name, const std::string &desc,
                    const std::uint64_t *v);

    /** Register a component-owned double scalar. */
    void addScalar(const std::string &name, const std::string &desc,
                   const double *v);

    /**
     * Register a registry-owned counter (components without stable
     * storage of their own). The reference stays valid for the life of
     * the registry.
     */
    std::uint64_t &addOwnedCounter(const std::string &name,
                                   const std::string &desc);

    /** Register a component-owned histogram. */
    void addHistogram(const std::string &name, const std::string &desc,
                      const Histogram *h);

    /** Register a derived value, evaluated at dump/query time. */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> eval);

    /** Is a stat with this name registered? */
    bool has(const std::string &name) const;

    /**
     * Numeric value of a counter, scalar or formula by name;
     * fatal() on unknown names and on histograms.
     */
    double value(const std::string &name) const;

    /** Number of registered stats. */
    std::size_t size() const { return entries.size(); }

    /** Reset registry-owned counters (component storage is reset by
     *  its owners). */
    void resetOwned();

    /** Stable, human-diffable "name value  # desc" lines. */
    void dump(std::ostream &os) const;

    /**
     * Emit one JSON object mapping each stat name to its value;
     * histograms become {"count","sum","mean","bins"} sub-objects.
     */
    void dumpJson(JsonWriter &jw) const;

    /** Full text rendering (determinism comparisons). */
    std::string textString() const;

    /** Compact single-line JSON rendering (embedding, diffing). */
    std::string jsonString() const;

  private:
    enum class Kind : unsigned char
    {
        CounterPtr,
        ScalarPtr,
        HistogramPtr,
        Formula,
    };

    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind;
        const std::uint64_t *counter = nullptr;
        const double *scalar = nullptr;
        const Histogram *hist = nullptr;
        std::function<double()> eval;
    };

    Entry &addEntry(const std::string &name, const std::string &desc,
                    Kind kind);

    std::vector<Entry> entries; //!< registration order (dump order)
    std::unordered_map<std::string, std::size_t> index;

    /** Registry-owned counter slots (stable addresses). */
    std::vector<std::unique_ptr<std::uint64_t>> ownedCounters;
};

} // namespace smt

#endif // SMTFETCH_UTIL_STATS_REGISTRY_HH
