/**
 * @file
 * Simple integer-bucket histogram used for fetch-width distributions
 * and similar per-cycle statistics.
 */

#ifndef SMTFETCH_UTIL_HISTOGRAM_HH
#define SMTFETCH_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/**
 * Histogram over small non-negative integer samples (e.g. instructions
 * delivered per fetch cycle, 0..16). Values above the configured max
 * are clamped into the top bucket; overflows() counts how many
 * samples were clamped, so consumers can tell true max-value samples
 * from out-of-range ones.
 */
class Histogram
{
  public:
    explicit Histogram(unsigned max_value = 16);

    /** Record one sample. */
    void sample(unsigned value);

    /** Remove all samples. */
    void reset();

    /** Total number of samples recorded. */
    std::uint64_t count() const { return total; }

    /** Sum of all sample values (unclamped, see mean()). */
    std::uint64_t sum() const { return weighted; }

    /** Samples that exceeded the top bucket and were clamped. */
    std::uint64_t overflows() const { return overflow; }

    /**
     * Arithmetic mean of the raw sample values (0 if empty).
     * Overflowed samples contribute their unclamped value, so the
     * mean is exact even when the bin distribution saturates — it
     * can therefore exceed the top bucket index; check overflows()
     * before reading the mean off the bins.
     */
    double mean() const;

    /** Fraction of samples equal to v. */
    double fractionAt(unsigned v) const;

    /** Fraction of samples >= v. */
    double fractionAtLeast(unsigned v) const;

    /** Fraction of samples > v. */
    double fractionAbove(unsigned v) const;

    /** Number of buckets (maxValue + 1). */
    unsigned buckets() const { return static_cast<unsigned>(bins.size()); }

    /** Raw count in bucket v. */
    std::uint64_t at(unsigned v) const;

    /** One-line rendering "mean=.. p(>=8)=.." for logs. */
    std::string summary() const;

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
    std::uint64_t weighted = 0;
    std::uint64_t overflow = 0;
};

} // namespace smt

#endif // SMTFETCH_UTIL_HISTOGRAM_HH
