/**
 * @file
 * Deterministic pseudo-random number generation for synthetic workload
 * construction. All smtfetch randomness flows through Rng so that a
 * given (benchmark, seed) pair always produces the identical trace.
 */

#ifndef SMTFETCH_UTIL_RANDOM_HH
#define SMTFETCH_UTIL_RANDOM_HH

#include <cstdint>
#include <string_view>

namespace smt
{

/**
 * A small, fast, deterministic RNG (xoshiro256** core seeded via
 * splitmix64). Not cryptographic; chosen for reproducibility and speed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5eedf00dULL);

    /** Construct from a string (e.g. benchmark name) plus salt. */
    Rng(std::string_view name, std::uint64_t salt);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     * Used for basic-block sizes; clamped to [1, cap].
     */
    unsigned positiveGeometric(double mean, unsigned cap);

    /** Hash a string to a 64-bit value (FNV-1a). */
    static std::uint64_t hashString(std::string_view s);

  private:
    std::uint64_t s[4];
};

} // namespace smt

#endif // SMTFETCH_UTIL_RANDOM_HH
