/**
 * @file
 * ASCII table printer used by the bench harnesses to render
 * paper-figure rows in aligned columns.
 */

#ifndef SMTFETCH_UTIL_TABLE_HH
#define SMTFETCH_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace smt
{

/**
 * Accumulates rows of string cells and prints them with column-aligned
 * padding, a header rule, and an optional title.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage ("+12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table to a stream. */
    void print(std::ostream &os, const std::string &title = "") const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace smt

#endif // SMTFETCH_UTIL_TABLE_HH
