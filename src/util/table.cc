#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace smt
{

TextTable::TextTable(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headerRow.size())
        panic("TextTable row arity %zu != header arity %zu",
              cells.size(), headerRow.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    return csprintf("%.*f", precision, v);
}

std::string
TextTable::pct(double fraction, int precision)
{
    return csprintf("%+.*f%%", precision, fraction * 100.0);
}

void
TextTable::print(std::ostream &os, const std::string &title) const
{
    std::vector<size_t> widths(headerRow.size(), 0);
    for (size_t i = 0; i < headerRow.size(); ++i)
        widths[i] = headerRow[i].size();
    for (const auto &row : rows)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            os << std::string(widths[i] - row[i].size(), ' ');
            os << " | ";
        }
        os << '\n';
    };

    size_t total = 1;
    for (size_t w : widths)
        total += w + 3;

    if (!title.empty())
        os << title << '\n';
    os << std::string(total, '-') << '\n';
    print_row(headerRow);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        print_row(row);
    os << std::string(total, '-') << '\n';
}

} // namespace smt
