#include "util/stats_registry.hh"

#include <iomanip>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace smt
{

StatsRegistry::Entry &
StatsRegistry::addEntry(const std::string &name, const std::string &desc,
                        Kind kind)
{
    if (name.empty())
        fatal("stat registered with empty name");
    if (index.count(name) != 0)
        fatal("duplicate stat name '%s'", name.c_str());
    index[name] = entries.size();
    entries.push_back({name, desc, kind, nullptr, nullptr, nullptr, {}});
    return entries.back();
}

void
StatsRegistry::addCounter(const std::string &name, const std::string &desc,
                          const std::uint64_t *v)
{
    addEntry(name, desc, Kind::CounterPtr).counter = v;
}

void
StatsRegistry::addScalar(const std::string &name, const std::string &desc,
                         const double *v)
{
    addEntry(name, desc, Kind::ScalarPtr).scalar = v;
}

std::uint64_t &
StatsRegistry::addOwnedCounter(const std::string &name,
                               const std::string &desc)
{
    ownedCounters.push_back(std::make_unique<std::uint64_t>(0));
    std::uint64_t *slot = ownedCounters.back().get();
    addEntry(name, desc, Kind::CounterPtr).counter = slot;
    return *slot;
}

void
StatsRegistry::addHistogram(const std::string &name,
                            const std::string &desc, const Histogram *h)
{
    addEntry(name, desc, Kind::HistogramPtr).hist = h;
}

void
StatsRegistry::addFormula(const std::string &name, const std::string &desc,
                          std::function<double()> eval)
{
    addEntry(name, desc, Kind::Formula).eval = std::move(eval);
}

bool
StatsRegistry::has(const std::string &name) const
{
    return index.count(name) != 0;
}

double
StatsRegistry::value(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        fatal("unknown stat '%s'", name.c_str());
    const Entry &e = entries[it->second];
    switch (e.kind) {
      case Kind::CounterPtr:
        return static_cast<double>(*e.counter);
      case Kind::ScalarPtr:
        return *e.scalar;
      case Kind::Formula:
        return e.eval();
      case Kind::HistogramPtr:
        fatal("stat '%s' is a histogram, not a scalar", name.c_str());
    }
    return 0.0; // unreachable
}

void
StatsRegistry::resetOwned()
{
    for (auto &slot : ownedCounters)
        *slot = 0;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const Entry &e : entries) {
        os << e.name << ' ';
        switch (e.kind) {
          case Kind::CounterPtr: os << *e.counter; break;
          case Kind::ScalarPtr:
            os << std::fixed << std::setprecision(6) << *e.scalar
               << std::defaultfloat;
            break;
          case Kind::Formula:
            os << std::fixed << std::setprecision(6) << e.eval()
               << std::defaultfloat;
            break;
          case Kind::HistogramPtr:
            os << e.hist->summary();
            break;
        }
        os << "  # " << e.desc << '\n';
    }
}

void
StatsRegistry::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    for (const Entry &e : entries) {
        jw.key(e.name);
        switch (e.kind) {
          case Kind::CounterPtr: jw.value(*e.counter); break;
          case Kind::ScalarPtr: jw.value(*e.scalar); break;
          case Kind::Formula: jw.value(e.eval()); break;
          case Kind::HistogramPtr: {
            const Histogram &h = *e.hist;
            jw.beginObject();
            jw.field("count", h.count());
            jw.field("sum", h.sum());
            jw.field("mean", h.mean());
            jw.field("overflows", h.overflows());
            jw.key("bins");
            jw.beginArray();
            for (unsigned b = 0; b < h.buckets(); ++b)
                jw.value(h.at(b));
            jw.endArray();
            jw.endObject();
            break;
          }
        }
    }
    jw.endObject();
}

std::string
StatsRegistry::textString() const
{
    std::ostringstream oss;
    dump(oss);
    return oss.str();
}

std::string
StatsRegistry::jsonString() const
{
    std::ostringstream oss;
    JsonWriter jw(oss, /*indent_step=*/0);
    dumpJson(jw);
    return oss.str();
}

} // namespace smt
