/**
 * @file
 * Lightweight named-statistics registry. Modules register scalar
 * counters and formulas into a StatGroup; the simulator dumps them in a
 * stable, human-diffable format.
 */

#ifndef SMTFETCH_UTIL_STATS_HH
#define SMTFETCH_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace smt
{

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++val; }
    void operator++(int) { ++val; }
    void operator+=(std::uint64_t n) { val += n; }
    void reset() { val = 0; }

    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/**
 * A collection of named counters and derived formulas, dumped together.
 * Groups may nest via name prefixes ("fetch.", "commit.").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register a counter under this group; returns a stable handle. */
    Counter &addCounter(const std::string &name, const std::string &desc);

    /** Register a derived value computed at dump time. */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> eval);

    /** Reset all registered counters (formulas recompute anyway). */
    void resetAll();

    /** Write "group.name value # desc" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return groupName; }

  private:
    struct NamedCounter
    {
        std::string name;
        std::string desc;
        // Deque-like stable storage: counters allocated individually.
        std::unique_ptr<Counter> counter;
    };

    struct NamedFormula
    {
        std::string name;
        std::string desc;
        std::function<double()> eval;
    };

    std::string groupName;
    std::vector<NamedCounter> counters;
    std::vector<NamedFormula> formulas;
};

} // namespace smt

#endif // SMTFETCH_UTIL_STATS_HH
