/**
 * @file
 * Reorder buffer: per-thread in-order instruction lists over
 * fixed-capacity ring buffers (SMTSIM-style active lists). The rings
 * own every in-flight DynInst; commit pops the front, squash pops the
 * back, so slots are stable and pointers to live instructions stay
 * valid until the instruction leaves and its slot is eventually
 * reused.
 */

#ifndef SMTFETCH_CORE_ROB_HH
#define SMTFETCH_CORE_ROB_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "util/logging.hh"
#include "util/ring_buffer.hh"
#include "util/types.hh"

namespace smt
{

/** Per-thread in-flight instruction storage. */
class Rob
{
  public:
    /**
     * @param num_threads Hardware thread count.
     * @param capacity_per_thread Upper bound on one thread's
     *        in-flight instructions, fetched-but-undispatched ones
     *        included (robEntries + fetch buffer + decode and rename
     *        latches for the core's configuration).
     */
    Rob(unsigned num_threads, unsigned capacity_per_thread)
        : lists(num_threads), nextSeq(num_threads, 1)
    {
        for (auto &list : lists)
            list.setCapacity(capacity_per_thread);
    }

    /** Create the next dynamic instruction for a thread. */
    DynInst &
    create(ThreadID tid)
    {
        auto &list = lists[tid];
        if (list.full())
            panic("ROB ring overflow on thread %d (capacity %u)", tid,
                  list.capacity());
        DynInst &inst = list.emplace_back();
        inst.tid = tid;
        inst.seq = nextSeq[tid]++;
        return inst;
    }

    bool empty(ThreadID tid) const { return lists[tid].empty(); }

    /** Hardware threads this ROB was sized for. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(lists.size());
    }

    /** Per-thread ring capacity (checkpoint restore bound). */
    unsigned capacity() const { return lists[0].capacity(); }

    std::size_t size(ThreadID tid) const { return lists[tid].size(); }

    /** Oldest in-flight instruction of the thread. */
    DynInst &
    head(ThreadID tid)
    {
        if (lists[tid].empty())
            panic("ROB head on empty thread %d", tid);
        return lists[tid].front();
    }

    DynInst &
    youngest(ThreadID tid)
    {
        if (lists[tid].empty())
            panic("ROB youngest on empty thread %d", tid);
        return lists[tid].back();
    }

    void popHead(ThreadID tid) { lists[tid].pop_front(); }
    void popYoungest(ThreadID tid) { lists[tid].pop_back(); }

    /**
     * Lookup by sequence number; nullptr if the instruction has been
     * committed or squashed. Sequence numbers are strictly increasing
     * within the list but can have holes: a squash pops the youngest
     * entries without rewinding the per-thread sequence counter
     * (squashed numbers may still be referenced from the completion
     * wheel, so reuse would alias old events onto new instructions),
     * and the next fetched instruction continues past the gap. In the
     * common hole-free window the offset from the head sequence IS
     * the index (O(1)); only a window that still contains a squash
     * gap falls back to binary search.
     */
    DynInst *
    find(ThreadID tid, InstSeqNum seq)
    {
        auto &list = lists[tid];
        if (list.empty())
            return nullptr;
        const InstSeqNum first = list.front().seq;
        const InstSeqNum last = list.back().seq;
        if (seq < first || seq > last)
            return nullptr;
        if (last - first + 1 == list.size()) {
            // Dense window: seq-offset indexing.
            DynInst &inst = list[static_cast<std::size_t>(seq - first)];
            return &inst;
        }
        std::size_t lo = 0;
        std::size_t hi = list.size();
        while (lo < hi) {
            std::size_t mid = lo + (hi - lo) / 2;
            if (list[mid].seq < seq)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo == list.size() || list[lo].seq != seq)
            return nullptr;
        return &list[lo];
    }

    /** Index-based access (0 = oldest), for diagnostics/walks. */
    DynInst &at(ThreadID tid, std::size_t idx) { return lists[tid][idx]; }
    const DynInst &
    at(ThreadID tid, std::size_t idx) const
    {
        return lists[tid][idx];
    }

    void
    reset()
    {
        for (auto &list : lists)
            list.clear();
        for (auto &seq : nextSeq)
            seq = 1;
    }

    /** @name Checkpoint support (sequence counters travel with the
     *  serialized instruction lists; see SmtCore::saveState). */
    /// @{
    InstSeqNum nextSeqOf(ThreadID tid) const { return nextSeq[tid]; }

    void
    setNextSeq(ThreadID tid, InstSeqNum seq)
    {
        if (!lists[tid].empty() && seq <= lists[tid].back().seq)
            panic("ROB next-seq %llu not past youngest in-flight %llu",
                  (unsigned long long)seq,
                  (unsigned long long)lists[tid].back().seq);
        nextSeq[tid] = seq;
    }
    /// @}

  private:
    std::vector<RingBuffer<DynInst>> lists;
    std::vector<InstSeqNum> nextSeq;
};

} // namespace smt

#endif // SMTFETCH_CORE_ROB_HH
