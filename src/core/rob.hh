/**
 * @file
 * Reorder buffer: per-thread in-order instruction lists over a shared
 * capacity pool (SMTSIM-style active lists). The deques own every
 * in-flight DynInst; commit pops the front, squash pops the back, so
 * pointers to live instructions stay valid and (thread, seq) lookup is
 * O(1).
 */

#ifndef SMTFETCH_CORE_ROB_HH
#define SMTFETCH_CORE_ROB_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "core/dyn_inst.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace smt
{

/** Per-thread in-flight instruction storage. */
class Rob
{
  public:
    Rob(unsigned num_threads)
        : lists(num_threads), nextSeq(num_threads, 1)
    {
    }

    /** Create the next dynamic instruction for a thread. */
    DynInst &
    create(ThreadID tid)
    {
        auto &list = lists[tid];
        list.emplace_back();
        DynInst &inst = list.back();
        inst.tid = tid;
        inst.seq = nextSeq[tid]++;
        return inst;
    }

    bool empty(ThreadID tid) const { return lists[tid].empty(); }

    /** Hardware threads this ROB was sized for. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(lists.size());
    }

    std::size_t size(ThreadID tid) const { return lists[tid].size(); }

    /** Oldest in-flight instruction of the thread. */
    DynInst &
    head(ThreadID tid)
    {
        if (lists[tid].empty())
            panic("ROB head on empty thread %d", tid);
        return lists[tid].front();
    }

    DynInst &
    youngest(ThreadID tid)
    {
        if (lists[tid].empty())
            panic("ROB youngest on empty thread %d", tid);
        return lists[tid].back();
    }

    void popHead(ThreadID tid) { lists[tid].pop_front(); }
    void popYoungest(ThreadID tid) { lists[tid].pop_back(); }

    /**
     * Lookup by sequence number; nullptr if the instruction has been
     * committed or squashed. Sequence numbers are strictly increasing
     * within the deque but may have holes after squashes, so this is
     * a binary search.
     */
    DynInst *
    find(ThreadID tid, InstSeqNum seq)
    {
        auto &list = lists[tid];
        if (list.empty() || seq < list.front().seq ||
            seq > list.back().seq)
            return nullptr;
        auto it = std::lower_bound(
            list.begin(), list.end(), seq,
            [](const DynInst &inst, InstSeqNum s) {
                return inst.seq < s;
            });
        if (it == list.end() || it->seq != seq)
            return nullptr;
        return &*it;
    }

    /** Index-based access (0 = oldest), for diagnostics/walks. */
    DynInst &at(ThreadID tid, std::size_t idx) { return lists[tid][idx]; }
    const DynInst &
    at(ThreadID tid, std::size_t idx) const
    {
        return lists[tid][idx];
    }

    void
    reset()
    {
        for (auto &list : lists)
            list.clear();
        for (auto &seq : nextSeq)
            seq = 1;
    }

    /** @name Checkpoint support (sequence counters travel with the
     *  serialized instruction lists; see SmtCore::saveState). */
    /// @{
    InstSeqNum nextSeqOf(ThreadID tid) const { return nextSeq[tid]; }

    void
    setNextSeq(ThreadID tid, InstSeqNum seq)
    {
        if (!lists[tid].empty() && seq <= lists[tid].back().seq)
            panic("ROB next-seq %llu not past youngest in-flight %llu",
                  (unsigned long long)seq,
                  (unsigned long long)lists[tid].back().seq);
        nextSeq[tid] = seq;
    }
    /// @}

  private:
    std::vector<std::deque<DynInst>> lists;
    std::vector<InstSeqNum> nextSeq;
};

} // namespace smt

#endif // SMTFETCH_CORE_ROB_HH
