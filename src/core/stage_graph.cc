#include "core/stage_graph.hh"

namespace smt
{

Stage &
StageGraph::add(std::unique_ptr<Stage> stage)
{
    stages.push_back(std::move(stage));
    return *stages.back();
}

void
StageGraph::tick()
{
    for (auto &stage : stages)
        stage->tick();
}

void
StageGraph::registerStats(StatsRegistry &reg)
{
    for (auto &stage : stages)
        stage->registerStats(reg);
}

std::vector<std::string>
StageGraph::names() const
{
    std::vector<std::string> out;
    out.reserve(stages.size());
    for (const auto &stage : stages)
        out.push_back(stage->name());
    return out;
}

} // namespace smt
