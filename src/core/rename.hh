/**
 * @file
 * Register rename unit: per-thread map tables, shared physical
 * register free lists (384 int + 384 fp in Table 3), and the
 * readiness scoreboard used by the issue queues.
 *
 * No values are tracked (the simulator is trace driven); renaming
 * exists to model the structural pressure wrong-path and stalled
 * instructions put on the shared register files.
 */

#ifndef SMTFETCH_CORE_RENAME_HH
#define SMTFETCH_CORE_RENAME_HH

#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"
#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Shared-physical-register rename engine. */
class RenameUnit
{
  public:
    RenameUnit(unsigned phys_int, unsigned phys_fp,
               unsigned num_threads);

    /** Is a destination register available in the needed class? */
    bool canAllocate(bool fp) const;

    /**
     * Rename an instruction in program order: translate sources via
     * the current map, then allocate and map the destination.
     * Requires canAllocate() when the instruction has a destination.
     */
    void rename(DynInst &inst);

    /** Commit: the previous mapping of the dest becomes dead. */
    void commit(DynInst &inst);

    /**
     * Squash rollback (must be called youngest-first): restore the
     * previous mapping and free the allocated register.
     */
    void rollback(DynInst &inst);

    /** Mark a physical register's value available (writeback). */
    void markReady(RegIndex phys, bool fp);

    /** Is the operand available? invalidReg counts as ready. */
    bool isReady(RegIndex phys, bool fp) const;

    /** Are all of an instruction's sources ready? */
    bool sourcesReady(const DynInst &inst) const;

    unsigned freeIntRegs() const
    {
        return static_cast<unsigned>(freeInt.size());
    }
    unsigned freeFpRegs() const
    {
        return static_cast<unsigned>(freeFp.size());
    }

    void reset(unsigned num_threads);

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    unsigned physIntCount;
    unsigned physFpCount;

    /** map[thread][arch] -> phys, per class. */
    std::vector<std::vector<RegIndex>> intMap;
    std::vector<std::vector<RegIndex>> fpMap;

    std::vector<RegIndex> freeInt;
    std::vector<RegIndex> freeFp;

    std::vector<bool> readyInt;
    std::vector<bool> readyFp;
};

/** Does this op class write/read floating-point registers? */
constexpr bool
usesFpRegs(OpClass op)
{
    return op == OpClass::FpAlu;
}

} // namespace smt

#endif // SMTFETCH_CORE_RENAME_HH
