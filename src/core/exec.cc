#include "core/exec.hh"

#include "util/logging.hh"

namespace smt
{

ExecUnit::ExecUnit(const CoreParams &params, MemoryHierarchy &memory)
    : params(params), memory(memory), wheel(wheelSize)
{
}

void
ExecUnit::schedule(Cycle when, ThreadID tid, InstSeqNum seq)
{
    wheel[when % wheelSize].emplace_back(tid, seq);
}

Cycle
ExecUnit::issue(DynInst &inst, Cycle now)
{
    Cycle latency;
    switch (inst.op) {
      case OpClass::IntMult:
        latency = params.intMultLatency;
        break;
      case OpClass::FpAlu:
        latency = params.fpLatency;
        break;
      case OpClass::Load:
        latency = params.agenLatency +
                  memory.dcacheAccess(inst.tid, inst.memAddr, false,
                                      now + params.agenLatency);
        break;
      case OpClass::Store:
        // Stores only generate their address here; the cache write
        // happens at commit and never blocks dependents.
        latency = params.agenLatency;
        break;
      default:
        latency = params.intAluLatency;
        break;
    }

    if (latency == 0)
        latency = 1;
    if (latency >= wheelSize)
        panic("latency %llu exceeds event wheel",
              (unsigned long long)latency);

    inst.stage = InstStage::Issued;
    schedule(now + latency, inst.tid, inst.seq);
    return latency;
}

void
ExecUnit::completionsAt(
    Cycle now, std::vector<std::pair<ThreadID, InstSeqNum>> &out)
{
    auto &slot = wheel[now % wheelSize];
    out.assign(slot.begin(), slot.end());
    slot.clear();
}

void
ExecUnit::reset()
{
    for (auto &slot : wheel)
        slot.clear();
}

} // namespace smt
