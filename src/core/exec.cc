#include "core/exec.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

ExecUnit::ExecUnit(const CoreParams &params, MemoryHierarchy &memory)
    : params(params), memory(memory), wheel(wheelSize)
{
}

void
ExecUnit::schedule(Cycle when, ThreadID tid, InstSeqNum seq)
{
    wheel[when % wheelSize].emplace_back(tid, seq);
}

Cycle
ExecUnit::issue(DynInst &inst, Cycle now)
{
    Cycle latency;
    switch (inst.op) {
      case OpClass::IntMult:
        latency = params.intMultLatency;
        break;
      case OpClass::FpAlu:
        latency = params.fpLatency;
        break;
      case OpClass::Load:
        latency = params.agenLatency +
                  memory.dcacheAccess(inst.tid, inst.memAddr, false,
                                      now + params.agenLatency);
        break;
      case OpClass::Store:
        // Stores only generate their address here; the cache write
        // happens at commit and never blocks dependents.
        latency = params.agenLatency;
        break;
      default:
        latency = params.intAluLatency;
        break;
    }

    if (latency == 0)
        latency = 1;
    if (latency >= wheelSize)
        panic("latency %llu exceeds event wheel",
              (unsigned long long)latency);

    inst.stage = InstStage::Issued;
    schedule(now + latency, inst.tid, inst.seq);
    return latency;
}

void
ExecUnit::completionsAt(
    Cycle now, std::vector<std::pair<ThreadID, InstSeqNum>> &out)
{
    auto &slot = wheel[now % wheelSize];
    out.assign(slot.begin(), slot.end());
    slot.clear();
}

Cycle
ExecUnit::nextEventCycle(Cycle now) const
{
    for (Cycle d = 1; d < wheelSize; ++d)
        if (!wheel[(now + d) % wheelSize].empty())
            return now + d;
    return now;
}

void
ExecUnit::reset()
{
    for (auto &slot : wheel)
        slot.clear();
}

void
ExecUnit::save(CheckpointWriter &w) const
{
    w.u32(wheelSize);
    std::uint32_t non_empty = 0;
    for (const auto &slot : wheel)
        if (!slot.empty())
            ++non_empty;
    w.u32(non_empty);
    for (std::size_t i = 0; i < wheel.size(); ++i) {
        if (wheel[i].empty())
            continue;
        w.u32(static_cast<std::uint32_t>(i));
        w.u32(static_cast<std::uint32_t>(wheel[i].size()));
        for (const auto &[tid, seq] : wheel[i]) {
            w.i16(tid);
            w.u64(seq);
        }
    }
}

void
ExecUnit::restore(CheckpointReader &r)
{
    std::uint32_t size = r.u32();
    if (size != wheelSize)
        r.fail(csprintf("event wheel holds %u slots but this build "
                        "uses %zu",
                        size, wheelSize));
    reset();
    std::uint32_t non_empty = r.u32();
    for (std::uint32_t s = 0; s < non_empty; ++s) {
        std::uint32_t idx = r.u32();
        if (idx >= wheelSize)
            r.fail(csprintf("event-wheel slot %u out of range "
                            "[0, %zu)",
                            idx, wheelSize));
        std::uint32_t n = static_cast<std::uint32_t>(
            r.checkCount(r.u32(), 10, "completion"));
        for (std::uint32_t i = 0; i < n; ++i) {
            ThreadID tid = r.i16();
            InstSeqNum seq = r.u64();
            if (tid < 0 ||
                static_cast<unsigned>(tid) >= params.numThreads)
                r.fail(csprintf("completion references thread %d, "
                                "valid range is [0, %u) (corrupt "
                                "reference)",
                                (int)tid, params.numThreads));
            wheel[idx].emplace_back(tid, seq);
        }
    }
}

} // namespace smt
