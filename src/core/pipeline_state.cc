#include "core/pipeline_state.hh"

#include <algorithm>

#include "bpred/fetch_engine.hh"
#include "core/iq.hh"
#include "core/rename.hh"
#include "core/rob.hh"

namespace smt
{

PipelineState::PipelineState(const CoreParams &params,
                             MemoryHierarchy &memory, FetchEngine &engine,
                             Rob &rob, RenameUnit &rename,
                             IssueQueues &iqs, ExecUnit &exec,
                             FrontEnd &front, SimStats &stats)
    : params(params), memory(memory), engine(engine), rob(rob),
      rename(rename), iqs(iqs), exec(exec), front(front), stats(stats)
{
    fetchBuffer.setCapacity(params.fetchBufferSize);
    for (auto &q : decodeQ)
        q.setCapacity(params.decodeWidth);
    for (auto &q : renameQ)
        q.setCapacity(params.decodeWidth);
}

void
PipelineState::removeYounger(RingBuffer<DynInst *> &q, InstSeqNum seq)
{
    // The latch queues are per-thread and age-ordered, so the younger
    // instructions are exactly a suffix.
    while (!q.empty() && q.back()->seq > seq)
        q.pop_back();
}

void
PipelineState::squashAfter(DynInst &offender)
{
    ThreadID tid = offender.tid;
    InstSeqNum seq = offender.seq;

    engine.recover(tid, offender.ckpt, offender.si, offender.oracleTaken,
                   offender.oracleTaken ? offender.oracleNext
                                        : invalidAddr);

    fetchBuffer.removeYounger(tid, seq);
    removeYounger(decodeQ[tid], seq);
    removeYounger(renameQ[tid], seq);
    iqs.squash(tid, seq);

    while (!rob.empty(tid) && rob.youngest(tid).seq > seq) {
        DynInst &young = rob.youngest(tid);
        if (young.inIcount)
            --icounts[tid];
        if (young.stage == InstStage::Dispatched ||
            young.stage == InstStage::Issued ||
            young.stage == InstStage::Done) {
            rename.rollback(young);
            --robCount[tid];
        }
        ++stats.instsSquashed;
        rob.popYoungest(tid);
    }

    // Squashed correct-path instructions already consumed the trace;
    // rewind so fetch re-delivers from just after the offender. For
    // mispredict/bogus squashes everything younger was wrong path and
    // this is a no-op.
    front.rewindTrace(tid, offender.traceIndex + 1);
    front.redirect(tid, offender.oracleNext, currentCycle);
}

} // namespace smt
