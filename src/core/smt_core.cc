#include "core/smt_core.hh"

#include <algorithm>

#include "core/stages/commit_stage.hh"
#include "core/stages/decode_stage.hh"
#include "core/stages/dispatch_stage.hh"
#include "core/stages/execute_stage.hh"
#include "core/stages/fetch_stage.hh"
#include "core/stages/issue_stage.hh"
#include "core/stages/predict_stage.hh"
#include "core/stages/rename_stage.hh"
#include "core/stages/writeback_stage.hh"
#include "util/logging.hh"

namespace smt
{

SmtCore::SmtCore(const CoreParams &params)
    : coreParams(params), memHierarchy(params.memory),
      fetchEngine(makeEngine(params.engine, params.engineParams)),
      fetchPolicy(makePolicy(params.policy)), rob(params.numThreads),
      rename(params.physIntRegs, params.physFpRegs, params.numThreads),
      iqs(params.intIqEntries, params.ldstIqEntries,
          params.fpIqEntries),
      exec(coreParams, memHierarchy),
      front(std::make_unique<FrontEnd>(coreParams, *fetchEngine,
                                       memHierarchy, *fetchPolicy, rob,
                                       simStats)),
      state(coreParams, memHierarchy, *fetchEngine, rob, rename, iqs,
            exec, *front, simStats)
{
    coreParams.validate();
    state.commitHook = &commitHook;
    buildStages();
    registerStats();
}

void
SmtCore::buildStages()
{
    // Back-of-pipe first: each stage consumes what its upstream
    // neighbour produced on an earlier cycle, so no latch
    // double-buffering is needed.
    graph.add(std::make_unique<ExecuteStage>(state));
    graph.add(std::make_unique<WritebackStage>(state));
    graph.add(std::make_unique<CommitStage>(state));
    graph.add(std::make_unique<IssueStage>(state));
    graph.add(std::make_unique<DispatchStage>(state));
    graph.add(std::make_unique<RenameStage>(state));
    graph.add(std::make_unique<DecodeStage>(state));
    graph.add(std::make_unique<FetchStage>(state));
    graph.add(std::make_unique<PredictStage>(state));
}

void
SmtCore::registerStats()
{
    statsRegistry.addCounter("sim.cycles", "simulated cycles",
                             &simStats.cycles);
    statsRegistry.addCounter("sim.instsSquashed",
                             "instructions squashed",
                             &simStats.instsSquashed);
    statsRegistry.addFormula("sim.ipc",
                             "commit throughput (insts per cycle)",
                             [this]() { return simStats.ipc(); });
    statsRegistry.addFormula(
        "sim.ipfc", "fetch throughput (insts per fetch cycle)",
        [this]() { return simStats.ipfc(); });
    statsRegistry.addFormula(
        "sim.branchMispredictRate",
        "mispredicts per committed CTI",
        [this]() { return simStats.branchMispredictRate(); });
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        statsRegistry.addFormula(
            csprintf("sim.thread%u.ipc", t),
            csprintf("thread %u commit throughput", t),
            [this, tid]() { return simStats.threadIpc(tid); });
    }

    graph.registerStats(statsRegistry);
    fetchEngine->registerStats(statsRegistry);
    memHierarchy.registerStats(statsRegistry);
}

void
SmtCore::setThread(ThreadID tid, TraceSource *trace,
                   const BenchmarkImage *image)
{
    if (static_cast<unsigned>(tid) >= coreParams.numThreads)
        fatal("thread id %d out of range", tid);
    front->setThread(tid, trace, image);
}

void
SmtCore::cycle()
{
    graph.tick();
    ++state.currentCycle;
    ++simStats.cycles;
}

void
SmtCore::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        cycle();
}

void
SmtCore::resetStats()
{
    simStats.reset();
    memHierarchy.resetStats();
    fetchEngine->resetStats();
    statsRegistry.resetOwned();
}

void
SmtCore::dumpPipeline(std::ostream &os) const
{
    Rob &mrob = const_cast<Rob &>(rob);
    RenameUnit &mren = const_cast<RenameUnit &>(rename);
    static const char *stage_names[] = {"Fetched", "Decoded",
                                        "Renamed", "Dispatched",
                                        "Issued", "Done"};
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        os << "thread " << t << " inflight=" << mrob.size(tid) << '\n';
        std::size_t limit = std::min<std::size_t>(mrob.size(tid), 40);
        for (std::size_t i = 0; i < limit; ++i) {
            DynInst *inst = &mrob.at(tid, i);
            bool fp = usesFpRegs(inst->op);
            os << "  seq=" << inst->seq << " pc=0x" << std::hex
               << inst->pc << std::dec << " op="
               << std::string(opName(inst->op))
               << " stage=" << stage_names[static_cast<int>(inst->stage)]
               << " wp=" << inst->wrongPath
               << " s1=" << inst->physSrc1 << "("
               << mren.isReady(inst->physSrc1, fp) << ")"
               << " s2=" << inst->physSrc2 << "("
               << mren.isReady(inst->physSrc2, fp) << ")"
               << " dst=" << inst->physDst
               << " mispred=" << inst->mispredicted << '\n';
        }
    }
}

void
SmtCore::checkIcountInvariant() const
{
    // Every in-flight instruction lives in the ROB deques, and the
    // inIcount flag marks membership in the ICOUNT front section, so
    // an ROB walk recomputes the counters exactly.
    Rob &mrob = const_cast<Rob &>(rob);
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        std::uint32_t n = 0;
        for (std::size_t i = 0; i < mrob.size(tid); ++i)
            if (mrob.at(tid, i).inIcount)
                ++n;
        if (n != state.icounts[t])
            panic("icount invariant broken: thread %u has %u counted "
                  "vs tracked %u",
                  t, n, state.icounts[t]);
    }
}

} // namespace smt
