#include "core/smt_core.hh"

#include <algorithm>
#include <tuple>

#include "util/logging.hh"

namespace smt
{

SmtCore::SmtCore(const CoreParams &params)
    : coreParams(params), memHierarchy(params.memory),
      fetchEngine(makeEngine(params.engine, params.engineParams)),
      fetchPolicy(makePolicy(params.policy)), rob(params.numThreads),
      rename(params.physIntRegs, params.physFpRegs, params.numThreads),
      iqs(params.intIqEntries, params.ldstIqEntries,
          params.fpIqEntries),
      exec(coreParams, memHierarchy)
{
    coreParams.validate();
    fetchBuffer.capacity = coreParams.fetchBufferSize;
    front = std::make_unique<FrontEnd>(coreParams, *fetchEngine,
                                       memHierarchy, *fetchPolicy, rob,
                                       simStats);
}

void
SmtCore::setThread(ThreadID tid, TraceStream *trace,
                   const BenchmarkImage *image)
{
    if (static_cast<unsigned>(tid) >= coreParams.numThreads)
        fatal("thread id %d out of range", tid);
    front->setThread(tid, trace, image);
}

void
SmtCore::cycle()
{
    processCompletions();
    commitStage();
    issueStage();
    dispatchStage();
    renameStage();
    decodeStage();
    front->fetchStage(currentCycle, icounts.data(), fetchBuffer);
    front->predictionStage(currentCycle, icounts.data());
    ++currentCycle;
    ++simStats.cycles;
}

void
SmtCore::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        cycle();
}

void
SmtCore::resetStats()
{
    simStats.reset();
    memHierarchy.resetStats();
}

void
SmtCore::processCompletions()
{
    exec.completionsAt(currentCycle, completionScratch);
    for (const auto &[tid, seq] : completionScratch) {
        DynInst *inst = rob.find(tid, seq);
        if (inst == nullptr || inst->stage != InstStage::Issued)
            continue; // squashed since issue
        inst->stage = InstStage::Done;
        if (inst->physDst != invalidReg)
            rename.markReady(inst->physDst, inst->dstIsFp);
        if (inst->resolvesAtExecute()) {
            ++simStats.mispredictsResolved;
            switch (inst->op) {
              case OpClass::CondBranch: ++simStats.mispredCond; break;
              case OpClass::Jump: ++simStats.mispredJump; break;
              case OpClass::CallDirect: ++simStats.mispredCall; break;
              case OpClass::Return: ++simStats.mispredReturn; break;
              case OpClass::JumpIndirect:
                ++simStats.mispredIndirect;
                break;
              default: break;
            }
            squashAfter(*inst);
        }
    }
}

void
SmtCore::commitStage()
{
    unsigned budget = coreParams.commitWidth;
    unsigned n = coreParams.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((commitRotate + i) % n);
        while (budget > 0 && !rob.empty(tid)) {
            DynInst &head = rob.head(tid);
            if (head.stage != InstStage::Done)
                break;
            commitInst(head);
            rob.popHead(tid);
            --budget;
        }
    }
    commitRotate = (commitRotate + 1) % n;
}

void
SmtCore::commitInst(DynInst &inst)
{
    if (inst.wrongPath)
        panic("wrong-path instruction reached commit (tid %d seq %llu)",
              inst.tid, (unsigned long long)inst.seq);

    if (inst.si != nullptr && inst.si->isControl()) {
        ++simStats.committedCtis;
        if (inst.si->isConditional())
            ++simStats.committedCond;
        if (inst.oracleTaken)
            ++simStats.committedTaken;
        fetchEngine->commitCti(inst.tid, *inst.si, inst.oracleTaken,
                               inst.oracleNext, inst.wasBlockEnd,
                               inst.mispredicted, inst.ckpt.ghist);
    }
    if (inst.isLoad())
        ++simStats.committedLoads;
    if (inst.isStore()) {
        ++simStats.committedStores;
        // Store data is written back at commit; the write never
        // blocks retirement (post-commit store buffer).
        memHierarchy.dcacheAccess(inst.tid, inst.memAddr, true,
                                  currentCycle);
    }

    rename.commit(inst);
    --robCount[inst.tid];
    ++simStats.instsCommitted;
    ++simStats.threadCommitted[inst.tid];

    if (commitHook)
        commitHook(inst);
}

void
SmtCore::issueStage()
{
    issueScratch.clear();
    iqs.pickReady(rename, coreParams.intFUs, coreParams.ldstFUs,
                  coreParams.fpFUs, issueScratch);

    // Long-latency loads found this cycle: (tid, seq, data-ready).
    std::array<std::tuple<ThreadID, InstSeqNum, Cycle>, 8> long_loads;
    unsigned num_long = 0;

    for (DynInst *inst : issueScratch) {
        if (inst->inIcount) {
            --icounts[inst->tid];
            inst->inIcount = false;
        }
        Cycle latency = exec.issue(*inst, currentCycle);
        ++simStats.issued;

        if (coreParams.longLoadPolicy != LongLoadPolicy::None &&
            inst->isLoad() && !inst->wrongPath &&
            latency > coreParams.longLoadThreshold &&
            num_long < long_loads.size()) {
            long_loads[num_long++] = {inst->tid, inst->seq,
                                      currentCycle + latency};
        }
    }

    // Apply the policy after the issue loop: a FLUSH squash deletes
    // younger instructions that may still sit in issueScratch.
    for (unsigned i = 0; i < num_long; ++i) {
        auto [tid, seq, ready_at] = long_loads[i];
        DynInst *load = rob.find(tid, seq);
        if (load == nullptr)
            continue; // flushed by an earlier long load
        ++simStats.longLoadEvents;
        if (coreParams.longLoadPolicy == LongLoadPolicy::Flush)
            squashAfter(*load);
        front->stallThread(tid, ready_at);
    }
}

void
SmtCore::dispatchStage()
{
    // Per-thread in-order dispatch sharing the stage width: a thread
    // whose head instruction hits a structural hazard stalls only
    // itself. The shared hazards (IQ, ROB, registers) are what let one
    // clogged thread strangle the machine, per Tullsen & Brown.
    unsigned budget = coreParams.decodeWidth;
    unsigned n = coreParams.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((frontRotate + i) % n);
        auto &q = renameQ[tid];
        while (budget > 0 && !q.empty()) {
            DynInst *inst = q.front();
            bool needs_reg =
                inst->si != nullptr && inst->si->dst != invalidReg;
            if (robCount[tid] >= coreParams.robEntries ||
                !iqs.hasSpace(iqClassFor(inst->op)) ||
                (needs_reg &&
                 !rename.canAllocate(usesFpRegs(inst->op)))) {
                break; // this thread stalls; others continue
            }
            rename.rename(*inst);
            inst->stage = InstStage::Dispatched;
            inst->dispatchStamp = ++stampCounter;
            iqs.insert(inst);
            ++robCount[tid];
            ++simStats.dispatched;
            q.pop_front();
            --budget;
        }
    }
}

void
SmtCore::renameStage()
{
    unsigned budget = coreParams.decodeWidth;
    unsigned n = coreParams.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((frontRotate + i) % n);
        auto &src = decodeQ[tid];
        auto &dst = renameQ[tid];
        while (budget > 0 && !src.empty() &&
               dst.size() < coreParams.decodeWidth) {
            DynInst *inst = src.front();
            src.pop_front();
            inst->stage = InstStage::Renamed;
            dst.push_back(inst);
            --budget;
        }
    }
}

void
SmtCore::decodeStage()
{
    unsigned budget = coreParams.decodeWidth;
    unsigned n = coreParams.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((frontRotate + i) % n);
        auto &dst = decodeQ[tid];
        while (budget > 0 && fetchBuffer.front(tid) != nullptr &&
               dst.size() < coreParams.decodeWidth) {
            DynInst *inst = fetchBuffer.front(tid);
            fetchBuffer.popFront(tid);
            inst->stage = InstStage::Decoded;
            dst.push_back(inst);
            --budget;
            if (inst->bogusBlockEnd && !inst->wrongPath) {
                // The predictor claimed this instruction ends a block
                // with a taken CTI, but decode sees a non-CTI: repair
                // here instead of waiting for execute.
                ++simStats.bogusRedirects;
                squashAfter(*inst);
                break; // this thread's younger insts just vanished
            }
        }
    }
    frontRotate = (frontRotate + 1) % n;
}

template <typename Container>
void
SmtCore::removeYounger(Container &c, ThreadID tid, InstSeqNum seq)
{
    auto drop = [tid, seq](DynInst *inst) {
        return inst->tid == tid && inst->seq > seq;
    };
    c.erase(std::remove_if(c.begin(), c.end(), drop), c.end());
}

void
SmtCore::squashAfter(DynInst &offender)
{
    ThreadID tid = offender.tid;
    InstSeqNum seq = offender.seq;

    fetchEngine->recover(tid, offender.ckpt, offender.si,
                         offender.oracleTaken,
                         offender.oracleTaken ? offender.oracleNext
                                              : invalidAddr);

    fetchBuffer.removeYounger(tid, seq);
    removeYounger(decodeQ[tid], tid, seq);
    removeYounger(renameQ[tid], tid, seq);
    iqs.squash(tid, seq);

    while (!rob.empty(tid) && rob.youngest(tid).seq > seq) {
        DynInst &young = rob.youngest(tid);
        if (young.inIcount)
            --icounts[tid];
        if (young.stage == InstStage::Dispatched ||
            young.stage == InstStage::Issued ||
            young.stage == InstStage::Done) {
            rename.rollback(young);
            --robCount[tid];
        }
        ++simStats.instsSquashed;
        rob.popYoungest(tid);
    }

    // Squashed correct-path instructions already consumed the trace;
    // rewind so fetch re-delivers from just after the offender. For
    // mispredict/bogus squashes everything younger was wrong path and
    // this is a no-op.
    front->rewindTrace(tid, offender.traceIndex + 1);
    front->redirect(tid, offender.oracleNext, currentCycle);
}

void
SmtCore::dumpPipeline(std::ostream &os) const
{
    Rob &mrob = const_cast<Rob &>(rob);
    RenameUnit &mren = const_cast<RenameUnit &>(rename);
    static const char *stage_names[] = {"Fetched", "Decoded",
                                        "Renamed", "Dispatched",
                                        "Issued", "Done"};
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        os << "thread " << t << " inflight=" << mrob.size(tid) << '\n';
        std::size_t limit = std::min<std::size_t>(mrob.size(tid), 40);
        for (std::size_t i = 0; i < limit; ++i) {
            DynInst *inst = &mrob.at(tid, i);
            bool fp = usesFpRegs(inst->op);
            os << "  seq=" << inst->seq << " pc=0x" << std::hex
               << inst->pc << std::dec << " op="
               << std::string(opName(inst->op))
               << " stage=" << stage_names[static_cast<int>(inst->stage)]
               << " wp=" << inst->wrongPath
               << " s1=" << inst->physSrc1 << "("
               << mren.isReady(inst->physSrc1, fp) << ")"
               << " s2=" << inst->physSrc2 << "("
               << mren.isReady(inst->physSrc2, fp) << ")"
               << " dst=" << inst->physDst
               << " mispred=" << inst->mispredicted << '\n';
        }
    }
}

void
SmtCore::checkIcountInvariant() const
{
    // Every in-flight instruction lives in the ROB deques, and the
    // inIcount flag marks membership in the ICOUNT front section, so
    // an ROB walk recomputes the counters exactly.
    Rob &mrob = const_cast<Rob &>(rob);
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        std::uint32_t n = 0;
        for (std::size_t i = 0; i < mrob.size(tid); ++i)
            if (mrob.at(tid, i).inIcount)
                ++n;
        if (n != icounts[t])
            panic("icount invariant broken: thread %u has %u counted "
                  "vs tracked %u",
                  t, n, icounts[t]);
    }
}

} // namespace smt
