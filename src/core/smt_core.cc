#include "core/smt_core.hh"

#include <algorithm>

#include "sim/checkpoint.hh"

#include "core/stages/commit_stage.hh"
#include "core/stages/decode_stage.hh"
#include "core/stages/dispatch_stage.hh"
#include "core/stages/execute_stage.hh"
#include "core/stages/fetch_stage.hh"
#include "core/stages/issue_stage.hh"
#include "core/stages/predict_stage.hh"
#include "core/stages/rename_stage.hh"
#include "core/stages/writeback_stage.hh"
#include "util/logging.hh"

namespace smt
{

SmtCore::SmtCore(const CoreParams &params)
    : coreParams(params), memHierarchy(params.memory),
      fetchEngine(makeEngine(params.engine, params.engineParams)),
      fetchPolicy(makePolicy(params.policy)),
      // A thread's in-flight instructions (fetched-but-undispatched
      // included) live in the fetch buffer, the decode and rename
      // latches, or count against robEntries — that sum bounds the
      // per-thread ring.
      rob(params.numThreads,
          params.robEntries + params.fetchBufferSize +
              2 * params.decodeWidth),
      rename(params.physIntRegs, params.physFpRegs, params.numThreads),
      iqs(params.intIqEntries, params.ldstIqEntries,
          params.fpIqEntries),
      exec(coreParams, memHierarchy),
      front(std::make_unique<FrontEnd>(coreParams, *fetchEngine,
                                       memHierarchy, *fetchPolicy, rob,
                                       simStats)),
      state(coreParams, memHierarchy, *fetchEngine, rob, rename, iqs,
            exec, *front, simStats)
{
    coreParams.validate();
    state.commitHook = &commitHook;
    buildStages();
    registerStats();
}

void
SmtCore::buildStages()
{
    // Back-of-pipe first: each stage consumes what its upstream
    // neighbour produced on an earlier cycle, so no latch
    // double-buffering is needed.
    graph.add(std::make_unique<ExecuteStage>(state));
    graph.add(std::make_unique<WritebackStage>(state));
    graph.add(std::make_unique<CommitStage>(state));
    graph.add(std::make_unique<IssueStage>(state));
    graph.add(std::make_unique<DispatchStage>(state));
    graph.add(std::make_unique<RenameStage>(state));
    graph.add(std::make_unique<DecodeStage>(state));
    graph.add(std::make_unique<FetchStage>(state));
    graph.add(std::make_unique<PredictStage>(state));
}

void
SmtCore::registerStats()
{
    statsRegistry.addCounter("sim.cycles", "simulated cycles",
                             &simStats.cycles);
    statsRegistry.addCounter("sim.instsSquashed",
                             "instructions squashed",
                             &simStats.instsSquashed);
    statsRegistry.addFormula("sim.ipc",
                             "commit throughput (insts per cycle)",
                             [this]() { return simStats.ipc(); });
    statsRegistry.addFormula(
        "sim.ipfc", "fetch throughput (insts per fetch cycle)",
        [this]() { return simStats.ipfc(); });
    statsRegistry.addFormula(
        "sim.branchMispredictRate",
        "mispredicts per committed CTI",
        [this]() { return simStats.branchMispredictRate(); });
    // Cycle-skip telemetry: simulation-speed counters, not
    // architecture. Tests comparing skip-on vs skip-off registry
    // dumps exclude exactly the sim.cycleSkip.* prefix.
    statsRegistry.addCounter("sim.cycleSkip.cyclesSkipped",
                             "cycles fast-forwarded instead of ticked",
                             &simStats.cyclesSkipped);
    statsRegistry.addCounter("sim.cycleSkip.sleepEvents",
                             "quiescent spans fast-forwarded",
                             &simStats.sleepEvents);
    statsRegistry.addCounter("sim.cycleSkip.maxSkipSpan",
                             "longest single fast-forward jump",
                             &simStats.maxSkipSpan);
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        statsRegistry.addFormula(
            csprintf("sim.thread%u.ipc", t),
            csprintf("thread %u commit throughput", t),
            [this, tid]() { return simStats.threadIpc(tid); });
    }

    graph.registerStats(statsRegistry);
    fetchEngine->registerStats(statsRegistry);
    memHierarchy.registerStats(statsRegistry, coreParams.numThreads);
}

void
SmtCore::setThread(ThreadID tid, TraceSource *trace,
                   const BenchmarkImage *image)
{
    if (static_cast<unsigned>(tid) >= coreParams.numThreads)
        fatal("thread id %d out of range", tid);
    front->setThread(tid, trace, image);
}

void
SmtCore::cycle()
{
    graph.tick();
    ++state.currentCycle;
    ++simStats.cycles;
}

bool
SmtCore::quiescentAt(Cycle now)
{
    const unsigned n = coreParams.numThreads;

    // Execute/writeback: a completion (stale squashed entries
    // included — writeback drains them) makes this cycle live.
    if (exec.pendingAt(now))
        return false;

    for (unsigned t = 0; t < n; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);

        // Commit: a Done ROB head retires this cycle.
        if (!rob.empty(tid) && rob.head(tid).stage == InstStage::Done)
            return false;

        // Decode: fetch buffer drains into a non-full decode latch.
        if (state.fetchBuffer.front(tid) != nullptr &&
            state.decodeQ[t].size() < coreParams.decodeWidth)
            return false;

        // Rename: decode latch drains into a non-full rename latch.
        if (!state.decodeQ[t].empty() &&
            state.renameQ[t].size() < coreParams.decodeWidth)
            return false;

        // Dispatch: the thread's head instruction moves unless it
        // hits a structural hazard (mirrors DispatchStage::tick).
        if (!state.renameQ[t].empty()) {
            DynInst *inst = state.renameQ[t].front();
            bool needs_reg =
                inst->si != nullptr && inst->si->dst != invalidReg;
            bool blocked =
                state.robCount[t] >= coreParams.robEntries ||
                !iqs.hasSpace(iqClassFor(inst->op)) ||
                (needs_reg && !rename.canAllocate(usesFpRegs(inst->op)));
            if (!blocked)
                return false;
        }
    }

    // Predict: some thread is eligible for a block prediction.
    if (!front->predictQuiescent(now))
        return false;

    // Fetch: with room for a fetch group, some thread would access
    // the I-cache. (Buffer-full cycles only bump a counter, which
    // skipTo folds across the span.)
    if (state.fetchBuffer.free() >= coreParams.fetchWidth &&
        !front->fetchQuiescent(now))
        return false;

    // Issue: a waiting instruction with ready sources would issue.
    // The scan is the most expensive check, so it runs last.
    return !iqs.hasReady(rename);
}

Cycle
SmtCore::nextWakeCycle(Cycle now, Cycle limit) const
{
    Cycle wake = limit;
    if (Cycle e = exec.nextEventCycle(now); e > now && e < wake)
        wake = e;
    if (Cycle d = front->nextDeadlineAfter(now); d > now && d < wake)
        wake = d;
    return wake;
}

void
SmtCore::skipTo(Cycle target)
{
    const Cycle span = target - state.currentCycle;
    const unsigned n = coreParams.numThreads;

    state.currentCycle = target;
    simStats.cycles += span;

    // Fold the per-tick side effects of the otherwise-dead stages:
    // the commit/front rotation counters advance unconditionally,
    // and a full fetch buffer charges fetchBufferFullCycles.
    state.commitRotate =
        static_cast<unsigned>((state.commitRotate + span) % n);
    state.frontRotate =
        static_cast<unsigned>((state.frontRotate + span) % n);
    if (state.fetchBuffer.free() < coreParams.fetchWidth)
        simStats.fetchBufferFullCycles += span;

    simStats.cyclesSkipped += span;
    ++simStats.sleepEvents;
    if (span > simStats.maxSkipSpan)
        simStats.maxSkipSpan = span;
}

void
SmtCore::run(Cycle cycles)
{
    if (!coreParams.cycleSkip) {
        for (Cycle i = 0; i < cycles; ++i)
            cycle();
        return;
    }
    const Cycle end = state.currentCycle + cycles;
    while (state.currentCycle < end) {
        if (quiescentAt(state.currentCycle)) {
            // Nothing can happen until the next event; jump there
            // (clamped to the window so a run() boundary — e.g. the
            // warmup/measure split — lands on the same cycle as the
            // ticked loop would).
            skipTo(nextWakeCycle(state.currentCycle, end));
            continue;
        }
        cycle();
    }
}

void
SmtCore::resetStats()
{
    simStats.reset();
    memHierarchy.resetStats();
    fetchEngine->resetStats();
    statsRegistry.resetOwned();
}

void
SmtCore::dumpPipeline(std::ostream &os) const
{
    Rob &mrob = const_cast<Rob &>(rob);
    RenameUnit &mren = const_cast<RenameUnit &>(rename);
    static const char *stage_names[] = {"Fetched", "Decoded",
                                        "Renamed", "Dispatched",
                                        "Issued", "Done"};
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        os << "thread " << t << " inflight=" << mrob.size(tid) << '\n';
        std::size_t limit = std::min<std::size_t>(mrob.size(tid), 40);
        for (std::size_t i = 0; i < limit; ++i) {
            DynInst *inst = &mrob.at(tid, i);
            bool fp = usesFpRegs(inst->op);
            os << "  seq=" << inst->seq << " pc=0x" << std::hex
               << inst->pc << std::dec << " op="
               << std::string(opName(inst->op))
               << " stage=" << stage_names[static_cast<int>(inst->stage)]
               << " wp=" << inst->wrongPath
               << " s1=" << inst->physSrc1 << "("
               << mren.isReady(inst->physSrc1, fp) << ")"
               << " s2=" << inst->physSrc2 << "("
               << mren.isReady(inst->physSrc2, fp) << ")"
               << " dst=" << inst->physDst
               << " mispred=" << inst->mispredicted << '\n';
        }
    }
}

namespace
{

/**
 * DynInst codec. The thread id is implied by the per-thread ROB list
 * being (de)serialized; the StaticInst pointer round-trips as the PC,
 * re-resolved against the thread's program on restore.
 */
void
saveInst(CheckpointWriter &w, const DynInst &inst)
{
    w.u64(inst.seq);
    w.u64(inst.pc);
    w.b(inst.si != nullptr);
    w.u8(static_cast<std::uint8_t>(inst.op));
    w.b(inst.wrongPath);
    w.b(inst.oracleTaken);
    w.u64(inst.oracleNext);
    w.u64(inst.memAddr);
    w.b(inst.predTaken);
    w.u64(inst.predNext);
    w.b(inst.wasBlockEnd);
    w.b(inst.bogusBlockEnd);
    w.b(inst.mispredicted);
    inst.ckpt.save(w);
    w.i16(inst.physSrc1);
    w.i16(inst.physSrc2);
    w.i16(inst.physDst);
    w.i16(inst.prevPhysDst);
    w.i16(inst.archDst);
    w.b(inst.dstIsFp);
    w.u8(static_cast<std::uint8_t>(inst.stage));
    w.b(inst.inIcount);
    w.u64(inst.dispatchStamp);
    w.u64(inst.fetchCycle);
    w.u64(inst.traceIndex);
}

/** invalidReg or [0, bound): anything else would index the rename
 *  scoreboards out of bounds once the instruction executes. */
void
checkRegIndex(CheckpointReader &r, RegIndex reg, unsigned bound,
              const char *what)
{
    if (reg != invalidReg &&
        (reg < 0 || static_cast<unsigned>(reg) >= bound))
        r.fail(csprintf("instruction %s register %d out of range "
                        "[0, %u) (corrupt payload)",
                        what, (int)reg, bound));
}

void
restoreInst(CheckpointReader &r, DynInst &inst,
            const StaticProgram &program, const CoreParams &params)
{
    inst.seq = r.u64();
    inst.pc = r.u64();
    bool has_si = r.b();
    inst.si = program.lookup(inst.pc);
    if (has_si != (inst.si != nullptr))
        r.fail(csprintf("instruction at pc 0x%llx is%s mapped in the "
                        "rebuilt program but was%s at save time — "
                        "the checkpoint does not match this workload "
                        "image",
                        (unsigned long long)inst.pc,
                        inst.si != nullptr ? "" : " not",
                        has_si ? "" : " not"));
    inst.op = checkpointReadOpClass(r);
    inst.wrongPath = r.b();
    inst.oracleTaken = r.b();
    inst.oracleNext = r.u64();
    inst.memAddr = r.u64();
    inst.predTaken = r.b();
    inst.predNext = r.u64();
    inst.wasBlockEnd = r.b();
    inst.bogusBlockEnd = r.b();
    inst.mispredicted = r.b();
    inst.ckpt.restore(r, params.engineParams.rasEntries);
    inst.physSrc1 = r.i16();
    inst.physSrc2 = r.i16();
    inst.physDst = r.i16();
    inst.prevPhysDst = r.i16();
    inst.archDst = r.i16();
    inst.dstIsFp = r.b();
    unsigned src_bound = usesFpRegs(inst.op) ? params.physFpRegs
                                             : params.physIntRegs;
    unsigned dst_bound =
        inst.dstIsFp ? params.physFpRegs : params.physIntRegs;
    unsigned arch_bound =
        inst.dstIsFp ? numArchFpRegs : numArchIntRegs;
    checkRegIndex(r, inst.physSrc1, src_bound, "source 1");
    checkRegIndex(r, inst.physSrc2, src_bound, "source 2");
    checkRegIndex(r, inst.physDst, dst_bound, "destination");
    checkRegIndex(r, inst.prevPhysDst, dst_bound,
                  "previous destination");
    checkRegIndex(r, inst.archDst, arch_bound,
                  "architectural destination");
    std::uint8_t stage = r.u8();
    if (stage > static_cast<std::uint8_t>(InstStage::Done))
        r.fail(csprintf("instruction stage byte holds %u (corrupt "
                        "payload)",
                        stage));
    inst.stage = static_cast<InstStage>(stage);
    inst.inIcount = r.b();
    inst.dispatchStamp = r.u64();
    inst.fetchCycle = r.u64();
    inst.traceIndex = r.u64();
}

/** Serialize one per-thread latch queue as sequence numbers. */
void
saveLatchQueue(CheckpointWriter &w, const RingBuffer<DynInst *> &q)
{
    w.u32(static_cast<std::uint32_t>(q.size()));
    for (std::size_t i = 0; i < q.size(); ++i)
        w.u64(q[i]->seq);
}

void
restoreLatchQueue(CheckpointReader &r, RingBuffer<DynInst *> &q,
                  Rob &rob, ThreadID tid, const char *what)
{
    std::uint32_t n =
        static_cast<std::uint32_t>(r.checkCount(r.u32(), 8, what));
    if (n > q.capacity())
        r.fail(csprintf("%s latch holds %u entries but this "
                        "configuration caps it at %u",
                        what, n, q.capacity()));
    q.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        InstSeqNum seq = r.u64();
        DynInst *inst = rob.find(tid, seq);
        if (inst == nullptr)
            r.fail(csprintf("%s latch references instruction "
                            "(thread %d, seq %llu) that is not in "
                            "the restored ROB (corrupt reference)",
                            what, (int)tid,
                            (unsigned long long)seq));
        q.push_back(inst);
    }
}

} // namespace

void
SmtCore::saveState(CheckpointWriter &w) const
{
    const unsigned threads = coreParams.numThreads;
    const std::uint32_t sections_before = w.componentsWritten();

    w.begin("core.rob");
    w.u32(threads);
    for (unsigned t = 0; t < threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        w.u64(rob.nextSeqOf(tid));
        w.u32(static_cast<std::uint32_t>(rob.size(tid)));
        for (std::size_t i = 0; i < rob.size(tid); ++i)
            saveInst(w, rob.at(tid, i));
    }
    w.end();

    w.begin("core.state");
    w.u64(state.currentCycle);
    w.u64(state.stampCounter);
    w.u32(state.commitRotate);
    w.u32(state.frontRotate);
    for (unsigned t = 0; t < maxThreads; ++t)
        w.u32(state.icounts[t]);
    for (unsigned t = 0; t < maxThreads; ++t)
        w.u32(state.robCount[t]);
    w.u32(state.fetchBuffer.capacity);
    for (unsigned t = 0; t < threads; ++t) {
        saveLatchQueue(w, state.fetchBuffer.q[t]);
        saveLatchQueue(w, state.decodeQ[t]);
        saveLatchQueue(w, state.renameQ[t]);
    }
    w.end();

    w.begin("core.rename");
    rename.save(w);
    w.end();

    w.begin("core.iq");
    iqs.save(w);
    w.end();

    w.begin("core.exec");
    exec.save(w);
    w.end();

    w.begin("core.front");
    front->save(w);
    w.end();

    w.begin("core.stats");
    simStats.save(w);
    w.end();

    w.begin(fetchEngine->checkpointTag());
    fetchEngine->save(w);
    w.end();

    w.begin("mem");
    memHierarchy.save(w);
    w.end();

    if (w.componentsWritten() - sections_before != checkpointSections)
        panic("SmtCore::saveState wrote %u sections, expected %u "
              "(update SmtCore::checkpointSections)",
              w.componentsWritten() - sections_before,
              checkpointSections);
}

void
SmtCore::restoreState(CheckpointReader &r)
{
    const unsigned threads = coreParams.numThreads;

    r.begin("core.rob");
    std::uint32_t saved_threads = r.u32();
    if (saved_threads != threads)
        r.fail(csprintf("checkpoint covers %u threads but this "
                        "configuration uses %u (configuration "
                        "mismatch)",
                        saved_threads, threads));
    rob.reset();
    for (unsigned t = 0; t < threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        const BenchmarkImage *image = front->threadImage(tid);
        if (image == nullptr)
            r.fail(csprintf("thread %u has no bound image — restore "
                            "requires setThread first",
                            t));
        InstSeqNum next_seq = r.u64();
        // The per-thread list holds every in-flight instruction,
        // fetched-but-undispatched ones included, so it can exceed
        // robEntries — but never the ring capacity the same
        // configuration computes.
        std::uint32_t n = static_cast<std::uint32_t>(
            r.checkCount(r.u32(), 64, "ROB instruction"));
        if (n > rob.capacity())
            r.fail(csprintf("thread %u ROB holds %u instructions but "
                            "this configuration caps it at %u",
                            t, n, rob.capacity()));
        InstSeqNum prev_seq = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            DynInst &inst = rob.create(tid);
            restoreInst(r, inst, image->program, coreParams);
            inst.tid = tid;
            if (inst.seq <= prev_seq)
                r.fail(csprintf("thread %u ROB sequence numbers not "
                                "strictly increasing (corrupt "
                                "payload)",
                                t));
            prev_seq = inst.seq;
        }
        if (next_seq <= prev_seq)
            r.fail(csprintf("thread %u next sequence %llu not past "
                            "the youngest in-flight instruction",
                            t, (unsigned long long)next_seq));
        rob.setNextSeq(tid, next_seq);
    }
    r.end();

    r.begin("core.state");
    state.currentCycle = r.u64();
    state.stampCounter = r.u64();
    state.commitRotate = r.u32();
    state.frontRotate = r.u32();
    for (unsigned t = 0; t < maxThreads; ++t)
        state.icounts[t] = r.u32();
    for (unsigned t = 0; t < maxThreads; ++t)
        state.robCount[t] = r.u32();
    std::uint32_t buffer_cap = r.u32();
    if (buffer_cap != state.fetchBuffer.capacity)
        r.fail(csprintf("fetch buffer capacity %u does not match "
                        "this configuration's %u",
                        buffer_cap, state.fetchBuffer.capacity));
    state.fetchBuffer.clear();
    for (unsigned t = 0; t < threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        restoreLatchQueue(r, state.fetchBuffer.q[t], rob, tid,
                          "fetch buffer");
        state.fetchBuffer.total += static_cast<unsigned>(
            state.fetchBuffer.q[t].size());
        restoreLatchQueue(r, state.decodeQ[t], rob, tid, "decode");
        restoreLatchQueue(r, state.renameQ[t], rob, tid, "rename");
    }
    if (state.fetchBuffer.total > state.fetchBuffer.capacity)
        r.fail(csprintf("fetch buffer holds %u instructions but is "
                        "capped at %u",
                        state.fetchBuffer.total,
                        state.fetchBuffer.capacity));
    // Per-cycle scratch is produced and consumed within one tick;
    // a checkpoint sits on a cycle boundary, so it starts empty.
    state.completionScratch.clear();
    state.issueScratch.clear();
    r.end();

    r.begin("core.rename");
    rename.restore(r);
    r.end();

    r.begin("core.iq");
    iqs.restore(r, rob);
    r.end();

    r.begin("core.exec");
    exec.restore(r);
    r.end();

    r.begin("core.front");
    front->restore(r);
    r.end();

    r.begin("core.stats");
    simStats.restore(r);
    r.end();

    r.begin(fetchEngine->checkpointTag());
    fetchEngine->restore(r);
    r.end();

    r.begin("mem");
    memHierarchy.restore(r);
    r.end();

    checkIcountInvariant();
}

void
SmtCore::checkIcountInvariant() const
{
    // Every in-flight instruction lives in the ROB rings, and the
    // inIcount flag marks membership in the ICOUNT front section, so
    // an ROB walk recomputes the counters exactly.
    Rob &mrob = const_cast<Rob &>(rob);
    for (unsigned t = 0; t < coreParams.numThreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        std::uint32_t n = 0;
        for (std::size_t i = 0; i < mrob.size(tid); ++i)
            if (mrob.at(tid, i).inIcount)
                ++n;
        if (n != state.icounts[t])
            panic("icount invariant broken: thread %u has %u counted "
                  "vs tracked %u",
                  t, n, state.icounts[t]);
    }
}

} // namespace smt
