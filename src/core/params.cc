#include "core/params.hh"

#include "util/logging.hh"

namespace smt
{

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::ICount: return "ICOUNT";
      case PolicyKind::RoundRobin: return "RR";
    }
    return "?";
}

const char *
longLoadPolicyName(LongLoadPolicy kind)
{
    switch (kind) {
      case LongLoadPolicy::None: return "none";
      case LongLoadPolicy::Stall: return "stall";
      case LongLoadPolicy::Flush: return "flush";
    }
    return "?";
}

std::string
CoreParams::policyString() const
{
    return csprintf("%s.%u.%u", policyName(policy), fetchThreads,
                    fetchWidth);
}

void
CoreParams::validate() const
{
    if (numThreads == 0 || numThreads > maxThreads)
        fatal("numThreads %u out of range [1, %u]", numThreads,
              maxThreads);
    if (fetchThreads == 0 || fetchThreads > numThreads)
        fatal("fetchThreads %u out of range [1, numThreads]",
              fetchThreads);
    if (fetchWidth == 0 || fetchWidth > 16)
        fatal("fetchWidth %u out of range [1, 16]", fetchWidth);
    if (decodeWidth == 0 || commitWidth == 0)
        fatal("decode/commit width must be positive");
    if (fetchBufferSize < fetchWidth)
        fatal("fetch buffer (%u) smaller than fetch width (%u)",
              fetchBufferSize, fetchWidth);
    if (physIntRegs < numArchIntRegs * numThreads + 8)
        fatal("too few int physical registers (%u) for %u threads",
              physIntRegs, numThreads);
    if (physFpRegs < numArchFpRegs * numThreads + 8)
        fatal("too few fp physical registers (%u) for %u threads",
              physFpRegs, numThreads);
    if (robEntries < 8)
        fatal("ROB too small");
    if (ftqEntries == 0)
        fatal("FTQ must have at least one entry");
}

} // namespace smt
