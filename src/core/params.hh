/**
 * @file
 * SMT core configuration, mirroring the paper's Table 3. The fetch
 * policy is expressed as (policy, fetchThreads, fetchWidth): e.g.
 * ICOUNT.2.8 = (ICount, 2, 8).
 */

#ifndef SMTFETCH_CORE_PARAMS_HH
#define SMTFETCH_CORE_PARAMS_HH

#include <string>

#include "bpred/fetch_engine.hh"
#include "mem/hierarchy.hh"
#include "util/types.hh"

namespace smt
{

/** Thread-priority policy for the fetch and prediction stages. */
enum class PolicyKind : unsigned char
{
    ICount,     //!< fewest in-flight front-section instructions first
    RoundRobin, //!< rotating priority
};

const char *policyName(PolicyKind kind);

/**
 * Long-latency-load handling (Tullsen & Brown, MICRO'01), the
 * alternative clog fix the paper discusses in related work.
 */
enum class LongLoadPolicy : unsigned char
{
    None,  //!< baseline: stalled threads keep their resources
    Stall, //!< stop fetching for a thread with a memory-bound load
    Flush, //!< additionally squash its not-yet-executed younger insts
};

const char *longLoadPolicyName(LongLoadPolicy kind);

/** Full core configuration (Table 3 defaults). */
struct CoreParams
{
    unsigned numThreads = 2;

    /** @name Fetch policy N.X: up to X insts total from N threads. */
    /// @{
    PolicyKind policy = PolicyKind::ICount;
    unsigned fetchThreads = 1; //!< N
    unsigned fetchWidth = 8;   //!< X
    /// @}

    EngineKind engine = EngineKind::GshareBtb;
    EngineParams engineParams{};

    unsigned ftqEntries = 4;        //!< per thread
    unsigned fetchBufferSize = 32;  //!< shared
    unsigned decodeWidth = 8;
    unsigned commitWidth = 8;

    unsigned intIqEntries = 32;
    unsigned ldstIqEntries = 32;
    unsigned fpIqEntries = 32;

    unsigned robEntries = 256;      //!< shared capacity

    unsigned physIntRegs = 384;
    unsigned physFpRegs = 384;

    unsigned intFUs = 6;
    unsigned ldstFUs = 4;
    unsigned fpFUs = 3;

    Cycle intAluLatency = 1;
    Cycle intMultLatency = 6;
    Cycle fpLatency = 4;
    Cycle agenLatency = 1; //!< address generation before D-cache

    /** @name Long-latency-load policy (extension, default off). */
    /// @{
    LongLoadPolicy longLoadPolicy = LongLoadPolicy::None;

    /** A load slower than this is "long" (beyond an L2 hit). */
    Cycle longLoadThreshold = 30;
    /// @}

    /**
     * Event-driven fast-forward over globally quiescent cycles
     * (simulation speed only — results are bit-identical either way;
     * excluded from warmupConfigKey for that reason). Off = tick
     * every cycle (smtsim --no-cycle-skip).
     */
    bool cycleSkip = true;

    MemoryParams memory{};

    /** Policy-string rendering, e.g. "ICOUNT.2.8". */
    std::string policyString() const;

    /** Validate invariants; fatal() on user error. */
    void validate() const;
};

} // namespace smt

#endif // SMTFETCH_CORE_PARAMS_HH
