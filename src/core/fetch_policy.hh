/**
 * @file
 * Thread-priority policies for the decoupled front-end. The policy
 * ranks all threads each cycle; both the prediction stage and the
 * fetch stage then take the first N eligible threads in rank order.
 */

#ifndef SMTFETCH_CORE_FETCH_POLICY_HH
#define SMTFETCH_CORE_FETCH_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.hh"
#include "util/types.hh"

namespace smt
{

/** Strategy interface: produce a priority-ordered thread list. */
class FetchPolicy
{
  public:
    virtual ~FetchPolicy() = default;

    /**
     * Rank threads for this cycle.
     *
     * @param now Current cycle (used for rotation).
     * @param icounts Per-thread front-section instruction counts.
     * @param num_threads Number of hardware threads.
     * @param out Receives thread ids, highest priority first.
     */
    virtual void order(Cycle now, const std::uint32_t *icounts,
                       unsigned num_threads,
                       std::vector<ThreadID> &out) = 0;

    virtual PolicyKind kind() const = 0;
};

/**
 * ICOUNT (Tullsen et al.): prioritize threads with the fewest
 * instructions in the decode/rename/queue front section. Ties break by
 * a rotating round-robin pointer so equally-empty threads share the
 * fetch unit fairly.
 */
class IcountPolicy : public FetchPolicy
{
  public:
    void order(Cycle now, const std::uint32_t *icounts,
               unsigned num_threads,
               std::vector<ThreadID> &out) override;
    PolicyKind kind() const override { return PolicyKind::ICount; }
};

/** Round-robin: pure rotating priority, ignores occupancy. */
class RoundRobinPolicy : public FetchPolicy
{
  public:
    void order(Cycle now, const std::uint32_t *icounts,
               unsigned num_threads,
               std::vector<ThreadID> &out) override;
    PolicyKind kind() const override { return PolicyKind::RoundRobin; }
};

/** Factory. */
std::unique_ptr<FetchPolicy> makePolicy(PolicyKind kind);

} // namespace smt

#endif // SMTFETCH_CORE_FETCH_POLICY_HH
