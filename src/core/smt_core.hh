/**
 * @file
 * SmtCore: the full 9-stage SMT pipeline (predict, fetch, decode,
 * rename, dispatch, issue, regread/execute, writeback, commit) over
 * shared back-end resources, per Table 3 of the paper.
 */

#ifndef SMTFETCH_CORE_SMT_CORE_HH
#define SMTFETCH_CORE_SMT_CORE_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "bpred/fetch_engine.hh"
#include "core/exec.hh"
#include "core/fetch_policy.hh"
#include "core/front_end.hh"
#include "core/iq.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/sim_stats.hh"
#include "mem/hierarchy.hh"
#include "workload/trace.hh"

namespace smt
{

/** Cycle-level SMT processor model. */
class SmtCore
{
  public:
    explicit SmtCore(const CoreParams &params);

    /** Bind a hardware thread to a trace and its benchmark image. */
    void setThread(ThreadID tid, TraceStream *trace,
                   const BenchmarkImage *image);

    /** Advance the pipeline one clock. */
    void cycle();

    /** Run for the given number of cycles. */
    void run(Cycle cycles);

    /** Measurement counters (clearable mid-run for warmup). */
    SimStats &stats() { return simStats; }
    const SimStats &stats() const { return simStats; }
    void resetStats();

    /** Total dispatched-not-committed instructions (all threads). */
    unsigned
    robOccupancy() const
    {
        unsigned total = 0;
        for (unsigned t = 0; t < coreParams.numThreads; ++t)
            total += robCount[t];
        return total;
    }

    const CoreParams &params() const { return coreParams; }
    FetchEngine &engine() { return *fetchEngine; }
    MemoryHierarchy &memory() { return memHierarchy; }
    FrontEnd &frontEnd() { return *front; }

    Cycle now() const { return currentCycle; }

    /** @name Introspection for tests. */
    /// @{
    std::uint32_t icount(ThreadID tid) const { return icounts[tid]; }
    unsigned freeIntRegs() const { return rename.freeIntRegs(); }
    unsigned freeFpRegs() const { return rename.freeFpRegs(); }
    unsigned iqOccupancy() const { return iqs.totalOccupancy(); }
    std::size_t fetchBufferSize() const { return fetchBuffer.total; }
    std::size_t inFlight(ThreadID tid) const { return rob.size(tid); }
    unsigned robOccupancyOf(ThreadID tid) const
    {
        return robCount[tid];
    }

    /** Recompute icounts from structures; panic on mismatch. */
    void checkIcountInvariant() const;

    /**
     * Observer invoked for every committed instruction (testing /
     * tracing). Called after statistics are updated.
     */
    std::function<void(const DynInst &)> commitHook;

    /** Dump every in-flight instruction (deadlock diagnostics). */
    void dumpPipeline(std::ostream &os) const;
    /// @}

  private:
    void processCompletions();
    void commitStage();
    void issueStage();
    void dispatchStage();
    void renameStage();
    void decodeStage();

    void commitInst(DynInst &inst);

    /**
     * Squash all instructions of offender's thread younger than the
     * offender, repair engine state, and redirect fetch.
     */
    void squashAfter(DynInst &offender);

    template <typename Container>
    void removeYounger(Container &c, ThreadID tid, InstSeqNum seq);

    CoreParams coreParams;
    MemoryHierarchy memHierarchy;
    std::unique_ptr<FetchEngine> fetchEngine;
    std::unique_ptr<FetchPolicy> fetchPolicy;

    Rob rob;
    RenameUnit rename;
    IssueQueues iqs;
    ExecUnit exec;
    std::unique_ptr<FrontEnd> front;

    FetchBuffer fetchBuffer;
    std::array<std::deque<DynInst *>, maxThreads> decodeQ;
    std::array<std::deque<DynInst *>, maxThreads> renameQ;

    std::array<std::uint32_t, maxThreads> icounts{};

    /** Dispatched-not-committed instructions per thread (ROB use). */
    std::array<unsigned, maxThreads> robCount{};
    std::uint64_t stampCounter = 0;
    unsigned commitRotate = 0;
    unsigned frontRotate = 0;
    Cycle currentCycle = 0;

    SimStats simStats;

    std::vector<std::pair<ThreadID, InstSeqNum>> completionScratch;
    std::vector<DynInst *> issueScratch;
};

} // namespace smt

#endif // SMTFETCH_CORE_SMT_CORE_HH
