/**
 * @file
 * SmtCore: the full 9-stage SMT pipeline (predict, fetch, decode,
 * rename, dispatch, issue, execute, writeback, commit) over shared
 * back-end resources, per Table 3 of the paper.
 *
 * The pipeline is a graph of Stage objects sharing an explicit
 * PipelineState, ticked back-of-pipe first by a StageGraph driver;
 * SmtCore wires the stages up, owns the resources, and exposes the
 * unified StatsRegistry every stage and component registers into.
 */

#ifndef SMTFETCH_CORE_SMT_CORE_HH
#define SMTFETCH_CORE_SMT_CORE_HH

#include <array>
#include <functional>
#include <memory>

#include "bpred/fetch_engine.hh"
#include "core/exec.hh"
#include "core/fetch_policy.hh"
#include "core/front_end.hh"
#include "core/iq.hh"
#include "core/params.hh"
#include "core/pipeline_state.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/sim_stats.hh"
#include "core/stage_graph.hh"
#include "mem/hierarchy.hh"
#include "util/stats_registry.hh"
#include "workload/trace.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Cycle-level SMT processor model. */
class SmtCore
{
  public:
    explicit SmtCore(const CoreParams &params);

    /** Bind a hardware thread to a trace and its benchmark image. */
    void setThread(ThreadID tid, TraceSource *trace,
                   const BenchmarkImage *image);

    /** Advance the pipeline one clock. */
    void cycle();

    /**
     * Run for the given number of cycles. With params().cycleSkip
     * set (the default) the loop fast-forwards over globally
     * quiescent spans: whenever the next tick would be a pure no-op
     * for every stage, it jumps straight to the earliest wake-up
     * event (completion-wheel entry or front-end stall deadline),
     * folding the skipped cycles into the stats exactly as if they
     * had been ticked. Results are bit-identical either way.
     */
    void run(Cycle cycles);

    /**
     * Would ticking the pipeline right now change any architectural
     * or statistical state? (Cycle-skip predicate; public for tests
     * and microbenchmarks.)
     */
    bool quiescent() { return quiescentAt(state.currentCycle); }

    /** Measurement counters (clearable mid-run for warmup). */
    SimStats &stats() { return simStats; }
    const SimStats &stats() const { return simStats; }
    void resetStats();

    /** Unified named-statistics registry (stages + components). */
    StatsRegistry &registry() { return statsRegistry; }
    const StatsRegistry &registry() const { return statsRegistry; }

    /** Total dispatched-not-committed instructions (all threads). */
    unsigned
    robOccupancy() const
    {
        unsigned total = 0;
        for (unsigned t = 0; t < coreParams.numThreads; ++t)
            total += state.robCount[t];
        return total;
    }

    const CoreParams &params() const { return coreParams; }
    FetchEngine &engine() { return *fetchEngine; }
    MemoryHierarchy &memory() { return memHierarchy; }
    FrontEnd &frontEnd() { return *front; }

    /** The stage driver (tests, stage-variant introspection). */
    const StageGraph &stages() const { return graph; }

    Cycle now() const { return state.currentCycle; }

    /** @name Introspection for tests. */
    /// @{
    std::uint32_t icount(ThreadID tid) const
    {
        return state.icounts[tid];
    }
    unsigned freeIntRegs() const { return rename.freeIntRegs(); }
    unsigned freeFpRegs() const { return rename.freeFpRegs(); }
    unsigned iqOccupancy() const { return iqs.totalOccupancy(); }
    std::size_t fetchBufferSize() const
    {
        return state.fetchBuffer.total;
    }
    std::size_t inFlight(ThreadID tid) const { return rob.size(tid); }
    unsigned robOccupancyOf(ThreadID tid) const
    {
        return state.robCount[tid];
    }

    /** Recompute icounts from structures; panic on mismatch. */
    void checkIcountInvariant() const;

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh). Writes the
     * full mid-flight core state — ROB contents, inter-stage latches,
     * rename maps, issue queues, the completion wheel, front-end fetch
     * state, measurement counters, predictor tables and the memory
     * hierarchy — as a fixed sequence of named component sections.
     * restoreState requires a freshly-constructed core with the same
     * configuration and threads already bound via setThread.
     */
    /// @{
    void saveState(CheckpointWriter &w) const;
    void restoreState(CheckpointReader &r);

    /** Number of component sections saveState writes. */
    static constexpr std::uint32_t checkpointSections = 9;
    /// @}

    /**
     * Observer invoked for every committed instruction (testing /
     * tracing). Called after statistics are updated.
     */
    std::function<void(const DynInst &)> commitHook;

    /** Dump every in-flight instruction (deadlock diagnostics). */
    void dumpPipeline(std::ostream &os) const;
    /// @}

  private:
    /** Instantiate the nine stages in tick (reverse-pipeline) order. */
    void buildStages();

    /** @name Event-driven cycle skipping (see run()). */
    /// @{
    /** Per-stage no-op check for a hypothetical tick at `now`. */
    bool quiescentAt(Cycle now);

    /** Earliest event cycle in (now, limit]; `limit` when none. */
    Cycle nextWakeCycle(Cycle now, Cycle limit) const;

    /** Jump from now() to `target`, folding the span into stats. */
    void skipTo(Cycle target);
    /// @}

    /** Register core-level stats and formulas (IPC, IPFC). */
    void registerStats();

    CoreParams coreParams;
    MemoryHierarchy memHierarchy;
    std::unique_ptr<FetchEngine> fetchEngine;
    std::unique_ptr<FetchPolicy> fetchPolicy;

    Rob rob;
    RenameUnit rename;
    IssueQueues iqs;
    ExecUnit exec;
    std::unique_ptr<FrontEnd> front;

    SimStats simStats;

    PipelineState state;
    StageGraph graph;
    StatsRegistry statsRegistry;
};

} // namespace smt

#endif // SMTFETCH_CORE_SMT_CORE_HH
