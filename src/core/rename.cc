#include "core/rename.hh"

#include "util/logging.hh"

namespace smt
{

RenameUnit::RenameUnit(unsigned phys_int, unsigned phys_fp,
                       unsigned num_threads)
    : physIntCount(phys_int), physFpCount(phys_fp)
{
    reset(num_threads);
}

void
RenameUnit::reset(unsigned num_threads)
{
    intMap.assign(num_threads,
                  std::vector<RegIndex>(numArchIntRegs, invalidReg));
    fpMap.assign(num_threads,
                 std::vector<RegIndex>(numArchFpRegs, invalidReg));
    freeInt.clear();
    freeFp.clear();
    readyInt.assign(physIntCount, false);
    readyFp.assign(physFpCount, false);

    // Architectural state owns the first num_threads * 32 registers of
    // each class; those values exist and are ready.
    unsigned next_int = 0;
    unsigned next_fp = 0;
    for (unsigned t = 0; t < num_threads; ++t) {
        for (unsigned a = 0; a < numArchIntRegs; ++a) {
            intMap[t][a] = static_cast<RegIndex>(next_int);
            readyInt[next_int] = true;
            ++next_int;
        }
        for (unsigned a = 0; a < numArchFpRegs; ++a) {
            fpMap[t][a] = static_cast<RegIndex>(next_fp);
            readyFp[next_fp] = true;
            ++next_fp;
        }
    }
    for (unsigned p = next_int; p < physIntCount; ++p)
        freeInt.push_back(static_cast<RegIndex>(p));
    for (unsigned p = next_fp; p < physFpCount; ++p)
        freeFp.push_back(static_cast<RegIndex>(p));
}

bool
RenameUnit::canAllocate(bool fp) const
{
    return fp ? !freeFp.empty() : !freeInt.empty();
}

void
RenameUnit::rename(DynInst &inst)
{
    if (inst.si == nullptr)
        return; // wrong-path filler has no operands

    bool fp = usesFpRegs(inst.op);
    auto &map = fp ? fpMap[inst.tid] : intMap[inst.tid];

    if (inst.si->src1 != invalidReg)
        inst.physSrc1 = map[inst.si->src1];
    if (inst.si->src2 != invalidReg)
        inst.physSrc2 = map[inst.si->src2];

    if (inst.si->dst != invalidReg) {
        auto &free = fp ? freeFp : freeInt;
        if (free.empty())
            panic("rename without a free register");
        RegIndex phys = free.back();
        free.pop_back();
        inst.archDst = inst.si->dst;
        inst.dstIsFp = fp;
        inst.prevPhysDst = map[inst.archDst];
        inst.physDst = phys;
        map[inst.archDst] = phys;
        if (fp)
            readyFp[phys] = false;
        else
            readyInt[phys] = false;
    }
}

void
RenameUnit::commit(DynInst &inst)
{
    if (inst.physDst == invalidReg || inst.prevPhysDst == invalidReg)
        return;
    if (inst.dstIsFp)
        freeFp.push_back(inst.prevPhysDst);
    else
        freeInt.push_back(inst.prevPhysDst);
}

void
RenameUnit::rollback(DynInst &inst)
{
    if (inst.physDst == invalidReg)
        return;
    auto &map = inst.dstIsFp ? fpMap[inst.tid] : intMap[inst.tid];
    map[inst.archDst] = inst.prevPhysDst;
    if (inst.dstIsFp)
        freeFp.push_back(inst.physDst);
    else
        freeInt.push_back(inst.physDst);
    inst.physDst = invalidReg;
}

void
RenameUnit::markReady(RegIndex phys, bool fp)
{
    if (phys == invalidReg)
        return;
    if (fp)
        readyFp[phys] = true;
    else
        readyInt[phys] = true;
}

bool
RenameUnit::isReady(RegIndex phys, bool fp) const
{
    if (phys == invalidReg)
        return true;
    return fp ? readyFp[phys] : readyInt[phys];
}

bool
RenameUnit::sourcesReady(const DynInst &inst) const
{
    bool fp = usesFpRegs(inst.op);
    return isReady(inst.physSrc1, fp) && isReady(inst.physSrc2, fp);
}

} // namespace smt
