#include "core/rename.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

RenameUnit::RenameUnit(unsigned phys_int, unsigned phys_fp,
                       unsigned num_threads)
    : physIntCount(phys_int), physFpCount(phys_fp)
{
    reset(num_threads);
}

void
RenameUnit::reset(unsigned num_threads)
{
    intMap.assign(num_threads,
                  std::vector<RegIndex>(numArchIntRegs, invalidReg));
    fpMap.assign(num_threads,
                 std::vector<RegIndex>(numArchFpRegs, invalidReg));
    freeInt.clear();
    freeFp.clear();
    readyInt.assign(physIntCount, false);
    readyFp.assign(physFpCount, false);

    // Architectural state owns the first num_threads * 32 registers of
    // each class; those values exist and are ready.
    unsigned next_int = 0;
    unsigned next_fp = 0;
    for (unsigned t = 0; t < num_threads; ++t) {
        for (unsigned a = 0; a < numArchIntRegs; ++a) {
            intMap[t][a] = static_cast<RegIndex>(next_int);
            readyInt[next_int] = true;
            ++next_int;
        }
        for (unsigned a = 0; a < numArchFpRegs; ++a) {
            fpMap[t][a] = static_cast<RegIndex>(next_fp);
            readyFp[next_fp] = true;
            ++next_fp;
        }
    }
    for (unsigned p = next_int; p < physIntCount; ++p)
        freeInt.push_back(static_cast<RegIndex>(p));
    for (unsigned p = next_fp; p < physFpCount; ++p)
        freeFp.push_back(static_cast<RegIndex>(p));
}

bool
RenameUnit::canAllocate(bool fp) const
{
    return fp ? !freeFp.empty() : !freeInt.empty();
}

void
RenameUnit::rename(DynInst &inst)
{
    if (inst.si == nullptr)
        return; // wrong-path filler has no operands

    bool fp = usesFpRegs(inst.op);
    auto &map = fp ? fpMap[inst.tid] : intMap[inst.tid];

    if (inst.si->src1 != invalidReg)
        inst.physSrc1 = map[inst.si->src1];
    if (inst.si->src2 != invalidReg)
        inst.physSrc2 = map[inst.si->src2];

    if (inst.si->dst != invalidReg) {
        auto &free = fp ? freeFp : freeInt;
        if (free.empty())
            panic("rename without a free register");
        RegIndex phys = free.back();
        free.pop_back();
        inst.archDst = inst.si->dst;
        inst.dstIsFp = fp;
        inst.prevPhysDst = map[inst.archDst];
        inst.physDst = phys;
        map[inst.archDst] = phys;
        if (fp)
            readyFp[phys] = false;
        else
            readyInt[phys] = false;
    }
}

void
RenameUnit::commit(DynInst &inst)
{
    if (inst.physDst == invalidReg || inst.prevPhysDst == invalidReg)
        return;
    if (inst.dstIsFp)
        freeFp.push_back(inst.prevPhysDst);
    else
        freeInt.push_back(inst.prevPhysDst);
}

void
RenameUnit::rollback(DynInst &inst)
{
    if (inst.physDst == invalidReg)
        return;
    auto &map = inst.dstIsFp ? fpMap[inst.tid] : intMap[inst.tid];
    map[inst.archDst] = inst.prevPhysDst;
    if (inst.dstIsFp)
        freeFp.push_back(inst.physDst);
    else
        freeInt.push_back(inst.physDst);
    inst.physDst = invalidReg;
}

void
RenameUnit::markReady(RegIndex phys, bool fp)
{
    if (phys == invalidReg)
        return;
    if (fp)
        readyFp[phys] = true;
    else
        readyInt[phys] = true;
}

bool
RenameUnit::isReady(RegIndex phys, bool fp) const
{
    if (phys == invalidReg)
        return true;
    return fp ? readyFp[phys] : readyInt[phys];
}

bool
RenameUnit::sourcesReady(const DynInst &inst) const
{
    bool fp = usesFpRegs(inst.op);
    return isReady(inst.physSrc1, fp) && isReady(inst.physSrc2, fp);
}

namespace
{

void
saveRegVector(CheckpointWriter &w, const std::vector<RegIndex> &v)
{
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (RegIndex reg : v)
        w.i16(reg);
}

/**
 * @param phys_count Physical registers in the class: every entry
 *        must be invalidReg or a valid index (out-of-range values
 *        would index the ready scoreboards out of bounds later).
 * @param expected Required element count, or SIZE_MAX for "any".
 */
void
restoreRegVector(CheckpointReader &r, std::vector<RegIndex> &v,
                 const char *what, unsigned phys_count,
                 std::size_t expected = std::size_t(-1))
{
    std::uint32_t n =
        static_cast<std::uint32_t>(r.checkCount(r.u32(), 2, what));
    if (expected != std::size_t(-1) && n != expected)
        r.fail(csprintf("%s holds %u entries but this configuration "
                        "uses %zu",
                        what, n, expected));
    v.resize(n);
    for (RegIndex &reg : v) {
        reg = r.i16();
        if (reg != invalidReg &&
            (reg < 0 || static_cast<unsigned>(reg) >= phys_count))
            r.fail(csprintf("%s references physical register %d, "
                            "valid range is [0, %u) (corrupt "
                            "payload)",
                            what, (int)reg, phys_count));
    }
}

void
saveReadyBits(CheckpointWriter &w, const std::vector<bool> &v)
{
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (bool ready : v)
        w.b(ready);
}

void
restoreReadyBits(CheckpointReader &r, std::vector<bool> &v,
                 std::size_t expected, const char *what)
{
    std::uint32_t n = r.u32();
    if (n != expected)
        r.fail(csprintf("%s scoreboard holds %u entries but this "
                        "configuration uses %zu",
                        what, n, expected));
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = r.b();
}

} // namespace

void
RenameUnit::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(intMap.size()));
    for (const auto &m : intMap)
        saveRegVector(w, m);
    for (const auto &m : fpMap)
        saveRegVector(w, m);
    saveRegVector(w, freeInt);
    saveRegVector(w, freeFp);
    saveReadyBits(w, readyInt);
    saveReadyBits(w, readyFp);
}

void
RenameUnit::restore(CheckpointReader &r)
{
    std::uint32_t threads = r.u32();
    if (threads != intMap.size())
        r.fail(csprintf("rename maps cover %u threads but this "
                        "configuration uses %zu",
                        threads, intMap.size()));
    for (auto &m : intMap)
        restoreRegVector(r, m, "int map", physIntCount,
                         numArchIntRegs);
    for (auto &m : fpMap)
        restoreRegVector(r, m, "fp map", physFpCount,
                         numArchFpRegs);
    restoreRegVector(r, freeInt, "int free list", physIntCount);
    restoreRegVector(r, freeFp, "fp free list", physFpCount);
    if (freeInt.size() > physIntCount || freeFp.size() > physFpCount)
        r.fail("free list larger than the physical register file "
               "(corrupt payload)");
    restoreReadyBits(r, readyInt, physIntCount, "int ready");
    restoreReadyBits(r, readyFp, physFpCount, "fp ready");
}

} // namespace smt
