#include "core/iq.hh"

#include <algorithm>

#include "util/logging.hh"

namespace smt
{

IssueQueues::IssueQueues(unsigned int_cap, unsigned ldst_cap,
                         unsigned fp_cap)
    : intCap(int_cap), ldstCap(ldst_cap), fpCap(fp_cap)
{
    intQ.reserve(int_cap);
    ldstQ.reserve(ldst_cap);
    fpQ.reserve(fp_cap);
}

std::vector<DynInst *> &
IssueQueues::queueFor(IqClass c)
{
    switch (c) {
      case IqClass::Int: return intQ;
      case IqClass::LdSt: return ldstQ;
      case IqClass::Fp: return fpQ;
    }
    panic("bad IQ class");
}

const std::vector<DynInst *> &
IssueQueues::queueFor(IqClass c) const
{
    switch (c) {
      case IqClass::Int: return intQ;
      case IqClass::LdSt: return ldstQ;
      case IqClass::Fp: return fpQ;
    }
    panic("bad IQ class");
}

bool
IssueQueues::hasSpace(IqClass c) const
{
    switch (c) {
      case IqClass::Int: return intQ.size() < intCap;
      case IqClass::LdSt: return ldstQ.size() < ldstCap;
      case IqClass::Fp: return fpQ.size() < fpCap;
    }
    panic("bad IQ class");
}

void
IssueQueues::insert(DynInst *inst)
{
    IqClass c = iqClassFor(inst->op);
    if (!hasSpace(c))
        panic("IQ overflow");
    queueFor(c).push_back(inst);
}

void
IssueQueues::pickReady(const RenameUnit &rename, unsigned int_fus,
                       unsigned ldst_fus, unsigned fp_fus,
                       std::vector<DynInst *> &out)
{
    struct ClassPick
    {
        IqClass c;
        unsigned limit;
    };
    const ClassPick picks[3] = {{IqClass::Int, int_fus},
                                {IqClass::LdSt, ldst_fus},
                                {IqClass::Fp, fp_fus}};

    for (const auto &pick : picks) {
        auto &q = queueFor(pick.c);
        unsigned taken = 0;
        // Queues are kept in dispatch (age) order; scan oldest first.
        std::size_t w = 0;
        for (std::size_t r = 0; r < q.size(); ++r) {
            DynInst *inst = q[r];
            if (taken < pick.limit && rename.sourcesReady(*inst)) {
                out.push_back(inst);
                ++taken;
            } else {
                q[w++] = inst;
            }
        }
        q.resize(w);
    }
}

void
IssueQueues::squash(ThreadID tid, InstSeqNum seq)
{
    auto drop = [tid, seq](DynInst *inst) {
        return inst->tid == tid && inst->seq > seq;
    };
    for (auto *q : {&intQ, &ldstQ, &fpQ})
        q->erase(std::remove_if(q->begin(), q->end(), drop), q->end());
}

unsigned
IssueQueues::occupancy(IqClass c) const
{
    return static_cast<unsigned>(queueFor(c).size());
}

unsigned
IssueQueues::totalOccupancy() const
{
    return static_cast<unsigned>(intQ.size() + ldstQ.size() +
                                 fpQ.size());
}

unsigned
IssueQueues::threadOccupancy(ThreadID tid) const
{
    unsigned n = 0;
    for (const auto *q : {&intQ, &ldstQ, &fpQ})
        for (const DynInst *inst : *q)
            if (inst->tid == tid)
                ++n;
    return n;
}

void
IssueQueues::clear()
{
    intQ.clear();
    ldstQ.clear();
    fpQ.clear();
}

} // namespace smt
