#include "core/iq.hh"

#include <algorithm>

#include "core/rob.hh"
#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

IssueQueues::IssueQueues(unsigned int_cap, unsigned ldst_cap,
                         unsigned fp_cap)
    : intCap(int_cap), ldstCap(ldst_cap), fpCap(fp_cap)
{
    intQ.reserve(int_cap);
    ldstQ.reserve(ldst_cap);
    fpQ.reserve(fp_cap);
}

std::vector<DynInst *> &
IssueQueues::queueFor(IqClass c)
{
    switch (c) {
      case IqClass::Int: return intQ;
      case IqClass::LdSt: return ldstQ;
      case IqClass::Fp: return fpQ;
    }
    panic("bad IQ class");
}

const std::vector<DynInst *> &
IssueQueues::queueFor(IqClass c) const
{
    switch (c) {
      case IqClass::Int: return intQ;
      case IqClass::LdSt: return ldstQ;
      case IqClass::Fp: return fpQ;
    }
    panic("bad IQ class");
}

bool
IssueQueues::hasSpace(IqClass c) const
{
    switch (c) {
      case IqClass::Int: return intQ.size() < intCap;
      case IqClass::LdSt: return ldstQ.size() < ldstCap;
      case IqClass::Fp: return fpQ.size() < fpCap;
    }
    panic("bad IQ class");
}

void
IssueQueues::insert(DynInst *inst)
{
    IqClass c = iqClassFor(inst->op);
    if (!hasSpace(c))
        panic("IQ overflow");
    queueFor(c).push_back(inst);
    ++threadOcc[inst->tid];
}

void
IssueQueues::pickReady(const RenameUnit &rename, unsigned int_fus,
                       unsigned ldst_fus, unsigned fp_fus,
                       std::vector<DynInst *> &out)
{
    struct ClassPick
    {
        IqClass c;
        unsigned limit;
    };
    const ClassPick picks[3] = {{IqClass::Int, int_fus},
                                {IqClass::LdSt, ldst_fus},
                                {IqClass::Fp, fp_fus}};

    for (const auto &pick : picks) {
        auto &q = queueFor(pick.c);
        unsigned taken = 0;
        // Queues are kept in dispatch (age) order; scan oldest first.
        std::size_t w = 0;
        for (std::size_t r = 0; r < q.size(); ++r) {
            DynInst *inst = q[r];
            if (taken < pick.limit && rename.sourcesReady(*inst)) {
                out.push_back(inst);
                --threadOcc[inst->tid];
                ++taken;
            } else {
                q[w++] = inst;
            }
        }
        q.resize(w);
    }
}

bool
IssueQueues::hasReady(const RenameUnit &rename) const
{
    for (const auto *q : {&intQ, &ldstQ, &fpQ})
        for (const DynInst *inst : *q)
            if (rename.sourcesReady(*inst))
                return true;
    return false;
}

void
IssueQueues::squash(ThreadID tid, InstSeqNum seq)
{
    auto drop = [this, tid, seq](DynInst *inst) {
        if (inst->tid != tid || inst->seq <= seq)
            return false;
        --threadOcc[tid];
        return true;
    };
    for (auto *q : {&intQ, &ldstQ, &fpQ})
        q->erase(std::remove_if(q->begin(), q->end(), drop), q->end());
}

unsigned
IssueQueues::occupancy(IqClass c) const
{
    return static_cast<unsigned>(queueFor(c).size());
}

unsigned
IssueQueues::totalOccupancy() const
{
    return static_cast<unsigned>(intQ.size() + ldstQ.size() +
                                 fpQ.size());
}

void
IssueQueues::clear()
{
    intQ.clear();
    ldstQ.clear();
    fpQ.clear();
    threadOcc.fill(0);
}

namespace
{

void
saveQueue(CheckpointWriter &w, const std::vector<DynInst *> &q)
{
    w.u32(static_cast<std::uint32_t>(q.size()));
    for (const DynInst *inst : q) {
        w.i16(inst->tid);
        w.u64(inst->seq);
    }
}

void
restoreQueue(CheckpointReader &r, std::vector<DynInst *> &q,
             unsigned cap, Rob &rob, const char *what)
{
    std::uint32_t n =
        static_cast<std::uint32_t>(r.checkCount(r.u32(), 10, what));
    if (n > cap)
        r.fail(csprintf("%s queue holds %u entries but this "
                        "configuration caps it at %u",
                        what, n, cap));
    q.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        ThreadID tid = r.i16();
        InstSeqNum seq = r.u64();
        if (tid < 0 ||
            static_cast<unsigned>(tid) >= rob.numThreads())
            r.fail(csprintf("%s queue references thread %d, valid "
                            "range is [0, %u) (corrupt reference)",
                            what, (int)tid, rob.numThreads()));
        DynInst *inst = rob.find(tid, seq);
        if (inst == nullptr)
            r.fail(csprintf("%s queue references instruction "
                            "(thread %d, seq %llu) that is not in "
                            "the restored ROB (corrupt reference)",
                            what, (int)tid,
                            (unsigned long long)seq));
        q.push_back(inst);
    }
}

} // namespace

void
IssueQueues::save(CheckpointWriter &w) const
{
    saveQueue(w, intQ);
    saveQueue(w, ldstQ);
    saveQueue(w, fpQ);
}

void
IssueQueues::restore(CheckpointReader &r, Rob &rob)
{
    restoreQueue(r, intQ, intCap, rob, "int issue");
    restoreQueue(r, ldstQ, ldstCap, rob, "ld/st issue");
    restoreQueue(r, fpQ, fpCap, rob, "fp issue");

    // Rebuild the incremental per-thread counts (cold path).
    threadOcc.fill(0);
    for (const auto *q : {&intQ, &ldstQ, &fpQ})
        for (const DynInst *inst : *q)
            ++threadOcc[inst->tid];
}

} // namespace smt
