#include "core/stages/decode_stage.hh"

#include "util/stats_registry.hh"

namespace smt
{

void
DecodeStage::tick()
{
    unsigned budget = st.params.decodeWidth;
    unsigned n = st.params.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((st.frontRotate + i) % n);
        auto &dst = st.decodeQ[tid];
        while (budget > 0 && st.fetchBuffer.front(tid) != nullptr &&
               dst.size() < st.params.decodeWidth) {
            DynInst *inst = st.fetchBuffer.front(tid);
            st.fetchBuffer.popFront(tid);
            inst->stage = InstStage::Decoded;
            dst.push_back(inst);
            --budget;
            if (inst->bogusBlockEnd && !inst->wrongPath) {
                // The predictor claimed this instruction ends a block
                // with a taken CTI, but decode sees a non-CTI: repair
                // here instead of waiting for execute.
                ++st.stats.bogusRedirects;
                st.squashAfter(*inst);
                break; // this thread's younger insts just vanished
            }
        }
    }
    st.frontRotate = (st.frontRotate + 1) % n;
}

void
DecodeStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("decode.bogusRedirects",
                   "bogus block ends repaired at decode",
                   &st.stats.bogusRedirects);
}

} // namespace smt
