#include "core/stages/issue_stage.hh"

#include <array>
#include <tuple>

#include "core/exec.hh"
#include "core/iq.hh"
#include "core/rob.hh"
#include "util/stats_registry.hh"

namespace smt
{

void
IssueStage::tick()
{
    st.issueScratch.clear();
    st.iqs.pickReady(st.rename, st.params.intFUs, st.params.ldstFUs,
                     st.params.fpFUs, st.issueScratch);

    // Long-latency loads found this cycle: (tid, seq, data-ready).
    std::array<std::tuple<ThreadID, InstSeqNum, Cycle>, 8> long_loads;
    unsigned num_long = 0;

    for (DynInst *inst : st.issueScratch) {
        if (inst->inIcount) {
            --st.icounts[inst->tid];
            inst->inIcount = false;
        }
        Cycle latency = st.exec.issue(*inst, st.currentCycle);
        ++st.stats.issued;

        if (st.params.longLoadPolicy != LongLoadPolicy::None &&
            inst->isLoad() && !inst->wrongPath &&
            latency > st.params.longLoadThreshold &&
            num_long < long_loads.size()) {
            long_loads[num_long++] = {inst->tid, inst->seq,
                                      st.currentCycle + latency};
        }
    }

    // Apply the policy after the issue loop: a FLUSH squash deletes
    // younger instructions that may still sit in issueScratch.
    for (unsigned i = 0; i < num_long; ++i) {
        auto [tid, seq, ready_at] = long_loads[i];
        DynInst *load = st.rob.find(tid, seq);
        if (load == nullptr)
            continue; // flushed by an earlier long load
        ++st.stats.longLoadEvents;
        if (st.params.longLoadPolicy == LongLoadPolicy::Flush)
            st.squashAfter(*load);
        st.front.stallThread(tid, ready_at);
    }
}

void
IssueStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("issue.insts", "instructions issued",
                   &st.stats.issued);
    reg.addCounter("issue.longLoadEvents",
                   "long-latency-load policy activations",
                   &st.stats.longLoadEvents);
}

} // namespace smt
