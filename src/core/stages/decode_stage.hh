/**
 * @file
 * DecodeStage: drains the shared fetch buffer into the per-thread
 * decode queues and repairs bogus block ends (predicted CTI turns out
 * to be a plain instruction) without waiting for execute.
 */

#ifndef SMTFETCH_CORE_STAGES_DECODE_STAGE_HH
#define SMTFETCH_CORE_STAGES_DECODE_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Decode fetched instructions; early-repair bogus predictions. */
class DecodeStage : public Stage
{
  public:
    explicit DecodeStage(PipelineState &state)
        : Stage("decode", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_DECODE_STAGE_HH
