/**
 * @file
 * ExecuteStage: drains the execution unit's completion events for the
 * current cycle into the shared completion scratch, where the
 * writeback stage consumes them.
 */

#ifndef SMTFETCH_CORE_STAGES_EXECUTE_STAGE_HH
#define SMTFETCH_CORE_STAGES_EXECUTE_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Collect this cycle's functional-unit completions. */
class ExecuteStage : public Stage
{
  public:
    explicit ExecuteStage(PipelineState &state)
        : Stage("execute", state)
    {
    }

    void tick() override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_EXECUTE_STAGE_HH
