#include "core/stages/execute_stage.hh"

#include "core/exec.hh"

namespace smt
{

void
ExecuteStage::tick()
{
    st.exec.completionsAt(st.currentCycle, st.completionScratch);
}

} // namespace smt
