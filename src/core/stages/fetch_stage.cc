#include "core/stages/fetch_stage.hh"

#include "util/stats_registry.hh"

namespace smt
{

void
FetchStage::tick()
{
    st.front.fetchStage(st.currentCycle, st.icounts.data(),
                        st.fetchBuffer);
}

void
FetchStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("fetch.cycles", "cycles with >= 1 fetch request",
                   &st.stats.fetchCycles);
    reg.addCounter("fetch.insts",
                   "instructions delivered (wrong path included)",
                   &st.stats.instsFetched);
    reg.addCounter("fetch.wrongPathInsts",
                   "wrong-path instructions delivered",
                   &st.stats.wrongPathFetched);
    reg.addCounter("fetch.bankConflicts",
                   "I-cache bank conflicts (wasted ports)",
                   &st.stats.bankConflicts);
    reg.addCounter("fetch.icacheBlockEvents",
                   "I-cache misses that blocked a thread",
                   &st.stats.icacheBlockEvents);
    reg.addCounter("fetch.bufferFullCycles",
                   "cycles fetch stalled on a full fetch buffer",
                   &st.stats.fetchBufferFullCycles);
    reg.addHistogram("fetch.widthHist",
                     "instructions delivered per fetch cycle",
                     &st.stats.fetchWidthHist);
}

} // namespace smt
