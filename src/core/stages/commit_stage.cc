#include "core/stages/commit_stage.hh"

#include "bpred/fetch_engine.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "mem/hierarchy.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"

namespace smt
{

void
CommitStage::tick()
{
    unsigned budget = st.params.commitWidth;
    unsigned n = st.params.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((st.commitRotate + i) % n);
        while (budget > 0 && !st.rob.empty(tid)) {
            DynInst &head = st.rob.head(tid);
            if (head.stage != InstStage::Done)
                break;
            commitInst(head);
            st.rob.popHead(tid);
            --budget;
        }
    }
    st.commitRotate = (st.commitRotate + 1) % n;
}

void
CommitStage::commitInst(DynInst &inst)
{
    if (inst.wrongPath)
        panic("wrong-path instruction reached commit (tid %d seq %llu)",
              inst.tid, (unsigned long long)inst.seq);

    if (inst.si != nullptr && inst.si->isControl()) {
        ++st.stats.committedCtis;
        if (inst.si->isConditional())
            ++st.stats.committedCond;
        if (inst.oracleTaken)
            ++st.stats.committedTaken;
        st.engine.commitCti(inst.tid, *inst.si, inst.oracleTaken,
                            inst.oracleNext, inst.wasBlockEnd,
                            inst.mispredicted, inst.ckpt.ghist);
    }
    if (inst.isLoad())
        ++st.stats.committedLoads;
    if (inst.isStore()) {
        ++st.stats.committedStores;
        // Store data is written back at commit; the write never
        // blocks retirement (post-commit store buffer).
        st.memory.dcacheAccess(inst.tid, inst.memAddr, true,
                               st.currentCycle);
    }

    st.rename.commit(inst);
    --st.robCount[inst.tid];
    ++st.stats.instsCommitted;
    ++st.stats.threadCommitted[inst.tid];

    if (st.commitHook != nullptr && *st.commitHook)
        (*st.commitHook)(inst);
}

void
CommitStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("commit.insts", "instructions committed",
                   &st.stats.instsCommitted);
    reg.addCounter("commit.ctis", "committed control instructions",
                   &st.stats.committedCtis);
    reg.addCounter("commit.cond", "committed conditional branches",
                   &st.stats.committedCond);
    reg.addCounter("commit.taken", "committed taken CTIs",
                   &st.stats.committedTaken);
    reg.addCounter("commit.loads", "committed loads",
                   &st.stats.committedLoads);
    reg.addCounter("commit.stores", "committed stores",
                   &st.stats.committedStores);
    for (unsigned t = 0; t < st.params.numThreads; ++t) {
        reg.addCounter(csprintf("commit.thread%u.insts", t),
                       csprintf("instructions committed by thread %u", t),
                       &st.stats.threadCommitted[t]);
    }
}

} // namespace smt
