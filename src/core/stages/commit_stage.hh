/**
 * @file
 * CommitStage: in-order retirement from the per-thread ROB heads,
 * sharing the commit width round-robin across threads. Commit-side
 * predictor training and store writeback happen here.
 */

#ifndef SMTFETCH_CORE_STAGES_COMMIT_STAGE_HH
#define SMTFETCH_CORE_STAGES_COMMIT_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Retire done instructions from the ROB heads. */
class CommitStage : public Stage
{
  public:
    explicit CommitStage(PipelineState &state)
        : Stage("commit", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;

  private:
    void commitInst(DynInst &inst);
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_COMMIT_STAGE_HH
