/**
 * @file
 * FetchStage: wraps the decoupled front-end's fetch side — I-cache
 * accesses driven from the FTQ heads, delivering instructions into
 * the shared fetch buffer under the N.X policy.
 */

#ifndef SMTFETCH_CORE_STAGES_FETCH_STAGE_HH
#define SMTFETCH_CORE_STAGES_FETCH_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Tick the front-end's fetch stage. */
class FetchStage : public Stage
{
  public:
    explicit FetchStage(PipelineState &state)
        : Stage("fetch", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_FETCH_STAGE_HH
