/**
 * @file
 * PredictStage: wraps the decoupled front-end's prediction side — up
 * to N block predictions per cycle pushed into per-thread FTQs.
 */

#ifndef SMTFETCH_CORE_STAGES_PREDICT_STAGE_HH
#define SMTFETCH_CORE_STAGES_PREDICT_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Tick the front-end's prediction stage. */
class PredictStage : public Stage
{
  public:
    explicit PredictStage(PipelineState &state)
        : Stage("predict", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_PREDICT_STAGE_HH
