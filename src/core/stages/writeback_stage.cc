#include "core/stages/writeback_stage.hh"

#include "core/rename.hh"
#include "core/rob.hh"
#include "util/stats_registry.hh"

namespace smt
{

void
WritebackStage::tick()
{
    for (const auto &[tid, seq] : st.completionScratch) {
        DynInst *inst = st.rob.find(tid, seq);
        if (inst == nullptr || inst->stage != InstStage::Issued)
            continue; // squashed since issue
        inst->stage = InstStage::Done;
        if (inst->physDst != invalidReg)
            st.rename.markReady(inst->physDst, inst->dstIsFp);
        if (inst->resolvesAtExecute()) {
            ++st.stats.mispredictsResolved;
            switch (inst->op) {
              case OpClass::CondBranch: ++st.stats.mispredCond; break;
              case OpClass::Jump: ++st.stats.mispredJump; break;
              case OpClass::CallDirect: ++st.stats.mispredCall; break;
              case OpClass::Return: ++st.stats.mispredReturn; break;
              case OpClass::JumpIndirect:
                ++st.stats.mispredIndirect;
                break;
              default: break;
            }
            st.squashAfter(*inst);
        }
    }
}

void
WritebackStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("writeback.mispredictsResolved",
                   "mispredictions resolved at execute",
                   &st.stats.mispredictsResolved);
    reg.addCounter("writeback.mispredCond",
                   "mispredicted conditional branches",
                   &st.stats.mispredCond);
    reg.addCounter("writeback.mispredJump", "mispredicted direct jumps",
                   &st.stats.mispredJump);
    reg.addCounter("writeback.mispredCall", "mispredicted direct calls",
                   &st.stats.mispredCall);
    reg.addCounter("writeback.mispredReturn", "mispredicted returns",
                   &st.stats.mispredReturn);
    reg.addCounter("writeback.mispredIndirect",
                   "mispredicted indirect jumps",
                   &st.stats.mispredIndirect);
}

} // namespace smt
