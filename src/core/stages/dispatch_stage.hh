/**
 * @file
 * DispatchStage: per-thread in-order rename+insert into the shared
 * issue queues and ROB accounting. Structural hazards (IQ, ROB,
 * physical registers) stall only the offending thread.
 */

#ifndef SMTFETCH_CORE_STAGES_DISPATCH_STAGE_HH
#define SMTFETCH_CORE_STAGES_DISPATCH_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Move renamed instructions into the issue queues. */
class DispatchStage : public Stage
{
  public:
    explicit DispatchStage(PipelineState &state)
        : Stage("dispatch", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_DISPATCH_STAGE_HH
