#include "core/stages/predict_stage.hh"

#include "util/stats_registry.hh"

namespace smt
{

void
PredictStage::tick()
{
    st.front.predictionStage(st.currentCycle, st.icounts.data());
}

void
PredictStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("predict.blockPredictions",
                   "fetch-block predictions pushed into FTQs",
                   &st.stats.blockPredictions);
}

} // namespace smt
