/**
 * @file
 * IssueStage: out-of-order select over the shared issue queues,
 * bounded by functional-unit counts, plus the long-latency-load
 * STALL/FLUSH policy hook (Tullsen & Brown).
 */

#ifndef SMTFETCH_CORE_STAGES_ISSUE_STAGE_HH
#define SMTFETCH_CORE_STAGES_ISSUE_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Pick ready instructions and start them on functional units. */
class IssueStage : public Stage
{
  public:
    explicit IssueStage(PipelineState &state)
        : Stage("issue", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_ISSUE_STAGE_HH
