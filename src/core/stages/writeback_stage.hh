/**
 * @file
 * WritebackStage: applies the cycle's completions — marks
 * instructions done, wakes dependents through the rename scoreboard,
 * and resolves execute-time mispredictions with a squash.
 */

#ifndef SMTFETCH_CORE_STAGES_WRITEBACK_STAGE_HH
#define SMTFETCH_CORE_STAGES_WRITEBACK_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Apply completions collected by the execute stage. */
class WritebackStage : public Stage
{
  public:
    explicit WritebackStage(PipelineState &state)
        : Stage("writeback", state)
    {
    }

    void tick() override;
    void registerStats(StatsRegistry &reg) override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_WRITEBACK_STAGE_HH
