#include "core/stages/rename_stage.hh"

namespace smt
{

void
RenameStage::tick()
{
    unsigned budget = st.params.decodeWidth;
    unsigned n = st.params.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((st.frontRotate + i) % n);
        auto &src = st.decodeQ[tid];
        auto &dst = st.renameQ[tid];
        while (budget > 0 && !src.empty() &&
               dst.size() < st.params.decodeWidth) {
            DynInst *inst = src.front();
            src.pop_front();
            inst->stage = InstStage::Renamed;
            dst.push_back(inst);
            --budget;
        }
    }
}

} // namespace smt
