#include "core/stages/dispatch_stage.hh"

#include "core/iq.hh"
#include "core/rename.hh"
#include "util/stats_registry.hh"

namespace smt
{

void
DispatchStage::tick()
{
    // Per-thread in-order dispatch sharing the stage width: a thread
    // whose head instruction hits a structural hazard stalls only
    // itself. The shared hazards (IQ, ROB, registers) are what let one
    // clogged thread strangle the machine, per Tullsen & Brown.
    unsigned budget = st.params.decodeWidth;
    unsigned n = st.params.numThreads;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((st.frontRotate + i) % n);
        auto &q = st.renameQ[tid];
        while (budget > 0 && !q.empty()) {
            DynInst *inst = q.front();
            bool needs_reg =
                inst->si != nullptr && inst->si->dst != invalidReg;
            if (st.robCount[tid] >= st.params.robEntries ||
                !st.iqs.hasSpace(iqClassFor(inst->op)) ||
                (needs_reg &&
                 !st.rename.canAllocate(usesFpRegs(inst->op)))) {
                break; // this thread stalls; others continue
            }
            st.rename.rename(*inst);
            inst->stage = InstStage::Dispatched;
            inst->dispatchStamp = ++st.stampCounter;
            st.iqs.insert(inst);
            ++st.robCount[tid];
            ++st.stats.dispatched;
            q.pop_front();
            --budget;
        }
    }
}

void
DispatchStage::registerStats(StatsRegistry &reg)
{
    reg.addCounter("dispatch.insts", "instructions dispatched",
                   &st.stats.dispatched);
}

} // namespace smt
