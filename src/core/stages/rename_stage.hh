/**
 * @file
 * RenameStage: moves decoded instructions into the per-thread rename
 * queues, modelling the decode→rename pipeline latch.
 */

#ifndef SMTFETCH_CORE_STAGES_RENAME_STAGE_HH
#define SMTFETCH_CORE_STAGES_RENAME_STAGE_HH

#include "core/stage.hh"

namespace smt
{

/** Advance instructions from the decode queues to the rename queues. */
class RenameStage : public Stage
{
  public:
    explicit RenameStage(PipelineState &state)
        : Stage("rename", state)
    {
    }

    void tick() override;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGES_RENAME_STAGE_HH
