/**
 * @file
 * Execute unit: functional-unit latency model plus a completion event
 * wheel. Issue-width limits are enforced by the issue queues; this
 * unit assigns latencies (memory latency comes from the hierarchy)
 * and delivers completions by (thread, seq) so squashed instructions
 * are ignored safely.
 */

#ifndef SMTFETCH_CORE_EXEC_HH
#define SMTFETCH_CORE_EXEC_HH

#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Latency assignment and completion scheduling. */
class ExecUnit
{
  public:
    ExecUnit(const CoreParams &params, MemoryHierarchy &memory);

    /**
     * Begin executing an instruction this cycle; schedules its
     * completion. Loads/stores access the D-cache here (wrong-path
     * included: they pollute the caches realistically).
     *
     * @return the assigned execution latency in cycles.
     */
    Cycle issue(DynInst &inst, Cycle now);

    /**
     * Collect (tid, seq) pairs completing at `now`.
     */
    void completionsAt(Cycle now,
                       std::vector<std::pair<ThreadID, InstSeqNum>> &out);

    /** Anything scheduled to complete exactly at `now`? */
    bool
    pendingAt(Cycle now) const
    {
        return !wheel[now % wheelSize].empty();
    }

    /**
     * Earliest cycle strictly after `now` with a scheduled
     * completion, or `now` itself when the wheel is empty. Every
     * live event lies within one wheel revolution of its issue
     * cycle (issue() panics otherwise), so one scan is exhaustive.
     */
    Cycle nextEventCycle(Cycle now) const;

    void reset();

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    void schedule(Cycle when, ThreadID tid, InstSeqNum seq);

    static constexpr std::size_t wheelSize = 2048;

    const CoreParams &params;
    MemoryHierarchy &memory;

    std::vector<std::vector<std::pair<ThreadID, InstSeqNum>>> wheel;
};

} // namespace smt

#endif // SMTFETCH_CORE_EXEC_HH
