/**
 * @file
 * The decoupled SMT front-end: a prediction stage that pushes fetch
 * blocks into per-thread FTQs, and a fetch stage that drives I-cache
 * accesses from FTQ heads and delivers instructions into the shared
 * fetch buffer. Implements the paper's N.X fetch policies: up to X
 * instructions total per cycle from up to N threads, one I-cache line
 * access per selected thread, with bank-conflict modelling when N > 1.
 */

#ifndef SMTFETCH_CORE_FRONT_END_HH
#define SMTFETCH_CORE_FRONT_END_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bpred/fetch_engine.hh"
#include "core/dyn_inst.hh"
#include "core/fetch_policy.hh"
#include "core/ftq.hh"
#include "core/params.hh"
#include "core/rob.hh"
#include "core/sim_stats.hh"
#include "mem/hierarchy.hh"
#include "util/ring_buffer.hh"
#include "workload/trace.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/**
 * Shared-capacity fetch buffer with per-thread FIFOs. Total occupancy
 * is bounded (32 in Table 3) so a clogged thread squeezes everyone's
 * fetch, but threads decode from their own queues — one stalled thread
 * does not head-of-line block the others.
 */
struct FetchBuffer
{
    std::array<RingBuffer<DynInst *>, maxThreads> q;
    unsigned total = 0;
    unsigned capacity = 32;

    FetchBuffer() { setCapacity(capacity); }

    /**
     * Size the shared pool; every per-thread ring gets the full
     * capacity (one thread may hold all of it).
     */
    void
    setCapacity(unsigned cap)
    {
        capacity = cap;
        total = 0;
        for (auto &dq : q)
            dq.setCapacity(cap);
    }

    unsigned free() const { return capacity - total; }

    void
    push(DynInst *inst)
    {
        q[inst->tid].push_back(inst);
        ++total;
    }

    DynInst *
    front(ThreadID tid)
    {
        return q[tid].empty() ? nullptr : q[tid].front();
    }

    void
    popFront(ThreadID tid)
    {
        q[tid].pop_front();
        --total;
    }

    void
    removeYounger(ThreadID tid, InstSeqNum seq)
    {
        auto &dq = q[tid];
        while (!dq.empty() && dq.back()->seq > seq) {
            dq.pop_back();
            --total;
        }
    }

    void
    clear()
    {
        for (auto &dq : q)
            dq.clear();
        total = 0;
    }
};

/** Prediction stage + fetch stage + per-thread fetch state. */
class FrontEnd
{
  public:
    FrontEnd(const CoreParams &params, FetchEngine &engine,
             MemoryHierarchy &memory, FetchPolicy &policy, Rob &rob,
             SimStats &stats);

    /** Bind a thread to its trace and benchmark image. */
    void setThread(ThreadID tid, TraceSource *trace,
                   const BenchmarkImage *image);

    /** One cycle of the prediction stage (N predictor ports). */
    void predictionStage(Cycle now, const std::uint32_t *icounts);

    /**
     * One cycle of the fetch stage. Delivered instructions are
     * appended to `fetch_buffer` and counted into `icounts`.
     */
    void fetchStage(Cycle now, std::uint32_t *icounts,
                    FetchBuffer &fetch_buffer);

    /** Squash: clear the FTQ and restart fetch at `pc` next cycle. */
    void redirect(ThreadID tid, Addr pc, Cycle now);

    /**
     * Long-latency-load policy support: stop predicting and fetching
     * for the thread until the given cycle (cleared by any redirect).
     */
    void stallThread(ThreadID tid, Cycle until);

    /**
     * Rewind the thread's trace so fetch re-delivers from `index`
     * (squashes that discard consumed correct-path instructions).
     */
    void
    rewindTrace(ThreadID tid, std::uint64_t index)
    {
        threads[tid].trace->rewindTo(index);
    }

    bool
    memStalled(ThreadID tid, Cycle now) const
    {
        return threads[tid].memStallUntil > now;
    }

    /** @name Cycle-skip support (core/smt_core.cc).
     *
     * The two quiescence predicates mirror the per-thread skip
     * conditions of predictionStage/fetchStage exactly: when they
     * hold, a tick of the corresponding stage touches nothing — no
     * predictor access, no I-cache access, no stat. They are
     * time-varying only through the three per-thread stall deadlines,
     * which nextDeadlineAfter exposes as wake-up events.
     */
    /// @{
    /** Would predictionStage(now) be a pure no-op? */
    bool
    predictQuiescent(Cycle now) const
    {
        for (const ThreadState &ts : threads)
            if (ts.active && ts.predictStallUntil <= now &&
                ts.memStallUntil <= now && !ts.ftq.full())
                return false;
        return true;
    }

    /** Would fetchStage(now) attempt no I-cache access? (The
     *  buffer-full gate is the caller's to check: it bumps a
     *  counter, which SmtCore folds across skipped spans.) */
    bool
    fetchQuiescent(Cycle now) const
    {
        for (const ThreadState &ts : threads)
            if (ts.active && !ts.ftq.empty() &&
                ts.icacheBlockedUntil <= now && ts.memStallUntil <= now)
                return false;
        return true;
    }

    /** Earliest per-thread stall deadline strictly after `now`
     *  (I-cache fill, redirect release, long-load stall release), or
     *  `now` itself when no deadline is pending. */
    Cycle
    nextDeadlineAfter(Cycle now) const
    {
        Cycle best = now;
        for (const ThreadState &ts : threads) {
            for (Cycle d : {ts.icacheBlockedUntil, ts.predictStallUntil,
                            ts.memStallUntil}) {
                if (d > now && (best == now || d < best))
                    best = d;
            }
        }
        return best;
    }
    /// @}

    /** @name Introspection (tests, diagnostics). */
    /// @{
    Addr predPc(ThreadID tid) const { return threads[tid].predPc; }
    bool onCorrectPath(ThreadID tid) const
    {
        return threads[tid].correctPath;
    }
    const FetchTargetQueue &ftq(ThreadID tid) const
    {
        return threads[tid].ftq;
    }
    bool
    icacheBlocked(ThreadID tid, Cycle now) const
    {
        return threads[tid].icacheBlockedUntil > now;
    }

    /** The benchmark image a thread executes (checkpoint codecs). */
    const BenchmarkImage *threadImage(ThreadID tid) const
    {
        return threads[tid].image;
    }
    /// @}

    void reset();

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh). Covers the
     * per-thread fetch state (FTQ contents, prediction PC, stall
     * deadlines); the trace/image bindings are re-established by
     * setThread before restore.
     */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    struct ThreadState
    {
        FetchTargetQueue ftq{4};
        Addr predPc = invalidAddr;
        bool correctPath = true;
        Cycle icacheBlockedUntil = 0;
        Cycle predictStallUntil = 0;
        Cycle memStallUntil = 0;
        TraceSource *trace = nullptr;
        const BenchmarkImage *image = nullptr;
        bool active = false;
    };

    /** Materialize one fetched instruction (oracle/wrong-path). */
    DynInst &buildInst(ThreadState &ts, ThreadID tid, Addr pc,
                       const BlockPrediction &block, bool is_end,
                       Cycle now);

    /**
     * Perfect-BP oracle path: build the next fetch block straight
     * from the correct-path trace (EngineParams::perfectBp). The
     * engine still provides the squash-repair checkpoint.
     */
    BlockPrediction oracleBlock(ThreadState &ts, ThreadID tid);

    /** Pseudo data address for wrong-path memory instructions. */
    static Addr wrongPathAddr(const BenchmarkImage &image, Addr pc,
                              InstSeqNum seq);

    const CoreParams &params;
    FetchEngine &engine;
    MemoryHierarchy &memory;
    FetchPolicy &policy;
    Rob &rob;
    SimStats &stats;

    std::vector<ThreadState> threads;
    std::vector<ThreadID> orderScratch;
};

} // namespace smt

#endif // SMTFETCH_CORE_FRONT_END_HH
