#include "core/fetch_policy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace smt
{

void
IcountPolicy::order(Cycle now, const std::uint32_t *icounts,
                    unsigned num_threads, std::vector<ThreadID> &out)
{
    out.clear();
    for (unsigned t = 0; t < num_threads; ++t)
        out.push_back(static_cast<ThreadID>(t));

    unsigned rotate = static_cast<unsigned>(now % num_threads);
    auto before = [&](ThreadID a, ThreadID b) {
        if (icounts[a] != icounts[b])
            return icounts[a] < icounts[b];
        // Rotating tie-break.
        unsigned ra = (a + num_threads - rotate) % num_threads;
        unsigned rb = (b + num_threads - rotate) % num_threads;
        return ra < rb;
    };
    // Stable insertion sort: identical ordering to std::stable_sort
    // but allocation-free (this runs twice per simulated cycle, and
    // num_threads is tiny).
    for (unsigned i = 1; i < num_threads; ++i) {
        ThreadID key = out[i];
        unsigned j = i;
        while (j > 0 && before(key, out[j - 1])) {
            out[j] = out[j - 1];
            --j;
        }
        out[j] = key;
    }
}

void
RoundRobinPolicy::order(Cycle now, const std::uint32_t *icounts,
                        unsigned num_threads,
                        std::vector<ThreadID> &out)
{
    (void)icounts;
    out.clear();
    unsigned start = static_cast<unsigned>(now % num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        out.push_back(
            static_cast<ThreadID>((start + i) % num_threads));
}

std::unique_ptr<FetchPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::ICount:
        return std::make_unique<IcountPolicy>();
      case PolicyKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>();
    }
    panic("unknown policy kind");
}

} // namespace smt
