/**
 * @file
 * Aggregate simulation statistics. The paper's two headline metrics
 * are fetch throughput (IPFC: instructions provided by the fetch unit
 * per fetch cycle, wrong path included) and commit throughput (IPC).
 *
 * SimStats is the plain value-semantics view kept for source
 * compatibility (benches and tests copy it freely); the authoritative
 * naming and emission layer is the StatsRegistry, into which each
 * pipeline stage registers the fields it owns (see
 * core/stages/<stage>.cc and SmtCore::registerStats).
 */

#ifndef SMTFETCH_CORE_SIM_STATS_HH
#define SMTFETCH_CORE_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "util/histogram.hh"
#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Counters accumulated by the core during simulation. */
struct SimStats
{
    Cycle cycles = 0;

    /** @name Fetch. */
    /// @{
    std::uint64_t fetchCycles = 0;   //!< cycles with >= 1 fetch request
    std::uint64_t instsFetched = 0;  //!< delivered insts (wrong path too)
    std::uint64_t wrongPathFetched = 0;
    Histogram fetchWidthHist{16};    //!< insts delivered per fetch cycle
    std::uint64_t bankConflicts = 0;
    std::uint64_t icacheBlockEvents = 0;
    std::uint64_t fetchBufferFullCycles = 0;
    std::uint64_t blockPredictions = 0;
    /// @}

    /** @name Commit. */
    /// @{
    std::uint64_t instsCommitted = 0;
    std::array<std::uint64_t, maxThreads> threadCommitted{};
    std::uint64_t committedCtis = 0;
    std::uint64_t committedCond = 0;
    std::uint64_t committedTaken = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    /// @}

    /** @name Speculation. */
    /// @{
    std::uint64_t instsSquashed = 0;
    std::uint64_t mispredictsResolved = 0;
    std::uint64_t bogusRedirects = 0;

    /** Mispredict breakdown by offender type. */
    std::uint64_t mispredCond = 0;
    std::uint64_t mispredJump = 0;
    std::uint64_t mispredCall = 0;
    std::uint64_t mispredReturn = 0;
    std::uint64_t mispredIndirect = 0;
    /// @}

    /** @name Back end. */
    /// @{
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;

    /** Long-latency-load policy activations (STALL/FLUSH). */
    std::uint64_t longLoadEvents = 0;
    /// @}

    /** @name Cycle skipping (simulation-speed telemetry: cycles the
     *  event-driven fast-forward jumped over instead of ticking;
     *  deliberately outside the architectural counters above). */
    /// @{
    std::uint64_t cyclesSkipped = 0;
    std::uint64_t sleepEvents = 0;  //!< quiescent spans fast-forwarded
    std::uint64_t maxSkipSpan = 0;  //!< longest single jump, cycles
    /// @}

    /** Commit throughput in instructions per cycle. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instsCommitted) /
                                 static_cast<double>(cycles);
    }

    /** Fetch throughput in instructions per fetch cycle. */
    double
    ipfc() const
    {
        return fetchCycles == 0
                   ? 0.0
                   : static_cast<double>(instsFetched) /
                         static_cast<double>(fetchCycles);
    }

    /** Per-thread IPC. */
    double
    threadIpc(ThreadID tid) const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(threadCommitted[tid]) /
                                 static_cast<double>(cycles);
    }

    /** Mispredicts per committed conditional branch. */
    double
    branchMispredictRate() const
    {
        std::uint64_t denom = committedCtis;
        return denom == 0 ? 0.0
                          : static_cast<double>(mispredictsResolved) /
                                static_cast<double>(denom);
    }

    void
    reset()
    {
        *this = SimStats{};
    }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

    void
    dump(std::ostream &os) const
    {
        os << "cycles " << cycles << '\n'
           << "fetchCycles " << fetchCycles << '\n'
           << "instsFetched " << instsFetched << '\n'
           << "wrongPathFetched " << wrongPathFetched << '\n'
           << "instsCommitted " << instsCommitted << '\n'
           << "instsSquashed " << instsSquashed << '\n'
           << "mispredictsResolved " << mispredictsResolved << '\n'
           << "IPFC " << ipfc() << '\n'
           << "IPC " << ipc() << '\n';
    }
};

} // namespace smt

#endif // SMTFETCH_CORE_SIM_STATS_HH
