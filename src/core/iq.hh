/**
 * @file
 * The three shared issue queues of Table 3 (32-entry int, 32-entry
 * ld/st, 32-entry fp) with age-ordered, FU-limited ready selection.
 */

#ifndef SMTFETCH_CORE_IQ_HH
#define SMTFETCH_CORE_IQ_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/rename.hh"
#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;
class Rob;

/** Which issue queue an instruction waits in. */
enum class IqClass : unsigned char { Int, LdSt, Fp };

/** Map an op class to its queue. */
constexpr IqClass
iqClassFor(OpClass op)
{
    if (isMemory(op))
        return IqClass::LdSt;
    if (op == OpClass::FpAlu)
        return IqClass::Fp;
    return IqClass::Int;
}

/** The three shared issue queues. */
class IssueQueues
{
  public:
    IssueQueues(unsigned int_cap, unsigned ldst_cap, unsigned fp_cap);

    bool hasSpace(IqClass c) const;

    /** Insert in dispatch order (age order is preserved). */
    void insert(DynInst *inst);

    /**
     * Select ready instructions oldest-first, at most the given
     * per-class FU counts, removing them from the queues.
     */
    void pickReady(const RenameUnit &rename, unsigned int_fus,
                   unsigned ldst_fus, unsigned fp_fus,
                   std::vector<DynInst *> &out);

    /** Would pickReady() select anything right now? */
    bool hasReady(const RenameUnit &rename) const;

    /** Remove all instructions of `tid` younger than `seq`. */
    void squash(ThreadID tid, InstSeqNum seq);

    /** @name O(1) occupancy. Per-class counts are the queue sizes;
     *  the per-thread counts are maintained incrementally by
     *  insert/pickReady/squash instead of scanning every in-flight
     *  instruction. */
    /// @{
    unsigned occupancy(IqClass c) const;
    unsigned totalOccupancy() const;

    /** Per-thread entries currently waiting (for diagnostics). */
    unsigned
    threadOccupancy(ThreadID tid) const
    {
        return threadOcc[tid];
    }
    /// @}

    void clear();

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh). Queue
     * entries are saved as (thread, sequence) references and
     * re-resolved against the restored ROB, which owns the
     * instructions.
     */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r, Rob &rob);
    /// @}

  private:
    std::vector<DynInst *> &queueFor(IqClass c);
    const std::vector<DynInst *> &queueFor(IqClass c) const;

    std::vector<DynInst *> intQ;
    std::vector<DynInst *> ldstQ;
    std::vector<DynInst *> fpQ;
    unsigned intCap;
    unsigned ldstCap;
    unsigned fpCap;

    /** Incrementally-maintained per-thread entry counts. */
    std::array<unsigned, maxThreads> threadOcc{};
};

} // namespace smt

#endif // SMTFETCH_CORE_IQ_HH
