/**
 * @file
 * Stage: the abstract pipeline-stage interface. A stage is a named
 * unit of per-cycle work over the shared PipelineState; it registers
 * its own statistics and is ticked by the StageGraph driver. Stage
 * variants (a variable-rate fetch stage, a deeper decode) replace a
 * stage by implementing the same interface.
 */

#ifndef SMTFETCH_CORE_STAGE_HH
#define SMTFETCH_CORE_STAGE_HH

#include <string>

#include "core/pipeline_state.hh"

namespace smt
{

class StatsRegistry;

/** One pipeline stage, ticked once per cycle. */
class Stage
{
  public:
    Stage(std::string name, PipelineState &state)
        : st(state), stageName(std::move(name))
    {
    }

    virtual ~Stage() = default;

    /** Perform this stage's work for the current cycle. */
    virtual void tick() = 0;

    /**
     * Register this stage's statistics (gem5 style). Called once
     * after the whole graph is constructed.
     */
    virtual void registerStats(StatsRegistry &reg) { (void)reg; }

    const std::string &name() const { return stageName; }

  protected:
    PipelineState &st;

  private:
    std::string stageName;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGE_HH
