/**
 * @file
 * StageGraph: the pipeline driver. Stages are added back-of-pipe
 * first (commit side before fetch side) and ticked in that order each
 * cycle — the classic reverse-order traversal that lets stage N
 * consume what stage N-1 produced *last* cycle, modelling the
 * pipeline latch between them without double-buffering.
 */

#ifndef SMTFETCH_CORE_STAGE_GRAPH_HH
#define SMTFETCH_CORE_STAGE_GRAPH_HH

#include <memory>
#include <string>
#include <vector>

#include "core/stage.hh"

namespace smt
{

class StatsRegistry;

/** Ordered collection of stages, ticked once per cycle. */
class StageGraph
{
  public:
    StageGraph() = default;

    /** Append a stage (ticked after all previously added stages). */
    Stage &add(std::unique_ptr<Stage> stage);

    /** Tick every stage in insertion order. */
    void tick();

    /** Let every stage register its stats. */
    void registerStats(StatsRegistry &reg);

    std::size_t size() const { return stages.size(); }
    const Stage &at(std::size_t i) const { return *stages[i]; }

    /** Stage names in tick order (tests, diagnostics). */
    std::vector<std::string> names() const;

  private:
    std::vector<std::unique_ptr<Stage>> stages;
};

} // namespace smt

#endif // SMTFETCH_CORE_STAGE_GRAPH_HH
