#include "core/front_end.hh"

#include <algorithm>

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

FrontEnd::FrontEnd(const CoreParams &params, FetchEngine &engine,
                   MemoryHierarchy &memory, FetchPolicy &policy,
                   Rob &rob, SimStats &stats)
    : params(params), engine(engine), memory(memory), policy(policy),
      rob(rob), stats(stats), threads(params.numThreads)
{
    for (auto &ts : threads)
        ts.ftq = FetchTargetQueue(params.ftqEntries);
}

void
FrontEnd::setThread(ThreadID tid, TraceSource *trace,
                    const BenchmarkImage *image)
{
    ThreadState &ts = threads[tid];
    ts.trace = trace;
    ts.image = image;
    ts.predPc = image->program.entry();
    ts.correctPath = true;
    ts.icacheBlockedUntil = 0;
    ts.predictStallUntil = 0;
    ts.active = true;
    ts.ftq.clear();
    engine.setThreadProgram(tid, &image->program);
}

void
FrontEnd::predictionStage(Cycle now, const std::uint32_t *icounts)
{
    policy.order(now, icounts, params.numThreads, orderScratch);

    unsigned ports_used = 0;
    for (ThreadID tid : orderScratch) {
        if (ports_used >= params.fetchThreads)
            break;
        ThreadState &ts = threads[tid];
        if (!ts.active || ts.predictStallUntil > now ||
            ts.memStallUntil > now || ts.ftq.full())
            continue;
        // Perfect-BP oracle: the correct path comes straight from the
        // trace. Falls back to the engine off the correct path (a
        // FLUSH squash mid-repair) or on any trace misalignment.
        BlockPrediction block;
        if (params.engineParams.perfectBp && ts.correctPath &&
            ts.trace != nullptr &&
            ts.trace->peekAhead(ts.ftq.totalRemaining()).pc() ==
                ts.predPc) {
            block = oracleBlock(ts, tid);
        } else {
            block = engine.predictBlock(tid, ts.predPc);
        }
        ts.ftq.push(block);
        ts.predPc = block.nextFetchPc;
        ++stats.blockPredictions;
        ++ports_used;
    }
}

void
FrontEnd::fetchStage(Cycle now, std::uint32_t *icounts,
                     FetchBuffer &fetch_buffer)
{
    // Fetch is gated on room for a full fetch group ("if the fetch
    // buffer fills up, fetch is stalled until room is available").
    unsigned buffer_free = fetch_buffer.free();
    if (buffer_free < params.fetchWidth) {
        ++stats.fetchBufferFullCycles;
        return;
    }

    unsigned remaining = params.fetchWidth;
    policy.order(now, icounts, params.numThreads, orderScratch);

    const unsigned line_bytes = memory.params().l1i.lineBytes;
    const Cycle l1i_hit = memory.params().l1i.hitLatency;

    // Perfect-I$ oracle: every access hits at the L1 hit latency with
    // no bank conflicts; the cache itself is never touched.
    const bool perfect_icache = params.engineParams.perfectIcache;

    unsigned threads_used = 0;
    unsigned delivered = 0;
    bool attempted = false;
    Addr used_lines[maxThreads];
    unsigned num_used_lines = 0;

    for (ThreadID tid : orderScratch) {
        if (threads_used >= params.fetchThreads || remaining == 0)
            break;
        ThreadState &ts = threads[tid];
        if (!ts.active || ts.ftq.empty() ||
            ts.icacheBlockedUntil > now || ts.memStallUntil > now)
            continue;

        Addr pc = ts.ftq.headFetchPc();
        Addr line = pc & ~static_cast<Addr>(line_bytes - 1);

        // Bank-conflict check against already-accessed lines.
        bool conflict = false;
        for (unsigned k = 0; !perfect_icache && k < num_used_lines;
             ++k) {
            if (memory.l1i().bankOf(used_lines[k]) ==
                memory.l1i().bankOf(line)) {
                conflict = true;
                break;
            }
        }
        if (conflict) {
            // The selected port is wasted this cycle.
            ++stats.bankConflicts;
            ++threads_used;
            attempted = true;
            continue;
        }

        attempted = true;
        Cycle lat = perfect_icache ? l1i_hit
                                   : memory.icacheAccess(tid, line, now);
        if (lat > l1i_hit) {
            // Miss: the fill has started; the thread blocks.
            ts.icacheBlockedUntil = now + lat;
            ++stats.icacheBlockEvents;
            ++threads_used;
            continue;
        }
        used_lines[num_used_lines++] = line;
        ++threads_used;

        unsigned max_in_line = static_cast<unsigned>(
            (line + line_bytes - pc) / instBytes);
        unsigned span = max_in_line;

        // Wide single-thread fetch may continue into the next
        // sequential line: a fetch block is contiguous, so the second
        // access is just the adjacent bank — no merge network needed.
        // This is exactly the low-complexity wide fetch the 1.16
        // policy relies on. It requires a block-oriented front-end
        // (FTB/stream FTQ entries name the whole span); the
        // line-oriented gshare+BTB unit reads one line per cycle.
        // With two threads the port pair is already spent.
        const unsigned line_insts =
            static_cast<unsigned>(line_bytes / instBytes);
        if (params.fetchThreads == 1 &&
            params.fetchWidth >= line_insts &&
            engine.blockOriented() && span < remaining &&
            ts.ftq.headRemaining() > span) {
            Addr line2 = line + line_bytes;
            Cycle lat2 = perfect_icache
                             ? l1i_hit
                             : memory.icacheAccess(tid, line2, now);
            if (lat2 <= l1i_hit) {
                span += line_insts;
            } else {
                // Second line missing: deliver the first part now;
                // the fill proceeds in the background.
                ++stats.icacheBlockEvents;
                ts.icacheBlockedUntil = now + lat2;
            }
        }

        unsigned chunk =
            std::min({remaining, ts.ftq.headRemaining(), span});

        // Adaptive fetch rate: throttle low-confidence blocks so a
        // likely-wrong path does not flood the shared buffer.
        if (params.engineParams.adaptiveFetch &&
            ts.ftq.head().lowConfidence) {
            chunk =
                std::min(chunk, params.engineParams.adaptiveLowWidth);
        }

        // Copy the head descriptor: consume() may pop it.
        BlockPrediction block = ts.ftq.head();
        unsigned offset = ts.ftq.headOffset();
        for (unsigned k = 0; k < chunk; ++k) {
            bool is_end = offset + k + 1 == block.lengthInsts;
            DynInst &inst =
                buildInst(ts, tid, pc + static_cast<Addr>(k) * instBytes,
                          block, is_end, now);
            inst.inIcount = true;
            ++icounts[tid];
            fetch_buffer.push(&inst);
        }
        ts.ftq.consume(chunk);
        remaining -= chunk;
        delivered += chunk;
    }

    if (attempted) {
        ++stats.fetchCycles;
        stats.instsFetched += delivered;
        stats.fetchWidthHist.sample(delivered);
    }
}

BlockPrediction
FrontEnd::oracleBlock(ThreadState &ts, ThreadID tid)
{
    // The first unqueued correct-path instruction is totalRemaining()
    // records past the fetch stage's trace position.
    std::uint64_t offset = ts.ftq.totalRemaining();
    BlockPrediction b;
    b.start = ts.predPc;
    b.ckpt = engine.makeCheckpoint(tid, b.start);
    // An oracle block runs through not-taken CTIs (their fall-through
    // is sequential) and ends at the first taken CTI or the cap —
    // maximal blocks, every prediction in them the actual outcome.
    const unsigned cap = params.engineParams.missBlockInsts;
    for (unsigned i = 0; i < cap; ++i) {
        const TraceRecord &rec = ts.trace->peekAhead(offset + i);
        ++b.lengthInsts;
        b.nextFetchPc = rec.nextPc;
        if (rec.si->isControl() && rec.taken) {
            b.endsWithCti = true;
            b.endType = rec.si->op;
            b.predTaken = true;
            b.predTarget = rec.nextPc;
            break;
        }
    }
    return b;
}

DynInst &
FrontEnd::buildInst(ThreadState &ts, ThreadID tid, Addr pc,
                    const BlockPrediction &block, bool is_end, Cycle now)
{
    DynInst &inst = rob.create(tid);
    inst.pc = pc;
    inst.fetchCycle = now;
    inst.stage = InstStage::Fetched;

    const StaticInst *si = ts.image->program.lookup(pc);
    inst.si = si;
    inst.op = si != nullptr ? si->op : OpClass::IntAlu;

    if (is_end) {
        inst.wasBlockEnd = true;
        inst.predTaken = block.predTaken;
        inst.predNext = block.nextFetchPc;
        inst.ckpt = block.ckpt;
        if (block.endsWithCti &&
            (si == nullptr || !si->isControl())) {
            inst.bogusBlockEnd = true;
        }
    } else {
        inst.predTaken = false;
        inst.predNext = pc + instBytes;
        // Every instruction carries its block's checkpoint: CTIs need
        // it for mispredict repair, and the long-latency-load FLUSH
        // policy may squash from any instruction.
        inst.ckpt = block.ckpt;
    }

    if (ts.correctPath) {
        if (si == nullptr)
            panic("correct-path fetch of unmapped pc 0x%llx",
                  (unsigned long long)pc);
        if (ts.trace->peekPc() != pc)
            panic("trace misalignment: fetch 0x%llx vs trace 0x%llx",
                  (unsigned long long)pc,
                  (unsigned long long)ts.trace->peekPc());
        inst.traceIndex = ts.trace->position();
        TraceRecord rec = ts.trace->next();
        inst.oracleTaken = rec.taken;
        inst.oracleNext = rec.nextPc;
        inst.memAddr = rec.memAddr;
        if (inst.predNext != inst.oracleNext) {
            // Divergence: everything fetched after this instruction
            // is wrong path until the squash repairs the thread.
            inst.mispredicted = true;
            ts.correctPath = false;
        }
    } else {
        inst.wrongPath = true;
        ++stats.wrongPathFetched;
        inst.oracleTaken = inst.predTaken;
        inst.oracleNext = inst.predNext;
        if (inst.isMemory())
            inst.memAddr = wrongPathAddr(*ts.image, pc, inst.seq);
    }

    return inst;
}

Addr
FrontEnd::wrongPathAddr(const BenchmarkImage &image, Addr pc,
                        InstSeqNum seq)
{
    // Wrong paths run the same code regions as the correct path, so
    // their loads overwhelmingly touch the same hot data (stack,
    // current buffers). Keep them inside the hot subset: they warm
    // rather than thrash the thread's own working set.
    std::uint64_t h = mix64(pc ^ (seq * 0x9e3779b97f4a7c15ULL));
    Addr hot = static_cast<Addr>(image.profile.hotKB) * 1024;
    Addr span = (h & 0xff) < 230 ? 8192 : hot;
    if (span < 64)
        span = 64;
    if (span > image.dataBytes - 8)
        span = image.dataBytes - 8;
    return (image.dataBase + ((h >> 8) % span)) & ~Addr(7);
}

void
FrontEnd::redirect(ThreadID tid, Addr pc, Cycle now)
{
    ThreadState &ts = threads[tid];
    ts.ftq.clear();
    ts.predPc = pc;
    ts.correctPath = true;
    ts.icacheBlockedUntil = 0;
    ts.memStallUntil = 0;
    ts.predictStallUntil = now + 1;
}

void
FrontEnd::stallThread(ThreadID tid, Cycle until)
{
    threads[tid].memStallUntil = until;
}

void
FrontEnd::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(threads.size()));
    for (const ThreadState &ts : threads) {
        w.u64(ts.predPc);
        w.b(ts.correctPath);
        w.u64(ts.icacheBlockedUntil);
        w.u64(ts.predictStallUntil);
        w.u64(ts.memStallUntil);
        w.b(ts.active);
        w.u32(ts.ftq.headOffset());
        w.u32(static_cast<std::uint32_t>(ts.ftq.size()));
        for (std::size_t i = 0; i < ts.ftq.size(); ++i)
            ts.ftq.blockAt(i).save(w);
    }
}

void
FrontEnd::restore(CheckpointReader &r)
{
    std::uint32_t n = r.u32();
    if (n != threads.size())
        r.fail(csprintf("front-end covers %u threads but this "
                        "configuration uses %zu",
                        n, threads.size()));
    for (ThreadState &ts : threads) {
        ts.predPc = r.u64();
        ts.correctPath = r.b();
        ts.icacheBlockedUntil = r.u64();
        ts.predictStallUntil = r.u64();
        ts.memStallUntil = r.u64();
        ts.active = r.b();
        std::uint32_t head_offset = r.u32();
        std::uint32_t blocks = r.u32();
        if (blocks > ts.ftq.capacity())
            r.fail(csprintf("FTQ holds %u blocks but this "
                            "configuration caps it at %u",
                            blocks, ts.ftq.capacity()));
        ts.ftq.clear();
        for (std::uint32_t i = 0; i < blocks; ++i) {
            BlockPrediction block;
            block.restore(r, params.engineParams.rasEntries);
            if (block.lengthInsts == 0)
                r.fail("FTQ block with zero length (corrupt "
                       "payload)");
            ts.ftq.push(block);
        }
        if (blocks == 0 ? head_offset != 0
                        : head_offset >=
                              ts.ftq.head().lengthInsts)
            r.fail(csprintf("FTQ head offset %u out of range",
                            head_offset));
        ts.ftq.setHeadOffset(head_offset);
    }
}

void
FrontEnd::reset()
{
    for (auto &ts : threads) {
        ts.ftq.clear();
        ts.correctPath = true;
        ts.icacheBlockedUntil = 0;
        ts.predictStallUntil = 0;
        if (ts.image != nullptr)
            ts.predPc = ts.image->program.entry();
    }
}

} // namespace smt
