#include "core/sim_stats.hh"

#include "sim/checkpoint.hh"

namespace smt
{

void
SimStats::save(CheckpointWriter &w) const
{
    w.u64(cycles);
    w.u64(fetchCycles);
    w.u64(instsFetched);
    w.u64(wrongPathFetched);
    fetchWidthHist.save(w);
    w.u64(bankConflicts);
    w.u64(icacheBlockEvents);
    w.u64(fetchBufferFullCycles);
    w.u64(blockPredictions);
    w.u64(instsCommitted);
    for (std::uint64_t c : threadCommitted)
        w.u64(c);
    w.u64(committedCtis);
    w.u64(committedCond);
    w.u64(committedTaken);
    w.u64(committedLoads);
    w.u64(committedStores);
    w.u64(instsSquashed);
    w.u64(mispredictsResolved);
    w.u64(bogusRedirects);
    w.u64(mispredCond);
    w.u64(mispredJump);
    w.u64(mispredCall);
    w.u64(mispredReturn);
    w.u64(mispredIndirect);
    w.u64(dispatched);
    w.u64(issued);
    w.u64(longLoadEvents);
    w.u64(cyclesSkipped);
    w.u64(sleepEvents);
    w.u64(maxSkipSpan);
}

void
SimStats::restore(CheckpointReader &r)
{
    cycles = r.u64();
    fetchCycles = r.u64();
    instsFetched = r.u64();
    wrongPathFetched = r.u64();
    fetchWidthHist.restore(r);
    bankConflicts = r.u64();
    icacheBlockEvents = r.u64();
    fetchBufferFullCycles = r.u64();
    blockPredictions = r.u64();
    instsCommitted = r.u64();
    for (std::uint64_t &c : threadCommitted)
        c = r.u64();
    committedCtis = r.u64();
    committedCond = r.u64();
    committedTaken = r.u64();
    committedLoads = r.u64();
    committedStores = r.u64();
    instsSquashed = r.u64();
    mispredictsResolved = r.u64();
    bogusRedirects = r.u64();
    mispredCond = r.u64();
    mispredJump = r.u64();
    mispredCall = r.u64();
    mispredReturn = r.u64();
    mispredIndirect = r.u64();
    dispatched = r.u64();
    issued = r.u64();
    longLoadEvents = r.u64();
    cyclesSkipped = r.u64();
    sleepEvents = r.u64();
    maxSkipSpan = r.u64();
}

} // namespace smt
