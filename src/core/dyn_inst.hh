/**
 * @file
 * Dynamic (in-flight) instruction record.
 *
 * DynInsts are owned by the per-thread ROB rings; every other
 * structure (fetch buffer, latches, issue queues, event wheel) refers
 * to them by pointer or by (thread, sequence) pair. Sequence numbers
 * are strictly increasing per thread (with holes after squashes, see
 * Rob::find), and instructions are only removed at the ends (commit
 * at the front, squash at the back), so pointers to live instructions
 * remain stable.
 */

#ifndef SMTFETCH_CORE_DYN_INST_HH
#define SMTFETCH_CORE_DYN_INST_HH

#include <cstdint>

#include "bpred/fetch_engine.hh"
#include "isa/static_inst.hh"
#include "util/types.hh"

namespace smt
{

/** Pipeline position of a dynamic instruction. */
enum class InstStage : unsigned char
{
    Fetched,    //!< in the fetch buffer
    Decoded,    //!< in the decode latch
    Renamed,    //!< in the rename latch
    Dispatched, //!< waiting in an issue queue
    Issued,     //!< executing in a functional unit
    Done,       //!< completed, waiting to commit
};

/** One in-flight dynamic instruction. */
struct DynInst
{
    ThreadID tid = invalidThread;
    InstSeqNum seq = 0;
    Addr pc = invalidAddr;

    /** Static properties; nullptr for wrong-path filler in unmapped
     *  address space. */
    const StaticInst *si = nullptr;

    /** Op class (copied; filler instructions behave as IntAlu). */
    OpClass op = OpClass::IntAlu;

    /** @name Oracle information (valid when !wrongPath). */
    /// @{
    bool wrongPath = false;
    bool oracleTaken = false;
    Addr oracleNext = invalidAddr;
    /// @}

    /** Effective address for loads/stores (pseudo on wrong path). */
    Addr memAddr = invalidAddr;

    /** @name Front-end prediction for this instruction. */
    /// @{
    bool predTaken = false;
    Addr predNext = invalidAddr;

    /** This instruction was the predicted end of its fetch block. */
    bool wasBlockEnd = false;

    /** Predicted block end, but the instruction is not a CTI. */
    bool bogusBlockEnd = false;

    /** pred != oracle; resolves (squash+redirect) at execute. */
    bool mispredicted = false;

    /** Engine state snapshot for recovery (CTIs and block ends). */
    EngineCheckpoint ckpt;
    /// @}

    /** @name Rename state. */
    /// @{
    RegIndex physSrc1 = invalidReg;
    RegIndex physSrc2 = invalidReg;
    RegIndex physDst = invalidReg;
    RegIndex prevPhysDst = invalidReg;
    RegIndex archDst = invalidReg;
    bool dstIsFp = false;
    /// @}

    InstStage stage = InstStage::Fetched;

    /** Counted in the ICOUNT front-section total right now? */
    bool inIcount = false;

    /** Global dispatch order stamp (issue age priority). */
    std::uint64_t dispatchStamp = 0;

    /** Cycle the instruction entered the fetch buffer. */
    Cycle fetchCycle = 0;

    /** Trace-stream index of this record (correct path only). */
    std::uint64_t traceIndex = 0;

    bool isControl() const { return smt::isControl(op); }
    bool isConditional() const { return smt::isConditional(op); }
    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isMemory() const { return smt::isMemory(op); }

    /** Does this instruction trigger a squash when it executes? */
    bool
    resolvesAtExecute() const
    {
        return mispredicted && !wrongPath;
    }
};

} // namespace smt

#endif // SMTFETCH_CORE_DYN_INST_HH
