/**
 * @file
 * Fetch target queue: the decoupling queue between the prediction
 * stage and the fetch stage (one per thread, 4 entries in Table 3).
 * The fetch stage may consume a block across several cycles, so the
 * head tracks a consumed-instruction offset.
 */

#ifndef SMTFETCH_CORE_FTQ_HH
#define SMTFETCH_CORE_FTQ_HH

#include <cstdint>

#include "bpred/fetch_engine.hh"
#include "util/logging.hh"
#include "util/ring_buffer.hh"
#include "util/types.hh"

namespace smt
{

/** Per-thread queue of predicted fetch blocks. */
class FetchTargetQueue
{
  public:
    explicit FetchTargetQueue(unsigned capacity = 4)
        : blocks(capacity)
    {
    }

    bool empty() const { return blocks.empty(); }
    bool full() const { return blocks.full(); }
    std::size_t size() const { return blocks.size(); }
    unsigned capacity() const { return blocks.capacity(); }

    void
    push(const BlockPrediction &block)
    {
        if (full())
            panic("FTQ overflow");
        blocks.push_back(block);
    }

    /** The block currently being fetched. */
    const BlockPrediction &
    head() const
    {
        if (empty())
            panic("FTQ head on empty queue");
        return blocks.front();
    }

    /** Next instruction address to fetch within the head block. */
    Addr
    headFetchPc() const
    {
        return head().start +
               static_cast<Addr>(headConsumed) * instBytes;
    }

    /** Instructions left in the head block. */
    unsigned
    headRemaining() const
    {
        return head().lengthInsts - headConsumed;
    }

    /** Offset (in instructions) already consumed from the head. */
    unsigned headOffset() const { return headConsumed; }

    /**
     * Instructions queued but not yet fetched, across every block.
     * The perfect-BP oracle path uses this as its trace lookahead
     * offset: the next unqueued instruction is this many correct-path
     * instructions past the fetch stage's read position.
     */
    std::uint64_t
    totalRemaining() const
    {
        std::uint64_t n = 0;
        for (std::size_t i = 0; i < blocks.size(); ++i)
            n += blocks[i].lengthInsts;
        return n - headConsumed;
    }

    /** Consume n instructions from the head; pops when exhausted. */
    void
    consume(unsigned n)
    {
        if (n > headRemaining())
            panic("FTQ over-consume: %u > %u", n, headRemaining());
        headConsumed += n;
        if (headConsumed == head().lengthInsts) {
            blocks.pop_front();
            headConsumed = 0;
        }
    }

    /** Squash: drop everything (redirect). */
    void
    clear()
    {
        blocks.clear();
        headConsumed = 0;
    }

    /** @name Checkpoint support (see FrontEnd::save/restore). */
    /// @{
    /** Queued block by position, 0 = head (serialization walks). */
    const BlockPrediction &blockAt(std::size_t idx) const
    {
        return blocks[idx];
    }

    /** Re-establish the consumed offset of a restored head block. */
    void
    setHeadOffset(unsigned consumed)
    {
        if (blocks.empty() ? consumed != 0
                           : consumed >= head().lengthInsts)
            panic("FTQ restored head offset %u out of range",
                  consumed);
        headConsumed = consumed;
    }
    /// @}

  private:
    RingBuffer<BlockPrediction> blocks;
    unsigned headConsumed = 0;
};

} // namespace smt

#endif // SMTFETCH_CORE_FTQ_HH
