/**
 * @file
 * PipelineState: the explicit shared state that pipeline stages
 * communicate through — inter-stage latches (fetch buffer, decode and
 * rename queues), per-thread ICOUNT counters and ROB occupancy, the
 * rotation/priority counters, and handles to the shared back-end
 * resources (ROB, rename unit, issue queues, execution unit,
 * front-end, fetch engine, memory hierarchy).
 *
 * Stages own no shared state themselves; everything a stage variant
 * could need lives here, which is what makes stages drop-in
 * replaceable.
 */

#ifndef SMTFETCH_CORE_PIPELINE_STATE_HH
#define SMTFETCH_CORE_PIPELINE_STATE_HH

#include <array>
#include <functional>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/front_end.hh"
#include "core/params.hh"
#include "core/sim_stats.hh"
#include "util/ring_buffer.hh"

namespace smt
{

class ExecUnit;
class FetchEngine;
class IssueQueues;
class MemoryHierarchy;
class RenameUnit;
class Rob;

/** Shared pipeline state, threaded through every stage's tick(). */
struct PipelineState
{
    PipelineState(const CoreParams &params, MemoryHierarchy &memory,
                  FetchEngine &engine, Rob &rob, RenameUnit &rename,
                  IssueQueues &iqs, ExecUnit &exec, FrontEnd &front,
                  SimStats &stats);

    /** @name Shared resources. */
    /// @{
    const CoreParams &params;
    MemoryHierarchy &memory;
    FetchEngine &engine;
    Rob &rob;
    RenameUnit &rename;
    IssueQueues &iqs;
    ExecUnit &exec;
    FrontEnd &front;
    SimStats &stats;
    /// @}

    /** @name Inter-stage latches (fixed-capacity ring storage; all
     *  slots preallocated, steady-state cycles never allocate). */
    /// @{
    FetchBuffer fetchBuffer;
    std::array<RingBuffer<DynInst *>, maxThreads> decodeQ;
    std::array<RingBuffer<DynInst *>, maxThreads> renameQ;
    /// @}

    /** @name Per-thread occupancy tracking. */
    /// @{
    /** ICOUNT front-section instruction counts. */
    std::array<std::uint32_t, maxThreads> icounts{};

    /** Dispatched-not-committed instructions per thread (ROB use). */
    std::array<unsigned, maxThreads> robCount{};
    /// @}

    /** @name Stage rotation / ordering counters. */
    /// @{
    std::uint64_t stampCounter = 0;
    unsigned commitRotate = 0;
    unsigned frontRotate = 0;
    /// @}

    Cycle currentCycle = 0;

    /** Observer for committed instructions (owned by SmtCore). */
    const std::function<void(const DynInst &)> *commitHook = nullptr;

    /** @name Per-cycle scratch shared between producer/consumer stages. */
    /// @{
    /** Execute's completions this cycle, consumed by writeback. */
    std::vector<std::pair<ThreadID, InstSeqNum>> completionScratch;

    /** Issue's selected instructions this cycle. */
    std::vector<DynInst *> issueScratch;
    /// @}

    /**
     * Squash all instructions of offender's thread younger than the
     * offender, repair engine state, and redirect fetch. Used by the
     * decode (bogus block end), issue (FLUSH policy) and writeback
     * (mispredict) stages.
     */
    void squashAfter(DynInst &offender);

  private:
    static void removeYounger(RingBuffer<DynInst *> &q,
                              InstSeqNum seq);
};

} // namespace smt

#endif // SMTFETCH_CORE_PIPELINE_STATE_HH
