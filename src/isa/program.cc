#include "isa/program.hh"

#include "util/logging.hh"

namespace smt
{

StaticProgram::StaticProgram(std::string name, Addr base)
    : benchName(std::move(name)), baseAddr(base)
{
    if (base % instBytes != 0)
        fatal("program base 0x%llx not instruction-aligned",
              (unsigned long long)base);
}

void
StaticProgram::appendBlock(std::vector<StaticInst> block_insts,
                           std::uint32_t function_id)
{
    if (finalized)
        panic("appendBlock after finalize");
    if (block_insts.empty())
        panic("empty basic block");

    BasicBlock bb;
    bb.startPC = limit();
    bb.numInsts = static_cast<std::uint32_t>(block_insts.size());
    bb.index = static_cast<std::uint32_t>(blocks.size());
    bb.functionId = function_id;

    Addr pc = bb.startPC;
    for (auto &si : block_insts) {
        si.pc = pc;
        si.blockIndex = bb.index;
        insts.push_back(si);
        pc += instBytes;
    }

    if (functions.size() <= function_id)
        functions.resize(function_id + 1);
    StaticFunction &fn = functions[function_id];
    if (fn.numBlocks == 0) {
        fn.firstBlock = bb.index;
        fn.entryPC = bb.startPC;
    }
    ++fn.numBlocks;

    blocks.push_back(bb);
}

void
StaticProgram::finalize(Addr entry_pc)
{
    if (finalized)
        panic("double finalize");
    if (insts.empty())
        panic("finalize of empty program");
    if (!contains(entry_pc))
        panic("entry pc outside program");
    entryPC = entry_pc;
    finalized = true;
}

double
StaticProgram::avgBlockSize() const
{
    if (blocks.empty())
        return 0.0;
    return static_cast<double>(insts.size()) /
           static_cast<double>(blocks.size());
}

} // namespace smt
