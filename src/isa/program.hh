/**
 * @file
 * StaticProgram: the complete static code image of one synthetic
 * benchmark — a contiguous flat array of StaticInsts plus basic-block
 * and function metadata. Serves as the trace-driven simulator's
 * basic-block dictionary for wrong-path fetch.
 */

#ifndef SMTFETCH_ISA_PROGRAM_HH
#define SMTFETCH_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/basic_block.hh"
#include "isa/static_inst.hh"
#include "util/types.hh"

namespace smt
{

/** A synthetic function: a contiguous run of basic blocks. */
struct StaticFunction
{
    std::uint32_t firstBlock = 0;
    std::uint32_t numBlocks = 0;
    Addr entryPC = invalidAddr;
};

/**
 * The static code image of one benchmark. Instructions occupy a
 * contiguous address range [base, base + size), so dictionary lookup is
 * O(1).
 */
class StaticProgram
{
  public:
    StaticProgram(std::string name, Addr base);

    /** Append a block's worth of instructions (builder interface). */
    void appendBlock(std::vector<StaticInst> insts,
                     std::uint32_t function_id);

    /** Finish construction: freeze metadata, validate layout. */
    void finalize(Addr entry_pc);

    /** Name of the modelled benchmark (e.g. "gzip"). */
    const std::string &name() const { return benchName; }

    /** First code address. */
    Addr base() const { return baseAddr; }

    /** One past the last code address. */
    Addr limit() const
    {
        return baseAddr + static_cast<Addr>(insts.size()) * instBytes;
    }

    /** Program entry point. */
    Addr entry() const { return entryPC; }

    /** Total static instruction count. */
    std::size_t numInsts() const { return insts.size(); }

    /** Total static basic-block count. */
    std::size_t numBlocks() const { return blocks.size(); }

    std::size_t numFunctions() const { return functions.size(); }

    /** Does the address fall inside this program's code? */
    bool
    contains(Addr pc) const
    {
        return pc >= baseAddr && pc < limit() &&
               ((pc - baseAddr) % instBytes) == 0;
    }

    /**
     * Dictionary lookup. @return the static instruction at pc, or
     * nullptr if pc is outside the program (wrong-path fetch into
     * unmapped space).
     */
    const StaticInst *
    lookup(Addr pc) const
    {
        if (!contains(pc))
            return nullptr;
        return &insts[(pc - baseAddr) / instBytes];
    }

    const BasicBlock &block(std::uint32_t idx) const
    {
        return blocks[idx];
    }

    const StaticFunction &function(std::uint32_t idx) const
    {
        return functions[idx];
    }

    /** Mutable instruction access for the builder (pre-finalize). */
    StaticInst &instAt(std::size_t flat_index) { return insts[flat_index]; }

    /** Mean static basic-block size in instructions. */
    double avgBlockSize() const;

  private:
    std::string benchName;
    Addr baseAddr;
    Addr entryPC = invalidAddr;
    bool finalized = false;

    std::vector<StaticInst> insts;
    std::vector<BasicBlock> blocks;
    std::vector<StaticFunction> functions;
};

} // namespace smt

#endif // SMTFETCH_ISA_PROGRAM_HH
