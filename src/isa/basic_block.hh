/**
 * @file
 * Static basic block metadata over the flat instruction array.
 */

#ifndef SMTFETCH_ISA_BASIC_BLOCK_HH
#define SMTFETCH_ISA_BASIC_BLOCK_HH

#include <cstdint>

#include "util/types.hh"

namespace smt
{

/**
 * A basic block: a maximal single-entry straight-line instruction
 * sequence. The last instruction may be a CTI; fall-through blocks
 * simply continue into the next block.
 */
struct BasicBlock
{
    /** Address of the first instruction. */
    Addr startPC = invalidAddr;

    /** Number of instructions (>= 1). */
    std::uint32_t numInsts = 0;

    /** Index of this block within the program. */
    std::uint32_t index = 0;

    /** Owning synthetic function. */
    std::uint32_t functionId = 0;

    /** Address one past the last instruction. */
    Addr
    endPC() const
    {
        return startPC + static_cast<Addr>(numInsts) * instBytes;
    }

    /** Address of the final (possibly CTI) instruction. */
    Addr lastPC() const { return endPC() - instBytes; }

    /** Does the block contain the given address? */
    bool
    contains(Addr pc) const
    {
        return pc >= startPC && pc < endPC();
    }
};

} // namespace smt

#endif // SMTFETCH_ISA_BASIC_BLOCK_HH
