#include "isa/static_inst.hh"

#include "util/logging.hh"

namespace smt
{

std::string
StaticInst::toString() const
{
    std::string s = csprintf("0x%llx: %s",
                             static_cast<unsigned long long>(pc),
                             std::string(opName(op)).c_str());
    if (isControl() && target != invalidAddr)
        s += csprintf(" -> 0x%llx",
                      static_cast<unsigned long long>(target));
    return s;
}

} // namespace smt
