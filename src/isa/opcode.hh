/**
 * @file
 * Synthetic instruction operation classes.
 *
 * The fetch unit cares about instruction boundaries and control flow,
 * not semantics, so instructions carry only an op class, register
 * operands and (for CTIs) static target information. Instructions are
 * fixed at 4 bytes like the Alpha ISA the paper traces.
 */

#ifndef SMTFETCH_ISA_OPCODE_HH
#define SMTFETCH_ISA_OPCODE_HH

#include <string_view>

namespace smt
{

/** Operation classes, mapped to functional-unit pools at issue. */
enum class OpClass : unsigned char
{
    IntAlu,     //!< 1-cycle integer op
    IntMult,    //!< long-latency integer op
    Load,       //!< memory read
    Store,      //!< memory write
    FpAlu,      //!< floating-point op
    CondBranch, //!< conditional direct branch
    Jump,       //!< unconditional direct jump
    CallDirect, //!< direct call (pushes RAS)
    Return,     //!< return (pops RAS)
    JumpIndirect, //!< indirect jump (target from register)
};

/** Number of OpClass enumerators (serialized-value validation). */
constexpr unsigned numOpClasses =
    static_cast<unsigned>(OpClass::JumpIndirect) + 1;

/** Is this op class any control-transfer instruction? */
constexpr bool
isControl(OpClass op)
{
    switch (op) {
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::CallDirect:
      case OpClass::Return:
      case OpClass::JumpIndirect:
        return true;
      default:
        return false;
    }
}

/** Is this op class conditionally taken? */
constexpr bool
isConditional(OpClass op)
{
    return op == OpClass::CondBranch;
}

/** Does this CTI always transfer control when executed? */
constexpr bool
isUnconditionalControl(OpClass op)
{
    return isControl(op) && op != OpClass::CondBranch;
}

/** Is this op class a memory access? */
constexpr bool
isMemory(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** Short mnemonic for debug output. */
constexpr std::string_view
opName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "alu";
      case OpClass::IntMult: return "mul";
      case OpClass::Load: return "ld";
      case OpClass::Store: return "st";
      case OpClass::FpAlu: return "fp";
      case OpClass::CondBranch: return "br";
      case OpClass::Jump: return "jmp";
      case OpClass::CallDirect: return "call";
      case OpClass::Return: return "ret";
      case OpClass::JumpIndirect: return "ijmp";
    }
    return "?";
}

} // namespace smt

#endif // SMTFETCH_ISA_OPCODE_HH
