/**
 * @file
 * Static instruction descriptor for the synthetic ISA.
 *
 * A StaticInst is one entry of the per-program "basic block dictionary"
 * the trace-driven simulator consults: the front-end can fetch any PC,
 * including wrong-path PCs, and always finds the static properties
 * (op class, register operands, control-flow type, primary target).
 */

#ifndef SMTFETCH_ISA_STATIC_INST_HH
#define SMTFETCH_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "util/types.hh"

namespace smt
{

/** One static (per-PC) instruction. */
struct StaticInst
{
    /** Program counter of this instruction. */
    Addr pc = invalidAddr;

    /** Operation class (FU pool, control/memory behaviour). */
    OpClass op = OpClass::IntAlu;

    /** Source register indices (invalidReg when unused). */
    RegIndex src1 = invalidReg;
    RegIndex src2 = invalidReg;

    /** Destination register index (invalidReg when none). */
    RegIndex dst = invalidReg;

    /**
     * Primary static target for direct CTIs (branch/jump/call). For
     * returns and indirect jumps the dynamic target comes from the
     * trace; this field then holds the most likely target (used only
     * for debug output).
     */
    Addr target = invalidAddr;

    /**
     * Behaviour-model handle: index into the owning workload's branch
     * model table (for CTIs) or memory model table (for loads/stores).
     */
    std::uint32_t modelId = 0;

    /** Index of the containing basic block. */
    std::uint32_t blockIndex = 0;

    bool isControl() const { return smt::isControl(op); }
    bool isConditional() const { return smt::isConditional(op); }
    bool isMemory() const { return smt::isMemory(op); }
    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isCall() const { return op == OpClass::CallDirect; }
    bool isReturn() const { return op == OpClass::Return; }
    bool isIndirect() const
    {
        return op == OpClass::JumpIndirect || op == OpClass::Return;
    }

    /** Sequential successor address. */
    Addr nextPc() const { return pc + instBytes; }

    /** Human-readable rendering for debug traces. */
    std::string toString() const;
};

} // namespace smt

#endif // SMTFETCH_ISA_STATIC_INST_HH
