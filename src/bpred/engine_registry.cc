#include "bpred/engine_registry.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"

namespace smt
{

std::uint64_t
EngineParamSpec::get(const EngineParams &p) const
{
    if (type == Type::Bool)
        return (p.*boolField) ? 1 : 0;
    return p.*uintField;
}

void
EngineParamSpec::set(EngineParams &p, std::uint64_t value) const
{
    if (type == Type::Bool)
        p.*boolField = value != 0;
    else
        p.*uintField = static_cast<unsigned>(value);
}

EngineParamSpec
EngineParamSpec::uintSpec(const char *key, const char *help,
                          unsigned EngineParams::*field,
                          std::uint64_t min_value,
                          std::uint64_t max_value)
{
    EngineParamSpec s;
    s.key = key;
    s.help = help;
    s.type = Type::UInt;
    s.uintField = field;
    s.minValue = min_value;
    s.maxValue = max_value;
    return s;
}

EngineParamSpec
EngineParamSpec::boolSpec(const char *key, const char *help,
                          bool EngineParams::*field)
{
    EngineParamSpec s;
    s.key = key;
    s.help = help;
    s.type = Type::Bool;
    s.boolField = field;
    s.minValue = 0;
    s.maxValue = 1;
    return s;
}

std::string
normalizeEngineToken(const std::string &name)
{
    std::string s;
    s.reserve(name.size());
    for (char c : name) {
        if (c == '+' || c == '_' || c == '-' || c == ' ')
            continue;
        s += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
}

EngineRegistry::EngineRegistry()
{
    // Explicit, ordered registration: the EngineKind values are dense
    // ids, so the order here is part of the checkpoint/wire contract.
    registerPaperEngines(*this);
    registerTageEngine(*this);
    registerPresetEngines(*this);
}

const EngineRegistry &
EngineRegistry::instance()
{
    static const EngineRegistry reg;
    return reg;
}

void
EngineRegistry::add(EngineDescriptor d)
{
    if (static_cast<std::size_t>(d.kind) != engines.size())
        panic("engine \"%s\" registered out of order: kind %u at "
              "slot %zu",
              d.name, static_cast<unsigned>(d.kind), engines.size());
    if (d.name == nullptr || !d.factory)
        panic("engine registration %zu lacks a name or factory",
              engines.size());
    std::string token = normalizeEngineToken(d.name);
    for (const EngineDescriptor &e : engines) {
        if (normalizeEngineToken(e.name) == token)
            panic("engine name \"%s\" collides with \"%s\"", d.name,
                  e.name);
    }
    engines.push_back(std::move(d));
}

const EngineDescriptor &
EngineRegistry::descriptor(EngineKind kind) const
{
    std::size_t i = static_cast<std::size_t>(kind);
    if (i >= engines.size())
        panic("engine kind %u is not registered",
              static_cast<unsigned>(kind));
    return engines[i];
}

const EngineDescriptor *
EngineRegistry::find(const std::string &name) const
{
    std::string token = normalizeEngineToken(name);
    for (const EngineDescriptor &e : engines) {
        if (normalizeEngineToken(e.name) == token)
            return &e;
        for (const std::string &alias : e.aliases)
            if (normalizeEngineToken(alias) == token)
                return &e;
    }
    return nullptr;
}

const EngineParamSpec *
EngineRegistry::findParam(const std::string &key) const
{
    for (const EngineDescriptor &e : engines)
        for (const EngineParamSpec &p : e.params)
            if (key == p.key)
                return &p;
    return nullptr;
}

std::string
EngineRegistry::knownNames() const
{
    std::string s;
    for (const EngineDescriptor &e : engines) {
        if (!s.empty())
            s += ", ";
        s += e.name;
    }
    return s;
}

void
applyEnginePreset(EngineKind kind, EngineParams &params)
{
    const EngineDescriptor &d =
        EngineRegistry::instance().descriptor(kind);
    if (d.preset != nullptr)
        d.preset(params);
}

const std::vector<EngineKind> &
allEngines()
{
    static const std::vector<EngineKind> engines = [] {
        std::vector<EngineKind> v;
        for (const EngineDescriptor &e :
             EngineRegistry::instance().all())
            v.push_back(e.kind);
        return v;
    }();
    return engines;
}

const std::vector<EngineKind> &
paperEngines()
{
    static const std::vector<EngineKind> engines = {
        EngineKind::GshareBtb, EngineKind::GskewFtb,
        EngineKind::Stream};
    return engines;
}

} // namespace smt
