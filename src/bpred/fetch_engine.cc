#include "bpred/fetch_engine.hh"

#include "bpred/engine_registry.hh"
#include "sim/checkpoint.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"

namespace smt
{

const char *
engineName(EngineKind kind)
{
    return EngineRegistry::instance().descriptor(kind).name;
}

const std::string &
FetchEngine::checkpointTag() const
{
    return EngineRegistry::instance().descriptor(kindId).checkpointTag;
}

FetchEngine::FetchEngine(const EngineParams &p, EngineKind kind)
    : params(p), kindId(kind)
{
    for (unsigned t = 0; t < maxThreads; ++t) {
        path[t] = PathHistory(p.dolcDepth, p.dolcOlderBits,
                              p.dolcLastBits, p.dolcCurrentBits);
        commitPath[t] = path[t];
        ras[t] = ReturnAddressStack(p.rasEntries);
    }
}

void
FetchEngine::setThreadProgram(ThreadID tid, const StaticProgram *program)
{
    programs[tid] = program;
    formation[tid] = FormationState{};
    if (program != nullptr) {
        formation[tid].blockStart = program->entry();
        formation[tid].started = true;
    }
}

EngineCheckpoint
FetchEngine::makeCheckpoint(ThreadID tid, Addr start) const
{
    EngineCheckpoint c;
    c.blockStart = start;
    c.ghist = history[tid].snapshot();
    c.ras = ras[tid].snapshot();
    c.path = path[tid].snapshot();
    return c;
}

BlockPrediction
FetchEngine::sequentialBlock(ThreadID tid, Addr start, unsigned length)
{
    BlockPrediction b;
    b.start = start;
    b.lengthInsts = length;
    b.endsWithCti = false;
    b.predTaken = false;
    // A table miss is the least-confident prediction of all.
    b.lowConfidence = true;
    b.nextFetchPc = start + static_cast<Addr>(length) * instBytes;
    b.ckpt = makeCheckpoint(tid, start);
    ++engineStats.seqMissBlocks;
    return b;
}

void
FetchEngine::recover(ThreadID tid, const EngineCheckpoint &ckpt,
                     const StaticInst *offender, bool actual_taken,
                     Addr actual_target)
{
    (void)actual_target;
    ++engineStats.recoveries;
    history[tid].restore(ckpt.ghist);
    ras[tid].restore(ckpt.ras);
    path[tid].restore(ckpt.path);

    if (offender == nullptr || !offender->isControl())
        return;

    // Re-apply the offender's actual semantics on the repaired state.
    if (offender->isConditional()) {
        history[tid].shift(actual_taken);
    } else if (offender->isCall() && actual_taken) {
        ras[tid].push(offender->nextPc());
    } else if (offender->isReturn() && actual_taken) {
        ras[tid].pop();
    }
}

void
FetchEngine::reset()
{
    engineStats = EngineStats{};
    for (unsigned t = 0; t < maxThreads; ++t) {
        history[t].reset();
        ras[t].reset();
        path[t].reset();
        commitPath[t].reset();
        formation[t] = FormationState{};
        if (programs[t] != nullptr) {
            formation[t].blockStart = programs[t]->entry();
            formation[t].started = true;
        }
    }
}

void
FetchEngine::registerStats(StatsRegistry &reg) const
{
    reg.addCounter("engine.blockPredictions", "fetch blocks predicted",
                   &engineStats.blockPredictions);
    reg.addCounter("engine.tableHits", "BTB/FTB/stream table hits",
                   &engineStats.tableHits);
    reg.addCounter("engine.secondLevelHits", "stream L2 hits",
                   &engineStats.secondLevelHits);
    reg.addCounter("engine.seqMissBlocks",
                   "sequential fallback blocks on table miss",
                   &engineStats.seqMissBlocks);
    reg.addCounter("engine.condPredictions",
                   "conditional direction predictions",
                   &engineStats.condPredictions);
    reg.addCounter("engine.rasPushes", "return-address-stack pushes",
                   &engineStats.rasPushes);
    reg.addCounter("engine.rasPops", "return-address-stack pops",
                   &engineStats.rasPops);
    reg.addCounter("engine.recoveries", "squash recoveries",
                   &engineStats.recoveries);
    reg.addCounter("engine.streamsFormed",
                   "commit-side blocks/streams formed",
                   &engineStats.streamsFormed);
}

void
EngineCheckpoint::save(CheckpointWriter &w) const
{
    w.u64(blockStart);
    w.u64(ghist);
    w.u16(ras.tos);
    if (ras.entries != nullptr) {
        w.u32(static_cast<std::uint32_t>(ras.entries->size()));
        for (Addr a : *ras.entries)
            w.u64(a);
    } else {
        w.u32(0);
    }
    for (Addr a : path.ring)
        w.u64(a);
    w.u8(path.pos);
}

void
EngineCheckpoint::restore(CheckpointReader &r,
                          unsigned expected_ras_entries)
{
    blockStart = r.u64();
    ghist = r.u64();
    ras.tos = r.u16();
    std::uint32_t n =
        static_cast<std::uint32_t>(r.checkCount(r.u32(), 8, "RAS"));
    if (n > 0 && expected_ras_entries != 0 &&
        n != expected_ras_entries)
        r.fail(csprintf("RAS snapshot holds %u entries but this "
                        "configuration uses %u (configuration "
                        "mismatch)",
                        n, expected_ras_entries));
    if (n > 0) {
        if (ras.tos >= n)
            r.fail(csprintf("RAS snapshot top-of-stack %u out of "
                            "range [0, %u)",
                            ras.tos, n));
        std::vector<Addr> stack(n);
        for (auto &a : stack)
            a = r.u64();
        ras.entries = std::make_shared<const std::vector<Addr>>(
            std::move(stack));
    } else {
        if (ras.tos != 0)
            r.fail(csprintf("RAS snapshot with no entries but "
                            "top-of-stack %u",
                            ras.tos));
        ras.entries = nullptr;
    }
    for (Addr &a : path.ring)
        a = r.u64();
    path.pos = r.u8();
    if (path.pos >= PathHistory::maxDepth)
        r.fail(csprintf("path-history position %u out of range "
                        "[0, %u)",
                        path.pos, PathHistory::maxDepth));
}

void
BlockPrediction::save(CheckpointWriter &w) const
{
    w.u64(start);
    w.u32(lengthInsts);
    w.b(endsWithCti);
    w.u8(static_cast<std::uint8_t>(endType));
    w.b(predTaken);
    w.u64(predTarget);
    w.u64(nextFetchPc);
    w.b(lowConfidence);
    ckpt.save(w);
}

void
BlockPrediction::restore(CheckpointReader &r,
                         unsigned expected_ras_entries)
{
    start = r.u64();
    lengthInsts = r.u32();
    endsWithCti = r.b();
    endType = checkpointReadOpClass(r);
    predTaken = r.b();
    predTarget = r.u64();
    nextFetchPc = r.u64();
    lowConfidence = r.b();
    ckpt.restore(r, expected_ras_entries);
}

void
FetchEngine::save(CheckpointWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(kind()));
    w.u64(engineStats.blockPredictions);
    w.u64(engineStats.tableHits);
    w.u64(engineStats.secondLevelHits);
    w.u64(engineStats.seqMissBlocks);
    w.u64(engineStats.condPredictions);
    w.u64(engineStats.rasPushes);
    w.u64(engineStats.rasPops);
    w.u64(engineStats.recoveries);
    w.u64(engineStats.streamsFormed);
    for (unsigned t = 0; t < maxThreads; ++t) {
        w.u64(history[t].snapshot());
        ras[t].save(w);
        PathHistory::Snapshot ps = path[t].snapshot();
        for (Addr a : ps.ring)
            w.u64(a);
        w.u8(ps.pos);
        PathHistory::Snapshot cs = commitPath[t].snapshot();
        for (Addr a : cs.ring)
            w.u64(a);
        w.u8(cs.pos);
        const FormationState &f = formation[t];
        w.u64(f.blockStart);
        w.b(f.started);
        for (Addr a : f.extraStarts)
            w.u64(a);
        w.u32(f.numExtras);
    }
}

void
FetchEngine::restore(CheckpointReader &r)
{
    std::uint8_t k = r.u8();
    if (k != static_cast<std::uint8_t>(kind()))
        r.fail(csprintf("fetch-engine kind %u does not match this "
                        "configuration's %u (configuration "
                        "mismatch)",
                        k, static_cast<unsigned>(kind())));
    engineStats.blockPredictions = r.u64();
    engineStats.tableHits = r.u64();
    engineStats.secondLevelHits = r.u64();
    engineStats.seqMissBlocks = r.u64();
    engineStats.condPredictions = r.u64();
    engineStats.rasPushes = r.u64();
    engineStats.rasPops = r.u64();
    engineStats.recoveries = r.u64();
    engineStats.streamsFormed = r.u64();
    auto read_path = [&r]() {
        PathHistory::Snapshot s;
        for (Addr &a : s.ring)
            a = r.u64();
        s.pos = r.u8();
        if (s.pos >= PathHistory::maxDepth)
            r.fail(csprintf("path-history position %u out of range "
                            "[0, %u)",
                            s.pos, PathHistory::maxDepth));
        return s;
    };
    for (unsigned t = 0; t < maxThreads; ++t) {
        history[t].restore(r.u64());
        ras[t].restore(r);
        path[t].restore(read_path());
        commitPath[t].restore(read_path());
        FormationState &f = formation[t];
        f.blockStart = r.u64();
        f.started = r.b();
        for (Addr &a : f.extraStarts)
            a = r.u64();
        f.numExtras = r.u32();
        if (f.numExtras > f.extraStarts.size())
            r.fail(csprintf("formation extra-start count %u exceeds "
                            "the %zu slots",
                            f.numExtras, f.extraStarts.size()));
    }
}

void
FetchEngine::capFormationStart(Addr &start, Addr cti_pc, unsigned cap)
{
    // Commit-side block/stream formation: segments longer than the
    // length field cannot be stored; skip whole cap-sized chunks so
    // the tail segment ending at the CTI remains encodable.
    const Addr cap_bytes = static_cast<Addr>(cap) * instBytes;
    while (cti_pc + instBytes - start > cap_bytes)
        start += cap_bytes;
}

// ---------------------------------------------------------------------
// gshare + BTB
// ---------------------------------------------------------------------

BtbFetchEngine::BtbFetchEngine(const EngineParams &p)
    : FetchEngine(p, EngineKind::GshareBtb),
      gshare(p.gshareEntries, p.gshareHistoryBits),
      btb(p.btbEntries, p.btbWays)
{
}

BlockPrediction
BtbFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;
    const StaticProgram *prog = programs[tid];

    // Predecode scan: find the first CTI after pc (the single
    // direction/target prediction this cycle applies to it).
    const StaticInst *cti = nullptr;
    unsigned len = 0;
    for (unsigned i = 0; i < params.btbScanCap; ++i) {
        const StaticInst *si =
            prog ? prog->lookup(pc + static_cast<Addr>(i) * instBytes)
                 : nullptr;
        if (si == nullptr) {
            // Unmapped (deep wrong path): fetch sequentially.
            if (i == 0)
                return sequentialBlock(tid, pc, params.missBlockInsts);
            return sequentialBlock(tid, pc, i);
        }
        ++len;
        if (si->isControl()) {
            cti = si;
            break;
        }
    }

    if (cti == nullptr)
        return sequentialBlock(tid, pc, len);

    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = len;
    b.endsWithCti = true;
    b.endType = cti->op;
    b.ckpt = makeCheckpoint(tid, pc);

    const BtbEntry *entry = btb.lookup(cti->pc);
    if (entry != nullptr)
        ++engineStats.tableHits;

    switch (cti->op) {
      case OpClass::CondBranch: {
        ++engineStats.condPredictions;
        bool dir = gshare.predict(cti->pc, history[tid].value());
        b.lowConfidence = gshare.weak(cti->pc, history[tid].value());
        history[tid].shift(dir);
        if (dir && entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
        } else {
            // Not-taken prediction, or taken with no target available.
            b.predTaken = false;
        }
        break;
      }
      case OpClass::Return: {
        b.predTaken = true;
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      }
      case OpClass::CallDirect: {
        if (entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
            ras[tid].push(cti->nextPc());
            ++engineStats.rasPushes;
        }
        break;
      }
      default: { // Jump, JumpIndirect
        if (entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
        }
        break;
      }
    }

    if (b.predTaken && b.predTarget == invalidAddr) {
        // Cold RAS/table: no usable target; predict fall-through.
        b.predTaken = false;
    }
    b.nextFetchPc = b.predTaken ? b.predTarget : b.fallThrough();
    return b;
}

void
BtbFetchEngine::commitCti(ThreadID tid, const StaticInst &si, bool taken,
                          Addr actual_target, bool was_block_end,
                          bool was_mispredicted,
                          std::uint64_t pred_ghist)
{
    (void)tid;
    (void)was_mispredicted;
    if (si.isConditional() && was_block_end)
        gshare.update(si.pc, pred_ghist, taken);
    // Classic allocation policy: install targets of taken CTIs.
    // Returns are covered by the RAS.
    if (taken && !si.isReturn())
        btb.update(si.pc, actual_target, si.op);
    if (taken)
        ++engineStats.streamsFormed;
}

void
BtbFetchEngine::reset()
{
    FetchEngine::reset();
    gshare.reset();
    btb.reset();
}

void
BtbFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    gshare.save(w);
    btb.save(w);
}

void
BtbFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    gshare.restore(r);
    btb.restore(r);
}

// ---------------------------------------------------------------------
// gskew + FTB
// ---------------------------------------------------------------------

FtbFetchEngine::FtbFetchEngine(const EngineParams &p)
    : FetchEngine(p, EngineKind::GskewFtb),
      gskew(p.gskewEntriesPerBank, p.gskewHistoryBits),
      ftb(p.ftbEntries, p.ftbWays, p.ftbMaxBlock)
{
}

BlockPrediction
FtbFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;

    const FtbEntry *entry = ftb.lookup(pc);
    if (entry == nullptr)
        return sequentialBlock(tid, pc, params.missBlockInsts);

    ++engineStats.tableHits;
    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = entry->lengthInsts;
    b.endsWithCti = true;
    b.endType = entry->endType;
    b.ckpt = makeCheckpoint(tid, pc);

    switch (entry->endType) {
      case OpClass::CondBranch: {
        ++engineStats.condPredictions;
        bool dir = gskew.predict(entry->endPc(pc), history[tid].value());
        b.lowConfidence =
            gskew.weak(entry->endPc(pc), history[tid].value());
        history[tid].shift(dir);
        b.predTaken = dir;
        b.predTarget = dir ? entry->target : invalidAddr;
        break;
      }
      case OpClass::Return: {
        b.predTaken = true;
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      }
      case OpClass::CallDirect: {
        b.predTaken = true;
        b.predTarget = entry->target;
        ras[tid].push(b.fallThrough());
        ++engineStats.rasPushes;
        break;
      }
      default: {
        b.predTaken = true;
        b.predTarget = entry->target;
        break;
      }
    }

    if (b.predTaken && b.predTarget == invalidAddr) {
        // Cold RAS/table: no usable target; predict fall-through.
        b.predTaken = false;
    }
    b.nextFetchPc = b.predTaken ? b.predTarget : b.fallThrough();
    return b;
}

void
FtbFetchEngine::commitCti(ThreadID tid, const StaticInst &si, bool taken,
                          Addr actual_target, bool was_block_end,
                          bool was_mispredicted,
                          std::uint64_t pred_ghist)
{
    (void)was_mispredicted;
    if (si.isConditional() && was_block_end)
        gskew.update(si.pc, pred_ghist, taken);

    FormationState &f = formation[tid];
    if (!f.started)
        return;

    if (taken) {
        capFormationStart(f.blockStart, si.pc, ftb.maxBlock());
        unsigned len = static_cast<unsigned>(
            (si.pc + instBytes - f.blockStart) / instBytes);
        ftb.update(f.blockStart, len, actual_target, si.op);
        ++engineStats.streamsFormed;
        f.blockStart = actual_target;
    } else {
        // Not taken. If the FTB's current block for this start ends
        // exactly here, fetch falls through to a new block; formation
        // follows. Otherwise the branch stays embedded and the block
        // keeps growing toward the next taken branch.
        capFormationStart(f.blockStart, si.pc, ftb.maxBlock());
        const FtbEntry *cur = ftb.lookup(f.blockStart);
        if (cur != nullptr && cur->endPc(f.blockStart) == si.pc)
            f.blockStart = si.nextPc();
    }
}

void
FtbFetchEngine::reset()
{
    FetchEngine::reset();
    gskew.reset();
    ftb.reset();
}

void
FtbFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    gskew.save(w);
    ftb.save(w);
}

void
FtbFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    gskew.restore(r);
    ftb.restore(r);
}

// ---------------------------------------------------------------------
// stream
// ---------------------------------------------------------------------

StreamFetchEngine::StreamFetchEngine(const EngineParams &p)
    : FetchEngine(p, EngineKind::Stream),
      streams(p.streamL1Entries, p.streamL1Ways, p.streamL2Entries,
              p.streamL2Ways, p.streamMaxLength)
{
}

BlockPrediction
StreamFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;

    StreamPrediction sp = streams.predict(pc, path[tid]);
    if (!sp.hit)
        return sequentialBlock(tid, pc, params.missBlockInsts);

    ++engineStats.tableHits;
    if (sp.fromSecondLevel)
        ++engineStats.secondLevelHits;

    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = sp.entry.lengthInsts;
    b.endsWithCti = true;
    b.endType = sp.entry.endType;
    b.ckpt = makeCheckpoint(tid, pc);

    // A stream by definition ends in a taken CTI.
    b.predTaken = true;
    switch (sp.entry.endType) {
      case OpClass::Return:
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      case OpClass::CallDirect:
        b.predTarget = sp.entry.target;
        ras[tid].push(b.fallThrough());
        ++engineStats.rasPushes;
        break;
      default:
        b.predTarget = sp.entry.target;
        break;
    }
    if (sp.entry.endType == OpClass::CondBranch)
        ++engineStats.condPredictions;

    // Path history records the current stream's start.
    path[tid].push(pc);

    if (b.predTarget == invalidAddr) {
        // Cold RAS: no usable return target; fall through.
        b.predTaken = false;
        b.nextFetchPc = b.fallThrough();
    } else {
        b.nextFetchPc = b.predTarget;
    }
    return b;
}

void
StreamFetchEngine::commitCti(ThreadID tid, const StaticInst &si,
                             bool taken, Addr actual_target,
                             bool was_block_end, bool was_mispredicted,
                             std::uint64_t pred_ghist)
{
    (void)was_block_end;
    (void)pred_ghist;
    FormationState &f = formation[tid];
    if (!f.started)
        return;

    if (!taken) {
        // Not-taken branches live inside streams. If the fetch unit
        // mispredicted this one as a stream end, it restarted at the
        // fall-through address; remember that restart point so the
        // suffix stream gets its own table entry at closure.
        if (was_mispredicted && si.isConditional() &&
            f.numExtras < f.extraStarts.size()) {
            f.extraStarts[f.numExtras++] = si.nextPc();
        }
        return;
    }

    capFormationStart(f.blockStart, si.pc, streams.maxStream());
    unsigned len = static_cast<unsigned>(
        (si.pc + instBytes - f.blockStart) / instBytes);
    streams.update(f.blockStart, len, actual_target, si.op,
                   commitPath[tid]);

    // Train the suffix streams for mid-stream restart points.
    for (unsigned i = 0; i < f.numExtras; ++i) {
        Addr extra = f.extraStarts[i];
        if (extra > f.blockStart && extra <= si.pc) {
            unsigned extra_len = static_cast<unsigned>(
                (si.pc + instBytes - extra) / instBytes);
            streams.update(extra, extra_len, actual_target, si.op,
                           commitPath[tid]);
        }
    }
    f.numExtras = 0;

    commitPath[tid].push(f.blockStart);
    ++engineStats.streamsFormed;
    f.blockStart = actual_target;
}

void
StreamFetchEngine::recover(ThreadID tid, const EngineCheckpoint &ckpt,
                           const StaticInst *offender, bool actual_taken,
                           Addr actual_target)
{
    FetchEngine::recover(tid, ckpt, offender, actual_taken,
                         actual_target);
    // The current stream (starting at the block's start address) is
    // still the path's most recent element after repair.
    if (offender != nullptr && offender->isControl() &&
        ckpt.blockStart != invalidAddr) {
        path[tid].push(ckpt.blockStart);
    }
}

void
StreamFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    streams.save(w);
}

void
StreamFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    streams.restore(r);
}

void
StreamFetchEngine::reset()
{
    FetchEngine::reset();
    streams.reset();
}

// ---------------------------------------------------------------------
// Registry bindings
// ---------------------------------------------------------------------

std::unique_ptr<FetchEngine>
makeEngine(EngineKind kind, const EngineParams &params)
{
    const EngineDescriptor &d =
        EngineRegistry::instance().descriptor(kind);
    EngineParams p = params;
    if (d.preset != nullptr)
        d.preset(p);
    std::unique_ptr<FetchEngine> engine = d.factory(p);
    // Preset engines construct a base class; the registry id keeps
    // their own name and checkpoint tag.
    engine->kindId = kind;
    return engine;
}

namespace
{

using PSpec = EngineParamSpec;

std::vector<EngineParamSpec>
lineEngineParams()
{
    return {
        PSpec::uintSpec("gshareEntries", "gshare counter entries",
                        &EngineParams::gshareEntries, 1, 1u << 26),
        PSpec::uintSpec("gshareHistoryBits", "gshare history bits",
                        &EngineParams::gshareHistoryBits, 1, 64),
        PSpec::uintSpec("btbEntries", "BTB entries",
                        &EngineParams::btbEntries, 1, 1u << 24),
        PSpec::uintSpec("btbWays", "BTB associativity",
                        &EngineParams::btbWays, 1, 64),
        PSpec::uintSpec("btbScanCap",
                        "predecode CTI scan cap (insts)",
                        &EngineParams::btbScanCap, 1, 256),
        PSpec::uintSpec("rasEntries", "return-address-stack entries",
                        &EngineParams::rasEntries, 1, 4096),
        PSpec::uintSpec("missBlockInsts",
                        "sequential fallback block length",
                        &EngineParams::missBlockInsts, 1, 256),
    };
}

} // namespace

void
registerPaperEngines(EngineRegistry &reg)
{
    {
        EngineDescriptor d;
        d.kind = EngineKind::GshareBtb;
        d.name = "gshare+BTB";
        d.description = "conventional line-oriented fetch unit: "
                        "gshare direction predictor + BTB";
        d.checkpointTag = "engine.gshare";
        d.aliases = {"gshare"};
        d.factory = [](const EngineParams &p) {
            return std::unique_ptr<FetchEngine>(
                std::make_unique<BtbFetchEngine>(p));
        };
        d.params = lineEngineParams();
        reg.add(std::move(d));
    }
    {
        EngineDescriptor d;
        d.kind = EngineKind::GskewFtb;
        d.name = "gskew+FTB";
        d.description = "block-oriented fetch unit: gskew direction "
                        "predictor + fetch target buffer";
        d.checkpointTag = "engine.gskew";
        d.aliases = {"gskew"};
        d.factory = [](const EngineParams &p) {
            return std::unique_ptr<FetchEngine>(
                std::make_unique<FtbFetchEngine>(p));
        };
        d.params = {
            PSpec::uintSpec("gskewEntriesPerBank",
                            "gskew entries per bank",
                            &EngineParams::gskewEntriesPerBank, 1,
                            1u << 26),
            PSpec::uintSpec("gskewHistoryBits", "gskew history bits",
                            &EngineParams::gskewHistoryBits, 1, 64),
            PSpec::uintSpec("ftbEntries", "FTB entries",
                            &EngineParams::ftbEntries, 1, 1u << 24),
            PSpec::uintSpec("ftbWays", "FTB associativity",
                            &EngineParams::ftbWays, 1, 64),
            PSpec::uintSpec("ftbMaxBlock",
                            "max FTB block length (insts)",
                            &EngineParams::ftbMaxBlock, 1, 256),
            PSpec::uintSpec("rasEntries",
                            "return-address-stack entries",
                            &EngineParams::rasEntries, 1, 4096),
            PSpec::uintSpec("missBlockInsts",
                            "sequential fallback block length",
                            &EngineParams::missBlockInsts, 1, 256),
        };
        reg.add(std::move(d));
    }
    {
        EngineDescriptor d;
        d.kind = EngineKind::Stream;
        d.name = "stream";
        d.description = "stream fetch unit: cascaded stream "
                        "predictor naming whole instruction streams";
        d.checkpointTag = "engine.stream";
        d.factory = [](const EngineParams &p) {
            return std::unique_ptr<FetchEngine>(
                std::make_unique<StreamFetchEngine>(p));
        };
        d.params = {
            PSpec::uintSpec("streamL1Entries", "stream L1 entries",
                            &EngineParams::streamL1Entries, 1,
                            1u << 24),
            PSpec::uintSpec("streamL1Ways", "stream L1 associativity",
                            &EngineParams::streamL1Ways, 1, 64),
            PSpec::uintSpec("streamL2Entries", "stream L2 entries",
                            &EngineParams::streamL2Entries, 1,
                            1u << 24),
            PSpec::uintSpec("streamL2Ways", "stream L2 associativity",
                            &EngineParams::streamL2Ways, 1, 64),
            PSpec::uintSpec("streamMaxLength",
                            "max stream length (insts)",
                            &EngineParams::streamMaxLength, 1, 256),
            PSpec::uintSpec("dolcDepth", "DOLC path depth",
                            &EngineParams::dolcDepth, 1, 16),
            PSpec::uintSpec("dolcOlderBits", "DOLC older bits",
                            &EngineParams::dolcOlderBits, 1, 16),
            PSpec::uintSpec("dolcLastBits", "DOLC last bits",
                            &EngineParams::dolcLastBits, 1, 16),
            PSpec::uintSpec("dolcCurrentBits", "DOLC current bits",
                            &EngineParams::dolcCurrentBits, 1, 16),
            PSpec::uintSpec("rasEntries",
                            "return-address-stack entries",
                            &EngineParams::rasEntries, 1, 4096),
            PSpec::uintSpec("missBlockInsts",
                            "sequential fallback block length",
                            &EngineParams::missBlockInsts, 1, 256),
        };
        reg.add(std::move(d));
    }
}

void
registerPresetEngines(EngineRegistry &reg)
{
    {
        EngineDescriptor d;
        d.kind = EngineKind::PerfectBp;
        d.name = "perfect-bp";
        d.description = "oracle upper bound: correct-path blocks "
                        "come straight from the trace (gshare+BTB "
                        "base, its predictions unused)";
        d.checkpointTag = "engine.perfect-bp";
        d.aliases = {"perfectbp", "oracle-bp"};
        d.factory = [](const EngineParams &p) {
            return std::unique_ptr<FetchEngine>(
                std::make_unique<BtbFetchEngine>(p));
        };
        d.preset = [](EngineParams &p) { p.perfectBp = true; };
        d.params = [] {
            std::vector<EngineParamSpec> v = lineEngineParams();
            v.push_back(PSpec::boolSpec(
                "perfectBp",
                "serve correct-path blocks from the trace oracle",
                &EngineParams::perfectBp));
            return v;
        }();
        reg.add(std::move(d));
    }
    {
        EngineDescriptor d;
        d.kind = EngineKind::PerfectL1i;
        d.name = "perfect-l1i";
        d.description = "oracle upper bound: every I-cache access "
                        "hits with no bank conflicts (gshare+BTB "
                        "base)";
        d.checkpointTag = "engine.perfect-l1i";
        d.aliases = {"perfecticache", "perfect-icache", "oracle-l1i"};
        d.factory = [](const EngineParams &p) {
            return std::unique_ptr<FetchEngine>(
                std::make_unique<BtbFetchEngine>(p));
        };
        d.preset = [](EngineParams &p) { p.perfectIcache = true; };
        d.params = [] {
            std::vector<EngineParamSpec> v = lineEngineParams();
            v.push_back(PSpec::boolSpec(
                "perfectIcache",
                "every I-cache access hits, no bank conflicts",
                &EngineParams::perfectIcache));
            return v;
        }();
        reg.add(std::move(d));
    }
    {
        EngineDescriptor d;
        d.kind = EngineKind::Adaptive;
        d.name = "adaptive";
        d.description = "gshare+BTB base with an adaptive fetch "
                        "rate: low-confidence blocks fetch at most "
                        "adaptiveLowWidth instructions per cycle";
        d.checkpointTag = "engine.adaptive";
        d.aliases = {"adaptive-rate", "adaptivefetch"};
        d.factory = [](const EngineParams &p) {
            return std::unique_ptr<FetchEngine>(
                std::make_unique<BtbFetchEngine>(p));
        };
        d.preset = [](EngineParams &p) { p.adaptiveFetch = true; };
        d.params = [] {
            std::vector<EngineParamSpec> v = lineEngineParams();
            v.push_back(PSpec::boolSpec(
                "adaptiveFetch",
                "cap low-confidence blocks' fetch rate",
                &EngineParams::adaptiveFetch));
            v.push_back(PSpec::uintSpec(
                "adaptiveLowWidth",
                "fetch chunk cap for low-confidence blocks",
                &EngineParams::adaptiveLowWidth, 1, 64));
            return v;
        }();
        reg.add(std::move(d));
    }
}

} // namespace smt
