#include "bpred/fetch_engine.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"

namespace smt
{

const char *
engineName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::GshareBtb: return "gshare+BTB";
      case EngineKind::GskewFtb: return "gskew+FTB";
      case EngineKind::Stream: return "stream";
    }
    return "?";
}

FetchEngine::FetchEngine(const EngineParams &p)
    : params(p)
{
    for (unsigned t = 0; t < maxThreads; ++t) {
        path[t] = PathHistory(p.dolcDepth, p.dolcOlderBits,
                              p.dolcLastBits, p.dolcCurrentBits);
        commitPath[t] = path[t];
        ras[t] = ReturnAddressStack(p.rasEntries);
    }
}

void
FetchEngine::setThreadProgram(ThreadID tid, const StaticProgram *program)
{
    programs[tid] = program;
    formation[tid] = FormationState{};
    if (program != nullptr) {
        formation[tid].blockStart = program->entry();
        formation[tid].started = true;
    }
}

EngineCheckpoint
FetchEngine::makeCheckpoint(ThreadID tid, Addr start) const
{
    EngineCheckpoint c;
    c.blockStart = start;
    c.ghist = history[tid].snapshot();
    c.ras = ras[tid].snapshot();
    c.path = path[tid].snapshot();
    return c;
}

BlockPrediction
FetchEngine::sequentialBlock(ThreadID tid, Addr start, unsigned length)
{
    BlockPrediction b;
    b.start = start;
    b.lengthInsts = length;
    b.endsWithCti = false;
    b.predTaken = false;
    b.nextFetchPc = start + static_cast<Addr>(length) * instBytes;
    b.ckpt = makeCheckpoint(tid, start);
    ++engineStats.seqMissBlocks;
    return b;
}

void
FetchEngine::recover(ThreadID tid, const EngineCheckpoint &ckpt,
                     const StaticInst *offender, bool actual_taken,
                     Addr actual_target)
{
    (void)actual_target;
    ++engineStats.recoveries;
    history[tid].restore(ckpt.ghist);
    ras[tid].restore(ckpt.ras);
    path[tid].restore(ckpt.path);

    if (offender == nullptr || !offender->isControl())
        return;

    // Re-apply the offender's actual semantics on the repaired state.
    if (offender->isConditional()) {
        history[tid].shift(actual_taken);
    } else if (offender->isCall() && actual_taken) {
        ras[tid].push(offender->nextPc());
    } else if (offender->isReturn() && actual_taken) {
        ras[tid].pop();
    }
}

void
FetchEngine::reset()
{
    engineStats = EngineStats{};
    for (unsigned t = 0; t < maxThreads; ++t) {
        history[t].reset();
        ras[t].reset();
        path[t].reset();
        commitPath[t].reset();
        formation[t] = FormationState{};
        if (programs[t] != nullptr) {
            formation[t].blockStart = programs[t]->entry();
            formation[t].started = true;
        }
    }
}

void
FetchEngine::registerStats(StatsRegistry &reg) const
{
    reg.addCounter("engine.blockPredictions", "fetch blocks predicted",
                   &engineStats.blockPredictions);
    reg.addCounter("engine.tableHits", "BTB/FTB/stream table hits",
                   &engineStats.tableHits);
    reg.addCounter("engine.secondLevelHits", "stream L2 hits",
                   &engineStats.secondLevelHits);
    reg.addCounter("engine.seqMissBlocks",
                   "sequential fallback blocks on table miss",
                   &engineStats.seqMissBlocks);
    reg.addCounter("engine.condPredictions",
                   "conditional direction predictions",
                   &engineStats.condPredictions);
    reg.addCounter("engine.rasPushes", "return-address-stack pushes",
                   &engineStats.rasPushes);
    reg.addCounter("engine.rasPops", "return-address-stack pops",
                   &engineStats.rasPops);
    reg.addCounter("engine.recoveries", "squash recoveries",
                   &engineStats.recoveries);
    reg.addCounter("engine.streamsFormed",
                   "commit-side blocks/streams formed",
                   &engineStats.streamsFormed);
}

void
EngineCheckpoint::save(CheckpointWriter &w) const
{
    w.u64(blockStart);
    w.u64(ghist);
    w.u16(ras.tos);
    if (ras.entries != nullptr) {
        w.u32(static_cast<std::uint32_t>(ras.entries->size()));
        for (Addr a : *ras.entries)
            w.u64(a);
    } else {
        w.u32(0);
    }
    for (Addr a : path.ring)
        w.u64(a);
    w.u8(path.pos);
}

void
EngineCheckpoint::restore(CheckpointReader &r,
                          unsigned expected_ras_entries)
{
    blockStart = r.u64();
    ghist = r.u64();
    ras.tos = r.u16();
    std::uint32_t n =
        static_cast<std::uint32_t>(r.checkCount(r.u32(), 8, "RAS"));
    if (n > 0 && expected_ras_entries != 0 &&
        n != expected_ras_entries)
        r.fail(csprintf("RAS snapshot holds %u entries but this "
                        "configuration uses %u (configuration "
                        "mismatch)",
                        n, expected_ras_entries));
    if (n > 0) {
        if (ras.tos >= n)
            r.fail(csprintf("RAS snapshot top-of-stack %u out of "
                            "range [0, %u)",
                            ras.tos, n));
        std::vector<Addr> stack(n);
        for (auto &a : stack)
            a = r.u64();
        ras.entries = std::make_shared<const std::vector<Addr>>(
            std::move(stack));
    } else {
        if (ras.tos != 0)
            r.fail(csprintf("RAS snapshot with no entries but "
                            "top-of-stack %u",
                            ras.tos));
        ras.entries = nullptr;
    }
    for (Addr &a : path.ring)
        a = r.u64();
    path.pos = r.u8();
    if (path.pos >= PathHistory::maxDepth)
        r.fail(csprintf("path-history position %u out of range "
                        "[0, %u)",
                        path.pos, PathHistory::maxDepth));
}

void
BlockPrediction::save(CheckpointWriter &w) const
{
    w.u64(start);
    w.u32(lengthInsts);
    w.b(endsWithCti);
    w.u8(static_cast<std::uint8_t>(endType));
    w.b(predTaken);
    w.u64(predTarget);
    w.u64(nextFetchPc);
    ckpt.save(w);
}

void
BlockPrediction::restore(CheckpointReader &r,
                         unsigned expected_ras_entries)
{
    start = r.u64();
    lengthInsts = r.u32();
    endsWithCti = r.b();
    endType = checkpointReadOpClass(r);
    predTaken = r.b();
    predTarget = r.u64();
    nextFetchPc = r.u64();
    ckpt.restore(r, expected_ras_entries);
}

void
FetchEngine::save(CheckpointWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(kind()));
    w.u64(engineStats.blockPredictions);
    w.u64(engineStats.tableHits);
    w.u64(engineStats.secondLevelHits);
    w.u64(engineStats.seqMissBlocks);
    w.u64(engineStats.condPredictions);
    w.u64(engineStats.rasPushes);
    w.u64(engineStats.rasPops);
    w.u64(engineStats.recoveries);
    w.u64(engineStats.streamsFormed);
    for (unsigned t = 0; t < maxThreads; ++t) {
        w.u64(history[t].snapshot());
        ras[t].save(w);
        PathHistory::Snapshot ps = path[t].snapshot();
        for (Addr a : ps.ring)
            w.u64(a);
        w.u8(ps.pos);
        PathHistory::Snapshot cs = commitPath[t].snapshot();
        for (Addr a : cs.ring)
            w.u64(a);
        w.u8(cs.pos);
        const FormationState &f = formation[t];
        w.u64(f.blockStart);
        w.b(f.started);
        for (Addr a : f.extraStarts)
            w.u64(a);
        w.u32(f.numExtras);
    }
}

void
FetchEngine::restore(CheckpointReader &r)
{
    std::uint8_t k = r.u8();
    if (k != static_cast<std::uint8_t>(kind()))
        r.fail(csprintf("fetch-engine kind %u does not match this "
                        "configuration's %u (configuration "
                        "mismatch)",
                        k, static_cast<unsigned>(kind())));
    engineStats.blockPredictions = r.u64();
    engineStats.tableHits = r.u64();
    engineStats.secondLevelHits = r.u64();
    engineStats.seqMissBlocks = r.u64();
    engineStats.condPredictions = r.u64();
    engineStats.rasPushes = r.u64();
    engineStats.rasPops = r.u64();
    engineStats.recoveries = r.u64();
    engineStats.streamsFormed = r.u64();
    auto read_path = [&r]() {
        PathHistory::Snapshot s;
        for (Addr &a : s.ring)
            a = r.u64();
        s.pos = r.u8();
        if (s.pos >= PathHistory::maxDepth)
            r.fail(csprintf("path-history position %u out of range "
                            "[0, %u)",
                            s.pos, PathHistory::maxDepth));
        return s;
    };
    for (unsigned t = 0; t < maxThreads; ++t) {
        history[t].restore(r.u64());
        ras[t].restore(r);
        path[t].restore(read_path());
        commitPath[t].restore(read_path());
        FormationState &f = formation[t];
        f.blockStart = r.u64();
        f.started = r.b();
        for (Addr &a : f.extraStarts)
            a = r.u64();
        f.numExtras = r.u32();
        if (f.numExtras > f.extraStarts.size())
            r.fail(csprintf("formation extra-start count %u exceeds "
                            "the %zu slots",
                            f.numExtras, f.extraStarts.size()));
    }
}

void
FetchEngine::capFormationStart(Addr &start, Addr cti_pc, unsigned cap)
{
    // Commit-side block/stream formation: segments longer than the
    // length field cannot be stored; skip whole cap-sized chunks so
    // the tail segment ending at the CTI remains encodable.
    const Addr cap_bytes = static_cast<Addr>(cap) * instBytes;
    while (cti_pc + instBytes - start > cap_bytes)
        start += cap_bytes;
}

// ---------------------------------------------------------------------
// gshare + BTB
// ---------------------------------------------------------------------

BtbFetchEngine::BtbFetchEngine(const EngineParams &p)
    : FetchEngine(p), gshare(p.gshareEntries, p.gshareHistoryBits),
      btb(p.btbEntries, p.btbWays)
{
}

BlockPrediction
BtbFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;
    const StaticProgram *prog = programs[tid];

    // Predecode scan: find the first CTI after pc (the single
    // direction/target prediction this cycle applies to it).
    const StaticInst *cti = nullptr;
    unsigned len = 0;
    for (unsigned i = 0; i < params.btbScanCap; ++i) {
        const StaticInst *si =
            prog ? prog->lookup(pc + static_cast<Addr>(i) * instBytes)
                 : nullptr;
        if (si == nullptr) {
            // Unmapped (deep wrong path): fetch sequentially.
            if (i == 0)
                return sequentialBlock(tid, pc, params.missBlockInsts);
            return sequentialBlock(tid, pc, i);
        }
        ++len;
        if (si->isControl()) {
            cti = si;
            break;
        }
    }

    if (cti == nullptr)
        return sequentialBlock(tid, pc, len);

    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = len;
    b.endsWithCti = true;
    b.endType = cti->op;
    b.ckpt = makeCheckpoint(tid, pc);

    const BtbEntry *entry = btb.lookup(cti->pc);
    if (entry != nullptr)
        ++engineStats.tableHits;

    switch (cti->op) {
      case OpClass::CondBranch: {
        ++engineStats.condPredictions;
        bool dir = gshare.predict(cti->pc, history[tid].value());
        history[tid].shift(dir);
        if (dir && entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
        } else {
            // Not-taken prediction, or taken with no target available.
            b.predTaken = false;
        }
        break;
      }
      case OpClass::Return: {
        b.predTaken = true;
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      }
      case OpClass::CallDirect: {
        if (entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
            ras[tid].push(cti->nextPc());
            ++engineStats.rasPushes;
        }
        break;
      }
      default: { // Jump, JumpIndirect
        if (entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
        }
        break;
      }
    }

    if (b.predTaken && b.predTarget == invalidAddr) {
        // Cold RAS/table: no usable target; predict fall-through.
        b.predTaken = false;
    }
    b.nextFetchPc = b.predTaken ? b.predTarget : b.fallThrough();
    return b;
}

void
BtbFetchEngine::commitCti(ThreadID tid, const StaticInst &si, bool taken,
                          Addr actual_target, bool was_block_end,
                          bool was_mispredicted,
                          std::uint64_t pred_ghist)
{
    (void)tid;
    (void)was_mispredicted;
    if (si.isConditional() && was_block_end)
        gshare.update(si.pc, pred_ghist, taken);
    // Classic allocation policy: install targets of taken CTIs.
    // Returns are covered by the RAS.
    if (taken && !si.isReturn())
        btb.update(si.pc, actual_target, si.op);
    if (taken)
        ++engineStats.streamsFormed;
}

void
BtbFetchEngine::reset()
{
    FetchEngine::reset();
    gshare.reset();
    btb.reset();
}

void
BtbFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    gshare.save(w);
    btb.save(w);
}

void
BtbFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    gshare.restore(r);
    btb.restore(r);
}

// ---------------------------------------------------------------------
// gskew + FTB
// ---------------------------------------------------------------------

FtbFetchEngine::FtbFetchEngine(const EngineParams &p)
    : FetchEngine(p),
      gskew(p.gskewEntriesPerBank, p.gskewHistoryBits),
      ftb(p.ftbEntries, p.ftbWays, p.ftbMaxBlock)
{
}

BlockPrediction
FtbFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;

    const FtbEntry *entry = ftb.lookup(pc);
    if (entry == nullptr)
        return sequentialBlock(tid, pc, params.missBlockInsts);

    ++engineStats.tableHits;
    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = entry->lengthInsts;
    b.endsWithCti = true;
    b.endType = entry->endType;
    b.ckpt = makeCheckpoint(tid, pc);

    switch (entry->endType) {
      case OpClass::CondBranch: {
        ++engineStats.condPredictions;
        bool dir = gskew.predict(entry->endPc(pc), history[tid].value());
        history[tid].shift(dir);
        b.predTaken = dir;
        b.predTarget = dir ? entry->target : invalidAddr;
        break;
      }
      case OpClass::Return: {
        b.predTaken = true;
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      }
      case OpClass::CallDirect: {
        b.predTaken = true;
        b.predTarget = entry->target;
        ras[tid].push(b.fallThrough());
        ++engineStats.rasPushes;
        break;
      }
      default: {
        b.predTaken = true;
        b.predTarget = entry->target;
        break;
      }
    }

    if (b.predTaken && b.predTarget == invalidAddr) {
        // Cold RAS/table: no usable target; predict fall-through.
        b.predTaken = false;
    }
    b.nextFetchPc = b.predTaken ? b.predTarget : b.fallThrough();
    return b;
}

void
FtbFetchEngine::commitCti(ThreadID tid, const StaticInst &si, bool taken,
                          Addr actual_target, bool was_block_end,
                          bool was_mispredicted,
                          std::uint64_t pred_ghist)
{
    (void)was_mispredicted;
    if (si.isConditional() && was_block_end)
        gskew.update(si.pc, pred_ghist, taken);

    FormationState &f = formation[tid];
    if (!f.started)
        return;

    if (taken) {
        capFormationStart(f.blockStart, si.pc, ftb.maxBlock());
        unsigned len = static_cast<unsigned>(
            (si.pc + instBytes - f.blockStart) / instBytes);
        ftb.update(f.blockStart, len, actual_target, si.op);
        ++engineStats.streamsFormed;
        f.blockStart = actual_target;
    } else {
        // Not taken. If the FTB's current block for this start ends
        // exactly here, fetch falls through to a new block; formation
        // follows. Otherwise the branch stays embedded and the block
        // keeps growing toward the next taken branch.
        capFormationStart(f.blockStart, si.pc, ftb.maxBlock());
        const FtbEntry *cur = ftb.lookup(f.blockStart);
        if (cur != nullptr && cur->endPc(f.blockStart) == si.pc)
            f.blockStart = si.nextPc();
    }
}

void
FtbFetchEngine::reset()
{
    FetchEngine::reset();
    gskew.reset();
    ftb.reset();
}

void
FtbFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    gskew.save(w);
    ftb.save(w);
}

void
FtbFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    gskew.restore(r);
    ftb.restore(r);
}

// ---------------------------------------------------------------------
// stream
// ---------------------------------------------------------------------

StreamFetchEngine::StreamFetchEngine(const EngineParams &p)
    : FetchEngine(p),
      streams(p.streamL1Entries, p.streamL1Ways, p.streamL2Entries,
              p.streamL2Ways, p.streamMaxLength)
{
}

BlockPrediction
StreamFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;

    StreamPrediction sp = streams.predict(pc, path[tid]);
    if (!sp.hit)
        return sequentialBlock(tid, pc, params.missBlockInsts);

    ++engineStats.tableHits;
    if (sp.fromSecondLevel)
        ++engineStats.secondLevelHits;

    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = sp.entry.lengthInsts;
    b.endsWithCti = true;
    b.endType = sp.entry.endType;
    b.ckpt = makeCheckpoint(tid, pc);

    // A stream by definition ends in a taken CTI.
    b.predTaken = true;
    switch (sp.entry.endType) {
      case OpClass::Return:
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      case OpClass::CallDirect:
        b.predTarget = sp.entry.target;
        ras[tid].push(b.fallThrough());
        ++engineStats.rasPushes;
        break;
      default:
        b.predTarget = sp.entry.target;
        break;
    }
    if (sp.entry.endType == OpClass::CondBranch)
        ++engineStats.condPredictions;

    // Path history records the current stream's start.
    path[tid].push(pc);

    if (b.predTarget == invalidAddr) {
        // Cold RAS: no usable return target; fall through.
        b.predTaken = false;
        b.nextFetchPc = b.fallThrough();
    } else {
        b.nextFetchPc = b.predTarget;
    }
    return b;
}

void
StreamFetchEngine::commitCti(ThreadID tid, const StaticInst &si,
                             bool taken, Addr actual_target,
                             bool was_block_end, bool was_mispredicted,
                             std::uint64_t pred_ghist)
{
    (void)was_block_end;
    (void)pred_ghist;
    FormationState &f = formation[tid];
    if (!f.started)
        return;

    if (!taken) {
        // Not-taken branches live inside streams. If the fetch unit
        // mispredicted this one as a stream end, it restarted at the
        // fall-through address; remember that restart point so the
        // suffix stream gets its own table entry at closure.
        if (was_mispredicted && si.isConditional() &&
            f.numExtras < f.extraStarts.size()) {
            f.extraStarts[f.numExtras++] = si.nextPc();
        }
        return;
    }

    capFormationStart(f.blockStart, si.pc, streams.maxStream());
    unsigned len = static_cast<unsigned>(
        (si.pc + instBytes - f.blockStart) / instBytes);
    streams.update(f.blockStart, len, actual_target, si.op,
                   commitPath[tid]);

    // Train the suffix streams for mid-stream restart points.
    for (unsigned i = 0; i < f.numExtras; ++i) {
        Addr extra = f.extraStarts[i];
        if (extra > f.blockStart && extra <= si.pc) {
            unsigned extra_len = static_cast<unsigned>(
                (si.pc + instBytes - extra) / instBytes);
            streams.update(extra, extra_len, actual_target, si.op,
                           commitPath[tid]);
        }
    }
    f.numExtras = 0;

    commitPath[tid].push(f.blockStart);
    ++engineStats.streamsFormed;
    f.blockStart = actual_target;
}

void
StreamFetchEngine::recover(ThreadID tid, const EngineCheckpoint &ckpt,
                           const StaticInst *offender, bool actual_taken,
                           Addr actual_target)
{
    FetchEngine::recover(tid, ckpt, offender, actual_taken,
                         actual_target);
    // The current stream (starting at the block's start address) is
    // still the path's most recent element after repair.
    if (offender != nullptr && offender->isControl() &&
        ckpt.blockStart != invalidAddr) {
        path[tid].push(ckpt.blockStart);
    }
}

void
StreamFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    streams.save(w);
}

void
StreamFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    streams.restore(r);
}

void
StreamFetchEngine::reset()
{
    FetchEngine::reset();
    streams.reset();
}

// ---------------------------------------------------------------------

std::unique_ptr<FetchEngine>
makeEngine(EngineKind kind, const EngineParams &params)
{
    switch (kind) {
      case EngineKind::GshareBtb:
        return std::make_unique<BtbFetchEngine>(params);
      case EngineKind::GskewFtb:
        return std::make_unique<FtbFetchEngine>(params);
      case EngineKind::Stream:
        return std::make_unique<StreamFetchEngine>(params);
    }
    panic("unknown engine kind");
}

} // namespace smt
