/**
 * @file
 * Fetch target buffer (Reinman, Calder & Austin).
 *
 * Unlike a BTB, which describes single branches, an FTB entry
 * describes a whole *fetch block*: a run of instructions starting at
 * the tagged address and ending at the block's terminating branch. A
 * block may embed conditional branches that were not taken when the
 * block formed ("ignored" branches), which is what lets the FTB
 * deliver more than one basic block per prediction.
 */

#ifndef SMTFETCH_BPRED_FTB_HH
#define SMTFETCH_BPRED_FTB_HH

#include <cstdint>

#include "bpred/assoc_table.hh"
#include "isa/opcode.hh"
#include "util/types.hh"

namespace smt
{

/** Fetch-block descriptor. */
struct FtbEntry
{
    /** Block length in instructions, terminator included. */
    std::uint16_t lengthInsts = 0;

    /** Target of the terminating branch when taken. */
    Addr target = invalidAddr;

    /** Type of the terminating branch. */
    OpClass endType = OpClass::CondBranch;

    /** PC of the terminating branch given the block start. */
    Addr
    endPc(Addr start) const
    {
        return start + static_cast<Addr>(lengthInsts - 1) * instBytes;
    }

    /** Sequential address after the block (fall-through). */
    Addr
    fallThrough(Addr start) const
    {
        return start + static_cast<Addr>(lengthInsts) * instBytes;
    }
};

/** Paper configuration: 2K entries, 4-way associative. */
class Ftb
{
  public:
    /**
     * @param entries Total entry count.
     * @param ways Set associativity.
     * @param max_block Maximum encodable block length in instructions
     *        (the fall-through field width limit).
     */
    Ftb(unsigned entries, unsigned ways, unsigned max_block);

    /** @return fetch block starting at pc, or nullptr on miss. */
    const FtbEntry *lookup(Addr start_pc);

    /**
     * Install/refresh the block starting at start_pc (commit-side
     * block formation). Lengths above maxBlock() are rejected.
     * @return true if the entry was stored.
     */
    bool update(Addr start_pc, unsigned length_insts, Addr target,
                OpClass end_type);

    unsigned maxBlock() const { return maxBlockInsts; }

    void reset() { table.reset(); }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::uint64_t indexFor(Addr pc) const { return pc >> 2; }
    std::uint64_t
    tagFor(Addr pc) const
    {
        return pc >> (2 + table.indexBits());
    }

    AssocTable<FtbEntry> table;
    unsigned maxBlockInsts;
};

} // namespace smt

#endif // SMTFETCH_BPRED_FTB_HH
