#include "bpred/btb.hh"

namespace smt
{

Btb::Btb(unsigned entries, unsigned ways)
    : table(entries, ways)
{
}

std::uint64_t
Btb::indexFor(Addr pc) const
{
    return pc >> 2;
}

std::uint64_t
Btb::tagFor(Addr pc) const
{
    return pc >> (2 + table.indexBits());
}

const BtbEntry *
Btb::lookup(Addr pc)
{
    return table.lookup(indexFor(pc), tagFor(pc));
}

void
Btb::update(Addr pc, Addr target, OpClass cti_type)
{
    table.insert(indexFor(pc), tagFor(pc), BtbEntry{target, cti_type});
}

} // namespace smt
