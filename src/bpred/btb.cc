#include "bpred/btb.hh"

namespace smt
{

Btb::Btb(unsigned entries, unsigned ways)
    : table(entries, ways)
{
}

std::uint64_t
Btb::indexFor(Addr pc) const
{
    return pc >> 2;
}

std::uint64_t
Btb::tagFor(Addr pc) const
{
    return pc >> (2 + table.indexBits());
}

const BtbEntry *
Btb::lookup(Addr pc)
{
    return table.lookup(indexFor(pc), tagFor(pc));
}

void
Btb::update(Addr pc, Addr target, OpClass cti_type)
{
    table.insert(indexFor(pc), tagFor(pc), BtbEntry{target, cti_type});
}

void
Btb::save(CheckpointWriter &w) const
{
    table.save(w, [](CheckpointWriter &cw, const BtbEntry &e) {
        cw.u64(e.target);
        cw.u8(static_cast<std::uint8_t>(e.ctiType));
    });
}

void
Btb::restore(CheckpointReader &r)
{
    table.restore(r, [](CheckpointReader &cr, BtbEntry &e) {
        e.target = cr.u64();
        e.ctiType = checkpointReadOpClass(cr);
    });
}

} // namespace smt
