#include "bpred/stream_pred.hh"

namespace smt
{

StreamPredictor::StreamPredictor(unsigned l1_entries, unsigned l1_ways,
                                 unsigned l2_entries, unsigned l2_ways,
                                 unsigned max_stream)
    : level1(l1_entries, l1_ways), level2(l2_entries, l2_ways),
      maxStreamInsts(max_stream)
{
    if (max_stream < 2)
        fatal("stream length cap must be at least 2");
}

StreamPrediction
StreamPredictor::predict(Addr start_pc, const PathHistory &path)
{
    StreamPrediction pred;

    std::uint64_t l2_index = path.index(start_pc, level2.indexBits());
    if (StreamEntry *e = level2.lookup(l2_index, l2Tag(start_pc))) {
        pred.hit = true;
        pred.fromSecondLevel = true;
        pred.entry = *e;
        return pred;
    }
    if (StreamEntry *e = level1.lookup(l1Index(start_pc),
                                       l1Tag(start_pc))) {
        pred.hit = true;
        pred.entry = *e;
        return pred;
    }
    return pred;
}

void
StreamPredictor::trainEntry(AssocTable<StreamEntry> &table,
                            std::uint64_t index, std::uint64_t tag,
                            unsigned length_insts, Addr target,
                            OpClass end_type)
{
    if (StreamEntry *e = table.lookup(index, tag)) {
        if (e->lengthInsts == length_insts && e->target == target) {
            e->confidence.increment();
        } else if (e->confidence.raw() == 0) {
            e->lengthInsts = static_cast<std::uint16_t>(length_insts);
            e->target = target;
            e->endType = end_type;
            e->confidence = SatCounter(2, 1);
        } else {
            e->confidence.decrement();
        }
        return;
    }
    StreamEntry fresh;
    fresh.lengthInsts = static_cast<std::uint16_t>(length_insts);
    fresh.target = target;
    fresh.endType = end_type;
    fresh.confidence = SatCounter(2, 1);
    table.insert(index, tag, fresh);
}

bool
StreamPredictor::update(Addr start_pc, unsigned length_insts,
                        Addr target, OpClass end_type,
                        const PathHistory &path)
{
    if (length_insts == 0 || length_insts > maxStreamInsts)
        return false;

    trainEntry(level1, l1Index(start_pc), l1Tag(start_pc), length_insts,
               target, end_type);

    // Second level is trained when the first level's current view
    // disagrees with the architectural stream: path correlation then
    // disambiguates the conflicting shapes.
    const StreamEntry *l1_now =
        level1.probe(l1Index(start_pc), l1Tag(start_pc));
    bool l1_agrees = l1_now != nullptr &&
                     l1_now->lengthInsts == length_insts &&
                     l1_now->target == target;
    std::uint64_t l2_index = path.index(start_pc, level2.indexBits());
    bool l2_present =
        level2.probe(l2_index, l2Tag(start_pc)) != nullptr;
    if (!l1_agrees || l2_present) {
        trainEntry(level2, l2_index, l2Tag(start_pc), length_insts,
                   target, end_type);
    }
    return true;
}

void
StreamPredictor::reset()
{
    level1.reset();
    level2.reset();
}

namespace
{

void
saveStreamEntry(CheckpointWriter &w, const StreamEntry &e)
{
    w.u16(e.lengthInsts);
    w.u64(e.target);
    w.u8(static_cast<std::uint8_t>(e.endType));
    w.u8(e.confidence.raw());
}

void
loadStreamEntry(CheckpointReader &r, StreamEntry &e)
{
    e.lengthInsts = r.u16();
    e.target = r.u64();
    e.endType = checkpointReadOpClass(r);
    std::uint8_t conf = r.u8();
    if (conf > e.confidence.max())
        r.fail(csprintf("stream confidence byte holds %u, max is "
                        "%u (corrupt payload)",
                        conf, e.confidence.max()));
    e.confidence.setRaw(conf);
}

} // namespace

void
StreamPredictor::save(CheckpointWriter &w) const
{
    level1.save(w, saveStreamEntry);
    level2.save(w, saveStreamEntry);
}

void
StreamPredictor::restore(CheckpointReader &r)
{
    level1.restore(r, loadStreamEntry);
    level2.restore(r, loadStreamEntry);
}

} // namespace smt
