#include "bpred/history.hh"

#include "util/logging.hh"

namespace smt
{

PathHistory::PathHistory(unsigned depth, unsigned older_bits,
                         unsigned last_bits, unsigned current_bits)
    : depth(depth), olderBits(older_bits), lastBits(last_bits),
      currentBits(current_bits)
{
    if (depth == 0 || depth > maxDepth)
        panic("PathHistory depth %u out of range", depth);
}

void
PathHistory::push(Addr a)
{
    state.pos = static_cast<std::uint8_t>((state.pos + 1) % depth);
    state.ring[state.pos] = a;
}

std::uint64_t
PathHistory::index(Addr current, unsigned index_bits) const
{
    // Current address contributes the most bits, the previous start
    // fewer, older starts least — decreasing path correlation weight.
    std::uint64_t idx = bits(current >> 2, 0, currentBits);
    unsigned rot = currentBits > 4 ? currentBits - 4 : 1;

    unsigned p = state.pos;
    std::uint64_t last = state.ring[p];
    idx ^= bits(last >> 2, 0, lastBits) << (rot % index_bits);

    for (unsigned i = 1; i < depth; ++i) {
        unsigned q = (p + depth - i) % depth;
        std::uint64_t contrib = bits(state.ring[q] >> 2, 0, olderBits);
        idx ^= contrib << ((rot + i * olderBits) % index_bits);
    }
    return idx & mask(index_bits);
}

} // namespace smt
