/**
 * @file
 * Speculative per-thread predictor history state: global (direction)
 * history and DOLC path history. Both support cheap checkpointing so
 * the front-end can repair them on squash.
 */

#ifndef SMTFETCH_BPRED_HISTORY_HH
#define SMTFETCH_BPRED_HISTORY_HH

#include <array>
#include <cstdint>

#include "util/bitfield.hh"
#include "util/types.hh"

namespace smt
{

/** Global branch-outcome shift register (per thread). */
class GlobalHistory
{
  public:
    void shift(bool taken) { hist = (hist << 1) | (taken ? 1 : 0); }

    std::uint64_t value() const { return hist; }

    std::uint64_t snapshot() const { return hist; }
    void restore(std::uint64_t snap) { hist = snap; }
    void reset() { hist = 0; }

  private:
    std::uint64_t hist = 0;
};

/**
 * DOLC (Depth-OLder-Last-Current) path history: a ring of the last
 * `depth` stream/block start addresses. The index function combines
 * `currentBits` of the current address, `lastBits` of the most recent
 * history entry, and `olderBits` of each older entry, per the stream
 * predictor's DOLC 16-2-4-10 configuration.
 */
class PathHistory
{
  public:
    static constexpr unsigned maxDepth = 16;

    /** Full-state snapshot (small POD, copied per fetch block). */
    struct Snapshot
    {
        std::array<Addr, maxDepth> ring{};
        std::uint8_t pos = 0;
    };

    /** Default: the paper's DOLC 16-2-4-10 configuration. */
    PathHistory() : PathHistory(16, 2, 4, 10) {}

    PathHistory(unsigned depth, unsigned older_bits, unsigned last_bits,
                unsigned current_bits);

    /** Record a new block/stream start address. */
    void push(Addr a);

    /** Compute the path-correlated index for the given start. */
    std::uint64_t index(Addr current, unsigned index_bits) const;

    Snapshot snapshot() const { return state; }
    void restore(const Snapshot &snap) { state = snap; }
    void reset() { state = Snapshot{}; }

  private:
    unsigned depth;
    unsigned olderBits;
    unsigned lastBits;
    unsigned currentBits;
    Snapshot state;
};

} // namespace smt

#endif // SMTFETCH_BPRED_HISTORY_HH
