/**
 * @file
 * Branch target buffer: tagged set-associative cache of CTI targets
 * and types (Lee & Smith). Shared among threads; indexed by PC.
 */

#ifndef SMTFETCH_BPRED_BTB_HH
#define SMTFETCH_BPRED_BTB_HH

#include <cstdint>

#include "bpred/assoc_table.hh"
#include "isa/opcode.hh"
#include "util/types.hh"

namespace smt
{

/** BTB payload: target and CTI type of the branch at the tagged PC. */
struct BtbEntry
{
    Addr target = invalidAddr;
    OpClass ctiType = OpClass::CondBranch;
};

/** Paper configuration: 2K entries, 4-way associative. */
class Btb
{
  public:
    Btb(unsigned entries, unsigned ways);

    /** @return entry for the CTI at pc, or nullptr on miss. */
    const BtbEntry *lookup(Addr pc);

    /** Install/refresh the entry for the CTI at pc (commit time). */
    void update(Addr pc, Addr target, OpClass cti_type);

    void reset() { table.reset(); }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::uint64_t indexFor(Addr pc) const;
    std::uint64_t tagFor(Addr pc) const;

    AssocTable<BtbEntry> table;
};

} // namespace smt

#endif // SMTFETCH_BPRED_BTB_HH
