#include "bpred/tage.hh"

#include <bit>
#include <cmath>

#include "bpred/engine_registry.hh"
#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

/** XOR-fold the low `len` bits of `h` down to `bits` bits. */
std::uint64_t
fold(std::uint64_t h, unsigned len, unsigned bits)
{
    if (bits == 0)
        return 0;
    h &= mask(len);
    std::uint64_t f = 0;
    while (h != 0) {
        f ^= h & mask(bits);
        h >>= bits;
    }
    return f;
}

} // namespace

TagePredictor::TagePredictor(const EngineParams &p)
    : tagBits(p.tageTagBits), ctrBits(p.tageCounterBits),
      usefulResetPeriod(p.tageUsefulResetPeriod)
{
    if (p.tageBimodalEntries == 0 ||
        (p.tageBimodalEntries & (p.tageBimodalEntries - 1)) != 0)
        fatal("tage bimodal entries must be a power of two");
    if (p.tageEntriesPerTable == 0 ||
        (p.tageEntriesPerTable & (p.tageEntriesPerTable - 1)) != 0)
        fatal("tage entries per table must be a power of two");
    if (p.tageTables == 0)
        fatal("tage needs at least one tagged table");
    if (p.tageTagBits == 0 || p.tageTagBits > 16)
        fatal("tage tag bits must be in [1, 16]");
    if (p.tageCounterBits == 0 || p.tageCounterBits > 8)
        fatal("tage counter bits must be in [1, 8]");
    if (p.tageMinHistory == 0 || p.tageMaxHistory > 64 ||
        p.tageMinHistory > p.tageMaxHistory)
        fatal("tage history lengths must satisfy "
              "1 <= min <= max <= 64");
    if (usefulResetPeriod == 0)
        fatal("tage useful-reset period must be nonzero");

    bimodalIndexBits = std::bit_width(p.tageBimodalEntries) - 1;
    tableIndexBits = std::bit_width(p.tageEntriesPerTable) - 1;

    bimodal.assign(p.tageBimodalEntries,
                   SatCounter(2, 1)); // weakly not-taken

    // Geometric history series min..max (strictly increasing; the
    // shared 64-bit global history register bounds every length).
    histLengths.resize(p.tageTables);
    const double ratio =
        p.tageTables > 1
            ? std::pow(static_cast<double>(p.tageMaxHistory) /
                           p.tageMinHistory,
                       1.0 / (p.tageTables - 1))
            : 1.0;
    double len = p.tageMinHistory;
    for (unsigned t = 0; t < p.tageTables; ++t) {
        unsigned l = static_cast<unsigned>(std::lround(len));
        if (t > 0 && l <= histLengths[t - 1])
            l = histLengths[t - 1] + 1;
        histLengths[t] = std::min(l, 64u);
        len *= ratio;
    }

    TaggedEntry init;
    init.ctr = SatCounter(ctrBits,
                          static_cast<unsigned>(mask(ctrBits)) >> 1);
    init.useful = SatCounter(2, 0);
    tables.assign(p.tageTables,
                  std::vector<TaggedEntry>(p.tageEntriesPerTable,
                                           init));
}

std::uint64_t
TagePredictor::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & mask(bimodalIndexBits);
}

std::uint64_t
TagePredictor::tableIndex(unsigned t, Addr pc,
                          std::uint64_t history) const
{
    std::uint64_t h = fold(history, histLengths[t], tableIndexBits);
    return (h ^ (pc >> 2) ^ (pc >> (2 + t + 1))) &
           mask(tableIndexBits);
}

std::uint16_t
TagePredictor::tableTag(unsigned t, Addr pc,
                        std::uint64_t history) const
{
    std::uint64_t h1 = fold(history, histLengths[t], tagBits);
    std::uint64_t h2 = fold(history, histLengths[t], tagBits - 1);
    return static_cast<std::uint16_t>(((pc >> 2) ^ h1 ^ (h2 << 1)) &
                                      mask(tagBits));
}

TagePredictor::Lookup
TagePredictor::lookup(Addr pc, std::uint64_t history) const
{
    Lookup l;
    l.bimodalPred = bimodal[bimodalIndex(pc)].predictTaken();
    for (int t = static_cast<int>(tables.size()) - 1; t >= 0; --t) {
        std::uint64_t idx = tableIndex(t, pc, history);
        if (tables[t][idx].tag == tableTag(t, pc, history)) {
            l.provider = t;
            l.providerIdx = idx;
            l.providerPred = tables[t][idx].ctr.predictTaken();
            break;
        }
    }
    return l;
}

bool
TagePredictor::predict(Addr pc, std::uint64_t history) const
{
    return lookup(pc, history).pred();
}

bool
TagePredictor::weak(Addr pc, std::uint64_t history) const
{
    Lookup l = lookup(pc, history);
    const SatCounter &c =
        l.provider >= 0 ? tables[l.provider][l.providerIdx].ctr
                        : bimodal[bimodalIndex(pc)];
    unsigned v = c.raw();
    unsigned mid = c.max() >> 1;
    return v == mid || v == mid + 1;
}

void
TagePredictor::update(Addr pc, std::uint64_t history, bool taken)
{
    // Recompute the match set from the history the prediction used
    // (the front end hands us pred_ghist at commit).
    int provider = -1;
    int alt = -1;
    std::uint64_t providerIdx = 0;
    std::uint64_t altIdx = 0;
    for (int t = static_cast<int>(tables.size()) - 1; t >= 0; --t) {
        std::uint64_t idx = tableIndex(t, pc, history);
        if (tables[t][idx].tag == tableTag(t, pc, history)) {
            if (provider < 0) {
                provider = t;
                providerIdx = idx;
            } else {
                alt = t;
                altIdx = idx;
                break;
            }
        }
    }

    std::uint64_t bidx = bimodalIndex(pc);
    bool altPred = alt >= 0 ? tables[alt][altIdx].ctr.predictTaken()
                            : bimodal[bidx].predictTaken();
    bool pred;
    if (provider >= 0) {
        TaggedEntry &e = tables[provider][providerIdx];
        pred = e.ctr.predictTaken();
        // The useful bit tracks when the provider beat its
        // alternative — only distinguishing predictions count.
        if (pred != altPred)
            e.useful.update(pred == taken);
        e.ctr.update(taken);
    } else {
        pred = bimodal[bidx].predictTaken();
        bimodal[bidx].update(taken);
    }

    // Mispredictions allocate into a longer table. Deterministic
    // policy: first longer table with a dead (useful == 0) entry; if
    // none, age all longer candidates instead.
    if (pred != taken &&
        provider < static_cast<int>(tables.size()) - 1) {
        bool allocated = false;
        for (unsigned t = provider + 1; t < tables.size(); ++t) {
            std::uint64_t idx = tableIndex(t, pc, history);
            TaggedEntry &e = tables[t][idx];
            if (e.useful.raw() == 0) {
                e.tag = tableTag(t, pc, history);
                unsigned weakVal =
                    static_cast<unsigned>(mask(ctrBits)) >> 1;
                e.ctr =
                    SatCounter(ctrBits, taken ? weakVal + 1 : weakVal);
                e.useful = SatCounter(2, 0);
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            for (unsigned t = provider + 1; t < tables.size(); ++t)
                tables[t][tableIndex(t, pc, history)]
                    .useful.decrement();
        }
    }

    // Periodic graceful decay of the useful counters so stale entries
    // eventually become allocatable again.
    if (++updates % usefulResetPeriod == 0) {
        for (auto &tbl : tables)
            for (TaggedEntry &e : tbl)
                e.useful.setRaw(e.useful.raw() >> 1);
    }
}

void
TagePredictor::reset()
{
    for (SatCounter &c : bimodal)
        c = SatCounter(2, 1);
    TaggedEntry init;
    init.ctr = SatCounter(ctrBits,
                          static_cast<unsigned>(mask(ctrBits)) >> 1);
    init.useful = SatCounter(2, 0);
    for (auto &tbl : tables)
        for (TaggedEntry &e : tbl)
            e = init;
    updates = 0;
}

std::uint64_t
TagePredictor::storageBits() const
{
    std::uint64_t bits = bimodal.size() * 2;
    for (const auto &tbl : tables)
        bits += tbl.size() * (tagBits + ctrBits + 2);
    return bits;
}

void
TagePredictor::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(bimodal.size()));
    for (const SatCounter &c : bimodal)
        w.u8(c.raw());
    w.u32(static_cast<std::uint32_t>(tables.size()));
    w.u32(static_cast<std::uint32_t>(tables[0].size()));
    for (const auto &tbl : tables)
        for (const TaggedEntry &e : tbl) {
            w.u16(e.tag);
            w.u8(e.ctr.raw());
            w.u8(e.useful.raw());
        }
    w.u64(updates);
}

void
TagePredictor::restore(CheckpointReader &r)
{
    std::uint32_t nb = r.u32();
    if (nb != bimodal.size())
        r.fail(csprintf("tage bimodal table holds %u counters but "
                        "this configuration uses %zu (configuration "
                        "mismatch)",
                        nb, bimodal.size()));
    for (SatCounter &c : bimodal) {
        std::uint8_t v = r.u8();
        if (v > c.max())
            r.fail(csprintf("tage bimodal counter byte holds %u, "
                            "max is %u (corrupt payload)",
                            v, c.max()));
        c.setRaw(v);
    }
    std::uint32_t nt = r.u32();
    std::uint32_t ne = r.u32();
    if (nt != tables.size() || ne != tables[0].size())
        r.fail(csprintf("tage tagged tables are %ux%u but this "
                        "configuration uses %zux%zu (configuration "
                        "mismatch)",
                        nt, ne, tables.size(), tables[0].size()));
    for (auto &tbl : tables)
        for (TaggedEntry &e : tbl) {
            std::uint16_t tag = r.u16();
            if (tag > mask(tagBits))
                r.fail(csprintf("tage tag holds %u, max is %llu "
                                "(corrupt payload)",
                                tag,
                                static_cast<unsigned long long>(
                                    mask(tagBits))));
            e.tag = tag;
            std::uint8_t cv = r.u8();
            if (cv > e.ctr.max())
                r.fail(csprintf("tage counter byte holds %u, max is "
                                "%u (corrupt payload)",
                                cv, e.ctr.max()));
            e.ctr.setRaw(cv);
            std::uint8_t uv = r.u8();
            if (uv > e.useful.max())
                r.fail(csprintf("tage useful byte holds %u, max is "
                                "%u (corrupt payload)",
                                uv, e.useful.max()));
            e.useful.setRaw(uv);
        }
    updates = r.u64();
}

// ---------------------------------------------------------------------
// TAGE + BTB fetch engine
// ---------------------------------------------------------------------

TageFetchEngine::TageFetchEngine(const EngineParams &p)
    : FetchEngine(p, EngineKind::Tage), tage(p),
      btb(p.btbEntries, p.btbWays)
{
}

BlockPrediction
TageFetchEngine::predictBlock(ThreadID tid, Addr pc)
{
    ++engineStats.blockPredictions;
    const StaticProgram *prog = programs[tid];

    // Predecode scan: find the first CTI after pc (the single
    // direction/target prediction this cycle applies to it).
    const StaticInst *cti = nullptr;
    unsigned len = 0;
    for (unsigned i = 0; i < params.btbScanCap; ++i) {
        const StaticInst *si =
            prog ? prog->lookup(pc + static_cast<Addr>(i) * instBytes)
                 : nullptr;
        if (si == nullptr) {
            // Unmapped (deep wrong path): fetch sequentially.
            if (i == 0)
                return sequentialBlock(tid, pc, params.missBlockInsts);
            return sequentialBlock(tid, pc, i);
        }
        ++len;
        if (si->isControl()) {
            cti = si;
            break;
        }
    }

    if (cti == nullptr)
        return sequentialBlock(tid, pc, len);

    BlockPrediction b;
    b.start = pc;
    b.lengthInsts = len;
    b.endsWithCti = true;
    b.endType = cti->op;
    b.ckpt = makeCheckpoint(tid, pc);

    const BtbEntry *entry = btb.lookup(cti->pc);
    if (entry != nullptr)
        ++engineStats.tableHits;

    switch (cti->op) {
      case OpClass::CondBranch: {
        ++engineStats.condPredictions;
        bool dir = tage.predict(cti->pc, history[tid].value());
        b.lowConfidence = tage.weak(cti->pc, history[tid].value());
        history[tid].shift(dir);
        if (dir && entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
        } else {
            // Not-taken prediction, or taken with no target available.
            b.predTaken = false;
        }
        break;
      }
      case OpClass::Return: {
        b.predTaken = true;
        b.predTarget = ras[tid].pop();
        ++engineStats.rasPops;
        break;
      }
      case OpClass::CallDirect: {
        if (entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
            ras[tid].push(cti->nextPc());
            ++engineStats.rasPushes;
        }
        break;
      }
      default: { // Jump, JumpIndirect
        if (entry != nullptr) {
            b.predTaken = true;
            b.predTarget = entry->target;
        }
        break;
      }
    }

    if (b.predTaken && b.predTarget == invalidAddr) {
        // Cold RAS/table: no usable target; predict fall-through.
        b.predTaken = false;
    }
    b.nextFetchPc = b.predTaken ? b.predTarget : b.fallThrough();
    return b;
}

void
TageFetchEngine::commitCti(ThreadID tid, const StaticInst &si,
                           bool taken, Addr actual_target,
                           bool was_block_end, bool was_mispredicted,
                           std::uint64_t pred_ghist)
{
    (void)tid;
    (void)was_mispredicted;
    if (si.isConditional() && was_block_end)
        tage.update(si.pc, pred_ghist, taken);
    // Classic allocation policy: install targets of taken CTIs.
    // Returns are covered by the RAS.
    if (taken && !si.isReturn())
        btb.update(si.pc, actual_target, si.op);
    if (taken)
        ++engineStats.streamsFormed;
}

void
TageFetchEngine::reset()
{
    FetchEngine::reset();
    tage.reset();
    btb.reset();
}

void
TageFetchEngine::save(CheckpointWriter &w) const
{
    FetchEngine::save(w);
    tage.save(w);
    btb.save(w);
}

void
TageFetchEngine::restore(CheckpointReader &r)
{
    FetchEngine::restore(r);
    tage.restore(r);
    btb.restore(r);
}

// ---------------------------------------------------------------------
// Registry binding
// ---------------------------------------------------------------------

void
registerTageEngine(EngineRegistry &reg)
{
    using PSpec = EngineParamSpec;
    EngineDescriptor d;
    d.kind = EngineKind::Tage;
    d.name = "tage";
    d.description = "line-oriented fetch unit: TAGE direction "
                    "predictor (bimodal base + tagged geometric-"
                    "history tables) + BTB";
    d.checkpointTag = "engine.tage";
    d.factory = [](const EngineParams &p) {
        return std::unique_ptr<FetchEngine>(
            std::make_unique<TageFetchEngine>(p));
    };
    d.params = {
        PSpec::uintSpec("tageBimodalEntries",
                        "TAGE bimodal base entries",
                        &EngineParams::tageBimodalEntries, 1, 1u << 26),
        PSpec::uintSpec("tageTables", "TAGE tagged tables",
                        &EngineParams::tageTables, 1, 16),
        PSpec::uintSpec("tageEntriesPerTable",
                        "TAGE entries per tagged table",
                        &EngineParams::tageEntriesPerTable, 1,
                        1u << 24),
        PSpec::uintSpec("tageTagBits", "TAGE tag bits",
                        &EngineParams::tageTagBits, 1, 16),
        PSpec::uintSpec("tageCounterBits", "TAGE counter bits",
                        &EngineParams::tageCounterBits, 1, 8),
        PSpec::uintSpec("tageMinHistory",
                        "shortest tagged-table history",
                        &EngineParams::tageMinHistory, 1, 64),
        PSpec::uintSpec("tageMaxHistory",
                        "longest tagged-table history",
                        &EngineParams::tageMaxHistory, 1, 64),
        PSpec::uintSpec("tageUsefulResetPeriod",
                        "updates between useful-counter decays",
                        &EngineParams::tageUsefulResetPeriod, 1,
                        1u << 30),
        PSpec::uintSpec("btbEntries", "BTB entries",
                        &EngineParams::btbEntries, 1, 1u << 24),
        PSpec::uintSpec("btbWays", "BTB associativity",
                        &EngineParams::btbWays, 1, 64),
        PSpec::uintSpec("btbScanCap",
                        "predecode CTI scan cap (insts)",
                        &EngineParams::btbScanCap, 1, 256),
        PSpec::uintSpec("rasEntries", "return-address-stack entries",
                        &EngineParams::rasEntries, 1, 4096),
        PSpec::uintSpec("missBlockInsts",
                        "sequential fallback block length",
                        &EngineParams::missBlockInsts, 1, 256),
    };
    reg.add(std::move(d));
}

} // namespace smt
