#include "bpred/gskew.hh"

#include <bit>

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

GskewPredictor::GskewPredictor(unsigned entries_per_bank,
                               unsigned history_bits)
    : histBits(history_bits)
{
    if (entries_per_bank == 0 ||
        (entries_per_bank & (entries_per_bank - 1)) != 0)
        fatal("gskew bank entries must be a power of two");
    indexBits = std::bit_width(entries_per_bank) - 1;
    for (auto &bank : banks)
        bank.assign(entries_per_bank, SatCounter(2, 1));
}

std::uint64_t
GskewPredictor::bankIndex(unsigned bank, Addr pc,
                          std::uint64_t history) const
{
    // Skewing family: three distinct mixes of the same (pc, history)
    // information so that two branches colliding in one bank almost
    // never collide in the others.
    static constexpr std::uint64_t salts[3] = {
        0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
        0x165667b19e3779f9ULL};
    std::uint64_t h = history & mask(histBits);
    std::uint64_t key = (pc >> 2) ^ (h << 1);
    return (mix64(key * salts[bank] + bank) >> 7) & mask(indexBits);
}

bool
GskewPredictor::predict(Addr pc, std::uint64_t history) const
{
    int votes = 0;
    for (unsigned b = 0; b < 3; ++b)
        if (banks[b][bankIndex(b, pc, history)].predictTaken())
            ++votes;
    return votes >= 2;
}

bool
GskewPredictor::weak(Addr pc, std::uint64_t history) const
{
    int votes = 0;
    for (unsigned b = 0; b < 3; ++b)
        if (banks[b][bankIndex(b, pc, history)].predictTaken())
            ++votes;
    return votes == 1 || votes == 2;
}

void
GskewPredictor::update(Addr pc, std::uint64_t history, bool taken)
{
    bool predicted = predict(pc, history);
    bool correct = predicted == taken;
    for (unsigned b = 0; b < 3; ++b) {
        SatCounter &c = banks[b][bankIndex(b, pc, history)];
        if (correct) {
            // Strengthen only the banks that voted with the outcome.
            if (c.predictTaken() == taken)
                c.update(taken);
        } else {
            c.update(taken);
        }
    }
}

void
GskewPredictor::reset()
{
    for (auto &bank : banks)
        for (auto &c : bank)
            c = SatCounter(2, 1);
}

void
GskewPredictor::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(banks[0].size()));
    for (const auto &bank : banks)
        for (const SatCounter &c : bank)
            w.u8(c.raw());
}

void
GskewPredictor::restore(CheckpointReader &r)
{
    std::uint32_t n = r.u32();
    if (n != banks[0].size())
        r.fail(csprintf("gskew banks hold %u counters but this "
                        "configuration uses %zu (configuration "
                        "mismatch)",
                        n, banks[0].size()));
    for (auto &bank : banks)
        for (SatCounter &c : bank) {
            std::uint8_t v = r.u8();
            if (v > c.max())
                r.fail(csprintf("gskew counter byte holds %u, max "
                                "is %u (corrupt payload)",
                                v, c.max()));
            c.setRaw(v);
        }
}

} // namespace smt
