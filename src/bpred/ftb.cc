#include "bpred/ftb.hh"

namespace smt
{

Ftb::Ftb(unsigned entries, unsigned ways, unsigned max_block)
    : table(entries, ways), maxBlockInsts(max_block)
{
    if (max_block < 2)
        fatal("FTB max block must be at least 2 instructions");
}

const FtbEntry *
Ftb::lookup(Addr start_pc)
{
    return table.lookup(indexFor(start_pc), tagFor(start_pc));
}

bool
Ftb::update(Addr start_pc, unsigned length_insts, Addr target,
            OpClass end_type)
{
    if (length_insts == 0 || length_insts > maxBlockInsts)
        return false;
    FtbEntry e;
    e.lengthInsts = static_cast<std::uint16_t>(length_insts);
    e.target = target;
    e.endType = end_type;
    table.insert(indexFor(start_pc), tagFor(start_pc), e);
    return true;
}

void
Ftb::save(CheckpointWriter &w) const
{
    table.save(w, [](CheckpointWriter &cw, const FtbEntry &e) {
        cw.u16(e.lengthInsts);
        cw.u64(e.target);
        cw.u8(static_cast<std::uint8_t>(e.endType));
    });
}

void
Ftb::restore(CheckpointReader &r)
{
    table.restore(r, [](CheckpointReader &cr, FtbEntry &e) {
        e.lengthInsts = cr.u16();
        e.target = cr.u64();
        e.endType = checkpointReadOpClass(cr);
    });
}

} // namespace smt
