/**
 * @file
 * gskew (enhanced skewed) conditional direction predictor
 * (Michaud/Seznec/Uhlig): three counter banks indexed by three
 * different hash functions of (pc, history); majority vote; partial
 * update to preserve the de-aliasing property.
 */

#ifndef SMTFETCH_BPRED_GSKEW_HH
#define SMTFETCH_BPRED_GSKEW_HH

#include <cstdint>
#include <vector>

#include "util/sat_counter.hh"
#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Paper configuration: 3 x 32K entries, 15 bits of history. */
class GskewPredictor
{
  public:
    GskewPredictor(unsigned entries_per_bank, unsigned history_bits);

    /** Majority vote of the three banks. */
    bool predict(Addr pc, std::uint64_t history) const;

    /**
     * Confidence probe (read-only): did the banks disagree on the
     * direction of this prediction?
     */
    bool weak(Addr pc, std::uint64_t history) const;

    /**
     * Train (commit time). Partial update: on a correct prediction
     * only the agreeing banks are strengthened; on a misprediction all
     * banks are retrained.
     */
    void update(Addr pc, std::uint64_t history, bool taken);

    void reset();

    unsigned historyBits() const { return histBits; }

    std::uint64_t storageBits() const { return 3 * banks[0].size() * 2; }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::uint64_t bankIndex(unsigned bank, Addr pc,
                            std::uint64_t history) const;

    std::vector<SatCounter> banks[3];
    unsigned indexBits;
    unsigned histBits;
};

} // namespace smt

#endif // SMTFETCH_BPRED_GSKEW_HH
