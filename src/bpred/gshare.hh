/**
 * @file
 * gshare conditional-branch direction predictor (McFarling): a single
 * table of 2-bit counters indexed by PC XOR global history.
 */

#ifndef SMTFETCH_BPRED_GSHARE_HH
#define SMTFETCH_BPRED_GSHARE_HH

#include <cstdint>
#include <vector>

#include "util/sat_counter.hh"
#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Classic gshare: 64K entries, 16 bits of history in the paper. */
class GsharePredictor
{
  public:
    GsharePredictor(unsigned entries, unsigned history_bits);

    /** Predict the branch at pc under the given global history. */
    bool predict(Addr pc, std::uint64_t history) const;

    /**
     * Confidence probe (read-only): is the counter backing this
     * prediction in one of its two weak states?
     */
    bool weak(Addr pc, std::uint64_t history) const;

    /** Train with the actual outcome (commit time). */
    void update(Addr pc, std::uint64_t history, bool taken);

    void reset();

    unsigned historyBits() const { return histBits; }
    unsigned entries() const
    {
        return static_cast<unsigned>(table.size());
    }

    /** Storage budget in bits (for Table 3 accounting). */
    std::uint64_t storageBits() const { return table.size() * 2; }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::uint64_t indexFor(Addr pc, std::uint64_t history) const;

    std::vector<SatCounter> table;
    unsigned indexBits;
    unsigned histBits;
};

} // namespace smt

#endif // SMTFETCH_BPRED_GSHARE_HH
