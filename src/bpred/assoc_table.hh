/**
 * @file
 * Generic set-associative, true-LRU tagged table used by the BTB, FTB
 * and stream predictor.
 */

#ifndef SMTFETCH_BPRED_ASSOC_TABLE_HH
#define SMTFETCH_BPRED_ASSOC_TABLE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

/**
 * Set-associative table of payload entries.
 *
 * @tparam Payload Per-entry payload (POD-ish, default constructible).
 */
template <typename Payload>
class AssocTable
{
  public:
    AssocTable(unsigned total_entries, unsigned ways)
        : numWays(ways)
    {
        if (ways == 0 || total_entries % ways != 0)
            fatal("assoc table: %u entries not divisible by %u ways",
                  total_entries, ways);
        numSets = total_entries / ways;
        if ((numSets & (numSets - 1)) != 0)
            fatal("assoc table: set count must be a power of two");
        setBits = std::bit_width(numSets) - 1;
        entries.assign(total_entries, Slot{});
    }

    unsigned sets() const { return numSets; }
    unsigned ways() const { return numWays; }
    unsigned indexBits() const { return setBits; }

    /**
     * Find an entry. @return payload pointer or nullptr.
     * Touches LRU on hit.
     */
    Payload *
    lookup(std::uint64_t index, std::uint64_t tag)
    {
        Slot *set = setBase(index);
        for (unsigned w = 0; w < numWays; ++w) {
            if (set[w].valid && set[w].tag == tag) {
                touch(set, w);
                return &set[w].payload;
            }
        }
        return nullptr;
    }

    /** Lookup without LRU update (for probes/asserts). */
    const Payload *
    probe(std::uint64_t index, std::uint64_t tag) const
    {
        const Slot *set = setBase(index);
        for (unsigned w = 0; w < numWays; ++w)
            if (set[w].valid && set[w].tag == tag)
                return &set[w].payload;
        return nullptr;
    }

    /**
     * Insert or overwrite the entry for (index, tag), evicting LRU on
     * conflict. @return reference to the stored payload.
     */
    Payload &
    insert(std::uint64_t index, std::uint64_t tag, const Payload &payload)
    {
        Slot *set = setBase(index);
        unsigned victim = 0;
        for (unsigned w = 0; w < numWays; ++w) {
            if (set[w].valid && set[w].tag == tag) {
                set[w].payload = payload;
                touch(set, w);
                return set[w].payload;
            }
            if (!set[w].valid)
                victim = w;
            else if (set[victim].valid && set[w].lru < set[victim].lru)
                victim = w;
        }
        // Prefer an invalid slot if one exists.
        for (unsigned w = 0; w < numWays; ++w)
            if (!set[w].valid)
                victim = w;
        set[victim].valid = true;
        set[victim].tag = tag;
        set[victim].payload = payload;
        touch(set, victim);
        return set[victim].payload;
    }

    void
    reset()
    {
        for (auto &s : entries)
            s = Slot{};
        lruClock = 0;
    }

    /**
     * Checkpoint serialization: geometry echo, LRU clock and every
     * slot, with the payload encoded by the caller's functor
     * (sim/checkpoint.hh).
     */
    template <typename SavePayload>
    void
    save(CheckpointWriter &w, SavePayload &&save_payload) const
    {
        w.u32(numSets);
        w.u32(numWays);
        w.u64(lruClock);
        for (const Slot &s : entries) {
            w.b(s.valid);
            w.u64(s.tag);
            w.u64(s.lru);
            save_payload(w, s.payload);
        }
    }

    template <typename LoadPayload>
    void
    restore(CheckpointReader &r, LoadPayload &&load_payload)
    {
        std::uint32_t sets = r.u32();
        std::uint32_t ways = r.u32();
        if (sets != numSets || ways != numWays)
            r.fail(csprintf("table geometry %ux%u does not match "
                            "this configuration's %ux%u "
                            "(configuration mismatch)",
                            sets, ways, numSets, numWays));
        lruClock = r.u64();
        for (Slot &s : entries) {
            s.valid = r.b();
            s.tag = r.u64();
            s.lru = r.u64();
            load_payload(r, s.payload);
        }
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        Payload payload{};
    };

    Slot *setBase(std::uint64_t index)
    {
        return &entries[(index & mask(setBits)) * numWays];
    }
    const Slot *setBase(std::uint64_t index) const
    {
        return &entries[(index & mask(setBits)) * numWays];
    }

    void touch(Slot *set, unsigned way) { set[way].lru = ++lruClock; }

    unsigned numSets = 0;
    unsigned numWays = 0;
    unsigned setBits = 0;
    std::uint64_t lruClock = 0;
    std::vector<Slot> entries;
};

} // namespace smt

#endif // SMTFETCH_BPRED_ASSOC_TABLE_HH
