/**
 * @file
 * TAGE conditional-branch direction predictor (Seznec/Michaud): a
 * bimodal base table plus a series of partially-tagged tables indexed
 * by geometrically-growing slices of global history. The longest
 * matching table provides the prediction; mispredictions allocate
 * into a longer table; per-entry "useful" counters arbitrate
 * replacement and decay periodically.
 *
 * This implementation is deliberately deterministic (allocation picks
 * the first longer table with a free entry rather than randomizing)
 * and caps the longest history at the shared 64-bit global-history
 * register so it can ride the engines' existing checkpoint and squash
 * repair machinery unchanged.
 *
 * TageFetchEngine ("tage") is the conventional line-oriented
 * gshare+BTB fetch unit with the gshare table swapped for TAGE — the
 * registry's proof that a new direction predictor lands without
 * touching the sim/cli layers.
 */

#ifndef SMTFETCH_BPRED_TAGE_HH
#define SMTFETCH_BPRED_TAGE_HH

#include <cstdint>
#include <vector>

#include "bpred/fetch_engine.hh"
#include "util/sat_counter.hh"
#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** TAGE direction predictor (sized by the tage* EngineParams). */
class TagePredictor
{
  public:
    explicit TagePredictor(const EngineParams &p);

    /** Predict the branch at pc under the given global history. */
    bool predict(Addr pc, std::uint64_t history) const;

    /**
     * Confidence probe (read-only): is the providing counter in one
     * of its two weak states?
     */
    bool weak(Addr pc, std::uint64_t history) const;

    /** Train with the actual outcome (commit time), recomputing the
     *  provider from the same (pc, history) the prediction used. */
    void update(Addr pc, std::uint64_t history, bool taken);

    void reset();

    unsigned numTables() const
    {
        return static_cast<unsigned>(tables.size());
    }

    /** History length feeding tagged table t. */
    unsigned historyLength(unsigned t) const { return histLengths[t]; }

    /** Storage budget in bits (for Table 3 accounting). */
    std::uint64_t storageBits() const;

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SatCounter ctr;
        SatCounter useful;
    };

    /** Longest-match walk shared by predict/weak/update. */
    struct Lookup
    {
        int provider = -1; //!< tagged table index, -1 = bimodal
        std::uint64_t providerIdx = 0;
        bool providerPred = false;
        bool bimodalPred = false;

        bool
        pred() const
        {
            return provider >= 0 ? providerPred : bimodalPred;
        }
    };
    Lookup lookup(Addr pc, std::uint64_t history) const;

    std::uint64_t bimodalIndex(Addr pc) const;
    std::uint64_t tableIndex(unsigned t, Addr pc,
                             std::uint64_t history) const;
    std::uint16_t tableTag(unsigned t, Addr pc,
                           std::uint64_t history) const;

    std::vector<SatCounter> bimodal;
    std::vector<std::vector<TaggedEntry>> tables;
    std::vector<unsigned> histLengths;
    unsigned bimodalIndexBits;
    unsigned tableIndexBits;
    unsigned tagBits;
    unsigned ctrBits;
    unsigned usefulResetPeriod;
    std::uint64_t updates = 0; //!< drives the periodic useful decay
};

/** Line-oriented fetch unit: TAGE direction predictor over the BTB. */
class TageFetchEngine : public FetchEngine
{
  public:
    explicit TageFetchEngine(const EngineParams &params);

    BlockPrediction predictBlock(ThreadID tid, Addr pc) override;
    void commitCti(ThreadID tid, const StaticInst &si, bool taken,
                   Addr actual_target, bool was_block_end,
                   bool was_mispredicted,
                   std::uint64_t pred_ghist) override;
    void reset() override;
    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;

    TagePredictor &directionPredictor() { return tage; }
    Btb &targetBuffer() { return btb; }

  private:
    TagePredictor tage;
    Btb btb;
};

} // namespace smt

#endif // SMTFETCH_BPRED_TAGE_HH
