/**
 * @file
 * Fetch engines: the SMT front-ends the simulator can instantiate.
 * The three paper engines are built in; further engines (TAGE, the
 * oracle upper-bound modes, the adaptive fetch-rate policy) register
 * themselves through bpred/engine_registry.hh, which owns the
 * name/factory/parameter-schema bindings for all of them.
 *
 *  - BtbFetchEngine    ("gshare+BTB"): the conventional SMT fetch unit.
 *    One direction prediction per cycle, so a fetch block ends at the
 *    first CTI found after the fetch PC (predecode locates CTIs).
 *  - FtbFetchEngine    ("gskew+FTB"): fetch blocks come from the fetch
 *    target buffer and may embed not-taken conditionals; gskew
 *    predicts only the block-terminating branch.
 *  - StreamFetchEngine ("stream"): the cascaded stream predictor names
 *    whole instruction streams (taken-branch target to next taken
 *    branch) in one prediction.
 *  - TageFetchEngine   ("tage", bpred/tage.hh): the gshare+BTB fetch
 *    unit with the gshare table replaced by a TAGE predictor.
 *  - "perfect-bp", "perfect-l1i", "adaptive": registry presets over
 *    the gshare+BTB unit that flip the EngineParams oracle/adaptive
 *    flags the front end honours (core/front_end.cc).
 *
 * All engines share their tables among threads while keeping
 * speculative per-thread state (global history, RAS, path history)
 * with checkpoint/repair on squash — exactly the structure the paper's
 * decoupled SMT front-end requires.
 */

#ifndef SMTFETCH_BPRED_FETCH_ENGINE_HH
#define SMTFETCH_BPRED_FETCH_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "bpred/btb.hh"
#include "bpred/ftb.hh"
#include "bpred/gshare.hh"
#include "bpred/gskew.hh"
#include "bpred/history.hh"
#include "bpred/ras.hh"
#include "bpred/stream_pred.hh"
#include "isa/program.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;
class StatsRegistry;

/**
 * Which front-end to instantiate. The values are dense ids in
 * registry order (EngineRegistry enforces this at registration);
 * everything outside src/bpred resolves kinds through the registry
 * rather than switching on them.
 */
enum class EngineKind : unsigned char
{
    GshareBtb,
    GskewFtb,
    Stream,
    Tage,
    PerfectBp,
    PerfectL1i,
    Adaptive,
};

/** Canonical display name from the registry ("gshare+BTB", ...). */
const char *engineName(EngineKind kind);

/** Hardware sizing (Table 3 defaults: ~45KB predictor budget each). */
struct EngineParams
{
    // gshare: 64K entries x 2 bits = 16KB counters + BTB.
    unsigned gshareEntries = 64 * 1024;
    unsigned gshareHistoryBits = 16;

    // gskew: 3 banks x 32K entries x 2 bits = 24KB counters + FTB.
    unsigned gskewEntriesPerBank = 32 * 1024;
    unsigned gskewHistoryBits = 15;

    unsigned btbEntries = 2048;
    unsigned btbWays = 4;

    unsigned ftbEntries = 2048;
    unsigned ftbWays = 4;
    unsigned ftbMaxBlock = 32;

    unsigned streamL1Entries = 1024;
    unsigned streamL1Ways = 4;
    unsigned streamL2Entries = 4096;
    unsigned streamL2Ways = 4;
    unsigned streamMaxLength = 64;

    // DOLC 16-2-4-10 (depth, older, last, current bits).
    unsigned dolcDepth = 16;
    unsigned dolcOlderBits = 2;
    unsigned dolcLastBits = 4;
    unsigned dolcCurrentBits = 10;

    unsigned rasEntries = 64;

    /** Sequential block size used on a table miss. */
    unsigned missBlockInsts = 16;

    /** CTI scan cap for the BTB engine (one I-cache line). */
    unsigned btbScanCap = 16;

    // TAGE: bimodal base table plus tagged tables over a geometric
    // history series (capped at 64 bits: the shared u64 global
    // history supplies every table).
    unsigned tageBimodalEntries = 16 * 1024;
    unsigned tageTables = 4;
    unsigned tageEntriesPerTable = 2048;
    unsigned tageTagBits = 9;
    unsigned tageCounterBits = 3;
    unsigned tageMinHistory = 8;
    unsigned tageMaxHistory = 64;
    unsigned tageUsefulResetPeriod = 256 * 1024;

    /** Oracle mode: the prediction stage fetches the correct path
     *  directly from the trace (core/front_end.cc); the base engine
     *  still trains at commit but its predictions are unused. */
    bool perfectBp = false;

    /** Oracle mode: every I-cache access hits, no bank conflicts. */
    bool perfectIcache = false;

    /** Throttle a thread's fetch chunk to adaptiveLowWidth when the
     *  head FTQ block was predicted with low confidence. */
    bool adaptiveFetch = false;
    unsigned adaptiveLowWidth = 4;
};

/** Per-thread speculative state snapshot, taken per fetch block. */
struct EngineCheckpoint
{
    Addr blockStart = invalidAddr;
    std::uint64_t ghist = 0;
    ReturnAddressStack::Snapshot ras;
    PathHistory::Snapshot path;

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh).
     * @param expected_ras_entries The restoring configuration's
     *        EngineParams::rasEntries. When non-zero, a non-empty RAS
     *        snapshot must hold exactly this many entries — a
     *        mismatch would otherwise surface as a mid-simulation
     *        panic when the snapshot is used for squash repair. Every
     *        engine populates the RAS/ghist/path fields (they live in
     *        the shared base class), so the contract is
     *        engine-independent; pass 0 only when the caller cannot
     *        know the target configuration (standalone decode tools).
     */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r,
                 unsigned expected_ras_entries = 0);
    /// @}
};

/** One predicted fetch block (an FTQ entry). */
struct BlockPrediction
{
    Addr start = invalidAddr;

    /** Block length in instructions (terminator included). */
    unsigned lengthInsts = 0;

    /** Does the engine believe the last instruction is a CTI? */
    bool endsWithCti = false;

    /** Believed type of the terminating CTI (when endsWithCti). */
    OpClass endType = OpClass::CondBranch;

    /** Prediction for the terminating CTI. */
    bool predTaken = false;

    /** Predicted target (valid when predTaken). */
    Addr predTarget = invalidAddr;

    /** Where the prediction stage continues next cycle. */
    Addr nextFetchPc = invalidAddr;

    /**
     * The engine had little confidence in this block: a weak
     * direction counter, disagreeing gskew banks, or a sequential
     * fallback block. The adaptive fetch-rate policy
     * (EngineParams::adaptiveFetch) throttles fetch on this flag;
     * engines always populate it (it is advisory otherwise).
     */
    bool lowConfidence = false;

    /** Thread state before this block's speculative effects. */
    EngineCheckpoint ckpt;

    Addr
    endPc() const
    {
        return start + static_cast<Addr>(lengthInsts - 1) * instBytes;
    }

    Addr
    fallThrough() const
    {
        return start + static_cast<Addr>(lengthInsts) * instBytes;
    }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r,
                 unsigned expected_ras_entries = 0);
    /// @}
};

/**
 * Aggregate engine statistics (read by benches and tests). The struct
 * is shared by every engine but not every field is populated by every
 * engine:
 *
 *  - tableHits counts BTB hits (gshare+BTB, tage, the gshare-based
 *    presets), FTB hits (gskew+FTB), or stream L1+L2 hits (stream).
 *  - secondLevelHits is populated by the stream engine only (its
 *    cascaded second-level table); every other engine leaves it 0.
 *  - All remaining counters are engine-independent and maintained by
 *    the FetchEngine base class or by every engine alike.
 */
struct EngineStats
{
    std::uint64_t blockPredictions = 0;
    std::uint64_t tableHits = 0;      //!< BTB/FTB/stream-L1+L2 hits
    std::uint64_t secondLevelHits = 0; //!< stream L2 hits only
    std::uint64_t seqMissBlocks = 0;  //!< sequential fallback blocks
    std::uint64_t condPredictions = 0;
    std::uint64_t rasPushes = 0;
    std::uint64_t rasPops = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t streamsFormed = 0;  //!< commit-side blocks/streams
};

/**
 * Abstract SMT fetch engine: block prediction, commit-side training,
 * and squash recovery.
 */
class FetchEngine
{
  public:
    /**
     * @param params Hardware sizing (presets already applied).
     * @param kind The engine's natural registry id; makeEngine()
     *        re-stamps it for preset engines (e.g. "perfect-l1i"
     *        constructs a BtbFetchEngine but keeps its own id so
     *        names and checkpoint tags stay distinct).
     */
    FetchEngine(const EngineParams &params, EngineKind kind);
    virtual ~FetchEngine() = default;

    /** Register the static program thread `tid` executes. */
    virtual void setThreadProgram(ThreadID tid,
                                  const StaticProgram *program);

    /**
     * Predict the fetch block starting at `pc` for thread `tid`,
     * speculatively updating the thread's history/RAS/path state.
     */
    virtual BlockPrediction predictBlock(ThreadID tid, Addr pc) = 0;

    /**
     * Commit-side training, called in per-thread program order for
     * every committed CTI.
     *
     * @param was_block_end The fetch unit treated this CTI as the
     *        predicted terminator of its fetch block.
     * @param was_mispredicted The fetch unit mispredicted this CTI
     *        (the front-end restarted at its actual successor).
     * @param pred_ghist Global history the prediction used (only
     *        meaningful when was_block_end).
     */
    virtual void commitCti(ThreadID tid, const StaticInst &si,
                           bool taken, Addr actual_target,
                           bool was_block_end, bool was_mispredicted,
                           std::uint64_t pred_ghist) = 0;

    /**
     * Repair thread state after a squash caused by `offender` (the
     * mispredicted CTI, or the non-CTI end of a bogus block).
     */
    virtual void recover(ThreadID tid, const EngineCheckpoint &ckpt,
                         const StaticInst *offender, bool actual_taken,
                         Addr actual_target);

    /** Reset all tables and thread state (between simulations). */
    virtual void reset();

    /** Registry id (stamped at construction; see makeEngine). */
    EngineKind kind() const { return kindId; }

    /**
     * Block-oriented front ends (FTB, stream) name a whole fetch span
     * per FTQ entry, so wide single-thread fetch may cross into the
     * next I-cache line; line-oriented units read one line per cycle.
     */
    virtual bool blockOriented() const { return false; }

    const char *name() const { return engineName(kind()); }

    /** This engine's checkpoint section tag ("engine.<name>"). */
    const std::string &checkpointTag() const;

    const EngineStats &stats() const { return engineStats; }

    /** Clear counters only (warmup boundary); tables are kept. */
    void resetStats() { engineStats = EngineStats{}; }

    /** Register engine counters under "engine.*". */
    virtual void registerStats(StatsRegistry &reg) const;

    /**
     * Fill the common checkpoint fields for a block at `start`.
     * Public so the front end's perfect-BP oracle path can attach a
     * valid squash-repair checkpoint to the blocks it builds.
     */
    EngineCheckpoint makeCheckpoint(ThreadID tid, Addr start) const;

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh). The base
     * implementation covers the shared per-thread speculative state
     * (history, RAS, path, commit-side formation) and the counters;
     * derived engines append their prediction tables.
     */
    /// @{
    virtual void save(CheckpointWriter &w) const;
    virtual void restore(CheckpointReader &r);
    /// @}

  protected:
    /** Sequential fallback block used on any table miss. */
    BlockPrediction sequentialBlock(ThreadID tid, Addr start,
                                    unsigned length);

    EngineParams params;
    EngineStats engineStats;

    std::array<const StaticProgram *, maxThreads> programs{};
    std::array<GlobalHistory, maxThreads> history;
    std::array<PathHistory, maxThreads>
        path; // initialized in constructor
    std::array<ReturnAddressStack, maxThreads> ras;

    /** Commit-side formation state. */
    struct FormationState
    {
        Addr blockStart = invalidAddr;
        bool started = false;

        /**
         * Fall-through restart points inside the current stream
         * (where fetch resumed after a not-taken-mispredicted stream
         * end); they become additional stream starts at closure.
         */
        std::array<Addr, 2> extraStarts{};
        unsigned numExtras = 0;
    };
    std::array<FormationState, maxThreads> formation;
    std::array<PathHistory, maxThreads> commitPath;

    /** Advance formation past length-cap overflow segments. */
    static void capFormationStart(Addr &start, Addr cti_pc,
                                  unsigned cap);

  private:
    friend std::unique_ptr<FetchEngine>
    makeEngine(EngineKind kind, const EngineParams &params);

    EngineKind kindId;
};

/** Conventional gshare + BTB front-end. */
class BtbFetchEngine : public FetchEngine
{
  public:
    explicit BtbFetchEngine(const EngineParams &params);

    BlockPrediction predictBlock(ThreadID tid, Addr pc) override;
    void commitCti(ThreadID tid, const StaticInst &si, bool taken,
                   Addr actual_target, bool was_block_end,
                   bool was_mispredicted,
                   std::uint64_t pred_ghist) override;
    void reset() override;
    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;

    GsharePredictor &directionPredictor() { return gshare; }
    Btb &targetBuffer() { return btb; }

  private:
    GsharePredictor gshare;
    Btb btb;
};

/** gskew + FTB front-end. */
class FtbFetchEngine : public FetchEngine
{
  public:
    explicit FtbFetchEngine(const EngineParams &params);

    BlockPrediction predictBlock(ThreadID tid, Addr pc) override;
    void commitCti(ThreadID tid, const StaticInst &si, bool taken,
                   Addr actual_target, bool was_block_end,
                   bool was_mispredicted,
                   std::uint64_t pred_ghist) override;
    bool blockOriented() const override { return true; }
    void reset() override;
    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;

    GskewPredictor &directionPredictor() { return gskew; }
    Ftb &targetBuffer() { return ftb; }

  private:
    GskewPredictor gskew;
    Ftb ftb;
};

/** Stream front-end. */
class StreamFetchEngine : public FetchEngine
{
  public:
    explicit StreamFetchEngine(const EngineParams &params);

    BlockPrediction predictBlock(ThreadID tid, Addr pc) override;
    void commitCti(ThreadID tid, const StaticInst &si, bool taken,
                   Addr actual_target, bool was_block_end,
                   bool was_mispredicted,
                   std::uint64_t pred_ghist) override;
    void recover(ThreadID tid, const EngineCheckpoint &ckpt,
                 const StaticInst *offender, bool actual_taken,
                 Addr actual_target) override;
    bool blockOriented() const override { return true; }
    void reset() override;
    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;

    StreamPredictor &predictor() { return streams; }

  private:
    StreamPredictor streams;
};

/**
 * Factory: resolves `kind` through the engine registry, applies the
 * descriptor's preset (oracle/adaptive flag flips) to a copy of
 * `params`, constructs the engine and stamps its registry id.
 */
std::unique_ptr<FetchEngine> makeEngine(EngineKind kind,
                                        const EngineParams &params);

} // namespace smt

#endif // SMTFETCH_BPRED_FETCH_ENGINE_HH
