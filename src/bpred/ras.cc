#include "bpred/ras.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : stack(entries, invalidAddr)
{
    if (entries < 2)
        panic("RAS needs at least 2 entries");
}

void
ReturnAddressStack::push(Addr return_addr)
{
    tos = static_cast<std::uint16_t>((tos + 1) % stack.size());
    stack[tos] = return_addr;
    snapCache.reset();
}

Addr
ReturnAddressStack::pop()
{
    Addr v = stack[tos];
    tos = static_cast<std::uint16_t>((tos + stack.size() - 1) %
                                     stack.size());
    return v;
}

ReturnAddressStack::Snapshot
ReturnAddressStack::snapshot() const
{
    if (snapCache == nullptr)
        snapCache =
            std::make_shared<const std::vector<Addr>>(stack);
    Snapshot snap;
    snap.tos = tos;
    snap.entries = snapCache;
    return snap;
}

void
ReturnAddressStack::restore(const Snapshot &snap)
{
    if (snap.tos >= stack.size())
        panic("RAS restore with top-of-stack %u on a %zu-entry "
              "stack",
              snap.tos, stack.size());
    tos = snap.tos;
    if (snap.entries == nullptr)
        return; // default-constructed snapshot: position repair only
    if (snap.entries->size() != stack.size())
        panic("RAS restore with %zu-entry snapshot into %zu-entry "
              "stack",
              snap.entries->size(), stack.size());
    stack = *snap.entries;
    // The restored contents equal the snapshot's: share its copy for
    // the snapshots that follow the squash.
    snapCache = snap.entries;
}

void
ReturnAddressStack::reset()
{
    tos = 0;
    for (auto &v : stack)
        v = invalidAddr;
    snapCache.reset();
}

void
ReturnAddressStack::save(CheckpointWriter &w) const
{
    w.u16(tos);
    w.u32(static_cast<std::uint32_t>(stack.size()));
    for (Addr a : stack)
        w.u64(a);
}

void
ReturnAddressStack::restore(CheckpointReader &r)
{
    std::uint16_t new_tos = r.u16();
    std::uint32_t n = r.u32();
    if (n != stack.size())
        r.fail(csprintf("RAS holds %u entries but this configuration "
                        "uses %zu (configuration mismatch)",
                        n, stack.size()));
    if (new_tos >= n)
        r.fail(csprintf("RAS top-of-stack %u out of range [0, %u)",
                        new_tos, n));
    tos = new_tos;
    for (auto &a : stack)
        a = r.u64();
    snapCache.reset();
}

} // namespace smt
