#include "bpred/ras.hh"

#include "util/logging.hh"

namespace smt
{

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : stack(entries, invalidAddr)
{
    if (entries < 2)
        panic("RAS needs at least 2 entries");
}

void
ReturnAddressStack::push(Addr return_addr)
{
    tos = static_cast<std::uint16_t>((tos + 1) % stack.size());
    stack[tos] = return_addr;
}

Addr
ReturnAddressStack::pop()
{
    Addr v = stack[tos];
    tos = static_cast<std::uint16_t>((tos + stack.size() - 1) %
                                     stack.size());
    return v;
}

void
ReturnAddressStack::restore(const Snapshot &snap)
{
    tos = snap.tos;
    stack[tos] = snap.topValue;
}

void
ReturnAddressStack::reset()
{
    tos = 0;
    for (auto &v : stack)
        v = invalidAddr;
}

} // namespace smt
