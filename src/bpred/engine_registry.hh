/**
 * @file
 * Process-wide fetch-engine registry: every engine self-registers a
 * canonical name (plus aliases), a description, a typed parameter
 * schema binding JSON spec keys to EngineParams members, a factory,
 * an optional preset (EngineParams flag flips for the oracle and
 * adaptive modes), and its checkpoint section tag.
 *
 * Everything outside src/bpred — SweepSpec's engine strings and
 * overrides, SimConfig presets, the checkpoint section name, smtsim
 * --list-engines, the registry-parameterized tests — resolves engines
 * through this table instead of switching on EngineKind, so adding an
 * engine means adding one registration function here and nothing
 * elsewhere.
 *
 * Registration is explicit rather than via static registrar objects:
 * the registry constructor calls each engine's registration function
 * in canonical order. (Static registrars in a static library would be
 * dropped by the linker for translation units nothing references, and
 * the EngineKind values double as dense ids, so the order is part of
 * the contract — the registry panics if a registration lands out of
 * order.)
 */

#ifndef SMTFETCH_BPRED_ENGINE_REGISTRY_HH
#define SMTFETCH_BPRED_ENGINE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bpred/fetch_engine.hh"

namespace smt
{

/**
 * One spec-settable engine parameter: a typed binding from an
 * override key (as used in JSON sweep specs and on the wire) to an
 * EngineParams member, with range validation.
 */
struct EngineParamSpec
{
    enum class Type
    {
        UInt,
        Bool,
    };

    const char *key = nullptr;
    const char *help = nullptr;
    Type type = Type::UInt;
    unsigned EngineParams::*uintField = nullptr;
    bool EngineParams::*boolField = nullptr;
    std::uint64_t minValue = 0;
    std::uint64_t maxValue = ~std::uint64_t{0};

    /** Read the bound member (bools read as 0/1). */
    std::uint64_t get(const EngineParams &p) const;

    /** Write the bound member (no range check; see inRange). */
    void set(EngineParams &p, std::uint64_t value) const;

    bool
    inRange(std::uint64_t value) const
    {
        return value >= minValue && value <= maxValue;
    }

    /** @name Terse spec constructors for registration functions. */
    /// @{
    static EngineParamSpec uintSpec(const char *key, const char *help,
                                    unsigned EngineParams::*field,
                                    std::uint64_t min_value,
                                    std::uint64_t max_value);
    static EngineParamSpec boolSpec(const char *key, const char *help,
                                    bool EngineParams::*field);
    /// @}
};

/** Everything the registry knows about one engine. */
struct EngineDescriptor
{
    EngineKind kind = EngineKind::GshareBtb;

    /** Canonical display name ("gshare+BTB", "tage", ...). */
    const char *name = nullptr;

    const char *description = nullptr;

    /** Checkpoint section tag ("engine.gshare", ...). */
    std::string checkpointTag;

    /** Extra accepted spellings (resolution also normalizes). */
    std::vector<std::string> aliases;

    std::function<std::unique_ptr<FetchEngine>(const EngineParams &)>
        factory;

    /** Parameter-flag flips applied before construction (oracle and
     *  adaptive presets); nullptr for plain engines. */
    void (*preset)(EngineParams &) = nullptr;

    /** Spec-settable parameters relevant to this engine. */
    std::vector<EngineParamSpec> params;
};

/** The singleton registry (built on first use, then immutable). */
class EngineRegistry
{
  public:
    static const EngineRegistry &instance();

    /** Register one engine; enforces dense in-order kind ids and
     *  unique (normalized) names. */
    void add(EngineDescriptor d);

    const EngineDescriptor &descriptor(EngineKind kind) const;

    /**
     * Resolve a user-supplied engine name (canonical, alias, or any
     * case/punctuation variant thereof); nullptr when unknown.
     */
    const EngineDescriptor *find(const std::string &name) const;

    /** Resolve an engine-parameter override key; nullptr if unknown. */
    const EngineParamSpec *findParam(const std::string &key) const;

    const std::vector<EngineDescriptor> &all() const
    {
        return engines;
    }

    /** "gshare+BTB, gskew+FTB, stream, tage, ..." for errors. */
    std::string knownNames() const;

  private:
    EngineRegistry();

    std::vector<EngineDescriptor> engines;
};

/** Lower-case a name and strip "+", "_", "-" and spaces. */
std::string normalizeEngineToken(const std::string &name);

/** Apply `kind`'s registry preset (if any) to `params` in place. */
void applyEnginePreset(EngineKind kind, EngineParams &params);

/** Every registered engine, in registry order. */
const std::vector<EngineKind> &allEngines();

/** The three paper engines, in paper order. */
const std::vector<EngineKind> &paperEngines();

/** @name Per-engine registration (called by the registry ctor). */
/// @{
void registerPaperEngines(EngineRegistry &reg);   // fetch_engine.cc
void registerTageEngine(EngineRegistry &reg);     // tage.cc
void registerPresetEngines(EngineRegistry &reg);  // fetch_engine.cc
/// @}

} // namespace smt

#endif // SMTFETCH_BPRED_ENGINE_REGISTRY_HH
