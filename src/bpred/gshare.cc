#include "bpred/gshare.hh"

#include <bit>

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits)
    : histBits(history_bits)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("gshare entries must be a power of two");
    indexBits = std::bit_width(entries) - 1;
    table.assign(entries, SatCounter(2, 1)); // weakly not-taken
}

std::uint64_t
GsharePredictor::indexFor(Addr pc, std::uint64_t history) const
{
    std::uint64_t h = history & mask(histBits);
    return ((pc >> 2) ^ h) & mask(indexBits);
}

bool
GsharePredictor::predict(Addr pc, std::uint64_t history) const
{
    return table[indexFor(pc, history)].predictTaken();
}

bool
GsharePredictor::weak(Addr pc, std::uint64_t history) const
{
    return !table[indexFor(pc, history)].isSaturated();
}

void
GsharePredictor::update(Addr pc, std::uint64_t history, bool taken)
{
    table[indexFor(pc, history)].update(taken);
}

void
GsharePredictor::reset()
{
    for (auto &c : table)
        c = SatCounter(2, 1);
}

void
GsharePredictor::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(table.size()));
    for (const SatCounter &c : table)
        w.u8(c.raw());
}

void
GsharePredictor::restore(CheckpointReader &r)
{
    std::uint32_t n = r.u32();
    if (n != table.size())
        r.fail(csprintf("gshare table holds %u counters but this "
                        "configuration uses %zu (configuration "
                        "mismatch)",
                        n, table.size()));
    for (SatCounter &c : table) {
        std::uint8_t v = r.u8();
        if (v > c.max())
            r.fail(csprintf("gshare counter byte holds %u, max is "
                            "%u (corrupt payload)",
                            v, c.max()));
        c.setRaw(v);
    }
}

} // namespace smt
