/**
 * @file
 * Cascaded stream predictor (Ramirez, Santana, Larriba-Pey & Valero,
 * "Fetching Instruction Streams").
 *
 * A *stream* is the dynamic run of sequential instructions from the
 * target of a taken branch to the next taken branch — it may contain
 * any number of not-taken branches. The predictor maps a stream start
 * address (plus, in the second-level table, DOLC path history) to the
 * stream's length and the target of its terminating taken branch, so a
 * single prediction names a full multi-basic-block fetch region.
 *
 * Cascade: the first-level table is indexed by start address only; the
 * second-level table adds path correlation and is trained when the
 * first level proves insufficient. A path-indexed hit takes priority.
 */

#ifndef SMTFETCH_BPRED_STREAM_PRED_HH
#define SMTFETCH_BPRED_STREAM_PRED_HH

#include <cstdint>

#include "bpred/assoc_table.hh"
#include "bpred/history.hh"
#include "isa/opcode.hh"
#include "util/sat_counter.hh"
#include "util/types.hh"

namespace smt
{

/** Stream descriptor stored in both cascade levels. */
struct StreamEntry
{
    /** Stream length in instructions, terminator included. */
    std::uint16_t lengthInsts = 0;

    /** Target of the terminating (taken) branch. */
    Addr target = invalidAddr;

    /** Type of the terminating branch. */
    OpClass endType = OpClass::CondBranch;

    /** Replacement hysteresis. */
    SatCounter confidence{2, 1};
};

/** Result of a stream lookup. */
struct StreamPrediction
{
    bool hit = false;
    bool fromSecondLevel = false;
    StreamEntry entry;
};

/**
 * Paper configuration: 1K-entry 4-way first level plus 4K-entry 4-way
 * second level, DOLC 16-2-4-10 path index.
 */
class StreamPredictor
{
  public:
    StreamPredictor(unsigned l1_entries, unsigned l1_ways,
                    unsigned l2_entries, unsigned l2_ways,
                    unsigned max_stream);

    /**
     * Predict the stream starting at start_pc.
     * @param path The requesting thread's speculative path history.
     */
    StreamPrediction predict(Addr start_pc, const PathHistory &path);

    /**
     * Train with a completed architectural stream (commit side).
     *
     * @param path The commit-side path history at the stream's start.
     * @return true if the stream fit the length field and was stored.
     */
    bool update(Addr start_pc, unsigned length_insts, Addr target,
                OpClass end_type, const PathHistory &path);

    unsigned maxStream() const { return maxStreamInsts; }

    void reset();

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::uint64_t l1Index(Addr pc) const { return pc >> 2; }
    std::uint64_t
    l1Tag(Addr pc) const
    {
        return pc >> (2 + level1.indexBits());
    }
    /** L2 tag still uses the start address (path picks the set). */
    std::uint64_t
    l2Tag(Addr pc) const
    {
        return pc >> 2;
    }

    void trainEntry(AssocTable<StreamEntry> &table, std::uint64_t index,
                    std::uint64_t tag, unsigned length_insts,
                    Addr target, OpClass end_type);

    AssocTable<StreamEntry> level1;
    AssocTable<StreamEntry> level2;
    unsigned maxStreamInsts;
};

} // namespace smt

#endif // SMTFETCH_BPRED_STREAM_PRED_HH
