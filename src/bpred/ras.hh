/**
 * @file
 * Return address stack with top-of-stack checkpoint repair.
 */

#ifndef SMTFETCH_BPRED_RAS_HH
#define SMTFETCH_BPRED_RAS_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace smt
{

/**
 * Circular return-address stack (one instance per thread). Speculative
 * pushes/pops happen at prediction time; squashes restore the standard
 * (tos, top-value) checkpoint, which repairs all single-divergence
 * wrong paths exactly.
 */
class ReturnAddressStack
{
  public:
    struct Snapshot
    {
        std::uint16_t tos = 0;
        Addr topValue = invalidAddr;
    };

    explicit ReturnAddressStack(unsigned entries = 64);

    /** Push a return address (call prediction). */
    void push(Addr return_addr);

    /** Pop the predicted return target (return prediction). */
    Addr pop();

    /** Value that pop() would return, without popping. */
    Addr top() const { return stack[tos]; }

    Snapshot snapshot() const { return {tos, stack[tos]}; }
    void restore(const Snapshot &snap);
    void reset();

    unsigned capacity() const
    {
        return static_cast<unsigned>(stack.size());
    }

  private:
    std::vector<Addr> stack;
    std::uint16_t tos = 0;
};

} // namespace smt

#endif // SMTFETCH_BPRED_RAS_HH
