/**
 * @file
 * Return address stack with full-stack checkpoint repair.
 */

#ifndef SMTFETCH_BPRED_RAS_HH
#define SMTFETCH_BPRED_RAS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/**
 * Circular return-address stack (one instance per thread). Speculative
 * pushes/pops happen at prediction time; squashes restore the snapshot
 * taken when the block was predicted.
 *
 * A snapshot holds the complete stack contents, not just the
 * top-of-stack value: a wrong path that pops below the snapshot's TOS
 * and then pushes overwrites entries *deeper* than the snapshot
 * position, which a (tos, top-value) checkpoint cannot repair — later
 * correct-path returns would pop the wrong path's garbage. The stack
 * copy is shared (immutable) between the snapshot and every in-flight
 * instruction carrying it, so checkpoint copies stay cheap.
 */
class ReturnAddressStack
{
  public:
    struct Snapshot
    {
        std::uint16_t tos = 0;

        /** Immutable copy of the full stack at snapshot time. */
        std::shared_ptr<const std::vector<Addr>> entries;
    };

    explicit ReturnAddressStack(unsigned entries = 64);

    /** Push a return address (call prediction). */
    void push(Addr return_addr);

    /** Pop the predicted return target (return prediction). */
    Addr pop();

    /** Value that pop() would return, without popping. */
    Addr top() const { return stack[tos]; }

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);
    void reset();

    unsigned capacity() const
    {
        return static_cast<unsigned>(stack.size());
    }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::vector<Addr> stack;
    std::uint16_t tos = 0;

    /**
     * Shared immutable copy handed out by snapshot(), rebuilt lazily
     * after the next content mutation. pop() moves only the TOS
     * pointer, so the dominant predict-time pattern (many snapshots,
     * few pushes) reuses one copy instead of allocating per fetch
     * block.
     */
    mutable std::shared_ptr<const std::vector<Addr>> snapCache;
};

} // namespace smt

#endif // SMTFETCH_BPRED_RAS_HH
