/**
 * @file
 * The full memory hierarchy of Table 3: split 32KB L1s, unified 1MB
 * L2, 100-cycle main memory, I/D TLBs.
 */

#ifndef SMTFETCH_MEM_HIERARCHY_HH
#define SMTFETCH_MEM_HIERARCHY_HH

#include <memory>
#include <ostream>

#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;
class StatsRegistry;

/** Table 3 memory-system parameters. */
struct MemoryParams
{
    CacheParams l1i{"L1I", 32 * 1024, 2, 64, 8, 1, 8};
    CacheParams l1d{"L1D", 32 * 1024, 2, 64, 8, 1, 8};
    CacheParams l2{"L2", 1024 * 1024, 2, 64, 8, 10, 16};
    Cycle memoryLatency = 100;

    unsigned itlbEntries = 48;
    unsigned dtlbEntries = 128;
    unsigned pageBytes = 8 * 1024;
    Cycle tlbMissPenalty = 30;

    /** Extra load-to-use pipeline latency on an L1D hit. */
    Cycle l1dLoadToUse = 2;
};

/** Owns and wires the cache levels and TLBs. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryParams &params);

    /**
     * Instruction fetch access for one line.
     * @return total latency; equals the L1I hit latency when the line
     *         is resident and ready.
     */
    Cycle icacheAccess(ThreadID tid, Addr line_addr, Cycle now);

    /** Is the line ready for single-cycle delivery right now? */
    bool icacheReady(Addr line_addr) const;

    /** Data access (load or store). @return total latency. */
    Cycle dcacheAccess(ThreadID tid, Addr addr, bool is_write,
                       Cycle now);

    Cache &l1i() { return *l1iCache; }
    Cache &l1d() { return *l1dCache; }
    Cache &l2() { return *l2Cache; }
    Tlb &itlb() { return *iTlb; }
    Tlb &dtlb() { return *dTlb; }

    const MemoryParams &params() const { return memParams; }

    void reset();
    void resetStats();
    void dumpStats(std::ostream &os) const;

    /**
     * Register all cache/TLB counters under "mem.*", including the
     * caches' per-thread interference attribution for each of the
     * `num_threads` active threads.
     */
    void registerStats(StatsRegistry &reg,
                       unsigned num_threads = 1) const;

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    MemoryParams memParams;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    std::unique_ptr<Tlb> iTlb;
    std::unique_ptr<Tlb> dTlb;
};

} // namespace smt

#endif // SMTFETCH_MEM_HIERARCHY_HH
