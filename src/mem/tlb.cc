#include "mem/tlb.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"

namespace smt
{

Tlb::Tlb(std::string name, unsigned num_entries, unsigned page_bytes,
         Cycle miss_penalty)
    : name(std::move(name)), pageBytes(page_bytes),
      missPenalty(miss_penalty)
{
    if (num_entries == 0)
        fatal("TLB must have at least one entry");
    entries.assign(num_entries, Entry{});
}

Cycle
Tlb::access(ThreadID tid, Addr vaddr)
{
    ++tlbStats.accesses;
    std::uint64_t vpn = vpnOf(vaddr);

    Entry *victim = &entries[0];
    for (auto &e : entries) {
        if (e.valid && e.tid == tid && e.vpn == vpn) {
            e.lru = ++lruClock;
            return 0;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lru < victim->lru)
            victim = &e;
    }

    ++tlbStats.misses;
    victim->valid = true;
    victim->tid = tid;
    victim->vpn = vpn;
    victim->lru = ++lruClock;
    return missPenalty;
}

bool
Tlb::wouldHit(ThreadID tid, Addr vaddr) const
{
    std::uint64_t vpn = vpnOf(vaddr);
    for (const auto &e : entries)
        if (e.valid && e.tid == tid && e.vpn == vpn)
            return true;
    return false;
}

void
Tlb::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".accesses", "translations requested",
                   &tlbStats.accesses);
    reg.addCounter(prefix + ".misses", "page-walk misses",
                   &tlbStats.misses);
    reg.addFormula(prefix + ".missRate", "misses per access",
                   [this]() { return tlbStats.missRate(); });
}

void
Tlb::reset()
{
    for (auto &e : entries)
        e = Entry{};
    lruClock = 0;
    tlbStats = TlbStats{};
}

void
Tlb::save(CheckpointWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(entries.size()));
    w.u64(lruClock);
    for (const Entry &e : entries) {
        w.b(e.valid);
        w.i16(e.tid);
        w.u64(e.vpn);
        w.u64(e.lru);
    }
    w.u64(tlbStats.accesses);
    w.u64(tlbStats.misses);
}

void
Tlb::restore(CheckpointReader &r)
{
    std::uint32_t n = r.u32();
    if (n != entries.size())
        r.fail(csprintf("%s holds %u entries but this configuration "
                        "uses %zu (configuration mismatch)",
                        name.c_str(), n, entries.size()));
    lruClock = r.u64();
    for (Entry &e : entries) {
        e.valid = r.b();
        e.tid = r.i16();
        e.vpn = r.u64();
        e.lru = r.u64();
    }
    tlbStats.accesses = r.u64();
    tlbStats.misses = r.u64();
}

} // namespace smt
