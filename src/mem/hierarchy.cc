#include "mem/hierarchy.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"

namespace smt
{

MemoryHierarchy::MemoryHierarchy(const MemoryParams &params)
    : memParams(params)
{
    l2Cache = std::make_unique<Cache>(params.l2, nullptr,
                                      params.memoryLatency);
    l1iCache = std::make_unique<Cache>(params.l1i, l2Cache.get(), 0);
    l1dCache = std::make_unique<Cache>(params.l1d, l2Cache.get(), 0);
    iTlb = std::make_unique<Tlb>("ITLB", params.itlbEntries,
                                 params.pageBytes,
                                 params.tlbMissPenalty);
    dTlb = std::make_unique<Tlb>("DTLB", params.dtlbEntries,
                                 params.pageBytes,
                                 params.tlbMissPenalty);
}

Cycle
MemoryHierarchy::icacheAccess(ThreadID tid, Addr line_addr, Cycle now)
{
    Cycle tlb = iTlb->access(tid, line_addr);
    return tlb + l1iCache->access(line_addr, false, now + tlb, tid);
}

bool
MemoryHierarchy::icacheReady(Addr line_addr) const
{
    return l1iCache->wouldHit(line_addr);
}

Cycle
MemoryHierarchy::dcacheAccess(ThreadID tid, Addr addr, bool is_write,
                              Cycle now)
{
    Cycle tlb = dTlb->access(tid, addr);
    Cycle lat = l1dCache->access(addr, is_write, now + tlb, tid);
    if (!is_write && lat <= memParams.l1d.hitLatency)
        lat += memParams.l1dLoadToUse;
    return tlb + lat;
}

void
MemoryHierarchy::reset()
{
    l1iCache->reset();
    l1dCache->reset();
    l2Cache->reset();
    iTlb->reset();
    dTlb->reset();
}

void
MemoryHierarchy::registerStats(StatsRegistry &reg,
                               unsigned num_threads) const
{
    l1iCache->registerStats(reg, "mem.l1i", num_threads);
    l1dCache->registerStats(reg, "mem.l1d", num_threads);
    l2Cache->registerStats(reg, "mem.l2", num_threads);
    iTlb->registerStats(reg, "mem.itlb");
    dTlb->registerStats(reg, "mem.dtlb");
}

void
MemoryHierarchy::resetStats()
{
    l1iCache->resetStats();
    l1dCache->resetStats();
    l2Cache->resetStats();
    iTlb->resetStats();
    dTlb->resetStats();
}

void
MemoryHierarchy::dumpStats(std::ostream &os) const
{
    auto dump_cache = [&os](const Cache &c) {
        const auto &s = c.stats();
        os << c.params().name << ": accesses=" << s.accesses
           << " misses=" << s.misses << " missRate=" << s.missRate()
           << " merges=" << s.mshrMerges << '\n';
    };
    dump_cache(*l1iCache);
    dump_cache(*l1dCache);
    dump_cache(*l2Cache);
    os << "ITLB: accesses=" << iTlb->stats().accesses
       << " misses=" << iTlb->stats().misses << '\n';
    os << "DTLB: accesses=" << dTlb->stats().accesses
       << " misses=" << dTlb->stats().misses << '\n';
}

void
MemoryHierarchy::save(CheckpointWriter &w) const
{
    l2Cache->save(w);
    l1iCache->save(w);
    l1dCache->save(w);
    iTlb->save(w);
    dTlb->save(w);
}

void
MemoryHierarchy::restore(CheckpointReader &r)
{
    l2Cache->restore(r);
    l1iCache->restore(r);
    l1dCache->restore(r);
    iTlb->restore(r);
    dTlb->restore(r);
}

} // namespace smt
