/**
 * @file
 * Simple fully-associative-by-hash TLB timing model: a fixed-capacity
 * LRU set of (thread, virtual page) entries with a constant page-walk
 * penalty on miss.
 */

#ifndef SMTFETCH_MEM_TLB_HH
#define SMTFETCH_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;
class StatsRegistry;

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }
};

/** Paper configuration: 48-entry I-TLB, 128-entry D-TLB, 8KB pages. */
class Tlb
{
  public:
    Tlb(std::string name, unsigned entries, unsigned page_bytes,
        Cycle miss_penalty);

    /**
     * Translate; @return extra cycles charged (0 on hit, the page-walk
     * penalty on miss).
     */
    Cycle access(ThreadID tid, Addr vaddr);

    bool wouldHit(ThreadID tid, Addr vaddr) const;

    const TlbStats &stats() const { return tlbStats; }

    /** Register this TLB's counters under "<prefix>.*". */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    void reset();
    void resetStats() { tlbStats = TlbStats{}; }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        ThreadID tid = invalidThread;
        std::uint64_t vpn = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t vpnOf(Addr vaddr) const { return vaddr / pageBytes; }

    std::string name;
    unsigned pageBytes;
    Cycle missPenalty;
    std::uint64_t lruClock = 0;
    std::vector<Entry> entries;
    TlbStats tlbStats;
};

} // namespace smt

#endif // SMTFETCH_MEM_TLB_HH
