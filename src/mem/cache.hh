/**
 * @file
 * Banked, set-associative, non-blocking cache timing model.
 *
 * The model is tag-accurate (real sets, ways, LRU, evictions) and
 * timing-approximate: a miss immediately recurses into the next level,
 * installs the line with a readiness timestamp, and returns the total
 * latency; accesses that arrive while the line is still in flight are
 * merged MSHR-style and charged the remaining wait.
 */

#ifndef SMTFETCH_MEM_CACHE_HH
#define SMTFETCH_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;
class StatsRegistry;

/** Cache geometry and timing. */
struct CacheParams
{
    std::string name = "cache";
    unsigned sizeBytes = 32 * 1024;
    unsigned ways = 2;
    unsigned lineBytes = 64;
    unsigned banks = 8;
    Cycle hitLatency = 1;
    unsigned mshrs = 8;
};

/** Access statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writeAccesses = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t mshrFullStalls = 0;
    std::uint64_t evictions = 0;

    /**
     * Per-thread attribution of the shared counters above, for
     * measuring inter-thread cache interference in SMT mixes. Sums
     * over the active threads equal `accesses`/`misses` exactly.
     */
    std::array<std::uint64_t, maxThreads> threadAccesses{};
    std::array<std::uint64_t, maxThreads> threadMisses{};

    double
    missRate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }
};

/** One level of the hierarchy. */
class Cache
{
  public:
    /**
     * @param params Geometry/timing.
     * @param next Next level, or nullptr for the last cache level.
     * @param memory_latency Latency charged when next == nullptr.
     */
    Cache(const CacheParams &params, Cache *next, Cycle memory_latency);

    /**
     * Access the line containing addr on behalf of `tid` (counted
     * into that thread's interference attribution; forwarded to the
     * next level on a miss).
     * @return total cycles until the data is available (>= hit
     *         latency).
     */
    Cycle access(Addr addr, bool is_write, Cycle now,
                 ThreadID tid = 0);

    /** Tag-only test: would this access hit right now? */
    bool wouldHit(Addr addr) const;

    /** Bank servicing the given address. */
    unsigned
    bankOf(Addr addr) const
    {
        return static_cast<unsigned>((addr / params_.lineBytes) %
                                     params_.banks);
    }

    const CacheStats &stats() const { return cacheStats; }
    const CacheParams &params() const { return params_; }

    /**
     * Register this level's counters under "<prefix>.*", including
     * "<prefix>.thread<t>.{accesses,misses}" for each of the
     * `num_threads` active threads.
     */
    void registerStats(StatsRegistry &reg, const std::string &prefix,
                       unsigned num_threads = 1) const;

    void reset();
    void resetStats() { cacheStats = CacheStats{}; }

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh). The full
     * replacement state travels with the tags: the LRU clock and
     * every line's lru stamp are part of the payload, so a restored
     * cache makes the identical hit/miss/eviction decisions the
     * original would have made.
     */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        Cycle readyAt = 0; //!< fill completion time (0 = long settled)
    };

    std::uint64_t lineIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    Line *victimFor(Addr addr);

    /** Count in-flight fills and find the earliest completion. */
    unsigned outstandingFills(Cycle now, Cycle &earliest) const;

    CacheParams params_;
    Cache *nextLevel;
    Cycle memoryLatency;

    unsigned numSets;
    unsigned setBits;
    std::uint64_t lruClock = 0;
    std::vector<Line> lines;

    /**
     * Ring of recent miss completion times used to approximate MSHR
     * occupancy without scanning the whole tag array.
     */
    struct MissSlot
    {
        Cycle readyAt = 0;
    };
    std::vector<MissSlot> missWindow;
    std::size_t missWindowPos = 0;

    CacheStats cacheStats;
};

} // namespace smt

#endif // SMTFETCH_MEM_CACHE_HH
