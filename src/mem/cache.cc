#include "mem/cache.hh"

#include <algorithm>
#include <bit>

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"

namespace smt
{

Cache::Cache(const CacheParams &params, Cache *next, Cycle memory_latency)
    : params_(params), nextLevel(next), memoryLatency(memory_latency)
{
    if (params_.lineBytes == 0 ||
        (params_.lineBytes & (params_.lineBytes - 1)) != 0)
        fatal("%s: line size must be a power of two",
              params_.name.c_str());
    if (params_.sizeBytes % (params_.lineBytes * params_.ways) != 0)
        fatal("%s: size not divisible by way*line", params_.name.c_str());
    numSets = params_.sizeBytes / (params_.lineBytes * params_.ways);
    if ((numSets & (numSets - 1)) != 0)
        fatal("%s: set count must be a power of two",
              params_.name.c_str());
    setBits = std::bit_width(numSets) - 1;
    lines.assign(static_cast<std::size_t>(numSets) * params_.ways,
                 Line{});
    missWindow.assign(std::max(4u, params_.mshrs * 2), MissSlot{});
}

std::uint64_t
Cache::lineIndex(Addr addr) const
{
    return (addr / params_.lineBytes) & mask(setBits);
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / params_.lineBytes) >> setBits;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Line *set = &lines[lineIndex(addr) * params_.ways];
    std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w)
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    const Line *set = &lines[lineIndex(addr) * params_.ways];
    std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w)
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    return nullptr;
}

Cache::Line *
Cache::victimFor(Addr addr)
{
    Line *set = &lines[lineIndex(addr) * params_.ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!set[w].valid)
            return &set[w];
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }
    return victim;
}

unsigned
Cache::outstandingFills(Cycle now, Cycle &earliest) const
{
    // MSHR occupancy approximated by the ring of recent miss
    // completion times (scanning the full tag array per access would
    // be prohibitive).
    unsigned count = 0;
    earliest = 0;
    for (const auto &line : missWindow) {
        if (line.readyAt > now) {
            ++count;
            if (earliest == 0 || line.readyAt < earliest)
                earliest = line.readyAt;
        }
    }
    return count;
}

Cycle
Cache::access(Addr addr, bool is_write, Cycle now, ThreadID tid)
{
    const unsigned t =
        tid >= 0 && static_cast<unsigned>(tid) < maxThreads
            ? static_cast<unsigned>(tid)
            : 0;
    ++cacheStats.accesses;
    ++cacheStats.threadAccesses[t];
    if (is_write)
        ++cacheStats.writeAccesses;

    if (Line *line = findLine(addr)) {
        line->lru = ++lruClock;
        if (line->readyAt > now) {
            // Line still being filled: MSHR merge.
            ++cacheStats.mshrMerges;
            return (line->readyAt - now) + params_.hitLatency;
        }
        return params_.hitLatency;
    }

    // Miss.
    ++cacheStats.misses;
    ++cacheStats.threadMisses[t];

    Cycle queue_delay = 0;
    Cycle earliest = 0;
    if (outstandingFills(now, earliest) >= params_.mshrs &&
        earliest > now) {
        // All MSHRs busy: the new miss waits for the earliest fill.
        ++cacheStats.mshrFullStalls;
        queue_delay = earliest - now;
    }

    Cycle below = nextLevel != nullptr
                      ? nextLevel->access(addr, is_write,
                                          now + queue_delay +
                                              params_.hitLatency,
                                          tid)
                      : memoryLatency;

    Cycle total = queue_delay + params_.hitLatency + below;

    Line *victim = victimFor(addr);
    if (victim->valid)
        ++cacheStats.evictions;
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lru = ++lruClock;
    victim->readyAt = now + total;

    missWindow[missWindowPos] = {victim->readyAt};
    missWindowPos = (missWindowPos + 1) % missWindow.size();

    return total;
}

bool
Cache::wouldHit(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::registerStats(StatsRegistry &reg, const std::string &prefix,
                     unsigned num_threads) const
{
    reg.addCounter(prefix + ".accesses", "total accesses",
                   &cacheStats.accesses);
    reg.addCounter(prefix + ".misses", "misses", &cacheStats.misses);
    reg.addCounter(prefix + ".writeAccesses", "write accesses",
                   &cacheStats.writeAccesses);
    reg.addCounter(prefix + ".mshrMerges",
                   "misses merged into an in-flight MSHR",
                   &cacheStats.mshrMerges);
    reg.addCounter(prefix + ".mshrFullStalls",
                   "accesses stalled on full MSHRs",
                   &cacheStats.mshrFullStalls);
    reg.addCounter(prefix + ".evictions", "line evictions",
                   &cacheStats.evictions);
    reg.addFormula(prefix + ".missRate", "misses per access",
                   [this]() { return cacheStats.missRate(); });
    for (unsigned t = 0; t < std::min(num_threads, maxThreads); ++t) {
        reg.addCounter(csprintf("%s.thread%u.accesses",
                                prefix.c_str(), t),
                       "accesses issued by this thread",
                       &cacheStats.threadAccesses[t]);
        reg.addCounter(csprintf("%s.thread%u.misses",
                                prefix.c_str(), t),
                       "misses attributed to this thread",
                       &cacheStats.threadMisses[t]);
    }
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    for (auto &m : missWindow)
        m = MissSlot{};
    lruClock = 0;
    missWindowPos = 0;
    cacheStats = CacheStats{};
}

void
Cache::save(CheckpointWriter &w) const
{
    w.u32(numSets);
    w.u32(params_.ways);
    w.u32(params_.lineBytes);
    w.u64(lruClock);
    for (const Line &line : lines) {
        w.b(line.valid);
        w.u64(line.tag);
        w.u64(line.lru);
        w.u64(line.readyAt);
    }
    w.u32(static_cast<std::uint32_t>(missWindow.size()));
    for (const MissSlot &m : missWindow)
        w.u64(m.readyAt);
    w.u64(missWindowPos);
    w.u64(cacheStats.accesses);
    w.u64(cacheStats.misses);
    w.u64(cacheStats.writeAccesses);
    w.u64(cacheStats.mshrMerges);
    w.u64(cacheStats.mshrFullStalls);
    w.u64(cacheStats.evictions);
    for (unsigned t = 0; t < maxThreads; ++t) {
        w.u64(cacheStats.threadAccesses[t]);
        w.u64(cacheStats.threadMisses[t]);
    }
}

void
Cache::restore(CheckpointReader &r)
{
    std::uint32_t sets = r.u32();
    std::uint32_t ways = r.u32();
    std::uint32_t line_bytes = r.u32();
    if (sets != numSets || ways != params_.ways ||
        line_bytes != params_.lineBytes)
        r.fail(csprintf("%s geometry %ux%ux%uB does not match this "
                        "configuration's %ux%ux%uB (configuration "
                        "mismatch)",
                        params_.name.c_str(), sets, ways, line_bytes,
                        numSets, params_.ways, params_.lineBytes));
    lruClock = r.u64();
    for (Line &line : lines) {
        line.valid = r.b();
        line.tag = r.u64();
        line.lru = r.u64();
        line.readyAt = r.u64();
    }
    std::uint32_t mw = r.u32();
    if (mw != missWindow.size())
        r.fail(csprintf("%s miss window holds %u slots but this "
                        "configuration uses %zu",
                        params_.name.c_str(), mw, missWindow.size()));
    for (MissSlot &m : missWindow)
        m.readyAt = r.u64();
    missWindowPos = r.u64();
    if (missWindowPos >= missWindow.size())
        r.fail(csprintf("%s miss-window position %llu out of range",
                        params_.name.c_str(),
                        (unsigned long long)missWindowPos));
    cacheStats.accesses = r.u64();
    cacheStats.misses = r.u64();
    cacheStats.writeAccesses = r.u64();
    cacheStats.mshrMerges = r.u64();
    cacheStats.mshrFullStalls = r.u64();
    cacheStats.evictions = r.u64();
    for (unsigned t = 0; t < maxThreads; ++t) {
        cacheStats.threadAccesses[t] = r.u64();
        cacheStats.threadMisses[t] = r.u64();
    }
}

} // namespace smt
