#include "workload/workloads.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/random.hh"
#include "workload/profiles.hh"
#include "workload/trace_file.hh"

namespace smt
{

namespace
{

/** Per-thread address-space strides (code and data never overlap). */
constexpr Addr codeStride = 0x0100'0000;   // 16 MB of code space/thread
constexpr Addr codeBase0 = 0x0040'0000;
constexpr Addr dataStride = 0x1000'0000;   // 256 MB of data space/thread
constexpr Addr dataBase0 = 0x4000'0000;

} // namespace

const std::vector<WorkloadSpec> &
table2Workloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        {"2_ILP", {"eon", "gcc"}},
        {"2_MEM", {"mcf", "twolf"}},
        {"2_MIX", {"gzip", "twolf"}},
        {"4_ILP", {"eon", "gcc", "gzip", "bzip2"}},
        {"4_MEM", {"mcf", "twolf", "vpr", "perlbmk"}},
        {"4_MIX", {"gzip", "twolf", "bzip2", "mcf"}},
        {"6_ILP", {"eon", "gcc", "gzip", "bzip2", "crafty", "vortex"}},
        {"6_MIX", {"gzip", "twolf", "bzip2", "mcf", "vpr", "eon"}},
        {"8_ILP", {"eon", "gcc", "gzip", "bzip2", "crafty", "vortex",
                   "gap", "parser"}},
        {"8_MIX", {"gzip", "twolf", "bzip2", "mcf", "vpr", "eon", "gap",
                   "parser"}},
    };
    return workloads;
}

const WorkloadSpec &
workloadFor(const std::string &name)
{
    for (const auto &w : table2Workloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

bool
isTraceWorkloadName(const std::string &name)
{
    return name.rfind("trace:", 0) == 0;
}

unsigned
workloadThreadCount(const std::string &name)
{
    if (isTraceWorkloadName(name))
        return static_cast<unsigned>(
            std::count(name.begin(), name.end(), ',') + 1);
    for (const auto &w : table2Workloads())
        if (w.name == name)
            return static_cast<unsigned>(w.benchmarks.size());
    return 1; // single-benchmark (superscalar) workload
}

WorkloadSpec
traceWorkload(const std::string &name)
{
    if (!isTraceWorkloadName(name))
        throw TraceFileError(csprintf(
            "\"%s\" is not a trace workload (expected "
            "\"trace:<path>[,<path>...]\")",
            name.c_str()));

    WorkloadSpec spec;
    spec.name = name;
    std::string paths = name.substr(6);
    std::size_t start = 0;
    while (start <= paths.size()) {
        std::size_t comma = paths.find(',', start);
        std::string path =
            paths.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        if (path.empty())
            throw TraceFileError(csprintf(
                "\"%s\" names an empty trace path (expected "
                "\"trace:<path>[,<path>...]\")",
                name.c_str()));
        spec.benchmarks.push_back(readTraceHeader(path).benchmark);
        spec.traces.push_back(path);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return spec;
}

WorkloadImages
buildWorkload(const WorkloadSpec &spec, std::uint64_t seed)
{
    if (spec.benchmarks.empty())
        fatal("workload '%s' has no benchmarks", spec.name.c_str());
    if (spec.benchmarks.size() > maxThreads)
        fatal("workload '%s' exceeds %u threads", spec.name.c_str(),
              maxThreads);

    if (!spec.traces.empty() &&
        spec.traces.size() != spec.benchmarks.size())
        fatal("workload '%s' names %zu traces for %zu threads",
              spec.name.c_str(), spec.traces.size(),
              spec.benchmarks.size());

    WorkloadImages out;
    out.spec = spec;
    for (std::size_t t = 0; t < spec.benchmarks.size(); ++t) {
        if (t < spec.traces.size() && !spec.traces[t].empty()) {
            // Trace-backed thread: rebuild the exact image the trace
            // was recorded against (buildImage is deterministic in
            // profile, bases and seed — all carried by the header).
            TraceFileHeader hdr = readTraceHeader(spec.traces[t]);
            out.images.push_back(std::make_unique<BenchmarkImage>(
                buildImage(profileFor(hdr.benchmark), hdr.codeBase,
                           hdr.dataBase, hdr.seed)));
            continue;
        }
        const auto &prof = profileFor(spec.benchmarks[t]);
        // Stagger bases by a non-power-of-two line count so threads do
        // not collide on the same cache sets in lockstep (real
        // programs are not identically aligned either).
        Addr code = codeBase0 + static_cast<Addr>(t) * codeStride +
                    static_cast<Addr>(t) * 17 * 64 +
                    (Rng::hashString(prof.name) % 61) * 64;
        Addr data = dataBase0 + static_cast<Addr>(t) * dataStride +
                    static_cast<Addr>(t) * 31 * 64 +
                    (Rng::hashString(prof.name) % 53) * 64 * 8;
        out.images.push_back(std::make_unique<BenchmarkImage>(
            buildImage(prof, code, data, seed)));
    }
    return out;
}

WorkloadImages
buildSingle(const std::string &benchmark, std::uint64_t seed)
{
    WorkloadSpec spec{benchmark, {benchmark}};
    return buildWorkload(spec, seed);
}

} // namespace smt
