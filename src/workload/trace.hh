/**
 * @file
 * Correct-path dynamic trace stream.
 *
 * A TraceStream walks a BenchmarkImage's CFG and produces the
 * benchmark's architecturally-correct dynamic instruction sequence:
 * this is what a trace file would contain. The SMT core consumes one
 * TraceStream per hardware thread; wrong-path fetch does NOT come from
 * here (it reads the static dictionary directly), so the stream
 * position always identifies the next correct-path instruction.
 */

#ifndef SMTFETCH_WORKLOAD_TRACE_HH
#define SMTFETCH_WORKLOAD_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/static_inst.hh"
#include "workload/program_builder.hh"

namespace smt
{

/** One correct-path dynamic instruction. */
struct TraceRecord
{
    const StaticInst *si = nullptr;

    /** For CTIs: did control transfer? (non-CTIs: false) */
    bool taken = false;

    /** Address of the next correct-path instruction. */
    Addr nextPc = invalidAddr;

    /** Effective address for loads/stores. */
    Addr memAddr = invalidAddr;

    Addr pc() const { return si->pc; }
};

/** Aggregate statistics accumulated while generating a trace. */
struct TraceStats
{
    std::uint64_t insts = 0;
    std::uint64_t ctis = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t takenCtis = 0;
    std::uint64_t takenCond = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /** Dynamic average basic-block size (insts per CTI). */
    double
    avgBlockSize() const
    {
        return ctis == 0 ? 0.0
                         : static_cast<double>(insts) /
                               static_cast<double>(ctis);
    }

    /** Dynamic average stream length (insts per taken CTI). */
    double
    avgStreamLength() const
    {
        return takenCtis == 0 ? 0.0
                              : static_cast<double>(insts) /
                                    static_cast<double>(takenCtis);
    }
};

/**
 * Infinite correct-path instruction stream for one benchmark.
 *
 * The stream owns private copies of the behaviour models, so multiple
 * streams over the same image are independent. A bounded replay ring
 * supports rewinding to a recently-consumed position, which squash
 * mechanisms that discard correct-path instructions (the long-
 * latency-load FLUSH policy) need to refetch them.
 */
class TraceStream
{
  public:
    /** Rewind window in records (must exceed max per-thread
     *  in-flight instructions plus fetch run-ahead). */
    static constexpr std::size_t replayWindow = 4096;

    /** @param image Must outlive the stream. */
    explicit TraceStream(const BenchmarkImage &image);

    /** The next correct-path record, without consuming it. */
    const TraceRecord &peek() const;

    /** PC of the next correct-path instruction. */
    Addr peekPc() const { return peek().si->pc; }

    /** Consume and return the next correct-path record. */
    TraceRecord next();

    /** Index of the next record next() will return. */
    std::uint64_t position() const { return nextIndex; }

    /**
     * Rewind so that next() re-delivers the record that was at
     * `index`. The index must be within the replay window.
     */
    void rewindTo(std::uint64_t index);

    /** Statistics over everything generated so far. */
    const TraceStats &stats() const { return tstats; }

    /** The benchmark image this stream walks. */
    const BenchmarkImage &image() const { return img; }

  private:
    void computeUpcoming();
    void generateNext();

    const BenchmarkImage &img;
    std::vector<BranchModel> branchModels;
    std::vector<IndirectModel> indirectModels;
    std::vector<MemoryModel> memModels;

    Addr pc;
    std::vector<Addr> callStack;
    std::uint64_t oracleHistory = 0;
    std::uint64_t oraclePathSig = 0;

    TraceRecord upcoming;
    TraceStats tstats;

    /** Replay ring: records [generated - window, generated). */
    std::vector<TraceRecord> ring{replayWindow};
    std::uint64_t generatedCount = 0; //!< records ever generated
    std::uint64_t nextIndex = 0;      //!< next record to deliver

    static constexpr std::size_t maxCallDepth = 64;
};

} // namespace smt

#endif // SMTFETCH_WORKLOAD_TRACE_HH
