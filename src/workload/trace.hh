/**
 * @file
 * Correct-path dynamic trace sources.
 *
 * A TraceSource produces a benchmark's architecturally-correct dynamic
 * instruction sequence: this is what a trace file contains. The SMT
 * core consumes one TraceSource per hardware thread; wrong-path fetch
 * does NOT come from here (it reads the static dictionary directly),
 * so the source position always identifies the next correct-path
 * instruction.
 *
 * Two backends implement the interface: SyntheticTraceStream walks a
 * BenchmarkImage's CFG and behaviour models (the statistical SPECint
 * profiles), and FileTraceStream (workload/trace_file.hh) replays a
 * recorded trace file. Any source can additionally be captured to a
 * file through setRecorder, which is how `smtsim --record` serializes
 * synthetic runs.
 */

#ifndef SMTFETCH_WORKLOAD_TRACE_HH
#define SMTFETCH_WORKLOAD_TRACE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "isa/static_inst.hh"
#include "workload/program_builder.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;
class TraceWriter;

/** One correct-path dynamic instruction. */
struct TraceRecord
{
    const StaticInst *si = nullptr;

    /** For CTIs: did control transfer? (non-CTIs: false) */
    bool taken = false;

    /** Address of the next correct-path instruction. */
    Addr nextPc = invalidAddr;

    /** Effective address for loads/stores. */
    Addr memAddr = invalidAddr;

    Addr pc() const { return si->pc; }
};

/** Aggregate statistics accumulated while generating a trace. */
struct TraceStats
{
    std::uint64_t insts = 0;
    std::uint64_t ctis = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t takenCtis = 0;
    std::uint64_t takenCond = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /** Dynamic average basic-block size (insts per CTI). */
    double
    avgBlockSize() const
    {
        return ctis == 0 ? 0.0
                         : static_cast<double>(insts) /
                               static_cast<double>(ctis);
    }

    /** Dynamic average stream length (insts per taken CTI). */
    double
    avgStreamLength() const
    {
        return takenCtis == 0 ? 0.0
                              : static_cast<double>(insts) /
                                    static_cast<double>(takenCtis);
    }
};

/**
 * Abstract correct-path instruction source for one benchmark.
 *
 * The base class owns everything the consumer-facing contract needs —
 * one-record lookahead (peek), per-thread statistics, an optional
 * capture recorder, and a bounded replay ring supporting rewinds to a
 * recently-consumed position, which squash mechanisms that discard
 * correct-path instructions (the long-latency-load FLUSH policy) need
 * to refetch them. Backends only implement generate(): produce the
 * next never-before-seen record.
 */
class TraceSource
{
  public:
    /** Rewind window in records (must exceed max per-thread
     *  in-flight instructions plus fetch run-ahead). */
    static constexpr std::size_t replayWindow = 4096;

    /** @param image Must outlive the source. */
    explicit TraceSource(const BenchmarkImage &image) : img(image) {}

    virtual ~TraceSource() = default;

    /** The next correct-path record, without consuming it. */
    const TraceRecord &peek();

    /**
     * The record `offset` positions past the next one, without
     * consuming anything (peekAhead(0) == peek()). Records past the
     * generation frontier are produced into a lookahead buffer that
     * next() later drains, so statistics and recording still happen
     * exactly once, at consumption order. The perfect-BP oracle in
     * core/front_end.cc uses this to read the correct path ahead of
     * the fetch stage.
     */
    const TraceRecord &peekAhead(std::uint64_t offset);

    /** PC of the next correct-path instruction. */
    Addr peekPc() { return peek().si->pc; }

    /** Consume and return the next correct-path record. */
    TraceRecord next();

    /** Index of the next record next() will return. */
    std::uint64_t position() const { return nextIndex; }

    /**
     * Rewind so that next() re-delivers the record that was at
     * `index`. The index must be within the replay window.
     */
    void rewindTo(std::uint64_t index);

    /** Statistics over everything generated so far. */
    const TraceStats &stats() const { return tstats; }

    /** The benchmark image this source executes over. */
    const BenchmarkImage &image() const { return img; }

    /**
     * Capture every newly-generated record to `writer` (replays after
     * a rewind are not re-recorded). The writer must outlive the
     * source or be detached with nullptr.
     */
    void setRecorder(TraceWriter *writer) { recorder = writer; }

    /**
     * @name Checkpoint serialization (sim/checkpoint.hh). The base
     * state (replay ring, positions, statistics, lookahead) is shared;
     * each backend appends what it needs to resume generation —
     * model/RNG state for the synthetic stream, a file position for
     * the replay stream. restore() requires a freshly-constructed
     * source over the identical image.
     */
    /// @{
    virtual void save(CheckpointWriter &w) const = 0;
    virtual void restore(CheckpointReader &r) = 0;
    /// @}

  protected:
    /** Produce the record following everything generated so far. */
    virtual TraceRecord generate() = 0;

    /** @name Base-state serialization for backends. */
    /// @{
    void saveBase(CheckpointWriter &w) const;
    void restoreBase(CheckpointReader &r);

    /** Records generate() has produced (checkpoint file skipping). */
    std::uint64_t
    generatedRecords() const
    {
        return generatedCount + (haveUpcoming ? 1 : 0) +
               lookahead.size();
    }
    /// @}

    const BenchmarkImage &img;

  private:
    void ensureUpcoming();

    TraceWriter *recorder = nullptr;

    TraceRecord upcoming;
    bool haveUpcoming = false;

    /** Records generated past `upcoming` by peekAhead; ensureUpcoming
     *  drains this before calling generate() again. */
    std::deque<TraceRecord> lookahead;

    TraceStats tstats;

    /** Replay ring: records [generated - window, generated). */
    std::vector<TraceRecord> ring{replayWindow};
    std::uint64_t generatedCount = 0; //!< records ever generated
    std::uint64_t nextIndex = 0;      //!< next record to deliver
};

/**
 * Infinite synthetic correct-path stream: walks the image's CFG,
 * consulting its branch/indirect/memory behaviour models. The stream
 * owns private copies of the models, so multiple streams over the same
 * image are independent.
 */
class SyntheticTraceStream : public TraceSource
{
  public:
    /** @param image Must outlive the stream. */
    explicit SyntheticTraceStream(const BenchmarkImage &image);

    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;

  protected:
    TraceRecord generate() override;

  private:
    std::vector<BranchModel> branchModels;
    std::vector<IndirectModel> indirectModels;
    std::vector<MemoryModel> memModels;

    Addr pc;
    std::vector<Addr> callStack;
    std::uint64_t oracleHistory = 0;
    std::uint64_t oraclePathSig = 0;

    static constexpr std::size_t maxCallDepth = 64;
};

} // namespace smt

#endif // SMTFETCH_WORKLOAD_TRACE_HH
