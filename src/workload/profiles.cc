#include "workload/profiles.hh"

#include "util/logging.hh"

namespace smt
{

namespace
{

/**
 * Build the profile table.
 *
 * avgBlockSize values are the Table 1 "Avg. BB size" column. The
 * remaining knobs encode the qualitative characterization published
 * for SPECint2000: mcf/twolf/vpr are memory bounded with long
 * dependence chains and poor locality; gcc/crafty/vortex have large
 * code footprints; gzip/bzip2/eon are compute bound, cache friendly
 * and highly predictable.
 */
std::vector<BenchmarkProfile>
makeProfiles()
{
    std::vector<BenchmarkProfile> v;

    BenchmarkProfile p;

    // 164.gzip — compression, high ILP, small code, modest WS.
    p = BenchmarkProfile{};
    p.name = "gzip";
    p.seedSalt = 8;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 11.02;
    p.codeKB = 24;
    p.workingSetKB = 384;
    p.corrFrac = 0.25;
    p.randomFrac = 0.02;
    p.loopTripMean = 40.0;
    p.backwardFrac = 0.45;
    p.stackFrac = 0.58;
    p.strideFrac = 0.32;
    p.chaseFrac = 0.02;
    p.hotKB = 16;
    p.hotProb = 0.97;
    p.depWindow = 14;
    v.push_back(p);

    // 175.vpr — place&route, memory bounded-ish, irregular.
    p = BenchmarkProfile{};
    p.name = "vpr";
    p.seedSalt = 4;
    p.benchClass = BenchClass::MEM;
    p.avgBlockSize = 9.68;
    p.codeKB = 48;
    p.workingSetKB = 3072;
    p.corrFrac = 0.28;
    p.randomFrac = 0.04;
    p.loopTripMean = 22.0;
    p.stackFrac = 0.3;
    p.strideFrac = 0.30;
    p.chaseFrac = 0.2;
    p.hotKB = 64;
    p.hotProb = 0.88;
    p.depWindow = 9;
    v.push_back(p);

    // 176.gcc — compiler, many small blocks, large code footprint.
    p = BenchmarkProfile{};
    p.name = "gcc";
    p.seedSalt = 13;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 5.76;
    p.codeKB = 160;
    p.workingSetKB = 768;
    p.corrFrac = 0.32;
    p.randomFrac = 0.02;
    p.loopTripMean = 18.0;
    p.indirectFrac = 0.05;
    p.callFrac = 0.10;
    p.retFrac = 0.08;
    p.condFrac = 0.70;
    p.stackFrac = 0.5;
    p.strideFrac = 0.3;
    p.chaseFrac = 0.05;
    p.hotKB = 32;
    p.hotProb = 0.95;
    p.depWindow = 10;
    v.push_back(p);

    // 181.mcf — network simplex, extremely memory bounded.
    p = BenchmarkProfile{};
    p.name = "mcf";
    p.seedSalt = 28;
    p.benchClass = BenchClass::MEM;
    p.avgBlockSize = 3.92;
    p.codeKB = 16;
    p.workingSetKB = 16384;
    p.loadFrac = 0.32;
    p.storeFrac = 0.09;
    p.corrFrac = 0.15;
    p.randomFrac = 0.03;
    p.loopTripMean = 20.0;
    p.stackFrac = 0.18;
    p.strideFrac = 0.13;
    p.chaseFrac = 0.45;
    p.hotKB = 256;
    p.hotProb = 0.82;
    p.depWindow = 6;
    v.push_back(p);

    // 186.crafty — chess, compute bound, larger code.
    p = BenchmarkProfile{};
    p.name = "crafty";
    p.seedSalt = 15;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 9.24;
    p.codeKB = 64;
    p.workingSetKB = 512;
    p.corrFrac = 0.32;
    p.randomFrac = 0.02;
    p.loopTripMean = 24.0;
    p.stackFrac = 0.55;
    p.strideFrac = 0.33;
    p.chaseFrac = 0.03;
    p.hotKB = 32;
    p.hotProb = 0.96;
    p.depWindow = 13;
    v.push_back(p);

    // 197.parser — NLP, pointer structures, medium memory pressure.
    p = BenchmarkProfile{};
    p.name = "parser";
    p.seedSalt = 26;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 6.37;
    p.codeKB = 48;
    p.workingSetKB = 1536;
    p.corrFrac = 0.28;
    p.randomFrac = 0.03;
    p.loopTripMean = 20.0;
    p.stackFrac = 0.48;
    p.strideFrac = 0.34;
    p.chaseFrac = 0.08;
    p.hotKB = 48;
    p.hotProb = 0.92;
    p.depWindow = 8;
    v.push_back(p);

    // 252.eon — C++ ray tracer, high ILP, some fp.
    p = BenchmarkProfile{};
    p.name = "eon";
    p.seedSalt = 3;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 8.73;
    p.codeKB = 96;
    p.workingSetKB = 256;
    p.fpFrac = 0.10;
    p.corrFrac = 0.20;
    p.randomFrac = 0.01;
    p.loopTripMean = 30.0;
    p.callFrac = 0.10;
    p.retFrac = 0.08;
    p.condFrac = 0.72;
    p.stackFrac = 0.58;
    p.strideFrac = 0.34;
    p.chaseFrac = 0.02;
    p.hotKB = 16;
    p.hotProb = 0.97;
    p.depWindow = 15;
    v.push_back(p);

    // 253.perlbmk — interpreter, indirect heavy, medium WS.
    p = BenchmarkProfile{};
    p.name = "perlbmk";
    p.seedSalt = 11;
    p.benchClass = BenchClass::MEM;
    p.avgBlockSize = 10.06;
    p.codeKB = 96;
    p.workingSetKB = 2048;
    p.corrFrac = 0.28;
    p.randomFrac = 0.03;
    p.loopTripMean = 22.0;
    p.indirectFrac = 0.06;
    p.callFrac = 0.10;
    p.retFrac = 0.08;
    p.condFrac = 0.68;
    p.stackFrac = 0.4;
    p.strideFrac = 0.32;
    p.chaseFrac = 0.08;
    p.hotKB = 48;
    p.hotProb = 0.92;
    p.depWindow = 10;
    v.push_back(p);

    // 254.gap — group theory, compute bound.
    p = BenchmarkProfile{};
    p.name = "gap";
    p.seedSalt = 7;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 9.16;
    p.codeKB = 64;
    p.workingSetKB = 768;
    p.corrFrac = 0.25;
    p.randomFrac = 0.02;
    p.loopTripMean = 28.0;
    p.stackFrac = 0.55;
    p.strideFrac = 0.33;
    p.chaseFrac = 0.04;
    p.hotKB = 24;
    p.hotProb = 0.96;
    p.depWindow = 12;
    v.push_back(p);

    // 255.vortex — OO database, large code, call heavy.
    p = BenchmarkProfile{};
    p.name = "vortex";
    p.seedSalt = 12;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 6.50;
    p.codeKB = 96;
    p.workingSetKB = 512;
    p.corrFrac = 0.25;
    p.randomFrac = 0.02;
    p.loopTripMean = 20.0;
    p.callFrac = 0.12;
    p.retFrac = 0.10;
    p.condFrac = 0.66;
    p.stackFrac = 0.52;
    p.strideFrac = 0.33;
    p.chaseFrac = 0.05;
    p.hotKB = 32;
    p.hotProb = 0.95;
    p.depWindow = 11;
    v.push_back(p);

    // 256.bzip2 — compression, high ILP, predictable.
    p = BenchmarkProfile{};
    p.name = "bzip2";
    p.seedSalt = 15;
    p.benchClass = BenchClass::ILP;
    p.avgBlockSize = 10.02;
    p.codeKB = 24;
    p.workingSetKB = 512;
    p.corrFrac = 0.25;
    p.randomFrac = 0.02;
    p.loopTripMean = 48.0;
    p.backwardFrac = 0.45;
    p.stackFrac = 0.58;
    p.strideFrac = 0.32;
    p.chaseFrac = 0.02;
    p.hotKB = 16;
    p.hotProb = 0.97;
    p.depWindow = 14;
    v.push_back(p);

    // 300.twolf — place&route, memory bounded.
    p = BenchmarkProfile{};
    p.name = "twolf";
    p.seedSalt = 17;
    p.benchClass = BenchClass::MEM;
    p.avgBlockSize = 8.00;
    p.codeKB = 32;
    p.workingSetKB = 4096;
    p.corrFrac = 0.28;
    p.randomFrac = 0.04;
    p.loopTripMean = 20.0;
    p.stackFrac = 0.3;
    p.strideFrac = 0.25;
    p.chaseFrac = 0.22;
    p.hotKB = 64;
    p.hotProb = 0.9;
    p.depWindow = 9;
    v.push_back(p);

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = makeProfiles();
    return profiles;
}

const BenchmarkProfile &
profileFor(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return p;
    fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace smt
