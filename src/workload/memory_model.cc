#include "workload/memory_model.hh"

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

std::uint32_t
probToThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return ~0u;
    return static_cast<std::uint32_t>(p * 4294967296.0);
}

} // namespace

MemoryModel
MemoryModel::makeStride(Addr region_base, Addr region_bytes,
                        unsigned stride)
{
    if (region_bytes < 64)
        panic("stride region too small");
    MemoryModel m;
    m.modelKind = Kind::Stride;
    m.base = region_base;
    m.bytes = region_bytes;
    m.stride = stride == 0 ? 8 : stride;
    return m;
}

MemoryModel
MemoryModel::makeRandom(Addr region_base, Addr region_bytes,
                        Addr hot_bytes, double hot_prob,
                        std::uint64_t seed)
{
    if (region_bytes < 64)
        panic("random region too small");
    MemoryModel m;
    m.modelKind = Kind::RandomWS;
    m.base = region_base;
    m.bytes = region_bytes;
    m.hotBytes = hot_bytes < 64 ? 64 : hot_bytes;
    if (m.hotBytes > region_bytes)
        m.hotBytes = region_bytes;
    m.hotThreshold = probToThreshold(hot_prob);
    m.seed = seed;
    return m;
}

MemoryModel
MemoryModel::makeChase(Addr region_base, Addr region_bytes,
                       Addr hot_bytes, double hot_prob,
                       std::uint64_t seed)
{
    MemoryModel m = makeRandom(region_base, region_bytes, hot_bytes,
                               hot_prob, seed);
    m.modelKind = Kind::Chase;
    return m;
}

Addr
MemoryModel::next()
{
    switch (modelKind) {
      case Kind::Stride: {
        Addr a = base + offset;
        offset += stride;
        if (offset + 8 > bytes)
            offset = 0;
        return a & ~Addr(7);
      }
      case Kind::RandomWS:
      case Kind::Chase: {
        std::uint64_t r = mix64(seed ^ (execCount * 0x9e3779b9ULL));
        ++execCount;
        // Recursive locality: hot accesses split between a tiny
        // cache-resident core (8KB) and the hot subset; the rest
        // scatter over the whole working set.
        Addr span;
        auto u = static_cast<std::uint32_t>(r);
        auto hot = static_cast<std::uint64_t>(hotThreshold);
        if (u < (hot * 6) / 10) {
            span = hotBytes < 8192 ? hotBytes : 8192;
        } else if (u < hot) {
            span = hotBytes;
        } else {
            span = bytes;
        }
        Addr a = base + ((r >> 32) % (span - 8 < 8 ? 8 : span - 8));
        return a & ~Addr(7);
      }
    }
    panic("unreachable memory model kind");
}

void
MemoryModel::save(CheckpointWriter &w) const
{
    w.u64(offset);
    w.u64(execCount);
}

void
MemoryModel::restore(CheckpointReader &r)
{
    offset = r.u64();
    execCount = r.u64();
}

} // namespace smt
