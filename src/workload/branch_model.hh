/**
 * @file
 * Per-static-branch outcome generators for synthetic benchmarks.
 *
 * Each static conditional branch in a synthetic program owns a
 * BranchModel instance that deterministically produces its dynamic
 * taken/not-taken sequence. The model kinds span the predictability
 * spectrum real integer codes exhibit:
 *
 *  - Loop: taken (trip-1) times, then not-taken once (loop back-edge).
 *  - Biased: independent draws with a fixed, strongly skewed P(taken).
 *  - Correlated: outcome is a deterministic boolean function of the
 *    thread's recent global branch history, so a history-based
 *    predictor with enough table capacity can learn it perfectly —
 *    this is what separates gshare from the less-aliasing gskew.
 *  - Random: 50/50 independent draws (unpredictable floor).
 *
 * Indirect jumps use IndirectModel, which picks among a static target
 * set with one dominant target.
 */

#ifndef SMTFETCH_WORKLOAD_BRANCH_MODEL_HH
#define SMTFETCH_WORKLOAD_BRANCH_MODEL_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Deterministic taken/not-taken generator for one static branch. */
class BranchModel
{
  public:
    enum class Kind : unsigned char
    {
        Biased,
        Loop,
        Correlated,     //!< function of recent conditional outcomes
        CorrelatedPath, //!< function of recent taken-branch targets
        Random,
    };

    BranchModel() = default;

    static BranchModel makeBiased(double p_taken, std::uint64_t seed);
    static BranchModel makeLoop(unsigned trip_count);
    static BranchModel makeCorrelated(unsigned history_bits,
                                      std::uint64_t seed);
    static BranchModel makeCorrelatedPath(unsigned depth,
                                          std::uint64_t seed);
    static BranchModel makeRandom(std::uint64_t seed);

    /**
     * Produce the next dynamic outcome and advance internal state.
     *
     * @param global_history The thread's oracle global history (bit 0
     *        = most recent correct-path conditional outcome).
     * @param path_sig The thread's oracle path signature (packed
     *        recent taken-branch targets, most recent in the low
     *        bits).
     */
    bool next(std::uint64_t global_history, std::uint64_t path_sig);

    Kind kind() const { return modelKind; }

    /** Long-run expected taken rate (for workload statistics). */
    double expectedTakenRate() const;

    /** @name Checkpoint serialization of the mutable state (the
     *  static shape is rebuilt from the image; sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    Kind modelKind = Kind::Biased;
    std::uint64_t seed = 0;
    std::uint64_t execCount = 0;

    // Biased/Random: P(taken) in 2^-32 units.
    std::uint32_t takenThreshold = 0;

    // Loop: iterations per loop instance, and position.
    std::uint32_t tripCount = 2;
    std::uint32_t tripPos = 0;

    // Correlated: history bits consulted; CorrelatedPath: number of
    // recent taken targets consulted (1..3).
    unsigned historyBits = 6;
};

/** Bits of the path signature occupied by one taken target. */
constexpr unsigned pathSigBitsPerTarget = 20;

/** Deterministic target chooser for one static indirect jump. */
class IndirectModel
{
  public:
    IndirectModel() = default;

    /**
     * @param targets Candidate targets; the first is dominant.
     * @param dominant_prob Probability of choosing targets[0].
     */
    IndirectModel(std::vector<Addr> targets, double dominant_prob,
                  std::uint64_t seed);

    /** Next dynamic target (advances state). */
    Addr next();

    const std::vector<Addr> &targets() const { return targetSet; }

    /** @name Checkpoint serialization (sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    std::vector<Addr> targetSet;
    std::uint32_t dominantThreshold = 0;
    std::uint64_t seed = 0;
    std::uint64_t execCount = 0;
};

} // namespace smt

#endif // SMTFETCH_WORKLOAD_BRANCH_MODEL_HH
