#include "workload/program_builder.hh"

#include <algorithm>
#include <cmath>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workload/trace.hh"

namespace smt
{

namespace
{

/** Terminator categories assigned in layout pass 1. */
enum class TermType : unsigned char
{
    Cond,
    Jump,
    Call,
    Ret,
    Indirect,
};

struct BlockSpec
{
    std::uint32_t funcId = 0;
    std::uint32_t sizeInsts = 1;   // includes terminator
    TermType term = TermType::Cond;
    Addr startPC = 0;
    std::uint32_t indexInFunc = 0;
    std::uint32_t funcFirstBlock = 0;
    std::uint32_t funcNumBlocks = 0;

    /** Forced cond-branch target (driver loop back-edges). */
    std::int32_t forcedCondTarget = -1;

    /** Forced loop trip count (driver phase length; 0 = none). */
    std::uint32_t forcedTrip = 0;
};

/** Rotating general-purpose register pool: r1..r27. */
constexpr RegIndex gprPoolBase = 1;
constexpr unsigned gprPoolSize = 27;

/** Dedicated pointer-chase chain register. */
constexpr RegIndex chaseReg = 28;

class Builder
{
  public:
    Builder(const BenchmarkProfile &prof, Addr code_base, Addr data_base,
            std::uint64_t seed, double size_scale)
        : profile(prof),
          rng(prof.name, (seed + prof.seedSalt) ^ 0xb10cULL),
          codeBase(code_base), dataBase(data_base),
          dataBytes(static_cast<Addr>(prof.workingSetKB) * 1024),
          sizeScale(size_scale)
    {
    }

    BenchmarkImage
    build()
    {
        layoutBlocks();

        BenchmarkImage img{profile,
                           StaticProgram(profile.name, codeBase),
                           {}, {}, {}, dataBase, dataBytes};

        for (const auto &spec : specs)
            img.program.appendBlock(materialize(spec, img), spec.funcId);

        img.program.finalize(specs.front().startPC);
        return img;
    }

  private:
    /** Pass 1: choose per-function block counts, sizes, terminators. */
    void
    layoutBlocks()
    {
        const double avg_bb = profile.avgBlockSize * sizeScale;
        const auto total_insts =
            static_cast<std::uint64_t>(profile.codeKB) * 1024 / instBytes;
        const auto target_blocks = std::max<std::uint64_t>(
            16, static_cast<std::uint64_t>(total_insts / avg_bb));

        std::uint32_t func_id = 0;
        std::uint64_t blocks_made = 0;
        while (blocks_made < target_blocks) {
            auto in_func = std::max<unsigned>(
                2, rng.positiveGeometric(profile.blocksPerFunction,
                                         static_cast<unsigned>(
                                             profile.blocksPerFunction * 4)));
            if (func_id == 0)
                in_func = std::max<unsigned>(in_func, 25);
            std::uint32_t first = static_cast<std::uint32_t>(specs.size());
            for (unsigned b = 0; b < in_func; ++b) {
                BlockSpec s;
                s.funcId = func_id;
                s.indexInFunc = b;
                s.funcFirstBlock = first;
                s.funcNumBlocks = in_func;
                // Low-variance size draw: the dynamic average is
                // dominated by each phase's small hot block set, so a
                // long-tailed distribution would make the measured
                // Table 1 statistic swing phase to phase.
                double factor = 0.55 + 0.9 * rng.uniform();
                s.sizeInsts = std::max<unsigned>(
                    2, static_cast<unsigned>(avg_bb * factor + 0.5));
                s.term = chooseTerm(b, in_func);
                if (func_id == 0)
                    shapeDriverBlock(s, b, in_func);
                specs.push_back(s);
            }
            blocks_made += in_func;
            ++func_id;
        }
        numFunctions = func_id;

        // Functions form a call DAG (calls only target higher ids), so
        // the last function must not contain calls.
        for (auto &s : specs) {
            if (s.funcId == numFunctions - 1 && s.term == TermType::Call)
                s.term = TermType::Jump;
        }

        // Compute addresses.
        Addr pc = codeBase;
        for (auto &s : specs) {
            s.startPC = pc;
            pc += static_cast<Addr>(s.sizeInsts) * instBytes;
        }
    }

    /**
     * Function 0 is the phase driver: groups of call sites closed by a
     * long-trip loop back-edge. Execution camps on one group's callee
     * subtree for many iterations before moving to the next — the
     * phased hot-code locality real programs exhibit.
     */
    void
    shapeDriverBlock(BlockSpec &s, unsigned b, unsigned in_func)
    {
        if (b + 1 == in_func)
            return; // closing jump handled in materialize
        if (b % 8 == 7) {
            s.term = TermType::Cond;
            s.forcedCondTarget =
                static_cast<std::int32_t>(s.funcFirstBlock + b - 7);
            // Short phases: a measurement window must average many of
            // them, or per-phase behaviour differences dominate.
            s.forcedTrip = std::max<unsigned>(
                3, rng.positiveGeometric(10.0, 32));
        } else {
            s.term = TermType::Call;
        }
    }

    TermType
    chooseTerm(unsigned index_in_func, unsigned func_blocks)
    {
        bool is_last = index_in_func + 1 == func_blocks;
        if (is_last) {
            // Function 0 is the driver: its last block restarts it.
            return specs.empty() || specs.back().funcId != 0
                       ? TermType::Ret
                       : TermType::Ret; // overwritten below for func 0
        }
        double u = rng.uniform();
        double c = profile.condFrac;
        if (u < c)
            return TermType::Cond;
        u -= c;
        if (u < profile.jumpFrac)
            return TermType::Jump;
        u -= profile.jumpFrac;
        if (u < profile.callFrac)
            return TermType::Call;
        u -= profile.callFrac;
        if (u < profile.retFrac)
            return TermType::Ret;
        return TermType::Indirect;
    }

    /** Address of a block by global index. */
    Addr blockAddr(std::uint32_t idx) const { return specs[idx].startPC; }

    /** Pick a forward block in the same function (strictly later). */
    std::uint32_t
    pickForward(const BlockSpec &s, std::uint32_t global_idx)
    {
        std::uint32_t last = s.funcFirstBlock + s.funcNumBlocks - 1;
        if (global_idx >= last)
            return last;
        // Prefer near targets: geometric distance.
        std::uint32_t span = last - global_idx;
        std::uint32_t d = std::min<std::uint32_t>(
            span, rng.positiveGeometric(3.0, 8));
        return global_idx + d;
    }

    /** Pick a backward block in the same function (loop head). */
    std::uint32_t
    pickBackward(const BlockSpec &s, std::uint32_t global_idx)
    {
        if (global_idx == s.funcFirstBlock)
            return global_idx; // self loop head
        std::uint32_t span = global_idx - s.funcFirstBlock;
        std::uint32_t d = std::min<std::uint32_t>(
            span, rng.positiveGeometric(3.0, 8));
        return global_idx - d;
    }

    /** Pick a callee function id (> caller: call DAG, no recursion). */
    std::uint32_t
    pickCallee(std::uint32_t caller)
    {
        if (caller + 1 >= numFunctions)
            return caller; // converted to Jump earlier; defensive
        std::uint32_t span = numFunctions - caller - 1;
        double u = rng.uniform();
        // Cubic skew: strongly prefer nearby (hot) callees.
        auto off = static_cast<std::uint32_t>(span * u * u * u);
        if (off >= span)
            off = span - 1;
        return caller + 1 + off;
    }

    Addr
    functionEntry(std::uint32_t func_id) const
    {
        for (const auto &s : specs)
            if (s.funcId == func_id)
                return s.startPC;
        panic("function %u not found", func_id);
    }

    /** Pass 2: emit instructions for one block. */
    std::vector<StaticInst>
    materialize(const BlockSpec &s, BenchmarkImage &img)
    {
        std::uint32_t global_idx = static_cast<std::uint32_t>(
            &s - specs.data());
        std::vector<StaticInst> insts;
        insts.reserve(s.sizeInsts);

        bool is_func_last = s.indexInFunc + 1 == s.funcNumBlocks;
        bool has_term = true;
        TermType term = s.term;
        if (is_func_last)
            term = s.funcId == 0 ? TermType::Jump : TermType::Ret;

        unsigned body = s.sizeInsts - (has_term ? 1 : 0);
        for (unsigned i = 0; i < body; ++i)
            insts.push_back(makeBodyInst(img));

        StaticInst t;
        switch (term) {
          case TermType::Cond: {
            t.op = OpClass::CondBranch;
            t.modelId = static_cast<std::uint32_t>(
                img.branchModels.size());
            if (s.forcedCondTarget >= 0) {
                // Driver phase loop: long-trip back-edge.
                t.target = blockAddr(
                    static_cast<std::uint32_t>(s.forcedCondTarget));
                img.branchModels.push_back(
                    BranchModel::makeLoop(s.forcedTrip));
            } else {
                bool backward = rng.chance(profile.backwardFrac) &&
                                global_idx > s.funcFirstBlock;
                std::uint32_t tgt = backward
                                        ? pickBackward(s, global_idx)
                                        : pickForward(s, global_idx);
                t.target = blockAddr(tgt);
                img.branchModels.push_back(makeCondModel(backward));
            }
            break;
          }
          case TermType::Jump: {
            t.op = OpClass::Jump;
            // Function 0's closing jump restarts the driver loop; all
            // other jumps go strictly forward (guarantees progress).
            if (is_func_last && s.funcId == 0) {
                t.target = specs.front().startPC;
            } else {
                t.target = blockAddr(pickForward(s, global_idx));
            }
            break;
          }
          case TermType::Call: {
            t.op = OpClass::CallDirect;
            t.target = functionEntry(pickCallee(s.funcId));
            break;
          }
          case TermType::Ret: {
            t.op = OpClass::Return;
            t.target = invalidAddr;
            break;
          }
          case TermType::Indirect: {
            t.op = OpClass::JumpIndirect;
            unsigned n = 2 + static_cast<unsigned>(rng.below(5));
            std::vector<Addr> targets;
            for (unsigned k = 0; k < n; ++k)
                targets.push_back(blockAddr(pickForward(s, global_idx)));
            t.target = targets[0];
            t.src1 = nextSrcReg();
            t.modelId = static_cast<std::uint32_t>(
                img.indirectModels.size());
            double dom = 0.70 + 0.25 * rng.uniform();
            img.indirectModels.emplace_back(std::move(targets), dom,
                                            rng.next());
            break;
          }
        }
        if (t.op == OpClass::CondBranch)
            t.src1 = nextSrcReg();
        insts.push_back(t);
        return insts;
    }

    BranchModel
    makeCondModel(bool backward)
    {
        if (backward) {
            unsigned trip = std::max<unsigned>(
                2, rng.positiveGeometric(
                       profile.loopTripMean,
                       static_cast<unsigned>(profile.loopTripMean * 4)));
            return BranchModel::makeLoop(trip);
        }
        double u = rng.uniform();
        if (u < profile.corrFrac) {
            // Correlated branches mostly follow the recent control
            // path (visible to both path- and outcome-history
            // predictors); a minority follow raw outcome history.
            if (rng.chance(0.25)) {
                unsigned bits =
                    2 + static_cast<unsigned>(rng.below(
                            std::max(1u, profile.corrHistoryBits)));
                return BranchModel::makeCorrelated(bits, rng.next());
            }
            unsigned depth = 1 + static_cast<unsigned>(rng.below(2));
            return BranchModel::makeCorrelatedPath(depth, rng.next());
        }
        u -= profile.corrFrac;
        if (u < profile.randomFrac)
            return BranchModel::makeRandom(rng.next());
        // Biased: forward branches lean not-taken.
        double p = rng.chance(0.70) ? 0.02 + 0.13 * rng.uniform()
                                    : 0.85 + 0.13 * rng.uniform();
        return BranchModel::makeBiased(p, rng.next());
    }

    StaticInst
    makeBodyInst(BenchmarkImage &img)
    {
        StaticInst si;
        double u = rng.uniform();
        if (u < profile.loadFrac) {
            si.op = OpClass::Load;
            assignMemModel(si, img, /*is_load=*/true);
        } else if (u < profile.loadFrac + profile.storeFrac) {
            si.op = OpClass::Store;
            assignMemModel(si, img, /*is_load=*/false);
        } else if (u < profile.loadFrac + profile.storeFrac +
                           profile.intMultFrac) {
            si.op = OpClass::IntMult;
            si.src1 = nextSrcReg();
            si.src2 = nextSrcReg();
            si.dst = nextDstReg();
        } else if (u < profile.loadFrac + profile.storeFrac +
                           profile.intMultFrac + profile.fpFrac) {
            si.op = OpClass::FpAlu;
            si.src1 = nextFpSrcReg();
            si.src2 = nextFpSrcReg();
            si.dst = nextFpDstReg();
        } else {
            si.op = OpClass::IntAlu;
            si.src1 = nextSrcReg();
            si.src2 = rng.chance(0.5) ? nextSrcReg() : invalidReg;
            si.dst = nextDstReg();
        }
        return si;
    }

    void
    assignMemModel(StaticInst &si, BenchmarkImage &img, bool is_load)
    {
        si.modelId = static_cast<std::uint32_t>(img.memModels.size());
        const Addr hot_bytes =
            static_cast<Addr>(profile.hotKB) * 1024;

        double u = rng.uniform();
        if (is_load && u < profile.chaseFrac) {
            // True dependence chain through the chase register,
            // wandering the whole working set (pointer chasing).
            si.src1 = chaseReg;
            si.dst = chaseReg;
            img.memModels.push_back(MemoryModel::makeChase(
                dataBase, dataBytes, hot_bytes, profile.hotProb * 0.8,
                rng.next()));
            return;
        }
        u = is_load ? u - profile.chaseFrac : u;
        if (u < profile.stackFrac) {
            // Stack/locals: a tiny, always-hot region.
            unsigned strides[] = {8, 8, 16, 16};
            img.memModels.push_back(MemoryModel::makeStride(
                dataBase, 4096, strides[rng.below(4)]));
        } else if (u < profile.stackFrac + profile.strideFrac) {
            // Sequential walk of one of the program's shared arrays:
            // strong spatial locality, like real buffer processing.
            Addr array = arrayRegion();
            unsigned strides[] = {8, 8, 8, 16};
            img.memModels.push_back(MemoryModel::makeStride(
                array, arrayBytes, strides[rng.below(4)]));
        } else {
            // Irregular access over the working set with a hot subset.
            img.memModels.push_back(MemoryModel::makeRandom(
                dataBase, dataBytes, hot_bytes, profile.hotProb,
                rng.next()));
        }
        if (is_load) {
            si.src1 = nextSrcReg();
            si.dst = nextDstReg();
        } else {
            si.src1 = nextSrcReg();
            si.src2 = nextSrcReg(); // store data operand
        }
    }

    /** Pick one of the program's shared array regions. */
    Addr
    arrayRegion()
    {
        // Arrays tile the working set after the 4KB stack region.
        // Strong zipf-like skew: most static accesses share the first
        // few arrays, so the active stride footprint stays cache
        // sized (real programs process a couple of buffers at once).
        Addr usable = dataBytes > 8192 ? dataBytes - 4096 : 4096;
        unsigned count = static_cast<unsigned>(usable / arrayBytes);
        if (count == 0)
            return dataBase;
        double u = rng.uniform();
        auto idx = static_cast<unsigned>(count * u * u * u);
        if (idx >= count)
            idx = count - 1;
        // De-phase array bases by a pseudo-random line count so the
        // arrays do not stack on a couple of cache-set positions
        // (arrayBytes divides the way size, which would otherwise
        // cause systematic self-conflicts).
        Addr skew = (mix64(0x5e77 ^ idx) % 48) * 64;
        return dataBase + 4096 + static_cast<Addr>(idx) * arrayBytes +
               skew;
    }

    static constexpr Addr arrayBytes = 8 * 1024;

    RegIndex
    nextDstReg()
    {
        RegIndex r = static_cast<RegIndex>(gprPoolBase +
                                           (dstCounter % gprPoolSize));
        ++dstCounter;
        return r;
    }

    /** Source from one of the depWindow most recent destinations. */
    RegIndex
    nextSrcReg()
    {
        unsigned window = std::max(1u, profile.depWindow);
        std::uint64_t back = 1 + rng.below(window);
        std::uint64_t idx =
            (dstCounter + gprPoolSize * 4 - back) % gprPoolSize;
        return static_cast<RegIndex>(gprPoolBase + idx);
    }

    RegIndex
    nextFpDstReg()
    {
        RegIndex r = static_cast<RegIndex>(fpCounter % 28);
        ++fpCounter;
        return r;
    }

    RegIndex
    nextFpSrcReg()
    {
        unsigned window = std::max(1u, profile.depWindow);
        std::uint64_t back = 1 + rng.below(window);
        return static_cast<RegIndex>((fpCounter + 28 * 4 - back) % 28);
    }

    const BenchmarkProfile &profile;
    Rng rng;
    Addr codeBase;
    Addr dataBase;
    Addr dataBytes;
    double sizeScale;

    std::vector<BlockSpec> specs;
    std::uint32_t numFunctions = 0;
    std::uint64_t dstCounter = 0;
    std::uint64_t fpCounter = 0;
};

} // namespace

BenchmarkImage
buildImage(const BenchmarkProfile &profile, Addr code_base,
           Addr data_base, std::uint64_t seed)
{
    // The dynamic average basic-block size (what Table 1 reports) is
    // dominated by the benchmark's hot loops, whose block sizes are a
    // small sample of the static size distribution. Calibrate by
    // rebuilding with a scaled draw mean until the measured dynamic
    // average is within tolerance of the profile target.
    double scale = 1.0;
    for (int iter = 0; ; ++iter) {
        Builder b(profile, code_base, data_base, seed, scale);
        BenchmarkImage img = b.build();

        if (iter >= 4)
            return img;

        SyntheticTraceStream probe(img);
        for (int i = 0; i < 200'000; ++i)
            probe.next();
        double measured = probe.stats().avgBlockSize();
        if (measured <= 0.0)
            return img;
        double ratio = profile.avgBlockSize / measured;
        if (ratio > 0.97 && ratio < 1.03)
            return img;
        scale *= ratio;
        if (scale < 0.3)
            scale = 0.3;
        if (scale > 4.0)
            scale = 4.0;
    }
}

} // namespace smt
