/**
 * @file
 * Synthetic SPECint2000 benchmark profiles.
 *
 * The paper traces 300M-instruction SimPoint slices of SPECint2000 on
 * Alpha. We do not have those traces, so each benchmark is replaced by
 * a parameterized synthetic model calibrated to the workload
 * statistics that drive the paper's results: dynamic basic-block size
 * (Table 1), branch predictability, instruction mix, working-set size
 * and dependence depth (ILP vs MEM class). See DESIGN.md §3.
 */

#ifndef SMTFETCH_WORKLOAD_PROFILES_HH
#define SMTFETCH_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace smt
{

/** Memory-behaviour class used by the paper's workload taxonomy. */
enum class BenchClass : unsigned char
{
    ILP, //!< high instruction-level parallelism, cache resident
    MEM, //!< memory bounded (large working set, pointer chasing)
};

/** Tunable description of one synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name;

    /** Paper classification (Table 2 usage). */
    BenchClass benchClass = BenchClass::ILP;

    /** Target dynamic average basic-block size (Table 1). */
    double avgBlockSize = 8.0;

    /** Static code footprint in KB (I-cache pressure). */
    unsigned codeKB = 32;

    /** Data working-set size in KB (D-cache/L2 pressure). */
    unsigned workingSetKB = 512;

    /** @name Non-CTI instruction mix (fractions of block body). */
    /// @{
    double loadFrac = 0.24;
    double storeFrac = 0.11;
    double intMultFrac = 0.02;
    double fpFrac = 0.01;
    /// @}

    /** @name CTI terminator type mix. */
    /// @{
    double condFrac = 0.78;
    double jumpFrac = 0.05;
    double callFrac = 0.08;
    double retFrac = 0.06;
    double indirectFrac = 0.03;
    /// @}

    /** @name Conditional-branch behaviour mix.
     * Backward branches always get Loop models; these fractions split
     * the forward branches.
     */
    /// @{
    double corrFrac = 0.45;    //!< history-correlated (learnable)
    double randomFrac = 0.05;  //!< 50/50 unpredictable
    // remainder: biased
    /// @}

    /** Fraction of conditional branches that are loop back-edges. */
    double backwardFrac = 0.40;

    /** Mean loop trip count for back-edges. */
    double loopTripMean = 12.0;

    /** History bits consulted by correlated branches (difficulty). */
    unsigned corrHistoryBits = 6;

    /** @name Memory access pattern mix (per static load). */
    /// @{
    double stackFrac = 0.30;  //!< tiny hot region (stack/locals)
    double chaseFrac = 0.05;  //!< dependent pointer chasing in the WS
    double strideFrac = 0.45; //!< sequential walk of a shared array
    // remainder: random within the working set (hot/cold)
    /// @}

    /** Hot-subset size for random/chase accesses (temporal locality). */
    unsigned hotKB = 16;

    /** Fraction of random/chase accesses landing in the hot subset. */
    double hotProb = 0.80;

    /**
     * Register-reuse window: sources are drawn from the last this-many
     * destinations. Small values produce long dependence chains (low
     * ILP); large values produce wide independence (high ILP).
     */
    unsigned depWindow = 12;

    /** Mean basic blocks per synthetic function. */
    double blocksPerFunction = 16.0;

    /**
     * Per-benchmark build-seed salt. Synthetic CFGs are random
     * samples; the salt pins each benchmark to a sample whose hot
     * phases exhibit representative (SPECint-like) misprediction and
     * locality behaviour. See DESIGN.md §3.
     */
    std::uint64_t seedSalt = 0;
};

/** All twelve SPECint2000 profiles, Table 1 order. */
const std::vector<BenchmarkProfile> &allProfiles();

/** Lookup by short name ("gzip", "twolf", ...); fatal if unknown. */
const BenchmarkProfile &profileFor(const std::string &name);

} // namespace smt

#endif // SMTFETCH_WORKLOAD_PROFILES_HH
