/**
 * @file
 * Construction of a complete synthetic benchmark image: static program
 * (CFG + instructions) plus the per-instruction behaviour models that
 * drive its dynamic trace.
 */

#ifndef SMTFETCH_WORKLOAD_PROGRAM_BUILDER_HH
#define SMTFETCH_WORKLOAD_PROGRAM_BUILDER_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "workload/branch_model.hh"
#include "workload/memory_model.hh"
#include "workload/profiles.hh"

namespace smt
{

/**
 * Everything needed to execute one synthetic benchmark: the static
 * code image and the behaviour models indexed by StaticInst::modelId.
 */
struct BenchmarkImage
{
    BenchmarkProfile profile;
    StaticProgram program;

    /** Models for conditional branches (modelId space). */
    std::vector<BranchModel> branchModels;

    /** Models for indirect jumps (separate modelId space). */
    std::vector<IndirectModel> indirectModels;

    /** Models for loads and stores (separate modelId space). */
    std::vector<MemoryModel> memModels;

    /** Base of this benchmark's data region. */
    Addr dataBase = 0;

    /** Size of the data region in bytes. */
    Addr dataBytes = 0;
};

/**
 * Build a benchmark image.
 *
 * The construction is fully deterministic in (profile.name, seed); two
 * builds with identical arguments produce identical programs and
 * traces.
 *
 * @param profile Benchmark parameterization.
 * @param code_base First code address (per-thread distinct).
 * @param data_base First data address (per-thread distinct).
 * @param seed Extra seed salt (usually 0).
 */
BenchmarkImage buildImage(const BenchmarkProfile &profile, Addr code_base,
                          Addr data_base, std::uint64_t seed = 0);

} // namespace smt

#endif // SMTFETCH_WORKLOAD_PROGRAM_BUILDER_HH
