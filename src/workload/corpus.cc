#include "workload/corpus.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/sha256.hh"
#include "workload/trace_file.hh"

namespace smt
{

namespace
{

[[noreturn]] void
manifestFail(const std::string &path, const std::string &what)
{
    throw CorpusError(path + ": " + what);
}

/** Directory prefix of a path, empty for a bare file name. */
std::string
dirName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

/** Resolve a manifest-listed path against the manifest's directory. */
std::string
resolveListed(const std::string &manifest_path,
              const std::string &listed)
{
    if (!listed.empty() && listed.front() == '/')
        return listed;
    return dirName(manifest_path) + listed;
}

const JsonValue &
requireMember(const std::string &path, const JsonValue &obj,
              const std::string &context, const std::string &key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        manifestFail(path, csprintf("%s is missing the required "
                                    "\"%s\" field",
                                    context.c_str(), key.c_str()));
    return *v;
}

std::uint64_t
uintMember(const std::string &path, const JsonValue &obj,
           const std::string &context, const std::string &key)
{
    const JsonValue &v = requireMember(path, obj, context, key);
    if (!v.isNumber())
        manifestFail(path, csprintf("%s \"%s\" must be a number",
                                    context.c_str(), key.c_str()));
    return v.asUInt64();
}

std::string
stringMember(const std::string &path, const JsonValue &obj,
             const std::string &context, const std::string &key)
{
    const JsonValue &v = requireMember(path, obj, context, key);
    if (!v.isString())
        manifestFail(path, csprintf("%s \"%s\" must be a string",
                                    context.c_str(), key.c_str()));
    return v.asString();
}

bool
isHexDigest(const std::string &s)
{
    if (s.size() != 64)
        return false;
    for (char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

} // namespace

const CorpusEntry &
CorpusManifest::find(const std::string &benchmark) const
{
    for (const CorpusEntry &e : entries)
        if (e.benchmark == benchmark)
            return e;
    std::string known;
    for (const CorpusEntry &e : entries)
        known += (known.empty() ? "" : ", ") + e.benchmark;
    throw CorpusError(csprintf(
        "%s: no trace for benchmark \"%s\" in the corpus (available: "
        "%s)",
        path.c_str(), benchmark.c_str(),
        known.empty() ? "none" : known.c_str()));
}

CorpusManifest
loadCorpusManifest(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        manifestFail(path, "cannot open corpus manifest");
    std::ostringstream text;
    text << is.rdbuf();

    JsonValue doc;
    try {
        doc = jsonParse(text.str());
    } catch (const JsonParseError &e) {
        manifestFail(path, csprintf("manifest is not valid JSON: %s",
                                    e.what()));
    }
    if (!doc.isObject())
        manifestFail(path, "manifest root must be a JSON object");

    const std::uint64_t version =
        uintMember(path, doc, "the manifest", "formatVersion");
    if (version != corpusManifestVersion)
        manifestFail(path,
                     csprintf("manifest formatVersion %llu, but this "
                              "build reads version %u — re-generate "
                              "the manifest (tracegen --manifest)",
                              (unsigned long long)version,
                              corpusManifestVersion));

    const JsonValue &traces =
        requireMember(path, doc, "the manifest", "traces");
    if (!traces.isArray())
        manifestFail(path, "\"traces\" must be an array of entries");

    CorpusManifest manifest;
    manifest.path = path;
    std::set<std::string> seen;
    std::size_t i = 0;
    for (const JsonValue &t : traces.asArray()) {
        const std::string ctx = csprintf("traces[%zu]", i++);
        if (!t.isObject())
            manifestFail(path,
                         csprintf("%s must be an object",
                                  ctx.c_str()));
        CorpusEntry e;
        e.path = stringMember(path, t, ctx, "path");
        if (e.path.empty() || e.path.find(',') != std::string::npos)
            manifestFail(path,
                         csprintf("%s path \"%s\" must be non-empty, "
                                  "without commas",
                                  ctx.c_str(), e.path.c_str()));
        e.resolvedPath = resolveListed(path, e.path);
        e.sha256 = stringMember(path, t, ctx, "sha256");
        if (!isHexDigest(e.sha256))
            manifestFail(path,
                         csprintf("%s sha256 must be 64 lowercase "
                                  "hex characters",
                                  ctx.c_str()));
        e.benchmark = stringMember(path, t, ctx, "benchmark");
        if (e.benchmark.empty())
            manifestFail(path, csprintf("%s benchmark label must be "
                                        "non-empty",
                                        ctx.c_str()));
        e.records = uintMember(path, t, ctx, "records");
        const std::uint64_t tv =
            uintMember(path, t, ctx, "traceVersion");
        if (tv == 0 || tv > 0xffff)
            manifestFail(path,
                         csprintf("%s traceVersion %llu out of "
                                  "range",
                                  ctx.c_str(), (unsigned long long)tv));
        e.traceVersion = static_cast<std::uint16_t>(tv);
        if (!seen.insert(e.benchmark).second)
            manifestFail(path,
                         csprintf("benchmark label \"%s\" appears "
                                  "more than once — mix labels must "
                                  "be unique",
                                  e.benchmark.c_str()));
        manifest.entries.push_back(std::move(e));
    }
    return manifest;
}

void
validateCorpusEntry(const CorpusManifest &manifest,
                    const CorpusEntry &entry)
{
    auto entryFail = [&](const std::string &what) {
        manifestFail(manifest.path,
                     csprintf("trace \"%s\" (%s): %s",
                              entry.benchmark.c_str(),
                              entry.resolvedPath.c_str(),
                              what.c_str()));
    };

    std::ifstream probe(entry.resolvedPath, std::ios::binary);
    if (!probe)
        entryFail("missing file — restore the trace or re-record "
                  "the corpus");
    probe.close();

    const std::string digest = sha256File(entry.resolvedPath);
    if (digest != entry.sha256)
        entryFail(csprintf("checksum mismatch: manifest says %s but "
                           "the file hashes to %s — the trace was "
                           "modified after the manifest was "
                           "generated; re-generate the manifest or "
                           "restore the file",
                           entry.sha256.c_str(), digest.c_str()));

    TraceFileHeader hdr;
    try {
        hdr = readTraceHeader(entry.resolvedPath);
    } catch (const TraceFileError &e) {
        entryFail(e.what());
    }
    if (hdr.version != entry.traceVersion)
        entryFail(csprintf("format version skew: manifest says v%u "
                           "but the file is v%u — re-generate the "
                           "manifest",
                           entry.traceVersion, hdr.version));
    if (hdr.benchmark != entry.benchmark)
        entryFail(csprintf("benchmark skew: manifest labels it "
                           "\"%s\" but the trace header says \"%s\"",
                           entry.benchmark.c_str(),
                           hdr.benchmark.c_str()));
    if (hdr.recordCount != entry.records)
        entryFail(csprintf("record-count skew: manifest says %llu "
                           "but the file holds %llu",
                           (unsigned long long)entry.records,
                           (unsigned long long)hdr.recordCount));
}

CorpusEntry
describeTrace(const std::string &trace_path,
              const std::string &listed_path)
{
    CorpusEntry e;
    e.path = listed_path;
    e.resolvedPath = trace_path;
    TraceFileHeader hdr = readTraceHeader(trace_path);
    e.sha256 = sha256File(trace_path);
    e.benchmark = hdr.benchmark;
    e.records = hdr.recordCount;
    e.traceVersion = hdr.version;
    return e;
}

void
writeCorpusManifest(const CorpusManifest &manifest)
{
    std::ofstream os(manifest.path,
                     std::ios::binary | std::ios::trunc);
    if (!os)
        manifestFail(manifest.path, "cannot open for writing");
    JsonWriter jw(os);
    jw.beginObject();
    jw.field("formatVersion", corpusManifestVersion);
    jw.key("traces");
    jw.beginArray();
    for (const CorpusEntry &e : manifest.entries) {
        jw.beginObject();
        jw.field("path", e.path);
        jw.field("sha256", e.sha256);
        jw.field("benchmark", e.benchmark);
        jw.field("records", e.records);
        jw.field("traceVersion",
                 static_cast<unsigned>(e.traceVersion));
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << "\n";
    os.flush();
    if (!os)
        manifestFail(manifest.path, "I/O error while writing");
}

} // namespace smt
