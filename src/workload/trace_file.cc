#include "workload/trace_file.hh"

#include <cstdlib>
#include <sstream>

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

/** @name Little-endian scalar encoding (host-endianness agnostic). */
/// @{
void
put16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
put32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
put64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t
get16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}
/// @}

/** Info-byte layout: op kind nibble, CTI direction, mem-class flag. */
constexpr unsigned infoKindMask = 0x0f;
constexpr unsigned infoTakenBit = 0x10;
constexpr unsigned infoMemBit = 0x20;
constexpr unsigned infoKnownBits = 0x3f;

constexpr unsigned maxOpKind =
    static_cast<unsigned>(OpClass::JumpIndirect);

/** Fixed leading header chunk: magic + version + name length. */
constexpr std::size_t headPreludeBytes = sizeof(traceMagic) + 2 + 2;

/** Header bytes after the name: seed, codeBase, dataBase, count. */
constexpr std::size_t headTailBytes = 4 * 8;

/** Sanity cap on the benchmark-name length field. */
constexpr std::size_t maxNameLen = 255;

/** Reverse of opName() for the text encoding. */
bool
kindFromName(const std::string &name, OpClass &out)
{
    for (unsigned k = 0; k <= maxOpKind; ++k) {
        OpClass op = static_cast<OpClass>(k);
        if (name == opName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

/** Encode pc as a code-relative instruction-word index. */
std::uint32_t
packWord(Addr addr, Addr code_base, const std::string &path,
         const char *what)
{
    if (addr < code_base || (addr - code_base) % instBytes != 0)
        throw TraceFileError(
            csprintf("%s: %s 0x%llx is not an instruction address in "
                     "the code region starting at 0x%llx",
                     path.c_str(), what, (unsigned long long)addr,
                     (unsigned long long)code_base));
    Addr word = (addr - code_base) / instBytes;
    if (word > 0xffffffffull)
        throw TraceFileError(csprintf(
            "%s: %s 0x%llx overflows the record encoding (more than "
            "2^32 instruction words past the code base 0x%llx)",
            path.c_str(), what, (unsigned long long)addr,
            (unsigned long long)code_base));
    return static_cast<std::uint32_t>(word);
}

std::uint64_t
parseUint(const std::string &tok, bool &ok)
{
    if (tok.empty()) {
        ok = false;
        return 0;
    }
    char *end = nullptr;
    std::uint64_t v = std::strtoull(tok.c_str(), &end, 0);
    ok = end != nullptr && *end == '\0';
    return v;
}

} // namespace

bool
traceFileIsText(const std::string &path)
{
    const std::string ext = ".strc";
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) ==
               0;
}

// ------------------------------------------------------------- writer

TraceWriter::TraceWriter(const std::string &path,
                         const TraceFileHeader &header)
    : filePath(path), hdr(header)
{
    hdr.text = traceFileIsText(path);
    hdr.version = traceFormatVersion;
    hdr.recordCount = 0;
    if (hdr.benchmark.empty() || hdr.benchmark.size() > maxNameLen)
        fail(csprintf("benchmark name \"%s\" must be 1..%zu bytes",
                      hdr.benchmark.c_str(), maxNameLen));

    os.open(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fail("cannot open for writing");

    if (!hdr.text) {
        std::string head(traceMagic, sizeof(traceMagic));
        put16(head, hdr.version);
        put16(head, static_cast<std::uint16_t>(hdr.benchmark.size()));
        head += hdr.benchmark;
        put64(head, hdr.seed);
        put64(head, hdr.codeBase);
        put64(head, hdr.dataBase);
        put64(head, 0); // recordCount, patched by close()
        os.write(head.data(),
                 static_cast<std::streamsize>(head.size()));
    }
}

TraceWriter::~TraceWriter()
{
    try {
        close();
    } catch (const TraceFileError &) {
        // Destruction must not throw; close() explicitly to observe
        // I/O failures.
    }
}

void
TraceWriter::append(const TraceRecord &rec)
{
    PackedTraceRecord p;
    p.pc = rec.si->pc;
    p.nextPc = rec.nextPc;
    p.memAddr = rec.memAddr;
    p.kind = rec.si->op;
    p.taken = rec.taken;
    p.depDepth = static_cast<std::uint8_t>(
        (rec.si->src1 != invalidReg ? 1 : 0) +
        (rec.si->src2 != invalidReg ? 1 : 0));
    append(p);
}

void
TraceWriter::append(const PackedTraceRecord &rec)
{
    if (closed)
        fail("append after close");
    if (hdr.text) {
        textRecords.push_back(rec);
        ++count;
        return;
    }

    std::string buf;
    buf.reserve(traceRecordBytes);
    put32(buf, packWord(rec.pc, hdr.codeBase, filePath, "record pc"));
    put32(buf, packWord(rec.nextPc, hdr.codeBase, filePath,
                        "record next-pc"));
    unsigned info = static_cast<unsigned>(rec.kind) & infoKindMask;
    if (rec.taken)
        info |= infoTakenBit;
    bool has_mem = rec.memAddr != invalidAddr;
    if (has_mem)
        info |= infoMemBit;
    buf.push_back(static_cast<char>(info));
    buf.push_back(static_cast<char>(rec.depDepth));
    put16(buf, 0); // reserved
    put64(buf, has_mem ? rec.memAddr : 0);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    ++count;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;

    if (hdr.text) {
        std::ostringstream text;
        text << "strc v" << hdr.version << "\n";
        text << "benchmark " << hdr.benchmark << "\n";
        text << "seed " << hdr.seed << "\n";
        text << "codeBase 0x" << std::hex << hdr.codeBase << std::dec
             << "\n";
        text << "dataBase 0x" << std::hex << hdr.dataBase << std::dec
             << "\n";
        text << "records " << count << "\n";
        text << "# r <pc> <next-pc> <kind> <T|-> <dep-depth> "
                "[<mem-addr>]\n";
        for (const auto &r : textRecords) {
            text << "r 0x" << std::hex << r.pc << " 0x" << r.nextPc
                 << std::dec << " " << opName(r.kind) << " "
                 << (r.taken ? "T" : "-") << " "
                 << static_cast<unsigned>(r.depDepth);
            if (r.memAddr != invalidAddr)
                text << " 0x" << std::hex << r.memAddr << std::dec;
            text << "\n";
        }
        std::string s = text.str();
        os.write(s.data(), static_cast<std::streamsize>(s.size()));
    } else {
        // Patch the record count now that it is known.
        std::string buf;
        put64(buf, count);
        os.seekp(static_cast<std::streamoff>(
            headPreludeBytes + hdr.benchmark.size() + headTailBytes -
            8));
        os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    os.flush();
    if (!os)
        fail("I/O error while finalizing");
    os.close();
}

void
TraceWriter::fail(const std::string &what) const
{
    throw TraceFileError(filePath + ": " + what);
}

// ------------------------------------------------------------- reader

TraceReader::TraceReader(const std::string &path, bool header_only)
    : filePath(path), headerOnly(header_only)
{
    is.open(path, std::ios::binary);
    if (!is)
        fail("cannot open trace file");

    if (traceFileIsText(path)) {
        hdr.text = true;
        parseText(header_only);
    } else {
        readBinaryHeader();
    }
}

void
TraceReader::readBinaryHeader()
{
    is.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);

    unsigned char prelude[headPreludeBytes];
    if (!is.read(reinterpret_cast<char *>(prelude), sizeof(prelude)))
        fail(csprintf("truncated header: file is %llu bytes, the "
                      "fixed prelude alone is %zu",
                      (unsigned long long)file_size,
                      headPreludeBytes));

    if (std::char_traits<char>::compare(
            reinterpret_cast<const char *>(prelude), traceMagic,
            sizeof(traceMagic)) != 0)
        fail("bad magic: not a smtfetch trace file (expected "
             "\"SMTTRC\"; text fixtures must use the .strc "
             "extension)");

    hdr.version = get16(prelude + sizeof(traceMagic));
    if (hdr.version != traceFormatVersion)
        fail(csprintf("format version %u, but this build reads "
                      "version %u — re-record the trace with this "
                      "build's --record",
                      hdr.version, traceFormatVersion));

    const std::size_t name_len =
        get16(prelude + sizeof(traceMagic) + 2);
    if (name_len == 0 || name_len > maxNameLen)
        fail(csprintf("benchmark-name length %zu overflows the "
                      "header (corrupt file?)",
                      name_len));

    std::string name(name_len, '\0');
    unsigned char tail[headTailBytes];
    if (!is.read(name.data(),
                 static_cast<std::streamsize>(name_len)) ||
        !is.read(reinterpret_cast<char *>(tail), sizeof(tail)))
        fail(csprintf("truncated header: expected %zu bytes, file "
                      "is %llu",
                      headPreludeBytes + name_len + headTailBytes,
                      (unsigned long long)file_size));

    hdr.benchmark = name;
    hdr.seed = get64(tail);
    hdr.codeBase = get64(tail + 8);
    hdr.dataBase = get64(tail + 16);
    hdr.recordCount = get64(tail + 24);

    const std::uint64_t header_bytes =
        headPreludeBytes + name_len + headTailBytes;
    const std::uint64_t payload = file_size - header_bytes;
    if (hdr.recordCount > payload / traceRecordBytes)
        fail(csprintf("header promises %llu records (%llu bytes) but "
                      "only %llu payload bytes follow the header — "
                      "truncated or overflowing count",
                      (unsigned long long)hdr.recordCount,
                      (unsigned long long)(hdr.recordCount *
                                           traceRecordBytes),
                      (unsigned long long)payload));
    if (payload != hdr.recordCount * traceRecordBytes)
        fail(csprintf("%llu trailing bytes after the last record "
                      "(corrupt record count?)",
                      (unsigned long long)(payload -
                                           hdr.recordCount *
                                               traceRecordBytes)));
}

void
TraceReader::parseText(bool header_only)
{
    std::string line;
    std::size_t lineno = 0;
    bool saw_version = false;
    bool saw_count = false;
    std::uint64_t declared = 0;
    std::uint64_t record_lines = 0;

    auto lineFail = [&](const std::string &what) {
        fail(csprintf("line %zu: %s", lineno, what.c_str()));
    };

    while (std::getline(is, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok) || tok[0] == '#')
            continue;

        // Header-only consumers (readTraceHeader) still count
        // record lines for the declared-count cross-check, but skip
        // tokenizing them.
        if (header_only && saw_version && tok == "r") {
            ++record_lines;
            continue;
        }

        if (!saw_version) {
            if (tok != "strc")
                lineFail("a text trace must start with \"strc v1\"");
            std::string ver;
            if (!(ls >> ver) ||
                ver != csprintf("v%u", traceFormatVersion))
                lineFail(csprintf(
                    "unsupported text-trace version \"%s\" — this "
                    "build reads \"v%u\"",
                    ver.c_str(), traceFormatVersion));
            saw_version = true;
            continue;
        }

        if (tok == "r") {
            ++record_lines;
            std::string pc_s, next_s, kind_s, taken_s, dep_s, mem_s;
            if (!(ls >> pc_s >> next_s >> kind_s >> taken_s >> dep_s))
                lineFail("a record line is \"r <pc> <next-pc> "
                         "<kind> <T|-> <dep-depth> [<mem-addr>]\"");
            PackedTraceRecord rec;
            bool ok = true, ok2 = true, ok3 = true;
            rec.pc = parseUint(pc_s, ok);
            rec.nextPc = parseUint(next_s, ok2);
            std::uint64_t dep = parseUint(dep_s, ok3);
            if (!ok || !ok2 || !ok3 || dep > 0xff)
                lineFail("bad number in record (addresses take "
                         "0x-hex or decimal; dep-depth is 0..255)");
            rec.depDepth = static_cast<std::uint8_t>(dep);
            if (!kindFromName(kind_s, rec.kind))
                lineFail(csprintf(
                    "unknown op kind \"%s\" (known: alu, mul, ld, "
                    "st, fp, br, jmp, call, ret, ijmp)",
                    kind_s.c_str()));
            if (taken_s == "T")
                rec.taken = true;
            else if (taken_s == "-")
                rec.taken = false;
            else
                lineFail(csprintf("bad taken flag \"%s\" (use T "
                                  "or -)",
                                  taken_s.c_str()));
            if (ls >> mem_s) {
                bool okm = true;
                rec.memAddr = parseUint(mem_s, okm);
                if (!okm)
                    lineFail(csprintf("bad mem-addr \"%s\"",
                                      mem_s.c_str()));
            }
            textRecords.push_back(rec);
            continue;
        }

        std::string value;
        if (!(ls >> value))
            lineFail(csprintf("header key \"%s\" needs a value",
                              tok.c_str()));
        bool ok = true;
        if (tok == "benchmark") {
            hdr.benchmark = value;
        } else if (tok == "seed") {
            hdr.seed = parseUint(value, ok);
        } else if (tok == "codeBase") {
            hdr.codeBase = parseUint(value, ok);
        } else if (tok == "dataBase") {
            hdr.dataBase = parseUint(value, ok);
        } else if (tok == "records") {
            declared = parseUint(value, ok);
            saw_count = true;
        } else {
            lineFail(csprintf(
                "unknown directive \"%s\" (known: benchmark, seed, "
                "codeBase, dataBase, records, r, #-comments)",
                tok.c_str()));
        }
        if (!ok)
            lineFail(csprintf("bad value \"%s\" for \"%s\"",
                              value.c_str(), tok.c_str()));
    }

    if (!saw_version)
        fail("empty trace: a text trace must start with \"strc v1\"");
    if (hdr.benchmark.empty())
        fail("missing \"benchmark <name>\" header line");
    if (saw_count && declared != record_lines)
        fail(csprintf("header declares %llu records but the file "
                      "holds %llu record lines",
                      (unsigned long long)declared,
                      (unsigned long long)record_lines));
    hdr.recordCount = record_lines;
}

bool
TraceReader::next(PackedTraceRecord &out)
{
    if (headerOnly || count >= hdr.recordCount)
        return false;

    if (hdr.text) {
        out = textRecords[count++];
        return true;
    }

    unsigned char buf[traceRecordBytes];
    if (!is.read(reinterpret_cast<char *>(buf), sizeof(buf)))
        fail(csprintf("truncated record %llu (header promises %llu "
                      "records)",
                      (unsigned long long)count,
                      (unsigned long long)hdr.recordCount));

    const unsigned info = buf[8];
    if ((info & ~infoKnownBits) != 0)
        fail(csprintf("record %llu has unknown flag bits 0x%x set "
                      "(file written by a newer format revision?)",
                      (unsigned long long)count,
                      info & ~infoKnownBits));
    const unsigned kind = info & infoKindMask;
    if (kind > maxOpKind)
        fail(csprintf("record %llu has invalid op kind %u",
                      (unsigned long long)count, kind));

    out.pc = hdr.codeBase +
             static_cast<Addr>(get32(buf)) * instBytes;
    out.nextPc = hdr.codeBase +
                 static_cast<Addr>(get32(buf + 4)) * instBytes;
    out.kind = static_cast<OpClass>(kind);
    out.taken = (info & infoTakenBit) != 0;
    out.depDepth = buf[9];
    out.memAddr =
        (info & infoMemBit) != 0 ? get64(buf + 12) : invalidAddr;
    ++count;
    return true;
}

void
TraceReader::fail(const std::string &what) const
{
    throw TraceFileError(filePath + ": " + what);
}

TraceFileHeader
readTraceHeader(const std::string &path)
{
    return TraceReader(path, /*header_only=*/true).header();
}

// -------------------------------------------------------- file stream

FileTraceStream::FileTraceStream(const BenchmarkImage &image,
                                 const std::string &path)
    : TraceSource(image), reader(path)
{
    const TraceFileHeader &h = reader.header();
    if (h.benchmark != image.profile.name)
        throw TraceFileError(csprintf(
            "%s: trace was recorded for benchmark \"%s\" but is "
            "bound to an image of \"%s\"",
            path.c_str(), h.benchmark.c_str(),
            image.profile.name.c_str()));
    if (h.codeBase != image.program.base() ||
        h.dataBase != image.dataBase)
        throw TraceFileError(csprintf(
            "%s: trace address bases (code 0x%llx, data 0x%llx) do "
            "not match the image (code 0x%llx, data 0x%llx) — was "
            "the image built with a different seed or thread slot?",
            path.c_str(), (unsigned long long)h.codeBase,
            (unsigned long long)h.dataBase,
            (unsigned long long)image.program.base(),
            (unsigned long long)image.dataBase));
}

TraceRecord
FileTraceStream::generate()
{
    PackedTraceRecord p;
    if (!reader.next(p))
        throw TraceFileError(csprintf(
            "%s: trace exhausted after %llu records — this "
            "simulation consumes more correct-path instructions "
            "than were recorded; re-record with longer windows or a "
            "--record-pad margin",
            reader.path().c_str(),
            (unsigned long long)reader.recordsRead()));

    const StaticInst *si = img.program.lookup(p.pc);
    if (si == nullptr)
        throw TraceFileError(csprintf(
            "%s: record %llu pc 0x%llx is outside the program "
            "image [0x%llx, 0x%llx)",
            reader.path().c_str(),
            (unsigned long long)(reader.recordsRead() - 1),
            (unsigned long long)p.pc,
            (unsigned long long)img.program.base(),
            (unsigned long long)img.program.limit()));
    if (si->op != p.kind)
        throw TraceFileError(csprintf(
            "%s: record %llu op kind \"%s\" does not match the "
            "program's \"%s\" at pc 0x%llx — trace/program mismatch "
            "(different profile or seed?)",
            reader.path().c_str(),
            (unsigned long long)(reader.recordsRead() - 1),
            std::string(opName(p.kind)).c_str(),
            std::string(opName(si->op)).c_str(),
            (unsigned long long)p.pc));

    TraceRecord rec;
    rec.si = si;
    rec.taken = p.taken;
    rec.nextPc = p.nextPc;
    rec.memAddr = p.memAddr;
    return rec;
}

void
FileTraceStream::save(CheckpointWriter &w) const
{
    saveBase(w);
    w.u64(generatedRecords());
}

void
FileTraceStream::restore(CheckpointReader &r)
{
    if (reader.recordsRead() != 0)
        r.fail("trace-file restore requires a freshly-opened "
               "replay stream");
    restoreBase(r);
    std::uint64_t skip = r.u64();
    if (skip != generatedRecords())
        r.fail(csprintf("trace-file position %llu disagrees with "
                        "the %llu records the stream generated "
                        "(corrupt payload)",
                        (unsigned long long)skip,
                        (unsigned long long)generatedRecords()));
    // The file content is immutable and validated record-by-record,
    // so resuming is just re-reading the already-consumed prefix.
    PackedTraceRecord p;
    for (std::uint64_t i = 0; i < skip; ++i) {
        if (!reader.next(p))
            r.fail(csprintf("%s holds only %llu records but the "
                            "checkpoint consumed %llu — the "
                            "checkpoint was saved against a "
                            "different trace file",
                            reader.path().c_str(),
                            (unsigned long long)i,
                            (unsigned long long)skip));
    }
}

} // namespace smt
